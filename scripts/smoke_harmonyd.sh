#!/usr/bin/env bash
# Smoke test for the harmonyd daemon and harmonyctl client.
#
# Boots a release harmonyd on an ephemeral port with a snapshot path,
# drives one scripted provisioning session end to end, and verifies a
# clean shutdown:
#
#   submit-observations -> tick -> get-plan -> snapshot
#     -> status (written to results/BENCH_harmonyd_smoke.json) -> shutdown
#
# Fails on any non-zero harmonyctl exit, a daemon that refuses to die,
# or leftover *.tmp snapshot files (which would mean the atomic
# tmp+rename checkpoint protocol was violated).
set -euo pipefail

HARMONYD=${HARMONYD:-target/release/harmonyd}
HARMONYCTL=${HARMONYCTL:-target/release/harmonyctl}
RESULTS_DIR=${HARMONY_RESULTS_DIR:-results}

workdir=$(mktemp -d "${TMPDIR:-/tmp}/harmonyd-smoke.XXXXXX")
daemon_pid=""
cleanup() {
    if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

snapshot="$workdir/harmonyd.ckpt.json"

"$HARMONYD" \
    --listen 127.0.0.1:0 \
    --snapshot "$snapshot" \
    --synthetic-seed 33 \
    --synthetic-span-hours 2 \
    --scale 100 \
    >"$workdir/harmonyd.out" 2>"$workdir/harmonyd.err" &
daemon_pid=$!

# The daemon prints exactly one banner line once it is accepting
# connections: "harmonyd listening on HOST:PORT".
addr=""
for _ in $(seq 1 100); do
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "harmonyd exited before accepting connections" >&2
        cat "$workdir/harmonyd.err" >&2
        exit 1
    fi
    addr=$(sed -n 's/^harmonyd listening on //p' "$workdir/harmonyd.out" | head -n1)
    [[ -n "$addr" ]] && break
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "timed out waiting for the harmonyd banner" >&2
    cat "$workdir/harmonyd.err" >&2
    exit 1
fi
echo "harmonyd up at $addr (pid $daemon_pid)"

ctl() { "$HARMONYCTL" --addr "$addr" "$@"; }

ctl submit-observations --count 120 --seed 77
ctl tick
ctl get-plan
ctl snapshot
mkdir -p "$RESULTS_DIR"
ctl --output "$RESULTS_DIR/BENCH_harmonyd_smoke.json" status
ctl shutdown

# Graceful shutdown: the process must exit on its own, promptly.
for _ in $(seq 1 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
    echo "harmonyd still running after shutdown verb" >&2
    exit 1
fi
wait "$daemon_pid" || {
    echo "harmonyd exited non-zero" >&2
    exit 1
}
daemon_pid=""

[[ -f "$snapshot" ]] || { echo "missing snapshot $snapshot" >&2; exit 1; }
tmp_files=$(find "$workdir" -name '*.tmp' -print)
if [[ -n "$tmp_files" ]]; then
    echo "leftover temp snapshot files:" >&2
    echo "$tmp_files" >&2
    exit 1
fi
[[ -s "$RESULTS_DIR/BENCH_harmonyd_smoke.json" ]] || {
    echo "missing $RESULTS_DIR/BENCH_harmonyd_smoke.json" >&2
    exit 1
}

echo "harmonyd smoke test passed"

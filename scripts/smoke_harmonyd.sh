#!/usr/bin/env bash
# Smoke test for the harmonyd daemon and harmonyctl client.
#
# Boots a release harmonyd on an ephemeral port with a snapshot path,
# drives one scripted provisioning session end to end, and verifies a
# clean shutdown:
#
#   submit-observations -> tick -> get-plan -> snapshot -> metrics
#     -> status (written to results/BENCH_harmonyd_smoke.json) -> shutdown
#
# Fails on any non-zero harmonyctl exit, a daemon that refuses to die,
# or leftover *.tmp snapshot files (which would mean the atomic
# tmp+rename checkpoint protocol was violated). The metrics response
# must be well-formed JSON carrying live request counters, and a
# follow-up `replay --metrics` run must leave a parseable
# results/BENCH_telemetry.json artifact.
set -euo pipefail

HARMONYD=${HARMONYD:-target/release/harmonyd}
HARMONYCTL=${HARMONYCTL:-target/release/harmonyctl}
REPLAY=${REPLAY:-target/release/replay}
HARMONY_LINT=${HARMONY_LINT:-target/release/harmony-lint}
RESULTS_DIR=${HARMONY_RESULTS_DIR:-results}

# Before booting anything: every metric name the smoke checks below
# key on must exist in the telemetry registry and DESIGN.md, or this
# script would probe counters that can never move. The drift rule is
# the cheap static version of that guarantee.
if [[ ! -x "$HARMONY_LINT" ]]; then
    cargo build --release -p harmony-lint
fi
"$HARMONY_LINT" --deny --rule metric-name-drift

workdir=$(mktemp -d "${TMPDIR:-/tmp}/harmonyd-smoke.XXXXXX")
daemon_pid=""
cleanup() {
    if [[ -n "$daemon_pid" ]] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

snapshot="$workdir/harmonyd.ckpt.json"

# Boot under the dollar objective on the accelerator catalog so the
# cost.* telemetry keys move — the smoke then covers the priced LP
# path end to end through the daemon, not just the energy default.
"$HARMONYD" \
    --listen 127.0.0.1:0 \
    --snapshot "$snapshot" \
    --synthetic-seed 33 \
    --synthetic-span-hours 2 \
    --catalog table2-accel \
    --objective dollars-spot \
    --scale 100 \
    >"$workdir/harmonyd.out" 2>"$workdir/harmonyd.err" &
daemon_pid=$!

# The daemon prints exactly one banner line once it is accepting
# connections: "harmonyd listening on HOST:PORT".
addr=""
for _ in $(seq 1 100); do
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "harmonyd exited before accepting connections" >&2
        cat "$workdir/harmonyd.err" >&2
        exit 1
    fi
    addr=$(sed -n 's/^harmonyd listening on //p' "$workdir/harmonyd.out" | head -n1)
    [[ -n "$addr" ]] && break
    sleep 0.1
done
if [[ -z "$addr" ]]; then
    echo "timed out waiting for the harmonyd banner" >&2
    cat "$workdir/harmonyd.err" >&2
    exit 1
fi
echo "harmonyd up at $addr (pid $daemon_pid)"

ctl() { "$HARMONYCTL" --addr "$addr" "$@"; }

ctl submit-observations --count 120 --seed 77
ctl tick
ctl get-plan
ctl snapshot

# A second observation batch and tick so the controller attempts an LP
# warm start from the basis the first tick left behind — that is what
# makes the lp.warm_start_* counters move.
ctl submit-observations --count 120 --seed 78
ctl tick

# The metrics verb must answer well-formed JSON whose counters reflect
# the requests this very session just made.
metrics_json="$workdir/metrics.json"
ctl --output "$metrics_json" metrics >/dev/null
python3 - "$metrics_json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
if m.get("type") != "metrics" or m.get("ok") is not True:
    sys.exit(f"malformed metrics response: {m}")
counters = m.get("counters")
if not isinstance(counters, dict):
    sys.exit(f"metrics response has no counters object: {m}")
# Two submit-observations, two ticks, get-plan, snapshot ran before
# this verb.
if counters.get("server.requests", 0) < 6:
    sys.exit(f"server.requests counter missing or too low: {counters}")
if counters.get("server.requests.tick", 0) < 2:
    sys.exit(f"per-verb request counter missing: {counters}")
# The second tick attempted a warm LP start from the first tick's
# basis; it must land in exactly one of the three mutually exclusive
# outcome counters, and all three names must exist in the snapshot
# (they are fetched eagerly so dashboards never see a missing key).
for key in (
    "lp.warm_start_hits",
    "lp.warm_start_repair_fallbacks",
    "lp.warm_start_structural_fallbacks",
):
    if key not in counters:
        sys.exit(f"warm-start counter {key} missing: {sorted(counters)}")
warm = counters.get("lp.warm_start_hits", 0)
repair = counters.get("lp.warm_start_repair_fallbacks", 0)
structural = counters.get("lp.warm_start_structural_fallbacks", 0)
if warm + repair + structural < 1:
    sys.exit(f"warm-start counters all zero: {counters}")
# The resilience counters are pre-registered at daemon start, so they
# must be present (zero is fine — this session sheds nothing).
for key in ("server.shed_total", "server.timeout_total", "server.ticker_restarts"):
    if key not in counters:
        sys.exit(f"resilience counter {key} missing: {sorted(counters)}")
gauges = m.get("gauges")
if not isinstance(gauges, dict):
    sys.exit(f"metrics response has no gauges object: {m}")
if gauges.get("pipeline.workers", 0) < 1:
    sys.exit(f"pipeline.workers gauge missing: {gauges}")
# The daemon booted with --objective dollars-spot: both ticks must
# have priced their plans and accrued real spend.
if counters.get("cost.dollar_solves", 0) < 2:
    sys.exit(f"cost.dollar_solves counter missing or too low: {counters}")
if gauges.get("cost.cumulative_dollars", 0) <= 0:
    sys.exit(f"cost.cumulative_dollars gauge missing or zero: {gauges}")
print(
    "metrics verb OK:", counters.get("server.requests"), "requests;",
    f"warm starts hit={warm} repair-fallback={repair} structural-fallback={structural};",
    "workers =", gauges.get("pipeline.workers"), ";",
    "spend = $%.2f" % gauges.get("cost.cumulative_dollars", 0.0),
)
PY

mkdir -p "$RESULTS_DIR"
ctl --output "$RESULTS_DIR/BENCH_harmonyd_smoke.json" status
ctl shutdown

# Graceful shutdown: the process must exit on its own, promptly.
for _ in $(seq 1 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
    echo "harmonyd still running after shutdown verb" >&2
    exit 1
fi
wait "$daemon_pid" || {
    echo "harmonyd exited non-zero" >&2
    exit 1
}
daemon_pid=""

[[ -f "$snapshot" ]] || { echo "missing snapshot $snapshot" >&2; exit 1; }
tmp_files=$(find "$workdir" -name '*.tmp' -print)
if [[ -n "$tmp_files" ]]; then
    echo "leftover temp snapshot files:" >&2
    echo "$tmp_files" >&2
    exit 1
fi
[[ -s "$RESULTS_DIR/BENCH_harmonyd_smoke.json" ]] || {
    echo "missing $RESULTS_DIR/BENCH_harmonyd_smoke.json" >&2
    exit 1
}

# Offline telemetry artifact: a quick fault replay with --metrics must
# leave a parseable snapshot with the per-stage pipeline timings.
HARMONY_SCALE=quick "$REPLAY" --faults crash-storm --metrics >/dev/null
python3 - "$RESULTS_DIR/BENCH_telemetry.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    snap = json.load(f)
names = {h["name"] for h in snap.get("histograms", [])}
want = {"pipeline.lp_seconds", "pipeline.period_seconds"}
if not want <= names:
    sys.exit(f"telemetry artifact missing stage timings {want - names}")
if snap.get("counters", {}).get("lp.pivots", 0) < 1:
    sys.exit(f"telemetry artifact missing pivot counters: {snap.get('counters')}")
# Simulator gauges: the replay ran real simulations, so the pending
# high-watermark and event-queue peak must have moved, and the bench
# harness must have attached the wall-clock event throughput (the
# simulator itself may not read clocks — wall-clock lint).
gauges = snap.get("gauges", {})
for key in ("sim.pending_peak", "sim.heap_peak"):
    if gauges.get(key, -1.0) < 0.0:
        sys.exit(f"simulator gauge {key} missing: {sorted(gauges)}")
if gauges.get("sim.events_per_sec", 0.0) <= 0.0:
    sys.exit(f"sim.events_per_sec gauge missing or zero: {sorted(gauges)}")
print(
    "telemetry artifact OK:", sorted(names), ";",
    "events/sec = %.0f" % gauges["sim.events_per_sec"], ";",
    "pending peak =", gauges["sim.pending_peak"], ";",
    "queue peak =", gauges["sim.heap_peak"],
)
PY

echo "harmonyd smoke test passed"

//! A minimal splitmix64 PRNG, the same generator the fault subsystem
//! uses: deterministic, seedable, dependency-free. Duplicated here
//! (rather than exported from `harmony-sim`) because it is an
//! implementation detail of both crates, not API.

#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform f64 in `[lo, hi)`.
    pub(crate) fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform usize in `[0, n)`. Returns 0 for `n == 0`.
    pub(crate) fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }

    /// Exponentially distributed sample with the given rate (events per
    /// unit). Returns infinity for a non-positive rate.
    pub(crate) fn exponential(&mut self, rate: f64) -> f64 {
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        // 1 - u is in (0, 1], so the log is finite and non-positive.
        -(1.0 - self.next_f64()).ln() / rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SplitMix64::new(11);
        let mut b = SplitMix64::new(11);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(3);
        for _ in 0..100 {
            assert!((0.0..1.0).contains(&c.next_f64()));
            let r = c.range(2.0, 5.0);
            assert!((2.0..5.0).contains(&r));
            assert!(c.below(7) < 7);
            assert!(c.exponential(0.5) >= 0.0);
        }
        assert_eq!(c.below(0), 0);
        assert!(c.exponential(0.0).is_infinite());
    }
}

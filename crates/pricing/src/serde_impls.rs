//! Hand-written serde impls for the pricing types that cross a
//! serialization boundary (checkpoints, bench artifacts).
//!
//! The vendored `serde` stand-in has no derive machinery, so the value
//! model is implemented explicitly, matching what upstream derives
//! would emit: structs are objects keyed by field name, unit enums are
//! strings. Deserialization funnels through the validating
//! constructors, so a corrupted artifact can never smuggle in a
//! negative rate or a non-concave curve.

use std::collections::BTreeMap;

use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};

use crate::book::{MarketPolicy, PriceBook, SpotPrice, SpotPriceSeries, TypePrice};
use crate::slo::SloCostCurve;
use crate::spot::SpotMarket;

fn object(fields: &[(&str, Value)]) -> Value {
    let mut map = BTreeMap::new();
    for (k, v) in fields {
        map.insert((*k).to_owned(), v.clone());
    }
    Value::Object(map)
}

impl Serialize for MarketPolicy {
    fn to_value(&self) -> Value {
        match self {
            MarketPolicy::OnDemandOnly => "OnDemandOnly".to_value(),
            MarketPolicy::SpotAware => "SpotAware".to_value(),
        }
    }
}

impl Deserialize for MarketPolicy {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_str() {
            Some("OnDemandOnly") => Ok(MarketPolicy::OnDemandOnly),
            Some("SpotAware") => Ok(MarketPolicy::SpotAware),
            _ => Err(DeError::new("unknown MarketPolicy")),
        }
    }
}

impl Serialize for SpotPriceSeries {
    fn to_value(&self) -> Value {
        object(&[("multipliers", self.multipliers().to_vec().to_value())])
    }
}

impl Deserialize for SpotPriceSeries {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let multipliers = Vec::<f64>::from_value(v.field("multipliers")?)?;
        SpotPriceSeries::from_multipliers(multipliers).map_err(|e| DeError::new(e.to_string()))
    }
}

impl Serialize for SpotPrice {
    fn to_value(&self) -> Value {
        object(&[
            ("base_per_hour", self.base_per_hour.to_value()),
            ("series", self.series.to_value()),
            ("eviction_rate_per_hour", self.eviction_rate_per_hour.to_value()),
            (
                "interruption_overhead_hours",
                self.interruption_overhead_hours.to_value(),
            ),
        ])
    }
}

impl Deserialize for SpotPrice {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(SpotPrice {
            base_per_hour: f64::from_value(v.field("base_per_hour")?)?,
            series: SpotPriceSeries::from_value(v.field("series")?)?,
            eviction_rate_per_hour: f64::from_value(v.field("eviction_rate_per_hour")?)?,
            interruption_overhead_hours: f64::from_value(
                v.field("interruption_overhead_hours")?,
            )?,
        })
    }
}

impl Serialize for TypePrice {
    fn to_value(&self) -> Value {
        let spot = match &self.spot {
            Some(s) => s.to_value(),
            None => Value::Null,
        };
        object(&[
            ("on_demand_per_hour", self.on_demand_per_hour.to_value()),
            ("spot", spot),
        ])
    }
}

impl Deserialize for TypePrice {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let spot = match v.field("spot")? {
            Value::Null => None,
            other => Some(SpotPrice::from_value(other)?),
        };
        Ok(TypePrice {
            on_demand_per_hour: f64::from_value(v.field("on_demand_per_hour")?)?,
            spot,
        })
    }
}

impl Serialize for PriceBook {
    fn to_value(&self) -> Value {
        let rates = Value::Array(self.rates().iter().map(Serialize::to_value).collect());
        object(&[("rates", rates)])
    }
}

impl Deserialize for PriceBook {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let rates = Vec::<TypePrice>::from_value(v.field("rates")?)?;
        PriceBook::new(rates).map_err(|e| DeError::new(e.to_string()))
    }
}

impl Serialize for SloCostCurve {
    fn to_value(&self) -> Value {
        object(&[
            ("critical_fraction", self.critical_fraction.to_value()),
            ("critical_per_hour", self.critical_per_hour.to_value()),
            ("tail_per_hour", self.tail_per_hour.to_value()),
        ])
    }
}

impl Deserialize for SloCostCurve {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        SloCostCurve::new(
            f64::from_value(v.field("critical_fraction")?)?,
            f64::from_value(v.field("critical_per_hour")?)?,
            f64::from_value(v.field("tail_per_hour")?)?,
        )
        .map_err(|e| DeError::new(e.to_string()))
    }
}

impl Serialize for SpotMarket {
    fn to_value(&self) -> Value {
        object(&[("seed", self.seed().to_value())])
    }
}

impl Deserialize for SpotMarket {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(SpotMarket::new(u64::from_value(v.field("seed")?)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_model::MachineCatalog;

    #[test]
    fn book_round_trips_through_json_text() {
        let book = PriceBook::default_for(&MachineCatalog::table2_with_accel(), 2013);
        let text = serde_json::to_string(&book).unwrap();
        let back: PriceBook = serde_json::from_str(&text).unwrap();
        assert_eq!(back, book);
    }

    #[test]
    fn corrupted_rate_rejected_on_read() {
        let book = PriceBook::default_for(&MachineCatalog::table2(), 1);
        let mut v = book.to_value();
        if let Value::Object(map) = &mut v {
            if let Some(Value::Array(rates)) = map.get_mut("rates") {
                if let Some(Value::Object(first)) = rates.first_mut() {
                    first.insert("on_demand_per_hour".to_owned(), Value::Number(-1.0));
                }
            }
        }
        assert!(PriceBook::from_value(&v).is_err());
    }

    #[test]
    fn policy_and_market_round_trip() {
        for p in [MarketPolicy::OnDemandOnly, MarketPolicy::SpotAware] {
            assert_eq!(MarketPolicy::from_value(&p.to_value()).unwrap(), p);
        }
        assert!(MarketPolicy::from_value(&Value::String("Nope".into())).is_err());
        let m = SpotMarket::new(99);
        assert_eq!(SpotMarket::from_value(&m.to_value()).unwrap(), m);
    }
}

//! Post-hoc dollar accounting over a simulation report.
//!
//! The ledger is controller-agnostic: every variant and objective is
//! charged from the same [`PriceBook`] under the same [`MarketPolicy`],
//! so "the dollar objective is cheaper" is a statement about plans, not
//! about bookkeeping.

use harmony_model::{MachineTypeId, SimDuration};
use harmony_sim::SimReport;

use crate::book::{MarketPolicy, PriceBook};

/// Dollar totals for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Machine rental: active machine-hours × the market rate in effect
    /// at each sample.
    pub rental_dollars: f64,
    /// Energy, as metered by the simulator.
    pub energy_dollars: f64,
    /// Machine on/off switching, as metered by the simulator.
    pub switching_dollars: f64,
    /// SLO-violation dollars: scheduling delay beyond each group's
    /// target, charged per task-hour late.
    pub slo_dollars: f64,
}

impl CostBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> f64 {
        self.rental_dollars + self.energy_dollars + self.switching_dollars + self.slo_dollars
    }
}

/// The accounting rules: a price book, a market policy, and per-group
/// SLO delay targets and late rates.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Rates per machine type.
    pub book: PriceBook,
    /// Which market the run was allowed to buy from.
    pub policy: MarketPolicy,
    /// Delay targets in seconds, indexed by priority-group index
    /// (gratis, other, production).
    pub slo_target_secs: [f64; 3],
    /// Dollars per task-hour of delay beyond the target, same indexing.
    pub slo_late_per_hour: [f64; 3],
}

impl CostModel {
    /// A model with the workspace's default SLO targets (the
    /// `HarmonyConfig` defaults) and late rates scaled like the default
    /// utilities: production lateness is ~two orders costlier than
    /// gratis lateness.
    pub fn new(book: PriceBook, policy: MarketPolicy) -> Self {
        CostModel {
            book,
            policy,
            slo_target_secs: [600.0, 120.0, 15.0],
            slo_late_per_hour: [0.005, 0.06, 0.60],
        }
    }

    /// Charges one run. `sample_interval` must be the simulator's
    /// sampling interval (the spacing of `report.series`), which the
    /// rental integral uses as its step.
    pub fn assess(&self, report: &SimReport, sample_interval: SimDuration) -> CostBreakdown {
        let hours = sample_interval.as_secs() / 3600.0;
        let mut rental = 0.0;
        for point in &report.series {
            for (ty, &active) in point.active_per_type.iter().enumerate() {
                if active > 0 {
                    rental += active as f64
                        * self.book.market_rate(MachineTypeId(ty), point.time, self.policy)
                        * hours;
                }
            }
        }
        let mut slo = 0.0;
        for (g, delays) in report.delays_by_group.iter().enumerate() {
            let target = self.slo_target_secs[g];
            let rate = self.slo_late_per_hour[g];
            for &d in delays {
                if d > target {
                    slo += (d - target) / 3600.0 * rate;
                }
            }
        }
        CostBreakdown {
            rental_dollars: rental,
            energy_dollars: report.energy_cost_dollars,
            switching_dollars: report.switch_cost_dollars,
            slo_dollars: slo,
        }
    }

    /// Fraction of completed tasks per group whose scheduling delay met
    /// the target (1.0 for groups that completed nothing).
    pub fn slo_attainment(&self, report: &SimReport) -> [f64; 3] {
        let mut out = [1.0; 3];
        for (g, delays) in report.delays_by_group.iter().enumerate() {
            if delays.is_empty() {
                continue;
            }
            let met = delays.iter().filter(|&&d| d <= self.slo_target_secs[g]).count();
            out[g] = met as f64 / delays.len() as f64;
        }
        out
    }

    /// Task-weighted overall SLO attainment.
    pub fn slo_attainment_overall(&self, report: &SimReport) -> f64 {
        let per_group = self.slo_attainment(report);
        let mut met = 0.0;
        let mut total = 0.0;
        for (g, delays) in report.delays_by_group.iter().enumerate() {
            met += per_group[g] * delays.len() as f64;
            total += delays.len() as f64;
        }
        if total == 0.0 {
            1.0
        } else {
            met / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_model::{MachineCatalog, SimTime};
    use harmony_sim::TimePoint;

    fn report_with(series: Vec<TimePoint>, delays: [Vec<f64>; 3]) -> SimReport {
        SimReport {
            delays_by_group: delays,
            tasks_completed: 0,
            tasks_running_at_end: 0,
            tasks_pending_at_end: 0,
            tasks_unschedulable: 0,
            tasks_failed: 0,
            total_energy_wh: 0.0,
            energy_cost_dollars: 1.5,
            switch_count: 0,
            switch_cost_dollars: 0.25,
            migrations: 0,
            evictions: 0,
            faults: Vec::new(),
            degradations: Vec::new(),
            series,
        }
    }

    #[test]
    fn rental_integrates_active_machines_at_market_rates() {
        let catalog = MachineCatalog::table2();
        let book = PriceBook::default_for(&catalog, 1);
        let model = CostModel::new(book.clone(), MarketPolicy::OnDemandOnly);
        let point = |secs: f64| TimePoint {
            time: SimTime::from_secs(secs),
            power_watts: 0.0,
            active_per_type: vec![2, 0, 1, 0],
            used_per_type: vec![0; 4],
            pending_tasks: 0,
        };
        let report = report_with(vec![point(0.0), point(1800.0)], Default::default());
        let cost = model.assess(&report, SimDuration::from_secs(1800.0));
        let expected = 2.0
            * (2.0 * book.on_demand_rate(MachineTypeId(0))
                + book.on_demand_rate(MachineTypeId(2)))
            * 0.5;
        assert!((cost.rental_dollars - expected).abs() < 1e-12);
        assert_eq!(cost.energy_dollars, 1.5);
        assert_eq!(cost.switching_dollars, 0.25);
        assert_eq!(cost.slo_dollars, 0.0);
        assert!((cost.total() - (expected + 1.75)).abs() < 1e-12);
        // Spot-aware accounting can only be cheaper or equal.
        let spot = CostModel::new(book, MarketPolicy::SpotAware);
        assert!(spot.assess(&report, SimDuration::from_secs(1800.0)).rental_dollars <= expected);
    }

    #[test]
    fn slo_dollars_and_attainment_follow_targets() {
        let catalog = MachineCatalog::table2();
        let model =
            CostModel::new(PriceBook::default_for(&catalog, 1), MarketPolicy::OnDemandOnly);
        // One production task an hour late, one on time; gratis all fine.
        let report = report_with(
            Vec::new(),
            [vec![10.0, 20.0], Vec::new(), vec![15.0 + 3600.0, 1.0]],
        );
        let cost = model.assess(&report, SimDuration::from_secs(60.0));
        assert!((cost.slo_dollars - 0.60).abs() < 1e-12);
        let att = model.slo_attainment(&report);
        assert_eq!(att[0], 1.0);
        assert_eq!(att[1], 1.0);
        assert_eq!(att[2], 0.5);
        assert!((model.slo_attainment_overall(&report) - 0.75).abs() < 1e-12);
        // An empty report attains everything and costs nothing in SLO.
        let empty = report_with(Vec::new(), Default::default());
        assert_eq!(model.slo_attainment_overall(&empty), 1.0);
    }
}

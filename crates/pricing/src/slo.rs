//! Monetary SLO-cost curves: what a container-hour of served demand is
//! worth, in dollars, per task class.

use harmony_model::PriorityGroup;

use crate::error::PricingError;

/// A two-segment concave dollars-per-container-hour curve for one class.
///
/// The first `critical_fraction` of a class's demand is worth
/// `critical_per_hour` $/container-hour — leaving it unserved breaches
/// the SLO outright. The remaining tail is worth the lower
/// `tail_per_hour` — elastic demand whose violation costs less. The
/// segments are exactly the shape
/// [`harmony_lp::PiecewiseLinear::concave`] accepts, so the dollar
/// objective can drop them straight into the LP where the energy
/// objective uses its flat `utility_per_container_hour`.
#[derive(Debug, Clone, PartialEq)]
pub struct SloCostCurve {
    /// Fraction of demand in the critical segment, in `(0, 1]`.
    pub critical_fraction: f64,
    /// $/container-hour for the critical segment.
    pub critical_per_hour: f64,
    /// $/container-hour for the elastic tail (≤ critical).
    pub tail_per_hour: f64,
}

impl SloCostCurve {
    /// Builds a curve, validating concavity and finiteness.
    ///
    /// # Errors
    ///
    /// Rejects fractions outside `(0, 1]`, negative or non-finite
    /// dollars, and `tail > critical` (the curve must be concave).
    pub fn new(
        critical_fraction: f64,
        critical_per_hour: f64,
        tail_per_hour: f64,
    ) -> Result<Self, PricingError> {
        if !(critical_fraction > 0.0 && critical_fraction <= 1.0) {
            return Err(PricingError::InvalidCurve {
                reason: format!("critical_fraction {critical_fraction} not in (0, 1]"),
            });
        }
        for (what, v) in [("critical_per_hour", critical_per_hour), ("tail_per_hour", tail_per_hour)]
        {
            if !v.is_finite() || v < 0.0 {
                return Err(PricingError::InvalidCurve {
                    reason: format!("{what} {v} must be finite and non-negative"),
                });
            }
        }
        if tail_per_hour > critical_per_hour {
            return Err(PricingError::InvalidCurve {
                reason: format!(
                    "tail {tail_per_hour} exceeds critical {critical_per_hour}: not concave"
                ),
            });
        }
        Ok(SloCostCurve { critical_fraction, critical_per_hour, tail_per_hour })
    }

    /// Default curves per priority group, scaled from the energy
    /// objective's utilities: production violations are an order of
    /// magnitude costlier than gratis ones, and the critical segment
    /// grows with priority.
    // Invariant: the literals below satisfy new()'s checks.
    #[allow(clippy::expect_used)]
    pub fn default_for_group(group: PriorityGroup) -> Self {
        let (frac, critical, tail) = match group {
            PriorityGroup::Gratis => (0.50, 0.04, 0.01),
            PriorityGroup::Other => (0.70, 0.12, 0.04),
            // Production is priced high enough that holding headroom
            // beats shaving rental even on large fleets, where spot
            // evictions would otherwise erode the delay SLO.
            PriorityGroup::Production => (0.90, 1.50, 0.45),
        };
        SloCostCurve::new(frac, critical, tail).expect("default curves are statically valid")
    }

    /// Splits a demand of `width` containers into concave
    /// `(width, $/container-hour)` segments for the LP. Zero-width
    /// segments are dropped; an empty vector means zero demand.
    pub fn utility_segments(&self, width: f64) -> Vec<(f64, f64)> {
        if width <= 0.0 {
            return Vec::new();
        }
        let critical = width * self.critical_fraction;
        let tail = width - critical;
        let mut segs = Vec::with_capacity(2);
        if critical > 0.0 {
            segs.push((critical, self.critical_per_hour));
        }
        if tail > 0.0 {
            segs.push((tail, self.tail_per_hour));
        }
        segs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ordered_by_priority() {
        let g = SloCostCurve::default_for_group(PriorityGroup::Gratis);
        let o = SloCostCurve::default_for_group(PriorityGroup::Other);
        let p = SloCostCurve::default_for_group(PriorityGroup::Production);
        assert!(g.critical_per_hour < o.critical_per_hour);
        assert!(o.critical_per_hour < p.critical_per_hour);
        assert!(g.critical_fraction < p.critical_fraction);
    }

    #[test]
    fn segments_cover_width_and_stay_concave() {
        let c = SloCostCurve::new(0.75, 0.4, 0.1).unwrap();
        let segs = c.utility_segments(8.0);
        assert_eq!(segs.len(), 2);
        let total: f64 = segs.iter().map(|(w, _)| w).sum();
        assert!((total - 8.0).abs() < 1e-12);
        assert!(segs[0].1 >= segs[1].1);
        // Full-critical curve collapses to one segment; zero width to none.
        let full = SloCostCurve::new(1.0, 0.4, 0.1).unwrap();
        assert_eq!(full.utility_segments(3.0), vec![(3.0, 0.4)]);
        assert!(c.utility_segments(0.0).is_empty());
    }

    #[test]
    fn validation_rejects_bad_curves() {
        assert!(SloCostCurve::new(0.0, 0.4, 0.1).is_err());
        assert!(SloCostCurve::new(1.5, 0.4, 0.1).is_err());
        assert!(SloCostCurve::new(0.5, 0.1, 0.4).is_err());
        assert!(SloCostCurve::new(0.5, f64::NAN, 0.1).is_err());
        assert!(SloCostCurve::new(0.5, 0.4, -0.1).is_err());
    }
}

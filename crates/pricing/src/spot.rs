//! The spot market: turns a price book into a reproducible schedule of
//! capacity reclaims, delivered through the simulator's fault machinery.

use harmony_model::{MachineCatalog, SimDuration, SimTime};
use harmony_sim::{FaultKind, FaultPlan};

use crate::book::PriceBook;
use crate::rng::SplitMix64;

/// A seeded spot market. The market itself holds no price state — it
/// reads eviction rates from a [`PriceBook`] and emits when (and how
/// hard) each spot pool reclaims capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpotMarket {
    seed: u64,
}

impl SpotMarket {
    /// A market with the given event-schedule seed.
    pub fn new(seed: u64) -> Self {
        SpotMarket { seed }
    }

    /// The schedule seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builds the reclaim schedule for one run of `span` against
    /// `catalog`: for every type `book` prices with a spot pool, reclaim
    /// events arrive as a Poisson process whose rate scales with the
    /// type's `eviction_rate_per_hour` and (sub-linearly) its
    /// population, each taking 1–3 machines down for 10–30 minutes.
    /// The same market, book, catalog, and span always produce the same
    /// plan; the plan's victim-selection seed is derived from this
    /// market's seed, so full runs are reproducible end to end.
    pub fn eviction_plan(
        &self,
        book: &PriceBook,
        catalog: &MachineCatalog,
        span: SimDuration,
    ) -> FaultPlan {
        let mut plan = FaultPlan::new(self.seed ^ 0x5B07_5B07_5B07_5B07);
        let span_hours = span.as_secs() / 3600.0;
        for ty in catalog.iter() {
            let Some(spot) = book.get(ty.id).and_then(|t| t.spot.as_ref()) else {
                continue;
            };
            // Event rate: per-machine reclaim rate aggregated over the
            // pool, damped so huge pools see storms, not annihilation.
            let pool = ty.count as f64;
            let rate_per_hour = spot.eviction_rate_per_hour * pool.sqrt();
            let mut rng = SplitMix64::new(self.seed ^ (ty.id.0 as u64).wrapping_mul(0x9E3779B9));
            let mut t_hours = rng.exponential(rate_per_hour);
            while t_hours < span_hours {
                plan = plan.with_event(
                    SimTime::from_secs(t_hours * 3600.0),
                    FaultKind::SpotEviction {
                        machine_type: ty.id,
                        count: 1 + rng.below(3),
                        down: SimDuration::from_secs(rng.range(600.0, 1800.0)),
                    },
                );
                t_hours += rng.exponential(rate_per_hour);
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_model::MachineTypeId;

    #[test]
    fn plans_are_reproducible_and_typed() {
        let catalog = MachineCatalog::table2_with_accel();
        let book = PriceBook::default_for(&catalog, 2013);
        let market = SpotMarket::new(5);
        let span = SimDuration::from_hours(4.0);
        let a = market.eviction_plan(&book, &catalog, span);
        let b = market.eviction_plan(&book, &catalog, span);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "spot pools must see reclaims over 4h");
        assert_ne!(a, SpotMarket::new(6).eviction_plan(&book, &catalog, span));
        for ev in a.events() {
            assert!(ev.at.as_secs() >= 0.0 && ev.at.as_secs() <= span.as_secs());
            match ev.kind {
                FaultKind::SpotEviction { machine_type, count, down } => {
                    // Only spot-priced types are ever reclaimed — never
                    // the on-demand-only R210.
                    assert_ne!(machine_type, MachineTypeId(0));
                    assert!((1..=3).contains(&count));
                    assert!(down.as_secs() >= 600.0 && down.as_secs() <= 1800.0);
                }
                other => panic!("market emitted a non-spot fault: {other:?}"),
            }
        }
    }

    #[test]
    fn on_demand_only_book_yields_empty_plan() {
        let catalog = MachineCatalog::table2();
        // A book with no spot pools at all.
        let rates = catalog
            .iter()
            .map(|_| crate::book::TypePrice { on_demand_per_hour: 1.0, spot: None })
            .collect();
        let book = PriceBook::new(rates).unwrap();
        let plan = SpotMarket::new(1).eviction_plan(&book, &catalog, SimDuration::from_hours(8.0));
        assert!(plan.is_empty());
    }
}

//! Monetary layer for the HARMONY workspace.
//!
//! The paper's objective (Eq. 14–16) prices a provisioning plan in
//! energy and switching cost; ROADMAP item 4 extends it to what
//! heterogeneous clouds actually bill: dollars. This crate supplies the
//! vocabulary that extension needs, without the core crates knowing how
//! prices are made:
//!
//! * [`PriceBook`] — per-machine-type on-demand and spot $/hour rates,
//!   with a seeded, time-varying [`SpotPriceSeries`] per spot-priced
//!   type.
//! * [`SpotMarket`] — turns a price book into a reproducible
//!   [`harmony_sim::FaultPlan`] of spot-eviction events, so market
//!   reclaims flow through the simulator's existing fault machinery.
//! * [`SloCostCurve`] — a concave dollars-per-container-hour utility
//!   curve per class, the monetary analogue of the paper's
//!   `utility_per_container_hour`.
//! * [`CostModel`] / [`CostBreakdown`] — post-hoc dollar accounting
//!   over a [`harmony_sim::SimReport`], identical across controllers so
//!   objectives can be compared on one ledger.
//!
//! Everything is deterministic from explicit seeds; the crate has no
//! clock, no RNG dependency, and no I/O.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod book;
mod error;
mod report;
mod rng;
mod serde_impls;
mod slo;
mod spot;

pub use book::{MarketPolicy, PriceBook, RateQuote, SpotPrice, SpotPriceSeries, TypePrice};
pub use error::PricingError;
pub use report::{CostBreakdown, CostModel};
pub use slo::SloCostCurve;
pub use spot::SpotMarket;

//! Error type for price-book and cost-curve construction.

use std::fmt;

/// Why a pricing object could not be built.
#[derive(Debug, Clone, PartialEq)]
pub enum PricingError {
    /// A $/hour rate was non-finite or non-positive.
    InvalidRate {
        /// Which rate was rejected (e.g. `"on_demand_per_hour"`).
        what: String,
        /// The offending value.
        value: f64,
    },
    /// A price book does not cover every type of the catalog it is
    /// used with.
    CatalogMismatch {
        /// Types priced by the book.
        book_types: usize,
        /// Types in the catalog.
        catalog_types: usize,
    },
    /// An SLO cost curve had an invalid shape (fraction out of range,
    /// slopes not non-increasing, or non-finite dollars).
    InvalidCurve {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for PricingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PricingError::InvalidRate { what, value } => {
                write!(f, "invalid rate {what} = {value}: must be finite and positive")
            }
            PricingError::CatalogMismatch { book_types, catalog_types } => write!(
                f,
                "price book covers {book_types} machine types but the catalog has {catalog_types}"
            ),
            PricingError::InvalidCurve { reason } => {
                write!(f, "invalid SLO cost curve: {reason}")
            }
        }
    }
}

impl std::error::Error for PricingError {}

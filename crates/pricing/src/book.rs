//! Per-machine-type $/hour rates: on-demand, spot, and the planning
//! rates the dollar objective feeds into the LP.

use harmony_model::{MachineCatalog, MachineTypeId, SimTime};

use crate::error::PricingError;
use crate::rng::SplitMix64;

/// How much of the market a plan may use when pricing capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketPolicy {
    /// Rent everything at the on-demand rate; spot prices are ignored.
    OnDemandOnly,
    /// Use spot capacity whenever its risk-adjusted rate undercuts
    /// on-demand.
    SpotAware,
}

impl MarketPolicy {
    /// Stable lowercase name (used in artifacts and CLI flags).
    pub fn name(self) -> &'static str {
        match self {
            MarketPolicy::OnDemandOnly => "on-demand",
            MarketPolicy::SpotAware => "spot-aware",
        }
    }
}

/// Number of hourly steps in a [`SpotPriceSeries`] day.
pub const SPOT_SERIES_HOURS: usize = 24;

/// A daily-repeating series of hourly spot-price multipliers, generated
/// as a seeded bounded random walk. Multiplier 1.0 means the spot base
/// rate; the walk stays within `[0.7, 1.6]`, the diurnal band public
/// spot-price histories show.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotPriceSeries {
    multipliers: Vec<f64>,
}

impl SpotPriceSeries {
    /// Generates the daily multiplier walk for `seed`.
    pub fn new(seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0x5907_5907_5907_5907);
        let mut multipliers = Vec::with_capacity(SPOT_SERIES_HOURS);
        let mut level = rng.range(0.85, 1.15);
        for _ in 0..SPOT_SERIES_HOURS {
            level = (level + rng.range(-0.12, 0.12)).clamp(0.7, 1.6);
            multipliers.push(level);
        }
        SpotPriceSeries { multipliers }
    }

    /// A flat series (multiplier 1.0 all day) — spot price equals base.
    pub fn flat() -> Self {
        SpotPriceSeries { multipliers: vec![1.0; SPOT_SERIES_HOURS] }
    }

    /// Builds a series from explicit hourly multipliers.
    ///
    /// # Errors
    ///
    /// Rejects series that are not exactly [`SPOT_SERIES_HOURS`] long or
    /// contain non-finite / non-positive multipliers.
    pub fn from_multipliers(multipliers: Vec<f64>) -> Result<Self, PricingError> {
        if multipliers.len() != SPOT_SERIES_HOURS {
            return Err(PricingError::InvalidCurve {
                reason: format!(
                    "spot series needs {SPOT_SERIES_HOURS} hourly multipliers, got {}",
                    multipliers.len()
                ),
            });
        }
        for &m in &multipliers {
            if !m.is_finite() || m <= 0.0 {
                return Err(PricingError::InvalidRate {
                    what: "spot multiplier".to_owned(),
                    value: m,
                });
            }
        }
        Ok(SpotPriceSeries { multipliers })
    }

    /// The hourly multipliers, in hour-of-day order.
    pub fn multipliers(&self) -> &[f64] {
        &self.multipliers
    }

    /// The multiplier in effect at simulation time `at` (the series
    /// repeats daily; negative times clamp to hour 0).
    pub fn multiplier_at(&self, at: SimTime) -> f64 {
        let hours = (at.as_secs() / 3600.0).max(0.0) as usize;
        self.multipliers[hours % SPOT_SERIES_HOURS]
    }
}

/// Spot-market terms for one machine type.
#[derive(Debug, Clone, PartialEq)]
pub struct SpotPrice {
    /// Base spot rate in $/hour (multiplied by the series).
    pub base_per_hour: f64,
    /// Daily multiplier walk applied to the base rate.
    pub series: SpotPriceSeries,
    /// Expected market reclaims per machine-hour on this type.
    pub eviction_rate_per_hour: f64,
    /// Hours of work lost (re-queue, reboot, warm-up) per reclaim,
    /// charged at the on-demand rate when computing the risk premium.
    pub interruption_overhead_hours: f64,
}

impl SpotPrice {
    /// The spot rate in effect at `at`, in $/hour.
    pub fn rate_at(&self, at: SimTime) -> f64 {
        self.base_per_hour * self.series.multiplier_at(at)
    }
}

/// The rates for one machine type.
#[derive(Debug, Clone, PartialEq)]
pub struct TypePrice {
    /// Guaranteed-capacity rate in $/hour.
    pub on_demand_per_hour: f64,
    /// Spot terms, for types the market offers interruptible capacity
    /// on; `None` means on-demand only.
    pub spot: Option<SpotPrice>,
}

/// A rate the planner should charge for one machine-hour, with the
/// market it came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateQuote {
    /// Risk-adjusted $/hour the LP should price this type at.
    pub dollars_per_hour: f64,
    /// `true` when the quote is spot capacity (risk premium included).
    pub spot: bool,
}

/// Per-machine-type price book, indexed by [`MachineTypeId`].
#[derive(Debug, Clone, PartialEq)]
pub struct PriceBook {
    rates: Vec<TypePrice>,
}

impl PriceBook {
    /// Builds a book from per-type rates (index = machine type id).
    ///
    /// # Errors
    ///
    /// Rejects non-finite or non-positive rates and overhead/eviction
    /// terms that are negative or non-finite.
    pub fn new(rates: Vec<TypePrice>) -> Result<Self, PricingError> {
        for ty in &rates {
            if !ty.on_demand_per_hour.is_finite() || ty.on_demand_per_hour <= 0.0 {
                return Err(PricingError::InvalidRate {
                    what: "on_demand_per_hour".to_owned(),
                    value: ty.on_demand_per_hour,
                });
            }
            if let Some(spot) = &ty.spot {
                if !spot.base_per_hour.is_finite() || spot.base_per_hour <= 0.0 {
                    return Err(PricingError::InvalidRate {
                        what: "spot base_per_hour".to_owned(),
                        value: spot.base_per_hour,
                    });
                }
                if !spot.eviction_rate_per_hour.is_finite() || spot.eviction_rate_per_hour < 0.0 {
                    return Err(PricingError::InvalidRate {
                        what: "eviction_rate_per_hour".to_owned(),
                        value: spot.eviction_rate_per_hour,
                    });
                }
                if !spot.interruption_overhead_hours.is_finite()
                    || spot.interruption_overhead_hours < 0.0
                {
                    return Err(PricingError::InvalidRate {
                        what: "interruption_overhead_hours".to_owned(),
                        value: spot.interruption_overhead_hours,
                    });
                }
            }
        }
        Ok(PriceBook { rates })
    }

    /// A deterministic book for `catalog`: on-demand rates follow a
    /// cloud-shaped tariff (a flat per-instance fee plus linear capacity
    /// and accelerator terms, so small machines carry a per-capacity
    /// premium), and every type except the smallest-capacity platforms
    /// gets a spot pool at a deep, seeded discount. This mirrors real
    /// menus, where big and accelerator nodes are the ones with
    /// interruptible pools.
    // Invariant: every generated rate below is positive and finite by
    // construction, so PriceBook::new cannot fail.
    #[allow(clippy::expect_used)]
    pub fn default_for(catalog: &MachineCatalog, seed: u64) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xB00C_B00C_B00C_B00C);
        let rates = catalog
            .iter()
            .map(|ty| {
                let cap = ty.capacity;
                let on_demand = 0.055 + 0.45 * cap.cpu + 0.20 * cap.mem + 0.30 * ty.accel_capacity;
                // Spot pools exist for the larger platforms only; tiny
                // instances are on-demand-only, like real menus.
                let spot = if cap.cpu >= 0.2 || ty.accel_capacity > 0.0 {
                    let discount = rng.range(0.26, 0.34);
                    Some(SpotPrice {
                        base_per_hour: on_demand * discount,
                        series: SpotPriceSeries::new(seed ^ ty.id.0 as u64),
                        eviction_rate_per_hour: rng.range(0.02, 0.08),
                        interruption_overhead_hours: 0.25,
                    })
                } else {
                    None
                };
                TypePrice { on_demand_per_hour: on_demand, spot }
            })
            .collect();
        PriceBook::new(rates).expect("generated rates are statically valid")
    }

    /// Number of machine types the book prices.
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// `true` when the book prices no types.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// The rates for one type, or `None` when out of range.
    pub fn get(&self, ty: MachineTypeId) -> Option<&TypePrice> {
        self.rates.get(ty.0)
    }

    /// The per-type rates in id order.
    pub fn rates(&self) -> &[TypePrice] {
        &self.rates
    }

    /// Checks the book covers every type of `catalog`.
    ///
    /// # Errors
    ///
    /// Returns [`PricingError::CatalogMismatch`] when lengths differ.
    pub fn check_covers(&self, catalog: &MachineCatalog) -> Result<(), PricingError> {
        if self.rates.len() != catalog.len() {
            return Err(PricingError::CatalogMismatch {
                book_types: self.rates.len(),
                catalog_types: catalog.len(),
            });
        }
        Ok(())
    }

    /// The on-demand rate for `ty` in $/hour (0 when out of range —
    /// unpriced types cost nothing, which accounting treats as owned
    /// hardware).
    pub fn on_demand_rate(&self, ty: MachineTypeId) -> f64 {
        self.get(ty).map_or(0.0, |t| t.on_demand_per_hour)
    }

    /// The raw spot rate for `ty` at `at`, when a spot pool exists.
    pub fn spot_rate(&self, ty: MachineTypeId, at: SimTime) -> Option<f64> {
        self.get(ty).and_then(|t| t.spot.as_ref()).map(|s| s.rate_at(at))
    }

    /// The accounting rate a machine-hour of `ty` costs at `at` under
    /// `policy`: on-demand, or the cheaper of on-demand and spot when
    /// the policy may use the spot pool.
    pub fn market_rate(&self, ty: MachineTypeId, at: SimTime, policy: MarketPolicy) -> f64 {
        let od = self.on_demand_rate(ty);
        match policy {
            MarketPolicy::OnDemandOnly => od,
            MarketPolicy::SpotAware => match self.spot_rate(ty, at) {
                Some(spot) => od.min(spot),
                None => od,
            },
        }
    }

    /// The planning rate for the LP: like [`Self::market_rate`], but
    /// spot capacity carries a risk premium — the expected reclaims per
    /// hour times the interruption overhead, charged at the on-demand
    /// rate (the cost of re-running lost work on reliable capacity).
    pub fn planning_rate(&self, ty: MachineTypeId, at: SimTime, policy: MarketPolicy) -> RateQuote {
        let od = self.on_demand_rate(ty);
        let od_quote = RateQuote { dollars_per_hour: od, spot: false };
        if policy == MarketPolicy::OnDemandOnly {
            return od_quote;
        }
        let Some(spot) = self.get(ty).and_then(|t| t.spot.as_ref()) else {
            return od_quote;
        };
        let risky =
            spot.rate_at(at) + spot.eviction_rate_per_hour * spot.interruption_overhead_hours * od;
        if risky < od {
            RateQuote { dollars_per_hour: risky, spot: true }
        } else {
            od_quote
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_model::SimDuration;

    #[test]
    fn series_is_seeded_bounded_and_daily() {
        let a = SpotPriceSeries::new(7);
        let b = SpotPriceSeries::new(7);
        assert_eq!(a, b);
        assert_ne!(a, SpotPriceSeries::new(8));
        assert_eq!(a.multipliers().len(), SPOT_SERIES_HOURS);
        for &m in a.multipliers() {
            assert!((0.7..=1.6).contains(&m));
        }
        let day = SimTime::ZERO + SimDuration::from_hours(24.0);
        assert_eq!(a.multiplier_at(SimTime::ZERO), a.multiplier_at(day));
        assert_eq!(
            a.multiplier_at(SimTime::from_secs(3600.0 * 3.5)),
            a.multipliers()[3]
        );
    }

    #[test]
    fn default_book_covers_catalog_with_sane_economics() {
        let catalog = harmony_model::MachineCatalog::table2_with_accel();
        let book = PriceBook::default_for(&catalog, 2013);
        assert!(book.check_covers(&catalog).is_ok());
        assert_eq!(book, PriceBook::default_for(&catalog, 2013));
        // The R210 is on-demand-only; big and GPU platforms have spot.
        assert!(book.get(MachineTypeId(0)).unwrap().spot.is_none());
        for i in 1..catalog.len() {
            assert!(book.get(MachineTypeId(i)).unwrap().spot.is_some(), "type {i}");
        }
        // Per-CPU-capacity, the smallest platform is the priciest: the
        // flat instance fee dominates its tiny capacity.
        let per_cpu = |i: usize| {
            book.on_demand_rate(MachineTypeId(i)) / catalog.machine_type(MachineTypeId(i)).capacity.cpu
        };
        for i in 1..4 {
            assert!(per_cpu(0) > per_cpu(i), "R210 premium vs type {i}");
        }
        // Spot undercuts on-demand even with the risk premium.
        let quote = book.planning_rate(MachineTypeId(3), SimTime::ZERO, MarketPolicy::SpotAware);
        assert!(quote.spot);
        assert!(quote.dollars_per_hour < book.on_demand_rate(MachineTypeId(3)));
    }

    #[test]
    fn market_and_planning_rates_respect_policy() {
        let catalog = harmony_model::MachineCatalog::table2();
        let book = PriceBook::default_for(&catalog, 9);
        let ty = MachineTypeId(3);
        let at = SimTime::from_secs(7200.0);
        let od = book.market_rate(ty, at, MarketPolicy::OnDemandOnly);
        assert_eq!(od, book.on_demand_rate(ty));
        assert!(book.market_rate(ty, at, MarketPolicy::SpotAware) <= od);
        let q = book.planning_rate(ty, at, MarketPolicy::OnDemandOnly);
        assert!(!q.spot);
        assert_eq!(q.dollars_per_hour, od);
        // Planning never quotes below the raw spot rate (the premium is
        // non-negative) and never above on-demand.
        let sq = book.planning_rate(ty, at, MarketPolicy::SpotAware);
        assert!(sq.dollars_per_hour >= book.spot_rate(ty, at).unwrap());
        assert!(sq.dollars_per_hour <= od);
        // Out-of-range types are unpriced (owned hardware).
        assert_eq!(book.on_demand_rate(MachineTypeId(99)), 0.0);
        assert!(book.spot_rate(MachineTypeId(99), at).is_none());
    }

    #[test]
    fn validation_rejects_bad_rates() {
        assert!(PriceBook::new(vec![TypePrice { on_demand_per_hour: 0.0, spot: None }]).is_err());
        assert!(PriceBook::new(vec![TypePrice {
            on_demand_per_hour: f64::NAN,
            spot: None
        }])
        .is_err());
        let bad_spot = TypePrice {
            on_demand_per_hour: 1.0,
            spot: Some(SpotPrice {
                base_per_hour: -0.1,
                series: SpotPriceSeries::flat(),
                eviction_rate_per_hour: 0.05,
                interruption_overhead_hours: 0.25,
            }),
        };
        assert!(PriceBook::new(vec![bad_spot]).is_err());
        assert!(SpotPriceSeries::from_multipliers(vec![1.0; 3]).is_err());
        assert!(SpotPriceSeries::from_multipliers(vec![0.0; SPOT_SERIES_HOURS]).is_err());
        assert!(SpotPriceSeries::from_multipliers(vec![1.1; SPOT_SERIES_HOURS]).is_ok());
    }
}

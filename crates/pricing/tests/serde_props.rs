//! Property-based serde round-trips for the pricing types: any book,
//! series, or curve the constructors accept must survive a trip through
//! the JSON value model bit-for-bit, and the validating deserializers
//! must reject what the constructors reject.

use harmony_pricing::{
    MarketPolicy, PriceBook, SloCostCurve, SpotMarket, SpotPrice, SpotPriceSeries, TypePrice,
};
use proptest::prelude::*;
use serde::value::Value;
use serde::{Deserialize, Serialize};

fn arb_series() -> impl Strategy<Value = SpotPriceSeries> {
    proptest::collection::vec(0.7..1.6f64, 24).prop_map(|m| {
        SpotPriceSeries::from_multipliers(m).expect("strategy generates valid multipliers")
    })
}

fn arb_spot() -> impl Strategy<Value = SpotPrice> {
    (0.01..2.0f64, arb_series(), 0.0..0.5f64, 0.0..2.0f64).prop_map(
        |(base, series, evict, overhead)| SpotPrice {
            base_per_hour: base,
            series,
            eviction_rate_per_hour: evict,
            interruption_overhead_hours: overhead,
        },
    )
}

fn arb_type_price() -> impl Strategy<Value = TypePrice> {
    (0.01..5.0f64, any::<bool>(), arb_spot()).prop_map(|(od, has_spot, spot)| TypePrice {
        on_demand_per_hour: od,
        spot: has_spot.then_some(spot),
    })
}

fn arb_book() -> impl Strategy<Value = PriceBook> {
    proptest::collection::vec(arb_type_price(), 1..6)
        .prop_map(|rates| PriceBook::new(rates).expect("strategy generates valid rates"))
}

fn arb_curve() -> impl Strategy<Value = SloCostCurve> {
    (0.01..1.0f64, 0.0..2.0f64, 0.0..1.0f64).prop_map(|(frac, a, b)| {
        let (critical, tail) = if a >= a * b { (a, a * b) } else { (a * b, a) };
        SloCostCurve::new(frac, critical, tail).expect("strategy generates concave curves")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn price_book_round_trips(book in arb_book()) {
        let text = serde_json::to_string(&book).unwrap();
        let back: PriceBook = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(back, book);
    }

    #[test]
    fn spot_series_round_trips(series in arb_series()) {
        let back = SpotPriceSeries::from_value(&series.to_value()).unwrap();
        prop_assert_eq!(back, series);
    }

    #[test]
    fn slo_curve_round_trips(curve in arb_curve()) {
        let text = serde_json::to_string(&curve).unwrap();
        let back: SloCostCurve = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(back, curve);
    }

    /// Seeds round-trip exactly across the f64-backed JSON number
    /// model (hence the 2^53 bound — the same bound every seed in the
    /// workspace's artifacts respects).
    #[test]
    fn spot_market_round_trips(seed in 0u64..(1 << 53)) {
        let market = SpotMarket::new(seed);
        let back = SpotMarket::from_value(&market.to_value()).unwrap();
        prop_assert_eq!(back, market);
    }

    /// Deserialization is the validating kind: flipping a curve into a
    /// convex shape or zeroing a rate must fail, never produce a struct
    /// the constructor would have rejected.
    #[test]
    fn corrupted_values_rejected(curve in arb_curve(), bump in 0.01..1.0f64) {
        let mut v = curve.to_value();
        if let Value::Object(map) = &mut v {
            map.insert(
                "tail_per_hour".to_owned(),
                Value::Number(curve.critical_per_hour + bump),
            );
        }
        prop_assert!(SloCostCurve::from_value(&v).is_err());
    }
}

#[test]
fn market_policy_names_are_stable() {
    // Artifact readers key on these strings; changing them is a schema
    // change, not a refactor.
    assert_eq!(MarketPolicy::OnDemandOnly.name(), "on-demand");
    assert_eq!(MarketPolicy::SpotAware.name(), "spot-aware");
}

//! Resume test: a fault-scenario replay interrupted partway through and
//! resumed from its checkpoint must produce bit-identical `SimReport`s
//! to an uninterrupted run.

use std::path::PathBuf;

use harmony_bench::checkpoint::{self, ReplayInputs, ResumableRun};
use harmony_sim::SimReport;
use harmony_trace::{TraceConfig, TraceGenerator};
use serde::Serialize;

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("harmony-replay-ckpt-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Serialized form — the strictest equality we can assert.
fn fingerprint(reports: &[(harmony::pipeline::Variant, SimReport)]) -> Vec<String> {
    reports
        .iter()
        .map(|(v, r)| {
            format!(
                "{}:{}",
                v.name(),
                serde_json::to_string(&r.to_value()).unwrap()
            )
        })
        .collect()
}

#[test]
fn interrupted_replay_resumes_bit_identically() {
    let dir = temp_dir("resume");
    let trace_path = dir.join("trace.jsonl");
    let trace = TraceGenerator::new(TraceConfig::small().with_seed(5)).generate();
    let mut file = std::fs::File::create(&trace_path).expect("create trace file");
    trace.write_jsonl(&mut file).expect("write trace");
    drop(file);

    let inputs = ReplayInputs {
        scenario: "mixed".to_owned(),
        fault_seed: 7,
        trace_path: Some(trace_path.to_str().expect("utf-8 path").to_owned()),
        trace_format: "jsonl".to_owned(),
        trace_hash: None,
        scale: "quick".to_owned(),
        workload_seed: 2013,
        catalog: "table2".to_owned(),
        catalog_scale: 100,
        period_mins: 15.0,
    };

    // Reference: run all variants in one go.
    let mut reference = ResumableRun::from_inputs(inputs.clone()).expect("build reference run");
    while !reference.is_done() {
        reference.run_next().expect("reference variant");
    }

    // Interrupted: run one variant, checkpoint to disk, drop everything.
    let ckpt_path = dir.join("replay.ckpt.json");
    let mut interrupted = ResumableRun::from_inputs(inputs).expect("build interrupted run");
    interrupted.run_next().expect("first variant");
    checkpoint::save_atomic(&interrupted.checkpoint(), &ckpt_path).expect("save checkpoint");
    assert!(
        !dir.join("replay.ckpt.json.tmp").exists(),
        "tmp renamed away"
    );
    drop(interrupted);

    // Resume from the file and finish.
    let loaded = checkpoint::load(&ckpt_path).expect("load checkpoint");
    let mut resumed = ResumableRun::from_checkpoint(loaded).expect("resume");
    assert_eq!(resumed.completed().len(), 1, "one variant restored");
    assert_eq!(resumed.remaining().len(), 2, "two variants left");
    while !resumed.is_done() {
        resumed.run_next().expect("resumed variant");
    }

    assert_eq!(
        fingerprint(resumed.completed()),
        fingerprint(reference.completed()),
        "resumed reports must be bit-identical to the uninterrupted run"
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn resume_rejects_a_swapped_trace_file() {
    let dir = temp_dir("swap");
    let trace_path = dir.join("trace.jsonl");
    let trace = TraceGenerator::new(TraceConfig::small().with_seed(5)).generate();
    trace
        .write_jsonl(std::fs::File::create(&trace_path).expect("create trace file"))
        .expect("write trace");

    let inputs = ReplayInputs {
        scenario: "crash-storm".to_owned(),
        fault_seed: 7,
        trace_path: Some(trace_path.to_str().expect("utf-8 path").to_owned()),
        trace_format: "jsonl".to_owned(),
        trace_hash: None,
        scale: "quick".to_owned(),
        workload_seed: 2013,
        catalog: "table2".to_owned(),
        catalog_scale: 100,
        period_mins: 15.0,
    };
    let run = ResumableRun::from_inputs(inputs).expect("build run");
    let saved = run.checkpoint();
    drop(run);

    // Swap the trace file underneath the checkpoint.
    let other = TraceGenerator::new(TraceConfig::small().with_seed(6)).generate();
    other
        .write_jsonl(std::fs::File::create(&trace_path).expect("recreate trace file"))
        .expect("write trace");

    let err = ResumableRun::from_checkpoint(saved).expect_err("hash mismatch");
    assert!(err.contains("changed since the checkpoint"), "{err}");
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

//! Machine-readable benchmark output.
//!
//! Benchmarks print human-readable tables on stdout; this module gives
//! them a parallel `results/BENCH_<name>.json` artifact so plots and CI
//! checks can consume the same numbers without screen-scraping. Files
//! are written atomically (`<path>.tmp` + rename) so a killed benchmark
//! never leaves a torn artifact.
//!
//! Every artifact carries a provenance header: `schema_version` (bumped
//! whenever the artifact layout changes incompatibly) and `git_rev`
//! (`git describe --always --dirty`, or `"unknown"` outside a work
//! tree) so downstream plots can tell which code produced a file.

use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::OnceLock;

use serde::value::Value;
use serde::Serialize;

/// Version of the BENCH_*.json artifact layout. Bump when the header or
/// row shape changes incompatibly.
pub const SCHEMA_VERSION: u64 = 2;

/// `git describe --always --dirty` of the producing tree, cached for
/// the process lifetime; `"unknown"` when git or the repo is absent.
pub fn git_describe() -> &'static str {
    static DESCRIBE: OnceLock<String> = OnceLock::new();
    DESCRIBE.get_or_init(|| {
        std::process::Command::new("git")
            .args(["describe", "--always", "--dirty"])
            .output()
            .ok()
            .filter(|out| out.status.success())
            .and_then(|out| String::from_utf8(out.stdout).ok())
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_owned())
    })
}

/// Where JSON artifacts land: `$HARMONY_RESULTS_DIR`, or `results/`
/// relative to the working directory.
pub fn results_dir() -> PathBuf {
    std::env::var("HARMONY_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Builds a JSON object from `(key, value)` pairs, in the given order.
pub fn object(fields: &[(&str, Value)]) -> Value {
    let mut map = std::collections::BTreeMap::new();
    for (k, v) in fields {
        map.insert((*k).to_owned(), v.clone());
    }
    Value::Object(map)
}

/// Stamps the provenance header (`schema_version`, `git_rev`) into a
/// top-level JSON object. Existing keys are left untouched so a payload
/// that pins its own provenance wins; non-object payloads pass through
/// unchanged.
fn stamp_header(v: &mut Value) {
    if let Value::Object(map) = v {
        map.entry("schema_version".to_owned())
            .or_insert_with(|| Value::Number(SCHEMA_VERSION as f64));
        map.entry("git_rev".to_owned())
            .or_insert_with(|| Value::String(git_describe().to_owned()));
    }
}

/// Writes `results/BENCH_<name>.json` atomically and returns its path.
///
/// Top-level JSON objects get the provenance header stamped in (see
/// [`SCHEMA_VERSION`] and [`git_describe`]).
///
/// # Errors
///
/// Propagates directory-creation and write failures.
pub fn write_bench_json<T: Serialize>(name: &str, payload: &T) -> io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    let mut value = payload.to_value();
    stamp_header(&mut value);
    let text = serde_json::to_string_pretty(&value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = dir.join(format!("BENCH_{name}.json.tmp"));
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_lands_atomically() {
        let dir = std::env::temp_dir().join(format!("harmony-json-test-{}", std::process::id()));
        // The target directory is taken from the environment by
        // results_dir(); emulate that here without mutating the global
        // process environment.
        std::fs::create_dir_all(&dir).unwrap();
        let payload = object(&[
            ("answer", Value::Number(42.0)),
            ("name", Value::String("fault_scenarios".to_owned())),
        ]);
        // Exercise the serialization path write_bench_json uses,
        // including the provenance header it stamps in.
        let mut value = payload.to_value();
        stamp_header(&mut value);
        let text = serde_json::to_string_pretty(&value).unwrap();
        assert!(text.contains("\"answer\":42"), "{text}");
        assert!(text.contains("\"schema_version\":2"), "{text}");
        assert!(text.contains("\"git_rev\""), "{text}");
        let parsed: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, value);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_stamp_never_overwrites_payload_keys() {
        let mut v = object(&[
            ("schema_version", Value::Number(1.0)),
            ("git_rev", Value::String("pinned".to_owned())),
        ]);
        stamp_header(&mut v);
        let Value::Object(map) = &v else {
            panic!("object expected")
        };
        assert_eq!(map["schema_version"], Value::Number(1.0));
        assert_eq!(map["git_rev"], Value::String("pinned".to_owned()));
    }

    #[test]
    fn git_describe_is_cached_and_nonempty() {
        let a = git_describe();
        assert!(!a.is_empty());
        assert_eq!(a, git_describe());
    }
}

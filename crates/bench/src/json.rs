//! Machine-readable benchmark output.
//!
//! Benchmarks print human-readable tables on stdout; this module gives
//! them a parallel `results/BENCH_<name>.json` artifact so plots and CI
//! checks can consume the same numbers without screen-scraping. Files
//! are written atomically (`<path>.tmp` + rename) so a killed benchmark
//! never leaves a torn artifact.

use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;

use serde::value::Value;
use serde::Serialize;

/// Where JSON artifacts land: `$HARMONY_RESULTS_DIR`, or `results/`
/// relative to the working directory.
pub fn results_dir() -> PathBuf {
    std::env::var("HARMONY_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Builds a JSON object from `(key, value)` pairs, in the given order.
pub fn object(fields: &[(&str, Value)]) -> Value {
    let mut map = std::collections::BTreeMap::new();
    for (k, v) in fields {
        map.insert((*k).to_owned(), v.clone());
    }
    Value::Object(map)
}

/// Writes `results/BENCH_<name>.json` atomically and returns its path.
///
/// # Errors
///
/// Propagates directory-creation and write failures.
pub fn write_bench_json<T: Serialize>(name: &str, payload: &T) -> io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    let text = serde_json::to_string_pretty(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = dir.join(format!("BENCH_{name}.json.tmp"));
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_json_lands_atomically() {
        let dir = std::env::temp_dir().join(format!("harmony-json-test-{}", std::process::id()));
        // The target directory is taken from the environment by
        // results_dir(); emulate that here without mutating the global
        // process environment.
        std::fs::create_dir_all(&dir).unwrap();
        let payload = object(&[
            ("answer", Value::Number(42.0)),
            ("name", Value::String("fault_scenarios".to_owned())),
        ]);
        // Exercise the serialization path write_bench_json uses.
        let text = serde_json::to_string_pretty(&payload).unwrap();
        assert!(text.contains("\"answer\":42"), "{text}");
        let parsed: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed, payload);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

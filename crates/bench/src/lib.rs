//! Shared harness for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the index) and prints the same rows or
//! series the paper plots. Common knobs:
//!
//! * `HARMONY_SCALE` — trace/cluster scale preset: `quick` (CI-sized),
//!   `default`, or `full` (the 29-day trace; minutes of runtime).
//! * `HARMONY_SEED` — RNG seed override.
//!
//! Output is tab-separated so it can be piped straight into a plotting
//! tool.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod checkpoint;
pub mod json;

use harmony::classify::ClassifierConfig;
use harmony::HarmonyConfig;
use harmony_model::{MachineCatalog, SimDuration};
use harmony_trace::{Trace, TraceConfig, TraceGenerator};

/// Experiment scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long runs for CI and smoke tests.
    Quick,
    /// The default laptop-scale configuration.
    Default,
    /// The full 29-day analysis window.
    Full,
}

impl Scale {
    /// Reads the scale from `HARMONY_SCALE` (`quick`/`default`/`full`),
    /// defaulting to [`Scale::Default`].
    pub fn from_env() -> Self {
        Self::parse(&std::env::var("HARMONY_SCALE").unwrap_or_default()).unwrap_or(Scale::Default)
    }

    /// Parses a preset name (`quick`/`default`/`full`), case-insensitive.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_lowercase().as_str() {
            "quick" => Some(Scale::Quick),
            "default" | "" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// The preset's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Default => "default",
            Scale::Full => "full",
        }
    }
}

/// Seed from `HARMONY_SEED`, defaulting to 2013 (the trace default).
pub fn seed_from_env() -> u64 {
    std::env::var("HARMONY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2013)
}

/// The workload-analysis trace (Section III / Figs. 1–7): the synthetic
/// 29-day Google-like trace, shortened per scale.
pub fn analysis_trace(scale: Scale) -> Trace {
    let config = match scale {
        Scale::Quick => TraceConfig::google_like().with_span(SimDuration::from_hours(6.0)),
        Scale::Default => TraceConfig::google_like().with_span(SimDuration::from_days(7.0)),
        Scale::Full => TraceConfig::google_like(),
    }
    .with_seed(seed_from_env());
    TraceGenerator::new(config).generate()
}

/// The closed-loop evaluation setup (Section IX / Figs. 19–26): trace,
/// catalog, controller and classifier configuration.
pub fn evaluation_setup(scale: Scale) -> (Trace, MachineCatalog, HarmonyConfig, ClassifierConfig) {
    evaluation_setup_seeded(scale, seed_from_env())
}

/// [`evaluation_setup`] with an explicit workload seed, for callers that
/// must reproduce a run independently of the environment (e.g. replay
/// checkpoints).
pub fn evaluation_setup_seeded(
    scale: Scale,
    seed: u64,
) -> (Trace, MachineCatalog, HarmonyConfig, ClassifierConfig) {
    // Catalog divisors keep peak concurrent demand near ~65-70% of
    // cluster capacity, the regime where provisioning choices matter
    // (measured: ~26 cpu units at 4 h, ~133 at 1 day, ~201 at 3 days).
    let (span, catalog_divisor, control_mins) = match scale {
        Scale::Quick => (SimDuration::from_hours(4.0), 50, 15.0),
        Scale::Default => (SimDuration::from_days(1.0), 10, 15.0),
        Scale::Full => (SimDuration::from_days(3.0), 7, 10.0),
    };
    let trace =
        TraceGenerator::new(TraceConfig::evaluation().with_span(span).with_seed(seed)).generate();
    let catalog = MachineCatalog::table2().scaled(catalog_divisor);
    let harmony_config = HarmonyConfig {
        control_period: SimDuration::from_mins(control_mins),
        horizon: 4,
        ..Default::default()
    };
    let classifier_config = ClassifierConfig::default();
    (trace, catalog, harmony_config, classifier_config)
}

/// Prints a section header.
pub fn section(title: &str) {
    println!("\n== {title} ==");
}

/// Prints a tab-separated table with a header row.
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    println!("{}", headers.join("\t"));
    for row in rows {
        println!("{}", row.join("\t"));
    }
}

/// Formats a float compactly.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_values() {
        // Uses the parse logic directly rather than mutating the global
        // environment.
        assert_eq!(Scale::from_env(), Scale::Default);
    }

    #[test]
    fn quick_setups_are_small() {
        let trace = analysis_trace(Scale::Quick);
        assert!(!trace.is_empty());
        assert!(trace.span() <= SimDuration::from_hours(6.0));
        let (trace, catalog, config, _) = evaluation_setup(Scale::Quick);
        assert!(!trace.is_empty());
        assert!(catalog.total_machines() <= 250);
        config.validate().unwrap();
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.5), "1234");
        assert_eq!(fmt(4.56789), "4.57");
        assert_eq!(fmt(0.012345), "0.0123");
    }
}

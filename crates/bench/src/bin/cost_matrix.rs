//! Cost matrix: scenario × variant × objective dollar comparison.
//!
//! Runs the closed-loop evaluation over a grid of scenarios (steady
//! Poisson arrivals, correlated batch arrivals, and a spot-market
//! cluster with an accelerator pool under reclaim faults), controller
//! variants (Baseline, CBS, CBP), and provisioning objectives (energy,
//! dollars on-demand-only, dollars spot-aware). Every run is billed
//! post hoc by one uniform cost model — machine-hours at the market
//! rate the objective was allowed to buy, plus scheduling-delay hours
//! at each priority group's SLO rate — so the grid compares what the
//! operator actually pays, not what the LP believed.
//!
//! Within a scenario the trace and fault plan are fixed: objectives
//! differ only in what the provisioning LP prices, never in the
//! workload or the faults it faces.
//!
//! Asserted in-process on the spot+accelerator scenario: the
//! spot-aware dollar objective must beat the energy objective on total
//! dollars for CBS while still attaining the production delay SLO —
//! P95 scheduling delay (the metric the fault-scenario bench also keys
//! on) within one control period, or within whatever the energy
//! objective itself manages if that is worse. Repeating a cell must
//! reproduce its report byte for byte.
//!
//! `--quick` (or `HARMONY_SCALE=quick`) shrinks the grid to CI-smoke
//! size. Honors `HARMONY_SEED`. Writes `results/BENCH_cost_matrix.json`
//! (see [`harmony_bench::json`]).

use harmony::classify::{ClassifierConfig, TaskClassifier};
use harmony::pipeline::{run_variant_priced, Variant};
use harmony::{CbsObjective, DollarCosts, HarmonyConfig};
use harmony_bench::json::{object, write_bench_json};
use harmony_bench::{fmt, section, seed_from_env, table, Scale};
use harmony_model::{
    MachineCatalog, MachineTypeId, PriorityGroup, SimDuration,
};
use harmony_pricing::{MarketPolicy, PriceBook, SloCostCurve, SpotMarket};
use harmony_sim::{FaultPlan, SimReport};
use harmony_trace::{BatchArrivalConfig, Trace, TraceConfig, TraceGenerator};
use serde::value::Value;

/// The three objective columns of the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Objective {
    Energy,
    DollarsOnDemand,
    DollarsSpot,
}

impl Objective {
    const ALL: [Objective; 3] =
        [Objective::Energy, Objective::DollarsOnDemand, Objective::DollarsSpot];

    fn name(self) -> &'static str {
        match self {
            Objective::Energy => "energy",
            Objective::DollarsOnDemand => "dollars-ondemand",
            Objective::DollarsSpot => "dollars-spot",
        }
    }

    /// What the operator is allowed to buy under this objective — the
    /// billing policy of the uniform cost model.
    fn billing(self) -> MarketPolicy {
        match self {
            // An energy-minimizing operator has no spot program.
            Objective::Energy | Objective::DollarsOnDemand => MarketPolicy::OnDemandOnly,
            Objective::DollarsSpot => MarketPolicy::SpotAware,
        }
    }

    fn build(
        self,
        catalog: &MachineCatalog,
        groups: &[PriorityGroup],
        seed: u64,
    ) -> CbsObjective {
        match self {
            Objective::Energy => CbsObjective::Energy,
            Objective::DollarsOnDemand => CbsObjective::Dollars(DollarCosts::default_for(
                catalog,
                groups,
                MarketPolicy::OnDemandOnly,
                seed,
            )),
            Objective::DollarsSpot => CbsObjective::Dollars(DollarCosts::default_for(
                catalog,
                groups,
                MarketPolicy::SpotAware,
                seed,
            )),
        }
    }
}

struct Scenario {
    name: &'static str,
    trace: Trace,
    catalog: MachineCatalog,
    faults: Option<FaultPlan>,
}

/// The evaluation grid. Span and catalog divisor mirror
/// `harmony_bench::evaluation_setup_seeded` so the steady scenario is
/// the familiar Fig. 21–26 workload.
fn scenarios(scale: Scale, seed: u64, price_seed: u64) -> Vec<Scenario> {
    let (span, divisor) = match scale {
        Scale::Quick => (SimDuration::from_hours(4.0), 50),
        Scale::Default => (SimDuration::from_days(1.0), 10),
        Scale::Full => (SimDuration::from_days(3.0), 7),
    };
    let base = TraceConfig::evaluation().with_span(span).with_seed(seed);
    let steady = TraceGenerator::new(base.clone()).generate();
    let batch = TraceGenerator::new(base.with_batches(BatchArrivalConfig::gratis_default()))
        .generate();
    let table2 = MachineCatalog::table2().scaled(divisor);
    let accel = MachineCatalog::table2_with_accel().scaled(divisor);
    let book = PriceBook::default_for(&accel, price_seed);
    let reclaims = SpotMarket::new(price_seed).eviction_plan(&book, &accel, span);
    vec![
        Scenario { name: "steady", trace: steady.clone(), catalog: table2.clone(), faults: None },
        Scenario { name: "batch-arrivals", trace: batch, catalog: table2, faults: None },
        Scenario { name: "spot-accel", trace: steady, catalog: accel, faults: Some(reclaims) },
    ]
}

/// One run's post-hoc bill.
struct Bill {
    rental_dollars: f64,
    spot_rental_dollars: f64,
    slo_dollars: f64,
    prod_attainment: f64,
    prod_p95_delay_s: f64,
}

impl Bill {
    fn total(&self) -> f64 {
        self.rental_dollars + self.slo_dollars
    }
}

/// Bills a finished run: active machine-hours at the market rate the
/// objective could buy, integrated over the sampled series, plus
/// delay-hours at each group's critical SLO rate. Identical across
/// variants and objectives except for the billing policy, so rows are
/// comparable.
fn account(report: &SimReport, book: &PriceBook, billing: MarketPolicy) -> Bill {
    let mut rental = 0.0;
    let mut spot_rental = 0.0;
    for w in report.series.windows(2) {
        let dt_hours = (w[1].time.as_secs() - w[0].time.as_secs()) / 3600.0;
        for (m, &count) in w[0].active_per_type.iter().enumerate() {
            let ty = MachineTypeId(m);
            let rate = book.market_rate(ty, w[0].time, billing);
            let cost = count as f64 * rate * dt_hours;
            rental += cost;
            if billing == MarketPolicy::SpotAware && rate < book.on_demand_rate(ty) {
                spot_rental += cost;
            }
        }
    }
    let mut slo = 0.0;
    for group in PriorityGroup::ALL {
        let curve = SloCostCurve::default_for_group(group);
        let delay_hours: f64 =
            report.delays_by_group[group.index()].iter().sum::<f64>() / 3600.0;
        slo += delay_hours * curve.critical_per_hour;
    }
    let prod = report.delay_stats(PriorityGroup::Production);
    Bill {
        rental_dollars: rental,
        spot_rental_dollars: spot_rental,
        slo_dollars: slo,
        prod_attainment: prod.immediate_fraction,
        prod_p95_delay_s: prod.p95,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::from_env() };
    let seed = seed_from_env();
    let price_seed = seed;
    let classifier_config = ClassifierConfig::default();
    let control_mins = match scale {
        Scale::Quick | Scale::Default => 15.0,
        Scale::Full => 10.0,
    };
    let config = HarmonyConfig {
        control_period: SimDuration::from_mins(control_mins),
        horizon: 4,
        ..Default::default()
    };

    let mut json_rows = Vec::new();
    // (total dollars, production p95 delay) for the CBS cells of the
    // spot-accel scenario, by objective — the asserted comparison.
    let mut cbs_spot_cells: Vec<(Objective, f64, f64)> = Vec::new();

    for scenario in scenarios(scale, seed, price_seed) {
        let book = PriceBook::default_for(&scenario.catalog, price_seed);
        let classifier = TaskClassifier::fit(scenario.trace.tasks(), &classifier_config)
            .expect("classifier fit");
        let groups: Vec<PriorityGroup> =
            classifier.classes().iter().map(|c| c.group).collect();
        section(&format!(
            "scenario: {} ({} tasks, {} machines{})",
            scenario.name,
            scenario.trace.len(),
            scenario.catalog.total_machines(),
            scenario
                .faults
                .as_ref()
                .map(|p| format!(", {} reclaim events", p.events().len()))
                .unwrap_or_default(),
        ));
        let mut rows = Vec::new();
        for variant in Variant::ALL {
            // The baseline has no provisioning LP: it is objective-blind,
            // so one energy-billed row represents it.
            let objectives: &[Objective] =
                if variant == Variant::Baseline { &[Objective::Energy] } else { &Objective::ALL };
            for &objective in objectives {
                let built = objective.build(&scenario.catalog, &groups, price_seed);
                let report = run_variant_priced(
                    &scenario.trace,
                    &scenario.catalog,
                    &config,
                    &classifier_config,
                    variant,
                    scenario.faults.as_ref(),
                    &built,
                )
                .unwrap_or_else(|e| {
                    panic!("{}/{}/{}: {e}", scenario.name, variant.name(), objective.name())
                });
                let bill = account(&report, &book, objective.billing());
                if scenario.name == "spot-accel" && variant == Variant::Cbs {
                    cbs_spot_cells.push((objective, bill.total(), bill.prod_p95_delay_s));
                }
                rows.push(vec![
                    variant.name().to_owned(),
                    objective.name().to_owned(),
                    fmt(bill.rental_dollars),
                    fmt(bill.slo_dollars),
                    fmt(bill.total()),
                    fmt(if bill.rental_dollars > 0.0 {
                        bill.spot_rental_dollars / bill.rental_dollars
                    } else {
                        0.0
                    }),
                    fmt(bill.prod_attainment),
                    fmt(report.total_energy_wh / 1000.0),
                ]);
                json_rows.push(object(&[
                    ("scenario", Value::String(scenario.name.to_owned())),
                    ("variant", Value::String(variant.name().to_owned())),
                    ("objective", Value::String(objective.name().to_owned())),
                    ("rental_dollars", Value::Number(bill.rental_dollars)),
                    ("spot_rental_dollars", Value::Number(bill.spot_rental_dollars)),
                    ("slo_dollars", Value::Number(bill.slo_dollars)),
                    ("total_dollars", Value::Number(bill.total())),
                    ("prod_immediate_fraction", Value::Number(bill.prod_attainment)),
                    ("prod_p95_delay_s", Value::Number(bill.prod_p95_delay_s)),
                    ("energy_kwh", Value::Number(report.total_energy_wh / 1000.0)),
                    ("energy_cost_dollars", Value::Number(report.energy_cost_dollars)),
                    ("tasks_completed", Value::Number(report.tasks_completed as f64)),
                    ("tasks_failed", Value::Number(report.tasks_failed as f64)),
                ]));
            }
        }
        table(
            &[
                "variant",
                "objective",
                "rental_$",
                "slo_$",
                "total_$",
                "spot_share",
                "prod_attain",
                "energy_kWh",
            ],
            &rows,
        );
    }

    // The headline claim: on the spot+accelerator scenario, pricing the
    // LP in dollars must beat pricing it in energy — strictly cheaper,
    // without sacrificing production SLO attainment.
    let cell = |objective: Objective| {
        cbs_spot_cells
            .iter()
            .find(|(o, _, _)| *o == objective)
            .copied()
            .unwrap_or_else(|| panic!("missing CBS spot-accel cell for {}", objective.name()))
    };
    let (_, energy_total, energy_p95) = cell(Objective::Energy);
    let (_, spot_total, spot_p95) = cell(Objective::DollarsSpot);
    assert!(
        spot_total < energy_total,
        "dollar objective must beat energy on total cost: ${spot_total:.2} vs ${energy_total:.2}"
    );
    // SLO attainment is the production tail delay — the same P95
    // scheduling-delay metric the fault-scenario bench keys on. The
    // delay target is one control period: the controller only places
    // capacity at period boundaries, so sub-period P95 means production
    // demand is absorbed by the very next plan. The dollar objective
    // must attain whatever the energy objective attains — a fleet that
    // costs 4-5x as much in rental is allowed to shave seconds inside
    // the target, but not to define the bar.
    let slo_target_s = SimDuration::from_mins(control_mins).as_secs();
    let p95_bound = energy_p95.max(slo_target_s);
    assert!(
        spot_p95 <= p95_bound + 1e-9,
        "dollar objective may not sacrifice the production delay SLO: \
         p95 {spot_p95:.1}s vs bound {p95_bound:.1}s (energy {energy_p95:.1}s, \
         target {slo_target_s:.0}s)"
    );
    println!(
        "\nspot-accel CBS: dollars-spot ${spot_total:.2} < energy ${energy_total:.2} \
         at production p95 delay {spot_p95:.1}s (energy {energy_p95:.1}s, \
         SLO target {slo_target_s:.0}s)"
    );

    // Reproducibility: re-running one priced cell must give a byte-identical
    // report (fixed seeds end to end — trace, classifier, market, LP).
    {
        let scenario = scenarios(scale, seed, price_seed).pop().expect("spot-accel");
        let classifier = TaskClassifier::fit(scenario.trace.tasks(), &classifier_config)
            .expect("classifier fit");
        let groups: Vec<PriorityGroup> =
            classifier.classes().iter().map(|c| c.group).collect();
        let objective = Objective::DollarsSpot.build(&scenario.catalog, &groups, price_seed);
        let run = || {
            run_variant_priced(
                &scenario.trace,
                &scenario.catalog,
                &config,
                &classifier_config,
                Variant::Cbs,
                scenario.faults.as_ref(),
                &objective,
            )
            .expect("repro run")
        };
        let a = serde_json::to_string(&run()).expect("serialize");
        let b = serde_json::to_string(&run()).expect("serialize");
        assert_eq!(a, b, "fixed-seed cost-matrix cells must be byte-reproducible");
        println!("repro check OK: spot-accel/CBS/dollars-spot is byte-identical across runs");
    }

    let payload = object(&[
        ("name", Value::String("cost_matrix".to_owned())),
        ("scale", Value::String(scale.name().to_owned())),
        ("seed", Value::Number(seed as f64)),
        ("price_seed", Value::Number(price_seed as f64)),
        ("rows", Value::Array(json_rows)),
    ]);
    match write_bench_json("cost_matrix", &payload) {
        Ok(path) => println!("cost matrix written to {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_cost_matrix.json: {e}"),
    }
}

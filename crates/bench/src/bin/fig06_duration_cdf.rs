//! Fig. 6: CDF of task duration per priority group.
//!
//! The paper's observations: more than 50% of tasks run under 100 s;
//! gratis/other durations stay within hours while production tails reach
//! 17 days.

use harmony_bench::{analysis_trace, fmt, section, table, Scale};
use harmony_model::PriorityGroup;
use harmony_trace::stats::duration_cdf_by_group;

fn main() {
    let trace = analysis_trace(Scale::from_env());
    let cdfs = duration_cdf_by_group(&trace);

    section("Fig. 6: task-duration CDF per priority group (seconds)");
    let quantiles = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
    let mut rows = Vec::new();
    for group in PriorityGroup::ALL {
        let cdf = &cdfs[group.index()];
        let mut row = vec![group.to_string(), cdf.len().to_string()];
        for q in quantiles {
            row.push(fmt(cdf.quantile(q)));
        }
        row.push(fmt(cdf.fraction_at_most(100.0)));
        rows.push(row);
    }
    let labels: Vec<String> = quantiles
        .iter()
        .map(|q| format!("p{}", (q * 100.0) as u32))
        .collect();
    let mut headers = vec!["group", "tasks"];
    headers.extend(labels.iter().map(String::as_str));
    headers.push("frac<=100s");
    table(&headers, &rows);

    let all: Vec<f64> = trace.tasks().iter().map(|t| t.duration.as_secs()).collect();
    let short = all.iter().filter(|&&d| d < 100.0).count() as f64 / all.len() as f64;
    println!(
        "\nfraction of all tasks under 100 s: {} (paper: >50%)",
        fmt(short)
    );
    println!(
        "production max duration: {} days (paper: up to 17 days)",
        fmt(cdfs[PriorityGroup::Production.index()].quantile(1.0) / 86_400.0)
    );
}

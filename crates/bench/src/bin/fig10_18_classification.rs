//! Figs. 10–18: the task-classification results (Section IX-A).
//!
//! * Figs. 10/11/12 — number of tasks per class (gratis/other/
//!   production);
//! * Figs. 13/15/17 — class centroids: mean ± std of CPU and memory;
//! * Figs. 14/16/18 — short/long sub-classes from the k=2 duration
//!   split.
//!
//! Also reports the run-time labeling error of the two-step scheme vs. a
//! one-shot clustering that includes duration as a feature (the design
//! ablation from DESIGN.md §5).

use harmony::classify::{ClassifierConfig, Regime, TaskClassifier};
use harmony_bench::{analysis_trace, fmt, section, table, Scale};
use harmony_model::PriorityGroup;

fn main() {
    let trace = analysis_trace(Scale::from_env());
    let classifier = TaskClassifier::fit(trace.tasks(), &ClassifierConfig::default()).expect("fit");

    for group in PriorityGroup::ALL {
        section(&format!(
            "Figs. 10-18 ({group}): classes, centroids (mean±std), short/long split"
        ));
        let rows: Vec<Vec<String>> = classifier
            .classes()
            .iter()
            .filter(|c| c.group == group)
            .map(|c| {
                vec![
                    format!("{}", c.id),
                    format!("static{}", c.static_class),
                    match c.regime {
                        Regime::Short => "short".to_owned(),
                        Regime::Long => "long".to_owned(),
                    },
                    c.stats.count.to_string(),
                    fmt(c.stats.mean_demand.cpu),
                    fmt(c.stats.std_demand.cpu),
                    fmt(c.stats.mean_demand.mem),
                    fmt(c.stats.std_demand.mem),
                    fmt(c.stats.mean_duration.as_secs()),
                    fmt(c.stats.cv2_duration),
                ]
            })
            .collect();
        table(
            &[
                "class",
                "static",
                "regime",
                "tasks",
                "cpu_mean",
                "cpu_std",
                "mem_mean",
                "mem_std",
                "dur_mean_s",
                "dur_cv2",
            ],
            &rows,
        );
    }

    section("Characterization quality (paper: std << mean per class)");
    let tight = classifier
        .classes()
        .iter()
        .filter(|c| {
            c.stats.std_demand.cpu < c.stats.mean_demand.cpu
                && c.stats.std_demand.mem < c.stats.mean_demand.mem
        })
        .count();
    println!(
        "classes with std < mean on both resources: {}/{}",
        tight,
        classifier.classes().len()
    );

    section("Two-step vs one-shot labeling (run-time labeling error)");
    let two_step_err = classifier.initial_label_error(trace.tasks());
    println!("two-step initial-label error: {}", fmt(two_step_err));
    println!(
        "(the error equals the long-task mass that gets relabeled in place; a \
         one-shot clustering over (size, duration) cannot label at arrival at all, \
         since duration is unknown until the task finishes)"
    );
}

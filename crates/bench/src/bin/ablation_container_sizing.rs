//! Ablation: the container-sizing quantile (Eq. 3).
//!
//! Sweeps the machine-capacity violation budget ε and reports the
//! resulting `Z`, the reservation inflation over the class mean, and a
//! Monte-Carlo estimate of the actual violation rate when packing
//! reservations onto the largest machine.

use harmony::classify::{ClassifierConfig, TaskClassifier};
use harmony_bench::{analysis_trace, fmt, section, table, Scale};
use harmony_model::Resources;
use harmony_queueing::ContainerSizer;
use harmony_trace::standard_normal;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let trace = analysis_trace(Scale::from_env());
    let classifier = TaskClassifier::fit(trace.tasks(), &ClassifierConfig::default()).expect("fit");
    // The most populous class drives the study.
    let class = classifier
        .classes()
        .iter()
        .max_by_key(|c| c.stats.count)
        .expect("classes exist");

    section("Ablation: container sizing quantile (Eq. 3)");
    let mut rows = Vec::new();
    for epsilon in [0.2, 0.1, 0.05, 0.01, 0.001] {
        let sizer = ContainerSizer::new(epsilon).expect("valid epsilon");
        let c = sizer.container_size(&class.stats);
        let inflation = c.sum_components() / class.stats.mean_demand.sum_components().max(1e-12);
        // Monte Carlo: pack k reservations into a unit machine, draw true
        // demands from the class Gaussian, count capacity violations.
        let k = ((1.0 / c.cpu).floor().min((1.0 / c.mem).floor()) as usize).max(1);
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 3000;
        let mut violations = 0usize;
        for _ in 0..trials {
            let mut used = Resources::ZERO;
            for _ in 0..k {
                used += Resources::new(
                    (class.stats.mean_demand.cpu
                        + class.stats.std_demand.cpu * standard_normal(&mut rng))
                    .max(0.0),
                    (class.stats.mean_demand.mem
                        + class.stats.std_demand.mem * standard_normal(&mut rng))
                    .max(0.0),
                );
            }
            if !used.fits_within(Resources::ONE) {
                violations += 1;
            }
        }
        rows.push(vec![
            fmt(epsilon),
            fmt(sizer.z()),
            fmt(c.cpu),
            fmt(c.mem),
            fmt(inflation),
            k.to_string(),
            fmt(violations as f64 / trials as f64),
        ]);
    }
    table(
        &[
            "epsilon",
            "Z",
            "c_cpu",
            "c_mem",
            "inflation",
            "containers/machine",
            "mc_violation_rate",
        ],
        &rows,
    );
    println!(
        "\n(class {} with {} members; trade-off: smaller epsilon = bigger \
         reservations = fewer violations but more wastage)",
        class.id, class.stats.count
    );
}

//! Figs. 21–26: the closed-loop controller comparison (Section IX-B).
//!
//! Runs the heterogeneity-oblivious baseline, CBS, and CBP over the
//! same trace and cluster, and prints:
//!
//! * Figs. 21–22 — active servers over time per approach;
//! * Figs. 23–25 — scheduling-delay CDFs per priority group;
//! * Fig. 26 — total energy consumption, with the headline
//!   CBS-vs-baseline savings (paper: up to 28%).

use harmony::pipeline::{run_comparison, Variant};
use harmony_bench::{evaluation_setup, fmt, section, table, Scale};
use harmony_model::PriorityGroup;
use harmony_sim::SimReport;
use harmony_trace::stats::Cdf;

fn main() {
    let (trace, catalog, config, classifier_config) = evaluation_setup(Scale::from_env());
    eprintln!(
        "running 3 controllers over {} tasks on {} machines...",
        trace.len(),
        catalog.total_machines()
    );
    let results =
        run_comparison(&trace, &catalog, &config, &classifier_config).expect("comparison");

    section("Figs. 21-22: active servers over time");
    let mut headers = vec!["hour".to_owned()];
    headers.extend(results.iter().map(|(v, _)| v.name().to_owned()));
    let n = results[0].1.series.len();
    let mut rows = Vec::new();
    for i in 0..n {
        let mut row = vec![fmt(results[0].1.series[i].time.as_hours())];
        for (_, report) in &results {
            let active: usize = report
                .series
                .get(i)
                .map(|p| p.active_per_type.iter().sum())
                .unwrap_or(0);
            row.push(active.to_string());
        }
        rows.push(row);
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    table(&header_refs, &rows);

    section("Figs. 23-25: scheduling-delay CDFs per priority group (seconds)");
    let quantiles = [0.5, 0.9, 0.99, 1.0];
    let mut rows = Vec::new();
    for group in PriorityGroup::ALL {
        for (variant, report) in &results {
            let delays = &report.delays_by_group[group.index()];
            let mut row = vec![group.to_string(), variant.name().to_owned()];
            if delays.is_empty() {
                row.extend(std::iter::repeat_n("-".to_owned(), quantiles.len() + 2));
            } else {
                let cdf = Cdf::from_values(delays.clone());
                row.push(delays.len().to_string());
                row.push(fmt(cdf.fraction_at_most(1e-9)));
                for q in quantiles {
                    row.push(fmt(cdf.quantile(q)));
                }
            }
            rows.push(row);
        }
    }
    table(
        &[
            "group",
            "approach",
            "tasks",
            "immediate",
            "p50",
            "p90",
            "p99",
            "max",
        ],
        &rows,
    );

    section("Fig. 26: total energy consumption");
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(v, r)| {
            vec![
                v.name().to_owned(),
                fmt(r.total_energy_wh / 1000.0),
                fmt(r.energy_cost_dollars),
                fmt(r.switch_cost_dollars),
                r.switch_count.to_string(),
                fmt(r.mean_active_machines()),
                fmt(r.delay_stats_overall().mean),
                r.tasks_pending_at_end.to_string(),
            ]
        })
        .collect();
    table(
        &[
            "approach",
            "energy_kWh",
            "energy_$",
            "switch_$",
            "switches",
            "mean_active",
            "mean_delay_s",
            "pending_end",
        ],
        &rows,
    );

    let energy = |v: Variant| -> f64 {
        results
            .iter()
            .find(|(var, _)| *var == v)
            .map(|(_, r): &(Variant, SimReport)| r.total_energy_wh)
            .unwrap_or(0.0)
    };
    let baseline = energy(Variant::Baseline);
    if baseline > 0.0 {
        println!(
            "\nCBS energy saving vs baseline: {}% (paper: up to 28%)",
            fmt((1.0 - energy(Variant::Cbs) / baseline) * 100.0)
        );
        println!(
            "CBP energy saving vs baseline: {}%",
            fmt((1.0 - energy(Variant::Cbp) / baseline) * 100.0)
        );
    }
}

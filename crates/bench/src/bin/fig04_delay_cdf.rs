//! Fig. 4: CDF of task scheduling delay per priority group.
//!
//! The paper's observation on the Google trace: production tasks are
//! scheduled sooner than gratis ones (priorities preempt queue order),
//! and a heavy tail of difficult-to-schedule tasks waits far longer. We
//! replay the trace on a *capacity-constrained* static cluster so
//! queueing actually occurs, and print per-group delay CDFs.

use harmony_bench::{analysis_trace, fmt, section, table, Scale};
use harmony_model::{MachineCatalog, PriorityGroup};
use harmony_sim::{FirstFit, Simulation, SimulationConfig};
use harmony_trace::stats::Cdf;

fn main() {
    let scale = Scale::from_env();
    let trace = analysis_trace(scale);
    // Deliberately tight cluster: ~4x fewer machines than Fig. 3 uses.
    let divisor = match scale {
        Scale::Quick => 700,
        Scale::Default => 500,
        Scale::Full => 70,
    };
    let catalog = MachineCatalog::google_ten_types().scaled(divisor);
    let config = SimulationConfig::new(catalog).all_machines_on();
    let report = Simulation::new(config, &trace, Box::new(FirstFit)).run();

    section("Fig. 4: scheduling-delay CDF per priority group");
    let quantiles = [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0];
    let mut rows = Vec::new();
    for group in PriorityGroup::ALL {
        let delays = &report.delays_by_group[group.index()];
        if delays.is_empty() {
            continue;
        }
        let cdf = Cdf::from_values(delays.clone());
        let mut row = vec![group.to_string(), cdf.len().to_string()];
        row.push(fmt(cdf.fraction_at_most(1e-9))); // immediate fraction
        for q in quantiles {
            row.push(fmt(cdf.quantile(q)));
        }
        rows.push(row);
    }
    let mut headers = vec!["group", "tasks", "immediate"];
    let labels: Vec<String> = quantiles
        .iter()
        .map(|q| format!("p{}", (q * 100.0) as u32))
        .collect();
    headers.extend(labels.iter().map(String::as_str));
    table(&headers, &rows);

    let prod = report.delay_stats(PriorityGroup::Production);
    let gratis = report.delay_stats(PriorityGroup::Gratis);
    println!(
        "\nimmediate-schedule fraction: production {} vs gratis {} (paper: >50% vs <30%)",
        fmt(prod.immediate_fraction),
        fmt(gratis.immediate_fraction)
    );
}

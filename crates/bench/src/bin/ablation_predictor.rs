//! Ablation: predictor choice (ARIMA vs simple baselines).
//!
//! Evaluates one-step-ahead forecasting accuracy on per-priority-group
//! arrival-rate series extracted from the trace — the series the
//! HARMONY prediction module actually consumes.

use harmony_bench::{analysis_trace, fmt, section, table, Scale};
use harmony_forecast::{
    rolling_evaluate, Arima, Ewma, Forecaster, Holt, HoltWinters, MovingAverage, Naive,
};
use harmony_model::{PriorityGroup, SimDuration};
use harmony_trace::stats::arrival_rate_series;

fn main() {
    let trace = analysis_trace(Scale::from_env());
    let series = arrival_rate_series(&trace, SimDuration::from_mins(30.0));

    let arima = Arima::new(2, 0, 1).expect("order").with_mean();
    let ma = MovingAverage::new(6).expect("window");
    let ewma = Ewma::new(0.3).expect("alpha");
    let holt = Holt::new(0.4, 0.2).expect("factors");
    // 48 half-hour samples per day: the diurnal period of the series.
    let hw = HoltWinters::new(0.3, 0.05, 0.3, 48).expect("factors");
    let predictors: Vec<&dyn Forecaster> = vec![&Naive, &ma, &ewma, &holt, &hw, &arima];

    section("Ablation: one-step forecasting error per predictor (tasks/s)");
    let mut rows = Vec::new();
    for group in PriorityGroup::ALL {
        let s = &series[group.index()];
        // Warm-up covers Holt-Winters' two-season minimum (96 half-hour
        // samples) when the series is long enough for it.
        let warmup = (s.len() / 4).max(12).max(97).min(s.len().saturating_sub(4));
        for p in &predictors {
            match rolling_evaluate(*p, s, warmup) {
                Ok((mae, rmse)) => rows.push(vec![
                    group.to_string(),
                    p.name().to_owned(),
                    fmt(mae),
                    fmt(rmse),
                ]),
                Err(e) => rows.push(vec![
                    group.to_string(),
                    p.name().to_owned(),
                    format!("error: {e}"),
                    String::new(),
                ]),
            }
        }
    }
    table(&["group", "predictor", "mae", "rmse"], &rows);
}

//! Fig. 5: machine heterogeneity in the compute cluster — ten machine
//! types with capacities, platform ids, and a heavily skewed population
//! (>50% type 1, ~30% type 2, two ~1000-machine types, six rare types).

use harmony_bench::{fmt, section, table};
use harmony_model::MachineCatalog;

fn main() {
    let catalog = MachineCatalog::google_ten_types();
    let total = catalog.total_machines() as f64;
    section("Fig. 5: machine types (capacity, platform, population)");
    let rows: Vec<Vec<String>> = catalog
        .iter()
        .map(|ty| {
            vec![
                ty.name.clone(),
                ty.platform_id.to_string(),
                fmt(ty.capacity.cpu),
                fmt(ty.capacity.mem),
                ty.count.to_string(),
                format!("{}%", fmt(ty.count as f64 / total * 100.0)),
            ]
        })
        .collect();
    table(&["type", "platform", "cpu", "mem", "count", "share"], &rows);
    println!("\ntotal machines: {}", catalog.total_machines());
}

//! Fig. 19: aggregated task arrival rate per priority group over time.

use harmony_bench::{analysis_trace, fmt, section, table, Scale};
use harmony_model::{PriorityGroup, SimDuration};
use harmony_trace::stats::arrival_rate_series;

fn main() {
    let trace = analysis_trace(Scale::from_env());
    let bin = SimDuration::from_hours(1.0);
    let series = arrival_rate_series(&trace, bin);

    section("Fig. 19: arrival rate (tasks/s) per priority group, hourly");
    let n = series[0].len();
    let rows: Vec<Vec<String>> = (0..n)
        .map(|i| {
            vec![
                i.to_string(),
                fmt(series[PriorityGroup::Gratis.index()][i]),
                fmt(series[PriorityGroup::Other.index()][i]),
                fmt(series[PriorityGroup::Production.index()][i]),
            ]
        })
        .collect();
    table(&["hour", "gratis", "other", "production"], &rows);

    for g in PriorityGroup::ALL {
        let s = &series[g.index()];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let max = s.iter().cloned().fold(0.0, f64::max);
        println!("{g}: mean {} tasks/s, peak {} tasks/s", fmt(mean), fmt(max));
    }
}

//! Robustness comparison: Baseline vs CBS vs CBP energy and P95
//! scheduling delay under every named fault scenario.
//!
//! Companion to the Fig. 21–26 controller comparison: the same
//! evaluation setup, but each run is stressed by a deterministic
//! [`FaultPlan`] (machine crashes, slow boots, eviction waves, arrival
//! bursts). The interesting question is whether HARMONY's provisioning
//! advantage survives infrastructure faults — and whether any variant
//! loses tasks (none may: task conservation is asserted per run).
//!
//! Honors `HARMONY_SCALE` and `HARMONY_SEED`. Besides the stdout
//! tables, writes a machine-readable copy of every row to
//! `results/BENCH_fault_scenarios.json` (see [`harmony_bench::json`]).

use harmony::pipeline::{run_variant_with_faults, Variant};
use harmony_bench::json::{self, object};
use harmony_bench::{evaluation_setup, fmt, section, seed_from_env, table, Scale};
use harmony_model::PriorityGroup;
use harmony_sim::{FaultPlan, SCENARIOS};
use serde::value::Value;

fn main() {
    let scale = Scale::from_env();
    let (trace, catalog, config, classifier_config) = evaluation_setup(scale);
    eprintln!(
        "fault scenarios: {} tasks over {:.1} h on {} machines",
        trace.len(),
        trace.span().as_hours(),
        catalog.total_machines(),
    );
    let mut json_rows = Vec::new();

    for scenario in SCENARIOS {
        let plan = FaultPlan::scenario(scenario, seed_from_env(), trace.span())
            .expect("named scenario exists");
        section(&format!(
            "scenario: {scenario} ({} fault events)",
            plan.events().len()
        ));
        let mut rows = Vec::new();
        for variant in Variant::ALL {
            let report = run_variant_with_faults(
                &trace,
                &catalog,
                &config,
                &classifier_config,
                variant,
                Some(&plan),
            )
            .unwrap_or_else(|e| panic!("{} failed under {scenario}: {e}", variant.name()));

            let accounted = report.tasks_completed
                + report.tasks_running_at_end
                + report.tasks_pending_at_end
                + report.tasks_unschedulable
                + report.tasks_failed;
            assert_eq!(
                accounted,
                trace.len(),
                "{} under {scenario}: lost tasks",
                variant.name()
            );

            let prod = report.delay_stats(PriorityGroup::Production);
            let others = report.delay_stats(PriorityGroup::Other);
            json_rows.push(object(&[
                ("scenario", Value::String(scenario.to_string())),
                ("variant", Value::String(variant.name().to_owned())),
                ("energy_kwh", Value::Number(report.total_energy_wh / 1000.0)),
                (
                    "total_dollars",
                    Value::Number(report.energy_cost_dollars + report.switch_cost_dollars),
                ),
                (
                    "tasks_completed",
                    Value::Number(report.tasks_completed as f64),
                ),
                ("tasks_failed", Value::Number(report.tasks_failed as f64)),
                ("prod_p95_s", Value::Number(prod.p95)),
                ("others_p95_s", Value::Number(others.p95)),
                ("faults", Value::Number(report.faults.len() as f64)),
                (
                    "degradations",
                    Value::Number(report.degradations.len() as f64),
                ),
            ]));
            rows.push(vec![
                variant.name().to_owned(),
                fmt(report.total_energy_wh / 1000.0),
                fmt(report.energy_cost_dollars + report.switch_cost_dollars),
                report.tasks_completed.to_string(),
                report.tasks_failed.to_string(),
                fmt(prod.p95),
                fmt(others.p95),
                report.faults.len().to_string(),
                report.degradations.len().to_string(),
            ]);
        }
        table(
            &[
                "variant",
                "energy kWh",
                "total $",
                "completed",
                "failed",
                "prod p95 s",
                "others p95 s",
                "faults",
                "degradations",
            ],
            &rows,
        );
    }

    let payload = object(&[
        ("bench", Value::String("fault_scenarios".to_owned())),
        ("scale", Value::String(scale.name().to_owned())),
        ("seed", Value::Number(seed_from_env() as f64)),
        ("rows", Value::Array(json_rows)),
    ]);
    match json::write_bench_json("fault_scenarios", &payload) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_fault_scenarios.json: {e}"),
    }
}

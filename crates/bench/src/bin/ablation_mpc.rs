//! Ablation: MPC horizon W and switching cost q (DESIGN.md §5).
//!
//! Longer horizons let the controller see payback periods for switching
//! machines off; higher switching costs damp machine-count churn.

use harmony::pipeline::{run_variant, Variant};
use harmony_bench::{evaluation_setup, fmt, section, table, Scale};
use harmony_model::MachineCatalog;

fn main() {
    let (trace, catalog, base_config, classifier_config) = evaluation_setup(Scale::Quick);

    section("Ablation: MPC horizon W (CBP)");
    let mut rows = Vec::new();
    for horizon in [1usize, 2, 4, 8] {
        let mut config = base_config.clone();
        config.horizon = horizon;
        let report =
            run_variant(&trace, &catalog, &config, &classifier_config, Variant::Cbp).expect("run");
        rows.push(vec![
            horizon.to_string(),
            fmt(report.total_energy_wh / 1000.0),
            report.switch_count.to_string(),
            fmt(report.delay_stats_overall().mean),
            report.tasks_pending_at_end.to_string(),
        ]);
    }
    table(
        &["W", "energy_kWh", "switches", "mean_delay_s", "pending_end"],
        &rows,
    );

    section("Ablation: switching-cost multiplier (CBP, W=4)");
    let mut rows = Vec::new();
    for multiplier in [0.1, 1.0, 10.0, 100.0] {
        let types: Vec<_> = catalog
            .iter()
            .map(|t| {
                let mut t = t.clone();
                t.switching_cost *= multiplier;
                t
            })
            .collect();
        let scaled_catalog = MachineCatalog::new(types).expect("valid catalog");
        let report = run_variant(
            &trace,
            &scaled_catalog,
            &base_config,
            &classifier_config,
            Variant::Cbp,
        )
        .expect("run");
        rows.push(vec![
            fmt(multiplier),
            fmt(report.total_energy_wh / 1000.0),
            report.switch_count.to_string(),
            fmt(report.switch_cost_dollars),
            fmt(report.delay_stats_overall().mean),
        ]);
    }
    table(
        &[
            "q_multiplier",
            "energy_kWh",
            "switches",
            "switch_$",
            "mean_delay_s",
        ],
        &rows,
    );
}

//! `replay` — run a HARMONY controller over a trace file.
//!
//! Usage:
//!
//! ```sh
//! replay <trace-file> [--controller baseline|cbs|cbp|none] \
//!        [--catalog table2|google10] [--scale <divisor>] \
//!        [--format jsonl|google-csv] [--period-mins <f64>]
//! ```
//!
//! `--controller none` replays on a fully-on cluster (no DCP). Trace
//! files come from [`harmony_trace::Trace::write_jsonl`], from
//! [`harmony_trace::google_csv::write_task_events`], or from the real
//! Google cluster-data v1 `task_events` tables.

use std::fs::File;
use std::io::BufReader;
use std::process::exit;

use harmony::classify::ClassifierConfig;
use harmony::pipeline::{run_variant, Variant};
use harmony::HarmonyConfig;
use harmony_bench::{fmt, section, table};
use harmony_model::{MachineCatalog, PriorityGroup, SimDuration};
use harmony_sim::{FirstFit, Simulation, SimulationConfig};
use harmony_trace::{google_csv, Trace};

fn usage() -> ! {
    eprintln!(
        "usage: replay <trace-file> [--controller baseline|cbs|cbp|none] \
         [--catalog table2|google10] [--scale <divisor>] \
         [--format jsonl|google-csv] [--period-mins <f64>]"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut controller = "cbp".to_owned();
    let mut catalog_name = "table2".to_owned();
    let mut scale = 50usize;
    let mut format = "jsonl".to_owned();
    let mut period_mins = 15.0f64;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| it.next().unwrap_or_else(|| {
            eprintln!("missing value for {name}");
            usage()
        });
        match arg.as_str() {
            "--controller" => controller = grab("--controller"),
            "--catalog" => catalog_name = grab("--catalog"),
            "--scale" => {
                scale = grab("--scale").parse().unwrap_or_else(|_| usage());
            }
            "--format" => format = grab("--format"),
            "--period-mins" => {
                period_mins = grab("--period-mins").parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_owned()),
            other => {
                eprintln!("unknown argument {other}");
                usage();
            }
        }
    }
    let Some(path) = path else { usage() };

    let file = File::open(&path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1);
    });
    let reader = BufReader::new(file);
    let trace: Trace = match format.as_str() {
        "jsonl" => Trace::read_jsonl(reader),
        "google-csv" => google_csv::read_task_events(reader),
        other => {
            eprintln!("unknown format {other}");
            usage();
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    });

    let catalog = match catalog_name.as_str() {
        "table2" => MachineCatalog::table2(),
        "google10" => MachineCatalog::google_ten_types(),
        other => {
            eprintln!("unknown catalog {other}");
            usage();
        }
    }
    .scaled(scale.max(1));

    eprintln!(
        "replaying {} tasks over {:.1} h on {} machines ({catalog_name}/{scale}), controller {controller}",
        trace.len(),
        trace.span().as_hours(),
        catalog.total_machines(),
    );

    let config = HarmonyConfig {
        control_period: SimDuration::from_mins(period_mins),
        ..Default::default()
    };
    let report = match controller.as_str() {
        "none" => {
            let sim_config = SimulationConfig::new(catalog).all_machines_on();
            Simulation::new(sim_config, &trace, Box::new(FirstFit)).run()
        }
        name => {
            let variant = match name {
                "baseline" => Variant::Baseline,
                "cbs" => Variant::Cbs,
                "cbp" => Variant::Cbp,
                other => {
                    eprintln!("unknown controller {other}");
                    usage();
                }
            };
            run_variant(&trace, &catalog, &config, &ClassifierConfig::default(), variant)
                .unwrap_or_else(|e| {
                    eprintln!("controller failed: {e}");
                    exit(1);
                })
        }
    };

    section("replay report");
    println!("tasks completed:      {}", report.tasks_completed);
    println!("tasks running at end: {}", report.tasks_running_at_end);
    println!("tasks pending at end: {}", report.tasks_pending_at_end);
    println!("tasks unschedulable:  {}", report.tasks_unschedulable);
    println!("energy:               {} kWh (${})", fmt(report.total_energy_wh / 1000.0), fmt(report.energy_cost_dollars));
    println!("machine switches:     {} (${})", report.switch_count, fmt(report.switch_cost_dollars));
    println!("migrations/evictions: {} / {}", report.migrations, report.evictions);

    section("scheduling delay per priority group (seconds)");
    let rows: Vec<Vec<String>> = PriorityGroup::ALL
        .iter()
        .map(|&g| {
            let s = report.delay_stats(g);
            vec![
                g.to_string(),
                s.count.to_string(),
                fmt(s.immediate_fraction),
                fmt(s.mean),
                fmt(s.p50),
                fmt(s.p90),
                fmt(s.p99),
                fmt(s.max),
            ]
        })
        .collect();
    table(&["group", "placements", "immediate", "mean", "p50", "p90", "p99", "max"], &rows);
}

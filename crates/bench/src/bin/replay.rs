//! `replay` — run a HARMONY controller over a trace file.
//!
//! Usage:
//!
//! ```sh
//! replay <trace-file> [--controller baseline|cbs|cbp|none] \
//!        [--catalog table2|google10] [--scale <divisor>] \
//!        [--format jsonl|google-csv] [--period-mins <f64>] \
//!        [--faults <scenario>] [--fault-seed <u64>]
//! ```
//!
//! `--controller none` replays on a fully-on cluster (no DCP). Trace
//! files come from [`harmony_trace::Trace::write_jsonl`], from
//! [`harmony_trace::google_csv::write_task_events`], or from the real
//! Google cluster-data v1 `task_events` tables.
//!
//! `--faults <scenario>` switches to robustness mode: all three
//! controller variants run under the named fault scenario (one of
//! `crash-storm`, `slow-boot`, `eviction-wave`, `arrival-burst`,
//! `mixed`) and the report lists every injected fault and degradation
//! event. The trace file is optional in this mode — omitting it replays
//! the synthetic evaluation trace.
//!
//! Fault mode is resumable: `--snapshot <path>` checkpoints the run
//! after every finished variant (atomic tmp+rename), `--resume <path>`
//! picks an interrupted run back up with bit-identical results, and
//! `--stop-after <n>` exits deliberately after `n` variants (the hook
//! the resume test uses to simulate an interruption).
//!
//! `--metrics` resets the global telemetry registry before the run and
//! writes the post-run snapshot (per-stage control-loop timings, simplex
//! pivot counters, forecast tier counts, simulator event tallies) to
//! `results/BENCH_telemetry.json` via the atomic artifact writer.

use std::fs::File;
use std::io::BufReader;
use std::path::PathBuf;
use std::process::exit;

use harmony::classify::ClassifierConfig;
use harmony::pipeline::{run_variant, Variant};
use harmony::HarmonyConfig;
use harmony_bench::checkpoint::{self, ReplayInputs, ResumableRun};
use harmony_bench::{fmt, section, seed_from_env, table, Scale};
use harmony_model::{MachineCatalog, PriorityGroup, SimDuration};
use harmony_sim::{
    DegradationKind, FaultRecordKind, FirstFit, SimReport, Simulation, SimulationConfig, SCENARIOS,
};
use harmony_trace::{google_csv, Trace, TraceConfig, TraceGenerator};

fn usage() -> ! {
    eprintln!(
        "usage: replay [<trace-file>] [--controller baseline|cbs|cbp|none] \
         [--catalog table2|google10] [--scale <divisor>|paper] \
         [--format jsonl|google-csv] [--period-mins <f64>] \
         [--faults <scenario>] [--fault-seed <u64>] \
         [--snapshot <path>] [--resume <path>] [--stop-after <n>] [--metrics]\n\
         fault scenarios: {}",
        SCENARIOS.join(", ")
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path: Option<String> = None;
    let mut controller = "cbp".to_owned();
    let mut catalog_name = "table2".to_owned();
    let mut scale = 50usize;
    let mut paper = false;
    let mut format = "jsonl".to_owned();
    let mut period_mins = 15.0f64;
    let mut fault_scenario: Option<String> = None;
    let mut fault_seed = 2013u64;
    let mut snapshot: Option<PathBuf> = None;
    let mut resume: Option<PathBuf> = None;
    let mut stop_after: Option<usize> = None;
    let mut metrics = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--controller" => controller = grab("--controller"),
            "--catalog" => catalog_name = grab("--catalog"),
            "--scale" => {
                let value = grab("--scale");
                if value == "paper" {
                    // The paper preset: Table II unscaled (10,000
                    // machines); without a trace file the paper-scale
                    // synthetic workload (>1M tasks) is generated.
                    paper = true;
                    scale = 1;
                } else {
                    scale = value.parse().unwrap_or_else(|_| usage());
                }
            }
            "--format" => format = grab("--format"),
            "--period-mins" => {
                period_mins = grab("--period-mins").parse().unwrap_or_else(|_| usage());
            }
            "--faults" => fault_scenario = Some(grab("--faults")),
            "--fault-seed" => {
                fault_seed = grab("--fault-seed").parse().unwrap_or_else(|_| usage());
            }
            "--snapshot" => snapshot = Some(PathBuf::from(grab("--snapshot"))),
            "--resume" => resume = Some(PathBuf::from(grab("--resume"))),
            "--stop-after" => {
                stop_after = Some(grab("--stop-after").parse().unwrap_or_else(|_| usage()));
            }
            "--metrics" => metrics = true,
            "--help" | "-h" => usage(),
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_owned()),
            other => {
                eprintln!("unknown argument {other}");
                usage();
            }
        }
    }
    if metrics {
        // Clean measurement window: only this run's instrumentation
        // lands in the artifact, not counts from earlier activity.
        harmony_telemetry::global().reset();
    }
    if let Some(resume_path) = resume {
        // The checkpoint records the full setup; workload flags on the
        // command line are ignored on resume.
        let loaded = checkpoint::load(&resume_path).unwrap_or_else(|e| {
            eprintln!("cannot load checkpoint {}: {e}", resume_path.display());
            exit(1);
        });
        let run = ResumableRun::from_checkpoint(loaded).unwrap_or_else(|e| {
            eprintln!("cannot resume: {e}");
            exit(1);
        });
        let started = std::time::Instant::now();
        fault_mode(run, snapshot.or(Some(resume_path)), stop_after);
        record_events_per_sec(started);
        if metrics {
            write_metrics_artifact();
        }
        return;
    }
    if let Some(scenario) = fault_scenario {
        if !SCENARIOS.contains(&scenario.as_str()) {
            eprintln!("unknown fault scenario `{scenario}`");
            usage();
        }
        let inputs = ReplayInputs {
            scenario,
            fault_seed,
            trace_path: path.clone(),
            trace_format: format.clone(),
            trace_hash: None,
            scale: Scale::from_env().name().to_owned(),
            workload_seed: seed_from_env(),
            catalog: catalog_name.clone(),
            catalog_scale: scale,
            period_mins,
        };
        let run = ResumableRun::from_inputs(inputs).unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(1);
        });
        let started = std::time::Instant::now();
        fault_mode(run, snapshot, stop_after);
        record_events_per_sec(started);
        if metrics {
            write_metrics_artifact();
        }
        return;
    }

    let trace = match (&path, paper) {
        (Some(p), _) => load_trace(p, &format),
        (None, true) => {
            eprintln!("generating paper-scale synthetic trace (29 days, >1M tasks)...");
            TraceGenerator::new(TraceConfig::paper_scale()).generate()
        }
        (None, false) => usage(),
    };
    let catalog = parse_catalog(&catalog_name).scaled(scale.max(1));

    eprintln!(
        "replaying {} tasks over {:.1} h on {} machines ({catalog_name}/{scale}), controller {controller}",
        trace.len(),
        trace.span().as_hours(),
        catalog.total_machines(),
    );

    let config = HarmonyConfig {
        control_period: SimDuration::from_mins(period_mins),
        ..Default::default()
    };
    let started = std::time::Instant::now();
    let report = match controller.as_str() {
        "none" => {
            let sim_config = SimulationConfig::new(catalog).all_machines_on();
            Simulation::new(sim_config, &trace, Box::new(FirstFit)).run()
        }
        name => {
            let variant = match name {
                "baseline" => Variant::Baseline,
                "cbs" => Variant::Cbs,
                "cbp" => Variant::Cbp,
                other => {
                    eprintln!("unknown controller {other}");
                    usage();
                }
            };
            run_variant(
                &trace,
                &catalog,
                &config,
                &ClassifierConfig::default(),
                variant,
            )
            .unwrap_or_else(|e| {
                eprintln!("controller failed: {e}");
                exit(1);
            })
        }
    };
    record_events_per_sec(started);

    section("replay report");
    println!("tasks completed:      {}", report.tasks_completed);
    println!("tasks running at end: {}", report.tasks_running_at_end);
    println!("tasks pending at end: {}", report.tasks_pending_at_end);
    println!("tasks unschedulable:  {}", report.tasks_unschedulable);
    println!(
        "energy:               {} kWh (${})",
        fmt(report.total_energy_wh / 1000.0),
        fmt(report.energy_cost_dollars)
    );
    println!(
        "machine switches:     {} (${})",
        report.switch_count,
        fmt(report.switch_cost_dollars)
    );
    println!(
        "migrations/evictions: {} / {}",
        report.migrations, report.evictions
    );

    section("scheduling delay per priority group (seconds)");
    let rows: Vec<Vec<String>> = PriorityGroup::ALL
        .iter()
        .map(|&g| {
            let s = report.delay_stats(g);
            vec![
                g.to_string(),
                s.count.to_string(),
                fmt(s.immediate_fraction),
                fmt(s.mean),
                fmt(s.p50),
                fmt(s.p90),
                fmt(s.p99),
                fmt(s.max),
            ]
        })
        .collect();
    table(
        &[
            "group",
            "placements",
            "immediate",
            "mean",
            "p50",
            "p90",
            "p99",
            "max",
        ],
        &rows,
    );

    if metrics {
        write_metrics_artifact();
    }
}

/// Computes simulator event throughput over the elapsed wall clock and
/// records it as the `sim.events_per_sec` gauge. The simulator counts
/// events but cannot read wall clocks (the `wall-clock` lint bans them
/// in `crates/sim`), so the rate is derived here, outside the engine.
fn record_events_per_sec(started: std::time::Instant) {
    let elapsed = started.elapsed().as_secs_f64();
    let events: u64 = harmony_telemetry::global()
        .snapshot()
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("sim.events."))
        .map(|(_, v)| *v)
        .sum();
    if elapsed > 0.0 && events > 0 {
        harmony_telemetry::global()
            .gauge("sim.events_per_sec")
            .set(events as f64 / elapsed);
        eprintln!(
            "processed {events} events in {elapsed:.2}s wall ({:.0} events/sec)",
            events as f64 / elapsed
        );
    }
}

/// Snapshots the global telemetry registry, prints a per-stage timing
/// table plus the simplex pivot counters, and writes the full snapshot
/// to `results/BENCH_telemetry.json` (atomic tmp+rename).
fn write_metrics_artifact() {
    use harmony_bench::json::{object, write_bench_json};
    use serde::value::Value;

    let snapshot = harmony_telemetry::global().snapshot();

    section("telemetry: control-loop stage timings");
    let stages = [
        ("classify", "pipeline.classify_seconds"),
        ("forecast", "pipeline.forecast_seconds"),
        ("sizing", "pipeline.sizing_seconds"),
        ("lp", "pipeline.lp_seconds"),
        ("rounding", "pipeline.rounding_seconds"),
        ("whole period", "pipeline.period_seconds"),
    ];
    let rows: Vec<Vec<String>> = stages
        .iter()
        .map(|&(label, name)| match snapshot.histogram(name) {
            Some(h) => vec![
                label.to_owned(),
                h.count.to_string(),
                fmt(h.sum),
                fmt(h.mean()),
                fmt(h.quantile(0.50)),
                fmt(h.quantile(0.99)),
            ],
            None => {
                let mut row = vec![label.to_owned()];
                row.resize(6, "-".to_owned());
                row
            }
        })
        .collect();
    table(
        &["stage", "periods", "total s", "mean s", "p50 s", "p99 s"],
        &rows,
    );
    println!(
        "simplex: {} solves, {} pivots ({} in phase 1), {} failures",
        snapshot.counter("lp.solves"),
        snapshot.counter("lp.pivots"),
        snapshot.counter("lp.phase1_pivots"),
        snapshot.counter("lp.failures"),
    );

    let counters = Value::Object(
        snapshot
            .counters
            .iter()
            .map(|(name, v)| (name.clone(), Value::Number(*v as f64)))
            .collect(),
    );
    let gauges = Value::Object(
        snapshot
            .gauges
            .iter()
            .map(|(name, v)| (name.clone(), Value::Number(*v)))
            .collect(),
    );
    let histograms = Value::Array(
        snapshot
            .histograms
            .iter()
            .map(|h| {
                object(&[
                    ("name", Value::String(h.name.clone())),
                    ("count", Value::Number(h.count as f64)),
                    ("sum_seconds", Value::Number(h.sum)),
                    ("mean_seconds", Value::Number(h.mean())),
                    ("p50_seconds", Value::Number(h.quantile(0.50))),
                    ("p99_seconds", Value::Number(h.quantile(0.99))),
                ])
            })
            .collect(),
    );
    let payload = object(&[
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
    ]);
    match write_bench_json("telemetry", &payload) {
        Ok(path) => eprintln!("telemetry snapshot written to {}", path.display()),
        Err(e) => {
            eprintln!("cannot write telemetry artifact: {e}");
            exit(1);
        }
    }
}

fn load_trace(path: &str, format: &str) -> Trace {
    let file = File::open(path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        exit(1);
    });
    let reader = BufReader::new(file);
    match format {
        "jsonl" => Trace::read_jsonl(reader),
        "google-csv" => google_csv::read_task_events(reader),
        other => {
            eprintln!("unknown format {other}");
            usage();
        }
    }
    .unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        exit(1);
    })
}

fn parse_catalog(name: &str) -> MachineCatalog {
    match name {
        "table2" => MachineCatalog::table2(),
        "google10" => MachineCatalog::google_ten_types(),
        other => {
            eprintln!("unknown catalog {other}");
            usage();
        }
    }
}

/// Robustness mode: all three controller variants run under one named
/// fault scenario; the output lists every injected fault, every
/// degradation event, and a cross-variant comparison. With a snapshot
/// path the run checkpoints after every variant; `stop_after` exits
/// deliberately partway through (for the resume test).
fn fault_mode(mut run: ResumableRun, snapshot: Option<PathBuf>, stop_after: Option<usize>) {
    let scenario = run.inputs().scenario.clone();
    eprintln!(
        "fault replay: {} tasks over {:.1} h, scenario {scenario} ({} events, seed {})",
        run.trace().len(),
        run.trace().span().as_hours(),
        run.plan().events().len(),
        run.inputs().fault_seed,
    );
    if !run.completed().is_empty() {
        eprintln!(
            "resumed from checkpoint: {} of {} variants already complete",
            run.completed().len(),
            Variant::ALL.len(),
        );
    }

    let save = |run: &ResumableRun, path: &PathBuf| {
        checkpoint::save_atomic(&run.checkpoint(), path).unwrap_or_else(|e| {
            eprintln!("cannot write checkpoint {}: {e}", path.display());
            exit(1);
        });
    };

    while !run.is_done() {
        if let Some(limit) = stop_after {
            if run.completed().len() >= limit {
                let Some(path) = &snapshot else {
                    eprintln!("--stop-after requires --snapshot");
                    exit(2);
                };
                save(&run, path);
                eprintln!(
                    "stopped after {} variant(s); resume with --resume {}",
                    run.completed().len(),
                    path.display(),
                );
                return;
            }
        }
        let variant = match run.run_next() {
            Ok((variant, _)) => variant,
            Err(e) => {
                eprintln!("{e}");
                exit(1);
            }
        };
        if let Some(path) = &snapshot {
            save(&run, path);
        }
        let (_, report) = run.completed().last().expect("variant just completed");

        let accounted = report.tasks_completed
            + report.tasks_running_at_end
            + report.tasks_pending_at_end
            + report.tasks_unschedulable
            + report.tasks_failed;
        assert_eq!(
            accounted,
            run.trace().len(),
            "{}: task conservation violated under {scenario}",
            variant.name()
        );

        section(&format!("{} under {scenario}", variant.name()));
        println!(
            "completed {} / running {} / pending {} / unschedulable {} / failed {}  (conserved: {} of {})",
            report.tasks_completed,
            report.tasks_running_at_end,
            report.tasks_pending_at_end,
            report.tasks_unschedulable,
            report.tasks_failed,
            accounted,
            run.trace().len(),
        );
        print_faults(report);
        print_degradations(report);
    }

    let rows: Vec<Vec<String>> = run
        .completed()
        .iter()
        .map(|(variant, report)| {
            let p95 = report.delay_stats(PriorityGroup::Production).p95;
            vec![
                variant.name().to_owned(),
                fmt(report.total_energy_wh / 1000.0),
                fmt(report.energy_cost_dollars),
                report.tasks_failed.to_string(),
                fmt(p95),
                report.faults.len().to_string(),
                report.degradations.len().to_string(),
            ]
        })
        .collect();
    section(&format!("comparison under {scenario}"));
    table(
        &[
            "variant",
            "energy kWh",
            "energy $",
            "failed",
            "prod p95 delay s",
            "faults",
            "degradations",
        ],
        &rows,
    );
}

fn print_faults(report: &SimReport) {
    println!("injected faults ({}):", report.faults.len());
    for f in &report.faults {
        let at = f.at.as_hours();
        match &f.kind {
            FaultRecordKind::MachineCrash {
                machine,
                evicted,
                failed,
            } => {
                println!("  {at:7.2} h  crash {machine:?}: {evicted} evicted, {failed} failed")
            }
            FaultRecordKind::MachineRecovered { machine } => {
                println!("  {at:7.2} h  recovered {machine:?}")
            }
            FaultRecordKind::SlowBootStart { factor } => {
                println!("  {at:7.2} h  slow-boot starts (boot time x{factor})")
            }
            FaultRecordKind::SlowBootEnd => println!("  {at:7.2} h  slow-boot ends"),
            FaultRecordKind::TaskEviction { evicted, failed } => {
                println!("  {at:7.2} h  eviction wave: {evicted} evicted, {failed} failed")
            }
            FaultRecordKind::ArrivalBurst { tasks_warped } => {
                println!("  {at:7.2} h  arrival burst: {tasks_warped} tasks warped")
            }
            FaultRecordKind::SpotEviction { machine_type, machines, evicted, failed } => {
                println!(
                    "  {at:7.2} h  spot reclaim {machine_type:?}: {machines} machines, \
                     {evicted} evicted, {failed} failed"
                )
            }
        }
    }
}

fn print_degradations(report: &SimReport) {
    println!("degradation events ({}):", report.degradations.len());
    for (shown, d) in report.degradations.iter().enumerate() {
        if shown == 12 {
            println!("  ... {} more", report.degradations.len() - shown);
            break;
        }
        let kind = match &d.kind {
            DegradationKind::ForecastFallback { class, tier } => {
                format!("forecast fallback (class {class}, tier {tier:?})")
            }
            DegradationKind::LpReusedPreviousPlan => "LP failed; reused previous plan".to_owned(),
            DegradationKind::LpGreedyFallback => "LP failed; greedy sizing".to_owned(),
            DegradationKind::ControlHold => "control held previous state".to_owned(),
        };
        println!("  {:7.2} h  {kind}: {}", d.at.as_hours(), d.detail);
    }
}

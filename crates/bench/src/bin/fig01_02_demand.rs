//! Figs. 1–2: total CPU and memory demand over time.
//!
//! The paper's observation: demand for each resource fluctuates
//! significantly over time, far below the fully-on cluster capacity.

use harmony_bench::{analysis_trace, fmt, section, table, Scale};
use harmony_model::SimDuration;
use harmony_trace::stats::demand_over_time;

fn main() {
    let trace = analysis_trace(Scale::from_env());
    let bin = SimDuration::from_hours(1.0);
    let series = demand_over_time(&trace, bin);
    section("Fig. 1-2: total CPU and memory demand over time (hourly)");
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|(t, r)| vec![fmt(t.as_hours()), fmt(r.cpu), fmt(r.mem)])
        .collect();
    table(&["hour", "cpu_demand", "mem_demand"], &rows);

    let cpus: Vec<f64> = series.iter().map(|(_, r)| r.cpu).collect();
    let max = cpus.iter().cloned().fold(0.0, f64::max);
    let min = cpus.iter().skip(2).cloned().fold(f64::INFINITY, f64::min);
    println!(
        "\ncpu demand range: {} .. {} (peak/trough = {})",
        fmt(min),
        fmt(max),
        fmt(max / min.max(1e-9))
    );
}

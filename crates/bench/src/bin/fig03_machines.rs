//! Fig. 3: machines available vs. used over time.
//!
//! The paper's observation: the number of used machines tracks the
//! number of available machines — cluster capacity is not adjusted to
//! demand, so "a large number of machines can be turned off to save
//! energy". We replay the trace on a fully-on ten-type cluster and
//! report available vs. used.

use harmony_bench::{analysis_trace, fmt, section, table, Scale};
use harmony_model::MachineCatalog;
use harmony_sim::{FirstFit, Simulation, SimulationConfig};

fn main() {
    let scale = Scale::from_env();
    let trace = analysis_trace(scale);
    let divisor = match scale {
        Scale::Quick => 200,
        Scale::Default => 50,
        Scale::Full => 10,
    };
    let catalog = MachineCatalog::google_ten_types().scaled(divisor);
    let available = catalog.total_machines();
    let config = SimulationConfig::new(catalog).all_machines_on();
    let report = Simulation::new(config, &trace, Box::new(FirstFit)).run();

    section("Fig. 3: machines available and used");
    let rows: Vec<Vec<String>> = report
        .series
        .iter()
        .map(|p| {
            vec![
                fmt(p.time.as_hours()),
                available.to_string(),
                p.used_per_type.iter().sum::<usize>().to_string(),
            ]
        })
        .collect();
    table(&["hour", "available", "used"], &rows);

    let mean_used: f64 = report
        .series
        .iter()
        .map(|p| p.used_per_type.iter().sum::<usize>() as f64)
        .sum::<f64>()
        / report.series.len().max(1) as f64;
    println!(
        "\navailable: {available}  mean used: {}  idle headroom: {}%",
        fmt(mean_used),
        fmt((1.0 - mean_used / available as f64) * 100.0)
    );
}

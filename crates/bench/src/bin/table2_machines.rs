//! Table II: the simulated machine configurations, plus the derived
//! normalized capacities and power-model constants (DESIGN.md §6).

use harmony_bench::{fmt, section, table};
use harmony_model::MachineCatalog;

fn main() {
    let catalog = MachineCatalog::table2();
    section("Table II: Machine Configurations");
    let rows: Vec<Vec<String>> = catalog
        .iter()
        .map(|ty| {
            vec![
                ty.name.clone(),
                fmt(ty.capacity.cpu * 48.0), // cores
                format!("{} GB", ty.capacity.mem * 64.0),
                ty.count.to_string(),
                fmt(ty.capacity.cpu),
                fmt(ty.capacity.mem),
                fmt(ty.power.idle_watts),
                fmt(ty.power.alpha_watts.cpu),
                fmt(ty.power.alpha_watts.mem),
                fmt(ty.switching_cost),
            ]
        })
        .collect();
    table(
        &[
            "model",
            "cores",
            "memory",
            "machines",
            "cpu_norm",
            "mem_norm",
            "idle_W",
            "alpha_cpu_W",
            "alpha_mem_W",
            "switch_cost_$",
        ],
        &rows,
    );
    println!(
        "\ntotal machines: {}  total capacity: {}",
        catalog.total_machines(),
        catalog.total_capacity()
    );
}

//! Hot-path performance benchmark (DESIGN.md §10): cold vs warm-started
//! CBS-RELAX solves, and serial vs parallel per-class pipeline.
//!
//! Two experiments, both asserted in-process and written to
//! `results/BENCH_provisioning_perf.json`:
//!
//! 1. **LP warm start.** A chain of MPC-style solves whose demand
//!    right-hand sides drift tick to tick. The cold pass solves each
//!    tick from scratch; the warm pass threads the previous optimal
//!    basis through. Warm must use no more total pivots than cold, and
//!    strictly fewer whenever any restart actually took.
//! 2. **Pipeline fan-out.** Two identical [`OnlinePipeline`]s driven
//!    over the same trace, one with `pipeline_workers = Some(1)` and
//!    one with the automatic worker count. Their integer plans must be
//!    bit-identical.
//! 3. **Backend scaling curve.** Cold CBS-RELAX solves of growing
//!    synthetic instances on the sparse revised simplex and the dense
//!    tableau oracle. Where dense completes, objectives must agree to
//!    1e-6 relative and sparse must not lose at the largest point; at
//!    instances past ~5k variables the dense engine is run under an
//!    escalating pivot cap just long enough to establish a wall-clock
//!    *lower bound*, and sparse must win by at least 5× against that
//!    bound while finishing inside one control period.
//!
//! `--quick` (or `HARMONY_SCALE=quick`) shrinks all experiments to
//! CI-smoke size (the scaling curve then stops at sizes the dense
//! engine can finish).

use std::time::Instant;

use harmony::cbs::{solve_cbs_relax_warm, CbsInputs};
use harmony::classify::TaskClassifier;
use harmony::containers::ContainerManager;
use harmony::{HarmonyConfig, OnlinePipeline};
use harmony_bench::json::{object, write_bench_json};
use harmony_bench::{evaluation_setup, fmt, section, table, Scale};
use harmony_model::{EnergyPrice, Resources, SimTime, TaskClassId};
use serde::value::Value;

struct LpTick {
    cold_pivots: usize,
    warm_pivots: usize,
    warm_started: bool,
}

/// One MPC tick's inputs, recorded up front so the timed cold and warm
/// passes replay byte-identical problems.
struct TickInputs {
    demand: Vec<Vec<f64>>,
    initial: Vec<f64>,
    now: SimTime,
}

struct LpResult {
    ticks: Vec<LpTick>,
    cold_seconds: f64,
    warm_seconds: f64,
}

/// Deterministic per-tick demand drift: positive everywhere so the LP
/// structure (and therefore the basis shape) is stable across ticks.
/// Demand grows slowly with a per-entry wobble — the MPC regime, where
/// consecutive forecasts differ by a few percent and the previous basis
/// either restarts directly or needs only a local feasibility repair.
fn demand_at(tick: usize, horizon: usize, base: &[f64]) -> Vec<Vec<f64>> {
    let growth = 1.0 + 0.04 * tick as f64;
    (0..horizon)
        .map(|t| {
            base.iter()
                .enumerate()
                .map(|(n, &b)| {
                    let wobble = ((tick * 3 + t * 2 + n) % 11) as f64 / 10.0 - 0.5;
                    (b * growth * (1.0 + 0.1 * wobble)).max(1.0)
                })
                .collect()
        })
        .collect()
}

fn lp_experiment(
    inputs_seq: &[TickInputs],
    template: &CbsInputs<'_>,
    config: &HarmonyConfig,
) -> LpResult {
    let solve =
        |demand: &[Vec<f64>], initial: &[f64], now: SimTime, warm: Option<&harmony_lp::Basis>| {
            solve_cbs_relax_warm(
                &CbsInputs {
                    demand,
                    initial_active: initial,
                    now,
                    ..template.clone()
                },
                config,
                warm,
            )
            .expect("benchmark LP must solve")
        };

    let cold_clock = Instant::now();
    let cold: Vec<_> = inputs_seq
        .iter()
        .map(|t| solve(&t.demand, &t.initial, t.now, None))
        .collect();
    let cold_seconds = cold_clock.elapsed().as_secs_f64();

    let warm_clock = Instant::now();
    let mut basis = None;
    let mut warm = Vec::with_capacity(inputs_seq.len());
    for t in inputs_seq {
        let s = solve(&t.demand, &t.initial, t.now, basis.as_ref());
        basis = Some(s.basis.clone());
        warm.push(s);
    }
    let warm_seconds = warm_clock.elapsed().as_secs_f64();

    let ticks = cold
        .iter()
        .zip(&warm)
        .map(|(c, w)| {
            let rel = 1e-6 * (1.0 + c.plan.objective.abs());
            assert!(
                (c.plan.objective - w.plan.objective).abs() <= rel,
                "warm objective {} diverged from cold {}",
                w.plan.objective,
                c.plan.objective
            );
            LpTick {
                cold_pivots: c.pivots,
                warm_pivots: w.pivots,
                warm_started: w.warm_started,
            }
        })
        .collect();
    LpResult {
        ticks,
        cold_seconds,
        warm_seconds,
    }
}

/// One point of the backend scaling curve.
struct ScalingPoint {
    classes: usize,
    horizon: usize,
    lp_vars: usize,
    lp_constraints: usize,
    sparse_seconds: f64,
    sparse_pivots: usize,
    sparse_objective: f64,
    dense_seconds: f64,
    /// `true` when the dense run reached optimality; `false` when it was
    /// stopped by the pivot cap and `dense_seconds` is a lower bound.
    dense_completed: bool,
    dense_pivot_cap: Option<usize>,
}

/// Deterministic synthetic CBS classes: container sizes, utility
/// slopes, and base demand for `n` classes, spread across the machine
/// types' capacity range so the LP has non-trivial packing structure.
fn synthetic_classes(n: usize) -> (Vec<Resources>, Vec<f64>, Vec<f64>) {
    let sizes = (0..n)
        .map(|i| {
            Resources::new(
                0.02 + 0.28 * ((i * 7 % 13) as f64 / 13.0),
                0.02 + 0.28 * ((i * 5 % 11) as f64 / 11.0),
            )
        })
        .collect();
    let utility = (0..n).map(|i| 0.05 + 0.1 * (i % 3) as f64).collect();
    let base = (0..n).map(|i| 5.0 + 2.0 * (i % 7) as f64).collect();
    (sizes, utility, base)
}

/// Threshold above which the dense oracle is no longer run to
/// optimality: past ~5k variables a full dense solve takes minutes to
/// hours, so the benchmark only establishes a wall-clock lower bound.
const DENSE_FULL_SOLVE_MAX_VARS: usize = 5_000;

fn scaling_experiment(
    catalog: &harmony_model::MachineCatalog,
    config: &HarmonyConfig,
    points: &[(usize, usize)],
) -> Vec<ScalingPoint> {
    let price = EnergyPrice::default();
    let mut out = Vec::with_capacity(points.len());
    for &(classes, horizon) in points {
        let (sizes, utility, base) = synthetic_classes(classes);
        let demand = demand_at(1, horizon, &base);
        let initial = vec![0.0f64; catalog.len()];
        let inputs = CbsInputs {
            catalog,
            container_sizes: &sizes,
            utility_per_hour: &utility,
            demand: &demand,
            initial_active: &initial,
            price: &price,
            now: SimTime::ZERO,
        };
        let solve = |backend, max_pivots| {
            let cfg = HarmonyConfig {
                horizon,
                lp_backend: backend,
                max_lp_pivots: max_pivots,
                ..config.clone()
            };
            let clock = Instant::now();
            let result = solve_cbs_relax_warm(&inputs, &cfg, None);
            (result, clock.elapsed().as_secs_f64())
        };

        let (sparse, sparse_seconds) = solve(harmony::SolverBackend::Sparse, 400_000);
        let sparse = sparse.expect("sparse solve must succeed at every scale point");

        // Dense: full solve while tractable; past the threshold,
        // escalate a pivot cap until the elapsed time alone proves the
        // 5x sparse win (every capped run is a lower bound on the full
        // dense solve).
        let dense_seconds;
        let dense_completed;
        let mut dense_pivot_cap = None;
        if sparse.lp_vars <= DENSE_FULL_SOLVE_MAX_VARS {
            let (dense, secs) = solve(harmony::SolverBackend::Dense, 400_000);
            let dense = dense.expect("dense solve must succeed below the cap threshold");
            let rel = 1e-6 * (1.0 + sparse.plan.objective.abs());
            assert!(
                (sparse.plan.objective - dense.plan.objective).abs() <= rel,
                "backends disagree at {classes} classes: sparse {} vs dense {}",
                sparse.plan.objective,
                dense.plan.objective
            );
            dense_seconds = secs;
            dense_completed = true;
        } else {
            let mut cap = 512;
            let (secs, completed) = loop {
                let (result, elapsed) = solve(harmony::SolverBackend::Dense, cap);
                dense_pivot_cap = Some(cap);
                match result {
                    Ok(dense) => {
                        let rel = 1e-6 * (1.0 + sparse.plan.objective.abs());
                        assert!(
                            (sparse.plan.objective - dense.plan.objective).abs() <= rel,
                            "backends disagree at {classes} classes: sparse {} vs dense {}",
                            sparse.plan.objective,
                            dense.plan.objective
                        );
                        break (elapsed, true);
                    }
                    Err(harmony::HarmonyError::Optimization(
                        harmony_lp::LpError::IterationLimit { .. },
                    )) => {
                        if elapsed >= 5.0 * sparse_seconds || cap >= 65_536 {
                            break (elapsed, false);
                        }
                        cap *= 4;
                    }
                    Err(e) => panic!("dense capped run failed unexpectedly: {e}"),
                }
            };
            dense_seconds = secs;
            dense_completed = completed;
        }
        out.push(ScalingPoint {
            classes,
            horizon,
            lp_vars: sparse.lp_vars,
            lp_constraints: sparse.lp_constraints,
            sparse_seconds,
            sparse_pivots: sparse.pivots,
            sparse_objective: sparse.plan.objective,
            dense_seconds,
            dense_completed,
            dense_pivot_cap,
        });
    }
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        Scale::Quick
    } else {
        Scale::from_env()
    };
    let (lp_ticks, pipe_ticks, chunk) = match scale {
        Scale::Quick => (8, 4, 150),
        Scale::Default => (24, 8, 200),
        Scale::Full => (48, 16, 300),
    };

    let (trace, catalog, config, classifier_config) = evaluation_setup(scale);
    let classifier =
        TaskClassifier::fit(trace.tasks(), &classifier_config).expect("classifier fit");
    let manager = ContainerManager::new(&classifier, &config).expect("container manager");
    let n_classes = manager.n_classes();

    // ---- Experiment 1: cold vs warm LP chain -------------------------
    section("LP warm start: cold vs warm pivots per tick");
    let container_sizes: Vec<Resources> = (0..n_classes)
        .map(|n| manager.container_size(TaskClassId(n)))
        .collect();
    let utility: Vec<f64> = classifier
        .classes()
        .iter()
        .map(|c| config.utility_for(c.group))
        .collect();
    let price = EnergyPrice::default();
    let base: Vec<f64> = (0..n_classes).map(|n| 8.0 + 3.0 * (n % 5) as f64).collect();
    let template = CbsInputs {
        catalog: &catalog,
        container_sizes: &container_sizes,
        utility_per_hour: &utility,
        demand: &[],
        initial_active: &[],
        price: &price,
        now: SimTime::ZERO,
    };

    // Record the input sequence first (chaining initial_active through
    // the cold plan) so the timed passes replay identical problems.
    let mut inputs_seq = Vec::with_capacity(lp_ticks);
    let mut initial = vec![0.0f64; catalog.len()];
    for i in 0..lp_ticks {
        let now = SimTime::from_secs(i as f64 * config.control_period.as_secs());
        let demand = demand_at(i, config.horizon, &base);
        let s = solve_cbs_relax_warm(
            &CbsInputs {
                demand: &demand,
                initial_active: &initial,
                now,
                ..template.clone()
            },
            &config,
            None,
        )
        .expect("benchmark LP must solve");
        inputs_seq.push(TickInputs {
            demand,
            initial: initial.clone(),
            now,
        });
        initial = s.plan.first_step_machines().to_vec();
    }

    let lp = lp_experiment(&inputs_seq, &template, &config);
    let rows: Vec<Vec<String>> = lp
        .ticks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            vec![
                i.to_string(),
                t.cold_pivots.to_string(),
                t.warm_pivots.to_string(),
                t.warm_started.to_string(),
            ]
        })
        .collect();
    table(
        &["tick", "cold_pivots", "warm_pivots", "warm_started"],
        &rows,
    );

    let cold_total: usize = lp.ticks.iter().map(|t| t.cold_pivots).sum();
    let warm_total: usize = lp.ticks.iter().map(|t| t.warm_pivots).sum();
    let warm_hits = lp.ticks.iter().filter(|t| t.warm_started).count();
    assert!(
        warm_total <= cold_total,
        "warm chain must not pivot more than cold: {warm_total} vs {cold_total}"
    );
    assert!(
        warm_hits == 0 || warm_total < cold_total,
        "with {warm_hits} warm restarts, warm pivots must drop: {warm_total} vs {cold_total}"
    );
    println!(
        "total pivots: cold={cold_total} warm={warm_total} ({warm_hits}/{} restarts took); \
         wall: cold={}s warm={}s",
        lp.ticks.len(),
        fmt(lp.cold_seconds),
        fmt(lp.warm_seconds)
    );

    // ---- Experiment 2: serial vs parallel pipeline -------------------
    section("Pipeline fan-out: serial vs parallel wall time");
    let run = |workers: Option<usize>| {
        let cfg = HarmonyConfig {
            pipeline_workers: workers,
            ..config.clone()
        };
        let mut pipeline = OnlinePipeline::new(
            classifier.clone(),
            catalog.clone(),
            cfg,
            EnergyPrice::default(),
        )
        .expect("pipeline");
        let clock = Instant::now();
        let plans: Vec<_> = (0..pipe_ticks)
            .map(|i| {
                let lo = (i * chunk).min(trace.len());
                let hi = ((i + 1) * chunk).min(trace.len());
                let tasks = &trace.tasks()[lo..hi];
                pipeline.tick(tasks, tasks)
            })
            .collect();
        assert_eq!(
            pipeline.error_count(),
            0,
            "benchmark ticks must not degrade"
        );
        (plans, clock.elapsed().as_secs_f64())
    };
    // Force a multi-worker run even on single-core hosts so the
    // threaded fan-out path is actually exercised; the automatic count
    // (`None`) is what production uses and is reported alongside.
    let auto_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(n_classes);
    let workers = auto_workers.max(4).min(n_classes.max(1));
    let (serial_plans, serial_seconds) = run(Some(1));
    let (parallel_plans, parallel_seconds) = run(Some(workers));
    assert_eq!(
        serial_plans, parallel_plans,
        "parallel plans must be bit-identical to serial"
    );
    let (auto_plans, _) = run(None);
    assert_eq!(auto_plans, serial_plans, "auto worker count must match too");
    table(
        &["variant", "workers", "ticks", "seconds"],
        &[
            vec![
                "serial".into(),
                "1".into(),
                pipe_ticks.to_string(),
                fmt(serial_seconds),
            ],
            vec![
                "parallel".into(),
                workers.to_string(),
                pipe_ticks.to_string(),
                fmt(parallel_seconds),
            ],
        ],
    );
    println!("plans bit-identical across worker counts: yes");

    // ---- Experiment 3: sparse vs dense scaling curve -----------------
    section("Backend scaling: sparse revised simplex vs dense tableau");
    let points: &[(usize, usize)] = match scale {
        Scale::Quick => &[(8, 2), (40, 3)],
        Scale::Default => &[(8, 2), (60, 3), (660, 4)],
        Scale::Full => &[(8, 2), (60, 3), (240, 4), (660, 4)],
    };
    let curve = scaling_experiment(&catalog, &config, points);
    let rows: Vec<Vec<String>> = curve
        .iter()
        .map(|p| {
            vec![
                p.classes.to_string(),
                p.horizon.to_string(),
                p.lp_vars.to_string(),
                p.lp_constraints.to_string(),
                fmt(p.sparse_seconds),
                p.sparse_pivots.to_string(),
                format!(
                    "{}{}",
                    fmt(p.dense_seconds),
                    if p.dense_completed { "" } else { "+ (capped)" }
                ),
            ]
        })
        .collect();
    table(
        &["classes", "horizon", "lp_vars", "lp_rows", "sparse_s", "sparse_pivots", "dense_s"],
        &rows,
    );

    let largest = curve.last().expect("scaling curve has at least one point");
    let period_secs = config.control_period.as_secs();
    assert!(
        largest.sparse_seconds < period_secs,
        "sparse must solve the largest instance ({} vars) inside one control period: {}s vs {}s",
        largest.lp_vars,
        largest.sparse_seconds,
        period_secs
    );
    if largest.dense_completed {
        assert!(
            largest.sparse_seconds <= largest.dense_seconds,
            "sparse must not lose to dense at the largest scale point: {}s vs {}s",
            largest.sparse_seconds,
            largest.dense_seconds
        );
    }
    if largest.lp_vars >= DENSE_FULL_SOLVE_MAX_VARS {
        assert!(
            largest.dense_seconds >= 5.0 * largest.sparse_seconds,
            "sparse must beat dense 5x at the largest scale point: sparse {}s, dense {}{}s",
            largest.sparse_seconds,
            if largest.dense_completed { "" } else { ">=" },
            largest.dense_seconds
        );
        println!(
            "largest point: {} vars solved in {}s on sparse; dense needed {}{}s ({}x)",
            largest.lp_vars,
            fmt(largest.sparse_seconds),
            if largest.dense_completed { "" } else { ">=" },
            fmt(largest.dense_seconds),
            fmt(largest.dense_seconds / largest.sparse_seconds.max(1e-9)),
        );
    } else {
        println!(
            "largest point: {} vars; sparse {}s vs dense {}s",
            largest.lp_vars,
            fmt(largest.sparse_seconds),
            fmt(largest.dense_seconds)
        );
    }

    // ---- Artifact ----------------------------------------------------
    let per_tick = Value::Array(
        lp.ticks
            .iter()
            .enumerate()
            .map(|(i, t)| {
                object(&[
                    ("tick", Value::Number(i as f64)),
                    ("cold_pivots", Value::Number(t.cold_pivots as f64)),
                    ("warm_pivots", Value::Number(t.warm_pivots as f64)),
                    ("warm_started", Value::Bool(t.warm_started)),
                ])
            })
            .collect(),
    );
    let payload = object(&[
        ("name", Value::String("provisioning_perf".to_owned())),
        ("scale", Value::String(scale.name().to_owned())),
        (
            "lp",
            object(&[
                ("ticks", Value::Number(lp.ticks.len() as f64)),
                ("cold_pivots_total", Value::Number(cold_total as f64)),
                ("warm_pivots_total", Value::Number(warm_total as f64)),
                ("warm_restarts", Value::Number(warm_hits as f64)),
                ("cold_seconds", Value::Number(lp.cold_seconds)),
                ("warm_seconds", Value::Number(lp.warm_seconds)),
                ("per_tick", per_tick),
            ]),
        ),
        (
            "pipeline",
            object(&[
                ("ticks", Value::Number(pipe_ticks as f64)),
                ("serial_seconds", Value::Number(serial_seconds)),
                ("parallel_seconds", Value::Number(parallel_seconds)),
                ("workers", Value::Number(workers as f64)),
                ("auto_workers", Value::Number(auto_workers as f64)),
                ("plans_identical", Value::Bool(true)),
            ]),
        ),
        (
            "scaling",
            object(&[
                ("control_period_seconds", Value::Number(period_secs)),
                (
                    "points",
                    Value::Array(
                        curve
                            .iter()
                            .map(|p| {
                                object(&[
                                    ("classes", Value::Number(p.classes as f64)),
                                    ("horizon", Value::Number(p.horizon as f64)),
                                    ("lp_vars", Value::Number(p.lp_vars as f64)),
                                    ("lp_constraints", Value::Number(p.lp_constraints as f64)),
                                    ("sparse_seconds", Value::Number(p.sparse_seconds)),
                                    ("sparse_pivots", Value::Number(p.sparse_pivots as f64)),
                                    ("sparse_objective", Value::Number(p.sparse_objective)),
                                    ("dense_seconds", Value::Number(p.dense_seconds)),
                                    ("dense_completed", Value::Bool(p.dense_completed)),
                                    (
                                        "dense_pivot_cap",
                                        match p.dense_pivot_cap {
                                            Some(c) => Value::Number(c as f64),
                                            None => Value::Null,
                                        },
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ]);
    let path = write_bench_json("provisioning_perf", &payload).expect("write artifact");
    println!("\nwrote {}", path.display());
}

//! `sim_scale` — wall-clock scaling curve for the simulation engine
//! (DESIGN.md §16): the reference engine (`BinaryHeap` + linear machine
//! scans, the pre-index seed behavior) against the indexed engine
//! (calendar event queue + per-type free-capacity segment trees) at
//! 100 → 1,000 → 10,000 machines.
//!
//! At every point both engines replay the same calibration workload and
//! their `SimReport`s must serialize byte-identically — the index and
//! the calendar are pure accelerations, never decision changes. At the
//! 10,000-machine point (default and `--full` scales) the indexed
//! engine must clear **10x** the reference events/sec.
//!
//! `--quick` stops at 1,000 machines with a shorter workload and
//! asserts the point finishes inside a CI wall-clock budget. `--full`
//! additionally replays the full Table-II-length paper workload
//! (`TraceConfig::paper_scale()`: 29 days, >1M tasks, 10,000 machines)
//! on the indexed engine alone — the reference engine would take hours.
//!
//! Results land in `results/BENCH_sim_scale.json`.

use std::time::Instant;

use harmony_bench::json::{object, write_bench_json};
use harmony_bench::{fmt, section, table, Scale};
use harmony_model::{MachineCatalog, SimDuration};
use harmony_sim::{EngineMode, FirstFit, SimReport, Simulation, SimulationConfig};
use harmony_trace::{Trace, TraceConfig, TraceGenerator};
use serde::value::Value;

/// Wall-clock budget for the 1,000-machine indexed point under
/// `--quick` — generous for slow CI runners, far above the observed
/// time on any development machine.
const QUICK_1K_BUDGET_SECS: f64 = 30.0;

/// The calibration workload for one curve point: arrival rates scale
/// with the machine count so every cluster size carries a comparable
/// per-machine load and the first-fit scan prefix grows with the
/// cluster (the regime where the seed engine's linear scans dominate).
fn calibration_trace(machines: usize, span_hours: f64) -> Trace {
    let mut c = TraceConfig::google_like()
        .with_span(SimDuration::from_hours(span_hours))
        .with_seed(2013 + machines as u64);
    let mult = machines as f64 / 25.0;
    for a in &mut c.arrivals {
        a.base_jobs_per_sec *= mult;
    }
    c.bin = SimDuration::from_mins(2.0);
    TraceGenerator::new(c).generate()
}

struct EngineRun {
    report: SimReport,
    wall_seconds: f64,
    events: u64,
}

impl EngineRun {
    fn events_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.events as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Replays `trace` on a fully-on cluster of `divisor`-scaled Table II
/// machines under one engine mode, counting events via the (reset)
/// global telemetry registry.
fn run_engine(trace: &Trace, divisor: usize, mode: EngineMode) -> EngineRun {
    harmony_telemetry::global().reset();
    let catalog = MachineCatalog::table2().scaled(divisor.max(1));
    let config = SimulationConfig::new(catalog).all_machines_on().engine_mode(mode);
    let started = Instant::now();
    let report = Simulation::new(config, trace, Box::new(FirstFit)).run();
    let wall_seconds = started.elapsed().as_secs_f64();
    let events: u64 = harmony_telemetry::global()
        .snapshot()
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("sim.events."))
        .map(|(_, v)| *v)
        .sum();
    EngineRun { report, wall_seconds, events }
}

struct CurvePoint {
    machines: usize,
    tasks: usize,
    reference: EngineRun,
    indexed: EngineRun,
}

impl CurvePoint {
    fn speedup(&self) -> f64 {
        if self.reference.wall_seconds > 0.0 && self.indexed.wall_seconds > 0.0 {
            self.indexed.events_per_sec() / self.reference.events_per_sec()
        } else {
            1.0
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let full = std::env::args().any(|a| a == "--full");
    let scale = if quick {
        Scale::Quick
    } else if full {
        Scale::Full
    } else {
        Scale::from_env()
    };
    // Span stays short of saturation: long-tailed tasks accumulate
    // occupancy over time, and once the cluster saturates (around the
    // 3-hour mark at this load) the reference engine's per-event drain
    // scans turn the curve from "slow" to "hours".
    let (divisors, span_hours) = match scale {
        // 100 and 1,000 machines only: CI smoke.
        Scale::Quick => (vec![100usize, 10], 0.75),
        Scale::Default => (vec![100, 10, 1], 1.5),
        Scale::Full => (vec![100, 10, 1], 1.5),
    };

    section(&format!("sim engine scaling curve ({})", scale.name()));
    let mut points = Vec::new();
    for divisor in divisors {
        let machines = MachineCatalog::table2().scaled(divisor).total_machines();
        let trace = calibration_trace(machines, span_hours);
        eprintln!("{machines} machines, {} tasks: reference engine...", trace.len());
        let reference = run_engine(&trace, divisor, EngineMode::Reference);
        eprintln!("{machines} machines, {} tasks: indexed engine...", trace.len());
        let indexed = run_engine(&trace, divisor, EngineMode::Indexed);

        // The invariant everything rests on: the index and the calendar
        // accelerate the seed engine without changing one decision.
        let ref_json = serde_json::to_string(&reference.report).expect("serialize report");
        let idx_json = serde_json::to_string(&indexed.report).expect("serialize report");
        assert_eq!(
            ref_json, idx_json,
            "engines diverged at {machines} machines: reports are not byte-identical"
        );

        points.push(CurvePoint { machines, tasks: trace.len(), reference, indexed });
    }

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.machines.to_string(),
                p.tasks.to_string(),
                p.reference.events.to_string(),
                fmt(p.reference.wall_seconds),
                fmt(p.reference.events_per_sec()),
                fmt(p.indexed.wall_seconds),
                fmt(p.indexed.events_per_sec()),
                fmt(p.speedup()),
            ]
        })
        .collect();
    table(
        &[
            "machines",
            "tasks",
            "events",
            "ref wall s",
            "ref ev/s",
            "idx wall s",
            "idx ev/s",
            "speedup",
        ],
        &rows,
    );

    if quick {
        let p1k = points.iter().find(|p| p.machines == 1000).expect("1k point");
        assert!(
            p1k.indexed.wall_seconds <= QUICK_1K_BUDGET_SECS,
            "1,000-machine indexed point took {:.2}s (budget {QUICK_1K_BUDGET_SECS}s)",
            p1k.indexed.wall_seconds
        );
        println!(
            "quick gate: 1k-machine point {:.2}s <= {QUICK_1K_BUDGET_SECS}s budget",
            p1k.indexed.wall_seconds
        );
    } else {
        let p10k = points.iter().find(|p| p.machines == 10_000).expect("10k point");
        assert!(
            p10k.speedup() >= 10.0,
            "indexed engine is only {:.1}x the reference at 10,000 machines (need 10x)",
            p10k.speedup()
        );
        println!("10k gate: indexed engine {:.1}x reference events/sec (>= 10x)", p10k.speedup());
    }

    // --full: the Table-II-length paper workload, indexed engine only.
    let paper = if full {
        section("paper-scale replay (29 days, 10,000 machines, indexed engine)");
        let trace = TraceGenerator::new(TraceConfig::paper_scale()).generate();
        eprintln!("{} tasks generated; replaying...", trace.len());
        let run = run_engine(&trace, 1, EngineMode::Indexed);
        println!(
            "{} tasks, {} events in {:.1}s wall ({} events/sec)",
            trace.len(),
            run.events,
            run.wall_seconds,
            fmt(run.events_per_sec()),
        );
        assert!(
            trace.len() >= 1_000_000,
            "paper-scale trace has only {} tasks (need >= 1M)",
            trace.len()
        );
        Some((trace.len(), run))
    } else {
        None
    };

    let curve = Value::Array(
        points
            .iter()
            .map(|p| {
                object(&[
                    ("machines", Value::Number(p.machines as f64)),
                    ("tasks", Value::Number(p.tasks as f64)),
                    ("events", Value::Number(p.reference.events as f64)),
                    ("reference_wall_seconds", Value::Number(p.reference.wall_seconds)),
                    ("reference_events_per_sec", Value::Number(p.reference.events_per_sec())),
                    ("indexed_wall_seconds", Value::Number(p.indexed.wall_seconds)),
                    ("indexed_events_per_sec", Value::Number(p.indexed.events_per_sec())),
                    ("speedup", Value::Number(p.speedup())),
                    ("reports_identical", Value::Bool(true)),
                ])
            })
            .collect(),
    );
    let paper_value = match &paper {
        Some((tasks, run)) => object(&[
            ("tasks", Value::Number(*tasks as f64)),
            ("machines", Value::Number(10_000.0)),
            ("events", Value::Number(run.events as f64)),
            ("wall_seconds", Value::Number(run.wall_seconds)),
            ("events_per_sec", Value::Number(run.events_per_sec())),
        ]),
        None => Value::Null,
    };
    let payload = object(&[
        ("scale", Value::String(scale.name().to_owned())),
        ("curve", curve),
        ("paper", paper_value),
    ]);
    match write_bench_json("sim_scale", &payload) {
        Ok(path) => eprintln!("scaling curve written to {}", path.display()),
        Err(e) => {
            eprintln!("cannot write sim_scale artifact: {e}");
            std::process::exit(1);
        }
    }
}

//! Ablation: what the provisioning objective prices.
//!
//! Two sweeps over the same CBS setup:
//!
//! 1. **Electricity tariff** — the CBS-RELAX objective weights energy
//!    by the price at each horizon step, so under a time-of-use tariff
//!    the controller should shift optional capacity away from peak
//!    hours. Flat vs day/night tariffs of increasing peak ratio at
//!    equal average price.
//! 2. **Machine market** — the dollar objective priced against an
//!    on-demand-only book vs a spot-aware one: same workload, same
//!    catalog, the only difference is whether the LP may bid on
//!    discounted evictable pools.
//!
//! Both sweeps land in `results/BENCH_ablation_price.json`.

use std::cell::RefCell;
use std::rc::Rc;

use harmony::classify::TaskClassifier;
use harmony::controllers::{CbsController, QuotaScheduler, QuotaState};
use harmony::{CbsObjective, DollarCosts};
use harmony_bench::json::{object, write_bench_json};
use harmony_bench::{evaluation_setup, fmt, section, seed_from_env, table, Scale};
use harmony_model::{EnergyPrice, MachineCatalog, PriorityGroup};
use harmony_pricing::MarketPolicy;
use harmony_sim::{Simulation, SimulationConfig};
use serde::value::Value;

fn main() {
    let (trace, catalog, config, cc) = evaluation_setup(Scale::Quick);
    let classifier = Rc::new(TaskClassifier::fit(trace.tasks(), &cc).expect("fit"));
    let mut json_rows = Vec::new();

    section("Ablation: electricity tariff (CBS, equal mean price)");
    let tariffs: Vec<(&str, EnergyPrice)> = vec![
        ("flat", EnergyPrice::Flat(0.10)),
        (
            "tou 1.5x",
            EnergyPrice::TimeOfUse {
                peak: 0.12,
                off_peak: 0.08,
                peak_start_hour: 8.0,
                peak_end_hour: 20.0,
            },
        ),
        (
            "tou 3x",
            EnergyPrice::TimeOfUse {
                peak: 0.15,
                off_peak: 0.05,
                peak_start_hour: 8.0,
                peak_end_hour: 20.0,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, price) in tariffs {
        let quota = Rc::new(RefCell::new(QuotaState::default()));
        let controller = CbsController::new(
            classifier.clone(),
            config.clone(),
            price.clone(),
            quota.clone(),
        )
        .expect("controller");
        let scheduler = QuotaScheduler::new(classifier.clone(), quota);
        let sim_config = SimulationConfig::new(catalog.clone())
            .price(price)
            .without_preemption();
        let report = Simulation::new(sim_config, &trace, Box::new(scheduler))
            .with_controller(Box::new(controller))
            .run();
        rows.push(vec![
            name.to_owned(),
            fmt(report.total_energy_wh / 1000.0),
            fmt(report.energy_cost_dollars),
            fmt(report.mean_active_machines()),
            fmt(report.delay_stats_overall().mean),
        ]);
        json_rows.push(object(&[
            ("sweep", Value::String("tariff".to_owned())),
            ("setting", Value::String(name.to_owned())),
            ("energy_kwh", Value::Number(report.total_energy_wh / 1000.0)),
            ("energy_cost_dollars", Value::Number(report.energy_cost_dollars)),
            ("mean_active_machines", Value::Number(report.mean_active_machines())),
            ("mean_delay_s", Value::Number(report.delay_stats_overall().mean)),
        ]));
    }
    table(
        &[
            "tariff",
            "energy_kWh",
            "energy_$",
            "mean_active",
            "mean_delay_s",
        ],
        &rows,
    );
    println!(
        "\n(the horizon sees price steps coming: under steeper tariffs the \
         controller defers optional capacity to off-peak periods)"
    );

    // Sweep 2: the dollar objective's machine market. Same trace and
    // controller, but the catalog gains the accelerator pool and the
    // LP minimizes rental + SLO dollars instead of energy; the swept
    // knob is whether the price book may quote spot pools.
    section("Ablation: machine market (CBS dollar objective, spot+accel catalog)");
    // Divisor matches the quick-scale evaluation preset.
    let accel = MachineCatalog::table2_with_accel().scaled(50);
    let groups: Vec<PriorityGroup> = classifier.classes().iter().map(|c| c.group).collect();
    let price = EnergyPrice::Flat(0.10);
    let mut rows = Vec::new();
    for market in [MarketPolicy::OnDemandOnly, MarketPolicy::SpotAware] {
        let objective = CbsObjective::Dollars(DollarCosts::default_for(
            &accel,
            &groups,
            market,
            seed_from_env(),
        ));
        let quota = Rc::new(RefCell::new(QuotaState::default()));
        let controller = CbsController::new(
            classifier.clone(),
            config.clone(),
            price.clone(),
            quota.clone(),
        )
        .expect("controller")
        .with_objective(objective);
        let scheduler = QuotaScheduler::new(classifier.clone(), quota);
        let sim_config =
            SimulationConfig::new(accel.clone()).price(price.clone()).without_preemption();
        let report = Simulation::new(sim_config, &trace, Box::new(scheduler))
            .with_controller(Box::new(controller))
            .run();
        rows.push(vec![
            market.name().to_owned(),
            fmt(report.total_energy_wh / 1000.0),
            fmt(report.mean_active_machines()),
            fmt(report.delay_stats_overall().mean),
            fmt(report.delay_stats_overall().p95),
        ]);
        json_rows.push(object(&[
            ("sweep", Value::String("market".to_owned())),
            ("setting", Value::String(market.name().to_owned())),
            ("energy_kwh", Value::Number(report.total_energy_wh / 1000.0)),
            ("mean_active_machines", Value::Number(report.mean_active_machines())),
            ("mean_delay_s", Value::Number(report.delay_stats_overall().mean)),
            ("p95_delay_s", Value::Number(report.delay_stats_overall().p95)),
        ]));
    }
    table(&["market", "energy_kWh", "mean_active", "mean_delay_s", "p95_delay_s"], &rows);
    println!(
        "\n(spot-aware pricing shifts the plan toward discounted evictable \
         pools; on-demand-only pays full rate for the same capacity)"
    );

    let payload = object(&[
        ("name", Value::String("ablation_price".to_owned())),
        ("seed", Value::Number(seed_from_env() as f64)),
        ("rows", Value::Array(json_rows)),
    ]);
    match write_bench_json("ablation_price", &payload) {
        Ok(path) => println!("ablation written to {}", path.display()),
        Err(e) => eprintln!("warning: could not write BENCH_ablation_price.json: {e}"),
    }
}

//! Ablation: run-time electricity prices `p_t`.
//!
//! The CBS-RELAX objective weights energy by the price at each horizon
//! step, so under a time-of-use tariff the controller should shift
//! optional capacity away from peak hours. This sweep compares a flat
//! tariff against day/night tariffs of increasing peak ratio at equal
//! average price.

use std::cell::RefCell;
use std::rc::Rc;

use harmony::classify::TaskClassifier;
use harmony::controllers::{CbsController, QuotaScheduler, QuotaState};
use harmony_bench::{evaluation_setup, fmt, section, table, Scale};
use harmony_model::EnergyPrice;
use harmony_sim::{Simulation, SimulationConfig};

fn main() {
    let (trace, catalog, config, cc) = evaluation_setup(Scale::Quick);
    let classifier = Rc::new(TaskClassifier::fit(trace.tasks(), &cc).expect("fit"));

    section("Ablation: electricity tariff (CBS, equal mean price)");
    let tariffs: Vec<(&str, EnergyPrice)> = vec![
        ("flat", EnergyPrice::Flat(0.10)),
        (
            "tou 1.5x",
            EnergyPrice::TimeOfUse {
                peak: 0.12,
                off_peak: 0.08,
                peak_start_hour: 8.0,
                peak_end_hour: 20.0,
            },
        ),
        (
            "tou 3x",
            EnergyPrice::TimeOfUse {
                peak: 0.15,
                off_peak: 0.05,
                peak_start_hour: 8.0,
                peak_end_hour: 20.0,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (name, price) in tariffs {
        let quota = Rc::new(RefCell::new(QuotaState::default()));
        let controller = CbsController::new(
            classifier.clone(),
            config.clone(),
            price.clone(),
            quota.clone(),
        )
        .expect("controller");
        let scheduler = QuotaScheduler::new(classifier.clone(), quota);
        let sim_config = SimulationConfig::new(catalog.clone())
            .price(price)
            .without_preemption();
        let report = Simulation::new(sim_config, &trace, Box::new(scheduler))
            .with_controller(Box::new(controller))
            .run();
        rows.push(vec![
            name.to_owned(),
            fmt(report.total_energy_wh / 1000.0),
            fmt(report.energy_cost_dollars),
            fmt(report.mean_active_machines()),
            fmt(report.delay_stats_overall().mean),
        ]);
    }
    table(
        &[
            "tariff",
            "energy_kWh",
            "energy_$",
            "mean_active",
            "mean_delay_s",
        ],
        &rows,
    );
    println!(
        "\n(the horizon sees price steps coming: under steeper tariffs the \
         controller defers optional capacity to off-peak periods)"
    );
}

//! Fig. 9: machine energy consumption as a function of CPU usage.
//!
//! The paper's point: a 0.2-CPU container cannot run on a PowerEdge
//! R210, and while the bigger servers can host it, they draw much more
//! power at that load — picking the "right" machine type matters.

use harmony_bench::{fmt, section, table};
use harmony_model::{MachineCatalog, Resources};

fn main() {
    let catalog = MachineCatalog::table2();
    section("Fig. 9: power (W) vs absolute CPU usage (normalized units)");
    // Sweep absolute CPU usage in normalized units of the largest
    // machine; a machine out of range prints "-" (cannot host).
    let steps: Vec<f64> = (0..=20).map(|i| i as f64 * 0.05).collect();
    let mut rows = Vec::new();
    for &u in &steps {
        let mut row = vec![fmt(u)];
        for ty in catalog.iter() {
            if u <= ty.capacity.cpu + 1e-12 {
                let util = Resources::new(u / ty.capacity.cpu, 0.0);
                row.push(fmt(ty.power.power_watts(util)));
            } else {
                row.push("-".to_owned());
            }
        }
        rows.push(row);
    }
    let mut headers = vec!["cpu_usage"];
    let names: Vec<&str> = catalog.iter().map(|t| t.name.as_str()).collect();
    headers.extend(names);
    table(&headers, &rows);

    // The paper's worked example: a 0.2-CPU container.
    section("0.2-CPU container placement energy (paper's example)");
    for ty in catalog.iter() {
        if ty.capacity.cpu >= 0.2 {
            let util = Resources::new(0.2 / ty.capacity.cpu, 0.0);
            println!("{}: {} W", ty.name, fmt(ty.power.power_watts(util)));
        } else {
            println!(
                "{}: cannot host (capacity {})",
                ty.name,
                fmt(ty.capacity.cpu)
            );
        }
    }
}

//! Fig. 20: total containers per priority group computed by HARMONY.
//!
//! Replays the trace through the monitoring → prediction → container-
//! manager pipeline (no simulator in the loop) and prints the container
//! counts the controller would reserve each period.

use harmony::classify::{ClassifierConfig, TaskClassifier};
use harmony::containers::ContainerManager;
use harmony::monitor::ArrivalMonitor;
use harmony::HarmonyConfig;
use harmony_bench::{analysis_trace, fmt, section, table, Scale};
use harmony_model::{PriorityGroup, TaskClassId};

fn main() {
    let trace = analysis_trace(Scale::from_env());
    let config = HarmonyConfig::default();
    let classifier = TaskClassifier::fit(trace.tasks(), &ClassifierConfig::default()).expect("fit");
    let manager = ContainerManager::new(&classifier, &config).expect("manager");
    let mut monitor = ArrivalMonitor::new(
        classifier.classes().len(),
        config.control_period,
        config.history_len,
        config.arima_min_history,
    );

    section("Fig. 20: containers per priority group per control period");
    let period = config.control_period;
    let mut rows = Vec::new();
    let mut chunk = Vec::new();
    let mut boundary = period;
    let mut period_idx = 0usize;
    for task in trace.tasks() {
        while task.arrival.as_secs() > boundary.as_secs() {
            rows.extend(flush_period(
                &mut monitor,
                &classifier,
                &manager,
                &mut chunk,
                period_idx,
            ));
            boundary += period;
            period_idx += 1;
        }
        chunk.push(*task);
    }
    rows.extend(flush_period(
        &mut monitor,
        &classifier,
        &manager,
        &mut chunk,
        period_idx,
    ));
    table(&["period", "gratis", "other", "production", "total"], &rows);
}

fn flush_period(
    monitor: &mut ArrivalMonitor,
    classifier: &TaskClassifier,
    manager: &ContainerManager,
    chunk: &mut Vec<harmony_model::Task>,
    period_idx: usize,
) -> Vec<Vec<String>> {
    monitor.record_period(chunk.iter(), classifier);
    chunk.clear();
    let rates = match monitor.forecast(1) {
        Ok(r) => r,
        Err(_) => return Vec::new(),
    };
    let mut per_group = [0usize; 3];
    for (n, class) in classifier.classes().iter().enumerate() {
        let count = manager
            .containers_for_rate(TaskClassId(n), rates[n][0])
            .unwrap_or(0);
        per_group[class.group.index()] += count;
    }
    vec![vec![
        period_idx.to_string(),
        per_group[PriorityGroup::Gratis.index()].to_string(),
        per_group[PriorityGroup::Other.index()].to_string(),
        per_group[PriorityGroup::Production.index()].to_string(),
        fmt(per_group.iter().sum::<usize>() as f64),
    ]]
}

//! Ablation: the over-provisioning factor ω (Eq. 17).
//!
//! ω inflates container sizes inside the capacity constraint to absorb
//! bin-packing inefficiency. The paper samples ω in [1, 2|R|]; we sweep
//! the same range and report the energy/delay trade-off.

use harmony::pipeline::{run_variant, Variant};
use harmony_bench::{evaluation_setup, fmt, section, table, Scale};

fn main() {
    let (trace, catalog, base_config, classifier_config) = evaluation_setup(Scale::Quick);

    section("Ablation: over-provisioning factor omega (CBS)");
    let mut rows = Vec::new();
    for omega in [1.0, 1.1, 1.25, 1.5, 2.0, 4.0] {
        let mut config = base_config.clone();
        config.omega = omega;
        let report =
            run_variant(&trace, &catalog, &config, &classifier_config, Variant::Cbs).expect("run");
        rows.push(vec![
            fmt(omega),
            fmt(report.total_energy_wh / 1000.0),
            fmt(report.mean_active_machines()),
            fmt(report.delay_stats_overall().mean),
            fmt(report.delay_stats_overall().p99),
            report.tasks_pending_at_end.to_string(),
        ]);
    }
    table(
        &[
            "omega",
            "energy_kWh",
            "mean_active",
            "mean_delay_s",
            "p99_delay_s",
            "pending_end",
        ],
        &rows,
    );
    println!(
        "\n(omega = 1 trusts fractional packing exactly; omega = 2|R| = 4 \
         doubles-per-resource the reserved headroom — more energy, less delay)"
    );
}

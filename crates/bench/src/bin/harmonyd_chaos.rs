//! Chaos benchmark: `harmonyd`'s resilience machinery measured end to
//! end, in process.
//!
//! Five phases, each against a dedicated in-process daemon (the real
//! `net::serve` loop on an ephemeral port) or the checkpoint layer
//! directly:
//!
//! 1. **flood** — a seeded connection storm (well-formed, malformed,
//!    and torn frames) straight at the daemon; every connection must
//!    get a typed answer.
//! 2. **shed** — the connection cap is filled with live clients, then
//!    excess connections are counted as they are shed with typed
//!    `overloaded` responses.
//! 3. **proxy + slow loris** — the same storm through the seeded
//!    fault-injecting proxy (dribbled bytes, mid-frame cuts), plus
//!    deliberate half-frame clients that must trip the read deadline.
//! 4. **recovery** — checkpoint generations are corrupted (bit flip,
//!    truncation) and the fallback load + service rebuild is timed.
//! 5. **watchdog** — chaos-injected tick panics; measures how fast the
//!    supervisor restarts the ticker under capped backoff.
//!
//! Honors `--quick` (smaller storms, fewer seeds) and writes
//! `results/BENCH_harmonyd_chaos.json` with the shed / timeout /
//! restart / recovery numbers (see [`harmony_bench::json`]).

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, RwLock};
use std::thread;
use std::time::{Duration, Instant};

use harmony::classify::{ClassifierConfig, TaskClassifier};
use harmony::{HarmonyConfig, OnlinePipeline};
use harmony_bench::json::{self, object};
use harmony_bench::section;
use harmony_model::SimDuration;
use harmony_server::chaos::{flood, ChaosConfig, ChaosProxy};
use harmony_server::net::{self, ConnectionLimits, ServeOptions, TickerChaos, WatchdogPolicy};
use harmony_server::protocol::read_line;
use harmony_server::state::{self, CatalogSpec, ObjectiveSpec};
use harmony_server::{Client, Service};
use harmony_telemetry as telemetry;
use serde::value::Value;

const SEEDS_FULL: &[u64] = &[1, 2, 3];
const SEEDS_QUICK: &[u64] = &[1];

fn build_service(snapshot: Option<PathBuf>) -> Service {
    let span = SimDuration::from_secs(2.0 * 3600.0);
    let (trace, source) =
        state::load_source(None, "jsonl", 33, span, None).expect("synthetic trace");
    let classifier_config = ClassifierConfig::default();
    let classifier =
        TaskClassifier::fit(trace.tasks(), &classifier_config).expect("classifier fit");
    let catalog_spec = CatalogSpec { name: "table2".to_owned(), divisor: 100 };
    let catalog = catalog_spec.build().expect("catalog");
    let pipeline =
        OnlinePipeline::new(classifier, catalog, HarmonyConfig::default(), Default::default())
            .expect("pipeline");
    Service::new(
        pipeline,
        classifier_config,
        source,
        catalog_spec,
        ObjectiveSpec::Energy,
        snapshot,
    )
}

/// The real serve loop on an ephemeral port, in a background thread.
struct InProcess {
    addr: std::net::SocketAddr,
    handle: thread::JoinHandle<std::io::Result<()>>,
}

fn start_daemon(service: Service, options: ServeOptions) -> InProcess {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let service = Arc::new(RwLock::new(service));
    let handle = thread::spawn(move || net::serve(listener, service, options));
    InProcess { addr, handle }
}

impl InProcess {
    fn client(&self) -> Client {
        Client::connect(self.addr).expect("connect to in-process daemon")
    }

    fn shutdown(self) {
        self.client().shutdown().expect("clean shutdown");
        self.handle.join().expect("serve thread").expect("serve result");
    }
}

fn counter(name: &str) -> u64 {
    telemetry::global().snapshot().counter(name)
}

/// Half a frame, then silence past the daemon's read deadline.
fn slow_loris(addr: std::net::SocketAddr, silence: Duration) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream.write_all(b"{\"verb\":\"sta").expect("half frame");
    thread::sleep(silence);
    let mut reader = std::io::BufReader::new(stream);
    let _ = read_line(&mut reader);
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let seeds = if quick { SEEDS_QUICK } else { SEEDS_FULL };
    let flood_size = if quick { 16 } else { 48 };
    eprintln!(
        "harmonyd chaos bench: {} seeds, {flood_size}-way floods{}",
        seeds.len(),
        if quick { " (--quick)" } else { "" }
    );

    let limits = ConnectionLimits {
        max_connections: 8,
        max_inflight: 2,
        read_timeout: Duration::from_millis(300),
        write_timeout: Duration::from_secs(5),
        retry_after_ms: 100,
    };

    // Phase 1+2+3: one daemon under the storm limits.
    let daemon = start_daemon(
        build_service(None),
        ServeOptions { limits: limits.clone(), ..ServeOptions::default() },
    );

    section("phase 1: direct flood");
    let shed0 = counter("server.shed_total");
    let t = Instant::now();
    let (mut attempted, mut connected, mut responded, mut overloaded, mut errors) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for &seed in seeds {
        let report = flood(daemon.addr, flood_size, seed);
        attempted += report.attempted as u64;
        connected += report.connected as u64;
        responded += report.responded as u64;
        overloaded += report.overloaded as u64;
        errors += report.errors as u64;
    }
    let flood_elapsed = t.elapsed();
    println!(
        "flood: {attempted} attempted, {connected} connected, {responded} responded, \
         {overloaded} overloaded, {errors} errors in {:.0} ms",
        ms(flood_elapsed)
    );

    section("phase 2: deterministic connection-cap shed");
    let t = Instant::now();
    let mut holders: Vec<Client> = (0..limits.max_connections).map(|_| daemon.client()).collect();
    for holder in &mut holders {
        holder.status().expect("holder connection is live");
    }
    let extra = if quick { 4 } else { 16 };
    let mut cap_shed = 0u64;
    for _ in 0..extra {
        let stream = TcpStream::connect(daemon.addr).expect("connect past the cap");
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut reader = std::io::BufReader::new(stream);
        if read_line(&mut reader).ok().flatten().is_some() {
            cap_shed += 1;
        }
    }
    drop(holders);
    let shed_elapsed = t.elapsed();
    let shed_total = counter("server.shed_total") - shed0;
    assert!(shed_total >= extra as u64, "cap must shed every excess connection");
    println!(
        "shed: {cap_shed}/{extra} excess connections answered typed overloaded, \
         server.shed_total +{shed_total} in {:.0} ms",
        ms(shed_elapsed)
    );

    section("phase 3: chaos proxy + slow loris");
    let timeout0 = counter("server.timeout_total");
    let t = Instant::now();
    let (mut proxy_connected, mut proxy_responded) = (0u64, 0u64);
    for &seed in seeds {
        let mut proxy =
            ChaosProxy::start(daemon.addr, ChaosConfig::seeded(seed)).expect("proxy");
        let report = flood(proxy.addr(), flood_size / 2, seed.wrapping_add(100));
        proxy_connected += report.connected as u64;
        proxy_responded += report.responded as u64;
        proxy.stop();
    }
    let loris = if quick { 2 } else { 6 };
    for _ in 0..loris {
        slow_loris(daemon.addr, Duration::from_millis(500));
    }
    let proxy_elapsed = t.elapsed();
    let timeout_total = counter("server.timeout_total") - timeout0;
    assert!(timeout_total >= loris as u64, "every slow loris must trip the read deadline");
    println!(
        "proxy: {proxy_responded}/{proxy_connected} proxied connections answered; \
         {loris} slow-loris clients, server.timeout_total +{timeout_total} in {:.0} ms",
        ms(proxy_elapsed)
    );
    daemon.shutdown();

    section("phase 4: checkpoint corruption recovery");
    let dir = std::env::temp_dir().join(format!("harmonyd-chaos-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let ckpt = dir.join("ckpt.json");
    let mut svc = build_service(Some(ckpt.clone()));
    svc.save_checkpoint().expect("seed generation");
    svc.tick_once();
    svc.save_checkpoint().expect("rotate generation");

    state::flip_bit(&ckpt, 100, 1).expect("flip a checkpoint bit");
    let t = Instant::now();
    let (checkpoint, events) = state::load_with_recovery(&ckpt).expect("recover from bit flip");
    let bitflip_load = t.elapsed();
    let t = Instant::now();
    let restored =
        Service::from_checkpoint(checkpoint, Some(ckpt.clone())).expect("service rebuild");
    let bitflip_rebuild = t.elapsed();
    assert!(!events.is_empty(), "bit flip must surface a recovery event");
    let bitflip_events = events.len() as u64;
    // Two saves: the first rotates the *corrupt* primary into the
    // generation slot while writing a good primary; the second rotates
    // that good primary down, so both generations are valid again
    // before the truncation torture.
    restored.save_checkpoint().expect("repair primary");
    restored.save_checkpoint().expect("repair generation");

    let len = std::fs::metadata(&ckpt).expect("checkpoint metadata").len();
    state::truncate_to(&ckpt, len / 2).expect("truncate checkpoint");
    let t = Instant::now();
    let (checkpoint, events) = state::load_with_recovery(&ckpt).expect("recover from truncation");
    let truncated_load = t.elapsed();
    assert!(!events.is_empty(), "truncation must surface a recovery event");
    let truncated_events = events.len() as u64;
    drop(Service::from_checkpoint(checkpoint, None).expect("service rebuild"));
    std::fs::remove_dir_all(&dir).expect("cleanup");
    println!(
        "recovery: bit flip {:.1} ms load + {:.1} ms rebuild ({bitflip_events} events); \
         truncation {:.1} ms load ({truncated_events} events)",
        ms(bitflip_load),
        ms(bitflip_rebuild),
        ms(truncated_load)
    );

    section("phase 5: ticker watchdog under injected panics");
    let restarts0 = counter("server.ticker_restarts");
    let want_restarts: u64 = if quick { 2 } else { 4 };
    let daemon = start_daemon(
        build_service(None),
        ServeOptions {
            tick_period: Some(Duration::from_millis(50)),
            limits: ConnectionLimits::default(),
            watchdog: WatchdogPolicy {
                deadline_multiple: 4,
                backoff_base: Duration::from_millis(25),
                backoff_cap: Duration::from_millis(100),
            },
            chaos: TickerChaos { panic_every: Some(2), ..TickerChaos::default() },
        },
    );
    let t = Instant::now();
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut restarts = 0;
    while Instant::now() < deadline {
        restarts = counter("server.ticker_restarts") - restarts0;
        if restarts >= want_restarts {
            break;
        }
        thread::sleep(Duration::from_millis(20));
    }
    let watchdog_elapsed = t.elapsed();
    assert!(restarts >= want_restarts, "watchdog must keep restarting the ticker");
    let ticks = daemon.client().status().expect("status").ticks;
    daemon.shutdown();
    println!(
        "watchdog: {restarts} restarts ({ticks} surviving ticks) in {:.0} ms \
         — {:.1} ms mean time-to-restart",
        ms(watchdog_elapsed),
        ms(watchdog_elapsed) / restarts as f64
    );

    let payload = object(&[
        ("name", Value::String("harmonyd_chaos".to_owned())),
        ("quick", Value::Bool(quick)),
        ("seeds", Value::Number(seeds.len() as f64)),
        (
            "flood",
            object(&[
                ("attempted", Value::Number(attempted as f64)),
                ("connected", Value::Number(connected as f64)),
                ("responded", Value::Number(responded as f64)),
                ("overloaded", Value::Number(overloaded as f64)),
                ("errors", Value::Number(errors as f64)),
                ("elapsed_ms", Value::Number(ms(flood_elapsed))),
            ]),
        ),
        (
            "shed",
            object(&[
                ("excess_connections", Value::Number(extra as f64)),
                ("typed_responses", Value::Number(cap_shed as f64)),
                ("shed_total", Value::Number(shed_total as f64)),
                ("elapsed_ms", Value::Number(ms(shed_elapsed))),
            ]),
        ),
        (
            "deadlines",
            object(&[
                ("proxy_connected", Value::Number(proxy_connected as f64)),
                ("proxy_responded", Value::Number(proxy_responded as f64)),
                ("slow_loris_clients", Value::Number(loris as f64)),
                ("timeout_total", Value::Number(timeout_total as f64)),
                ("elapsed_ms", Value::Number(ms(proxy_elapsed))),
            ]),
        ),
        (
            "recovery",
            object(&[
                ("bitflip_load_ms", Value::Number(ms(bitflip_load))),
                ("bitflip_rebuild_ms", Value::Number(ms(bitflip_rebuild))),
                ("bitflip_events", Value::Number(bitflip_events as f64)),
                ("truncated_load_ms", Value::Number(ms(truncated_load))),
                ("truncated_events", Value::Number(truncated_events as f64)),
            ]),
        ),
        (
            "watchdog",
            object(&[
                ("restarts", Value::Number(restarts as f64)),
                ("surviving_ticks", Value::Number(ticks as f64)),
                ("elapsed_ms", Value::Number(ms(watchdog_elapsed))),
                (
                    "mean_time_to_restart_ms",
                    Value::Number(ms(watchdog_elapsed) / restarts as f64),
                ),
            ]),
        ),
    ]);
    let path = json::write_bench_json("harmonyd_chaos", &payload).expect("write artifact");
    eprintln!("wrote {}", path.display());
}

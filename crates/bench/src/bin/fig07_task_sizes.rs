//! Fig. 7a–c: task CPU × memory scatter per priority group.
//!
//! The paper's observations: sizes span ~3 orders of magnitude; 43% of
//! gratis tasks sit at exactly (0.0125, 0.0159); large tasks are either
//! CPU-intensive or memory-intensive; CPU and memory are uncorrelated.

use harmony_bench::{analysis_trace, fmt, section, table, Scale};
use harmony_model::{PriorityGroup, Resources};
use harmony_trace::stats::size_scatter;

fn main() {
    let trace = analysis_trace(Scale::from_env());

    for group in PriorityGroup::ALL {
        let points = size_scatter(&trace, group, 200);
        section(&format!("Fig. 7 ({group}): task size scatter sample"));
        let rows: Vec<Vec<String>> = points.iter().map(|(c, m)| vec![fmt(*c), fmt(*m)]).collect();
        table(&["cpu", "mem"], &rows);
    }

    section("Fig. 7 summary statistics");
    let mut rows = Vec::new();
    for group in PriorityGroup::ALL {
        let sizes: Vec<Resources> = trace.tasks_in_group(group).map(|t| t.demand).collect();
        let max_cpu = sizes.iter().map(|r| r.cpu).fold(0.0, f64::max);
        let min_cpu = sizes.iter().map(|r| r.cpu).fold(f64::INFINITY, f64::min);
        // Pearson correlation between cpu and mem.
        let n = sizes.len() as f64;
        let mc = sizes.iter().map(|r| r.cpu).sum::<f64>() / n;
        let mm = sizes.iter().map(|r| r.mem).sum::<f64>() / n;
        let cov = sizes
            .iter()
            .map(|r| (r.cpu - mc) * (r.mem - mm))
            .sum::<f64>()
            / n;
        let sc = (sizes.iter().map(|r| (r.cpu - mc).powi(2)).sum::<f64>() / n).sqrt();
        let sm = (sizes.iter().map(|r| (r.mem - mm).powi(2)).sum::<f64>() / n).sqrt();
        let corr = cov / (sc * sm).max(1e-12);
        let exact = sizes
            .iter()
            .filter(|r| **r == Resources::new(0.0125, 0.0159))
            .count() as f64
            / n;
        rows.push(vec![
            group.to_string(),
            fmt(min_cpu),
            fmt(max_cpu),
            fmt(max_cpu / min_cpu),
            fmt(corr),
            fmt(exact),
        ]);
    }
    table(
        &[
            "group",
            "min_cpu",
            "max_cpu",
            "span_x",
            "cpu_mem_corr",
            "frac_at_dominant_mode",
        ],
        &rows,
    );
}

//! Resumable fault-scenario replays.
//!
//! A fault-mode replay runs every controller variant through the same
//! fault plan — at full scale that is minutes of wall-clock per
//! variant. This module makes the run interruptible: a
//! [`ReplayCheckpoint`] records the run's *inputs* (trace provenance
//! with an integrity hash, catalog, controller configuration, fault
//! scenario and seed) plus every variant's finished [`SimReport`].
//! Because the simulator is deterministic given those inputs, resuming
//! means re-deriving the setup, skipping the recorded variants, and
//! running the rest — the combined reports are bit-identical to an
//! uninterrupted run.
//!
//! Checkpoints are written atomically (`<path>.tmp` + rename), the same
//! discipline `harmonyd` uses for controller state.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use harmony::classify::ClassifierConfig;
use harmony::pipeline::{run_variant_with_faults, Variant};
use harmony::HarmonyConfig;
use harmony_model::{MachineCatalog, SimDuration};
use harmony_sim::{FaultPlan, SimReport};
use harmony_trace::{google_csv, Trace};
use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};

use crate::{evaluation_setup_seeded, Scale};

/// Bumped whenever the replay checkpoint schema changes incompatibly.
pub const REPLAY_CHECKPOINT_VERSION: u64 = 1;

/// Everything needed to re-derive a fault-mode replay from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayInputs {
    /// Fault scenario name (one of [`harmony_sim::SCENARIOS`]).
    pub scenario: String,
    /// Seed of the fault plan.
    pub fault_seed: u64,
    /// Trace file, or `None` for the synthetic evaluation workload.
    pub trace_path: Option<String>,
    /// Trace file format (`jsonl` | `google-csv`).
    pub trace_format: String,
    /// FNV-1a-64 of the trace file bytes (file runs only).
    pub trace_hash: Option<u64>,
    /// Scale preset for the synthetic workload (`quick`/`default`/`full`).
    pub scale: String,
    /// Workload RNG seed for the synthetic workload.
    pub workload_seed: u64,
    /// Catalog name (`table2` | `google10`) — file runs only; the
    /// synthetic setup derives its own catalog from the scale.
    pub catalog: String,
    /// Catalog population divisor (file runs only).
    pub catalog_scale: usize,
    /// Control period in minutes (file runs only).
    pub period_mins: f64,
}

/// A replay checkpoint: inputs + the reports finished so far.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayCheckpoint {
    /// Schema version ([`REPLAY_CHECKPOINT_VERSION`]).
    pub version: u64,
    /// The run's inputs.
    pub inputs: ReplayInputs,
    /// `(variant name, report)` for every variant already finished, in
    /// [`Variant::ALL`] order.
    pub completed: Vec<(String, SimReport)>,
}

/// 64-bit hashes exceed the f64-exact integer range of the JSON value
/// model, so they travel as hex strings.
fn hash_to_value(hash: Option<u64>) -> Value {
    match hash {
        Some(h) => Value::String(format!("{h:#018x}")),
        None => Value::Null,
    }
}

fn hash_from_value(v: &Value) -> Result<Option<u64>, DeError> {
    match v {
        Value::Null => Ok(None),
        _ => {
            let text = String::from_value(v)?;
            u64::from_str_radix(text.trim_start_matches("0x"), 16)
                .map(Some)
                .map_err(|e| DeError::new(format!("bad hash `{text}`: {e}")))
        }
    }
}

impl Serialize for ReplayInputs {
    fn to_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("scenario".to_owned(), self.scenario.to_value());
        map.insert("fault_seed".to_owned(), self.fault_seed.to_value());
        map.insert("trace_path".to_owned(), self.trace_path.to_value());
        map.insert("trace_format".to_owned(), self.trace_format.to_value());
        map.insert("trace_hash".to_owned(), hash_to_value(self.trace_hash));
        map.insert("scale".to_owned(), self.scale.to_value());
        map.insert("workload_seed".to_owned(), self.workload_seed.to_value());
        map.insert("catalog".to_owned(), self.catalog.to_value());
        map.insert("catalog_scale".to_owned(), self.catalog_scale.to_value());
        map.insert("period_mins".to_owned(), self.period_mins.to_value());
        Value::Object(map)
    }
}

impl Deserialize for ReplayInputs {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(ReplayInputs {
            scenario: String::from_value(v.field("scenario")?)?,
            fault_seed: u64::from_value(v.field("fault_seed")?)?,
            trace_path: Option::from_value(v.field("trace_path")?)?,
            trace_format: String::from_value(v.field("trace_format")?)?,
            trace_hash: hash_from_value(v.field("trace_hash")?)?,
            scale: String::from_value(v.field("scale")?)?,
            workload_seed: u64::from_value(v.field("workload_seed")?)?,
            catalog: String::from_value(v.field("catalog")?)?,
            catalog_scale: usize::from_value(v.field("catalog_scale")?)?,
            period_mins: f64::from_value(v.field("period_mins")?)?,
        })
    }
}

impl Serialize for ReplayCheckpoint {
    fn to_value(&self) -> Value {
        let completed = Value::Array(
            self.completed
                .iter()
                .map(|(variant, report)| {
                    let mut entry = std::collections::BTreeMap::new();
                    entry.insert("variant".to_owned(), variant.to_value());
                    entry.insert("report".to_owned(), report.to_value());
                    Value::Object(entry)
                })
                .collect(),
        );
        let mut map = std::collections::BTreeMap::new();
        map.insert("version".to_owned(), self.version.to_value());
        map.insert("inputs".to_owned(), self.inputs.to_value());
        map.insert("completed".to_owned(), completed);
        Value::Object(map)
    }
}

impl Deserialize for ReplayCheckpoint {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let version = u64::from_value(v.field("version")?)?;
        if version != REPLAY_CHECKPOINT_VERSION {
            return Err(DeError::new(format!(
                "replay checkpoint version {version} is not supported \
                 (expected {REPLAY_CHECKPOINT_VERSION})"
            )));
        }
        let Value::Array(entries) = v.field("completed")? else {
            return Err(DeError::new("completed must be an array".to_owned()));
        };
        let completed = entries
            .iter()
            .map(|entry| {
                Ok((
                    String::from_value(entry.field("variant")?)?,
                    SimReport::from_value(entry.field("report")?)?,
                ))
            })
            .collect::<Result<Vec<_>, DeError>>()?;
        Ok(ReplayCheckpoint {
            version,
            inputs: ReplayInputs::from_value(v.field("inputs")?)?,
            completed,
        })
    }
}

/// FNV-1a-64 over a byte slice — the trace-file integrity hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Serializes a checkpoint to `<path>.tmp`, fsyncs, and atomically
/// renames it over `path`.
///
/// # Errors
///
/// Propagates I/O failures (a leftover `.tmp` is inert).
pub fn save_atomic(checkpoint: &ReplayCheckpoint, path: &Path) -> io::Result<()> {
    let text = serde_json::to_string(checkpoint)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp: PathBuf = {
        let mut os = path.as_os_str().to_owned();
        os.push(".tmp");
        PathBuf::from(os)
    };
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Loads a replay checkpoint from disk.
///
/// # Errors
///
/// Propagates I/O failures; malformed contents yield
/// [`io::ErrorKind::InvalidData`].
pub fn load(path: &Path) -> io::Result<ReplayCheckpoint> {
    let text = fs::read_to_string(path)?;
    serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn variant_by_name(name: &str) -> Option<Variant> {
    Variant::ALL.into_iter().find(|v| v.name() == name)
}

/// A fault-mode replay that can stop after any variant and pick back up
/// from a checkpoint.
#[derive(Debug)]
pub struct ResumableRun {
    inputs: ReplayInputs,
    trace: Trace,
    catalog: MachineCatalog,
    config: HarmonyConfig,
    classifier_config: ClassifierConfig,
    plan: FaultPlan,
    completed: Vec<(Variant, SimReport)>,
}

impl ResumableRun {
    /// Derives the full setup (trace, catalog, fault plan) from run
    /// inputs, verifying the trace hash for file-backed runs.
    ///
    /// # Errors
    ///
    /// Returns a message on I/O or parse failures, unknown names, or a
    /// trace-hash mismatch.
    pub fn from_inputs(mut inputs: ReplayInputs) -> Result<Self, String> {
        let (trace, catalog, config, classifier_config) = match &inputs.trace_path {
            Some(path) => {
                let bytes = fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
                let hash = fnv1a64(&bytes);
                if let Some(expected) = inputs.trace_hash {
                    if hash != expected {
                        return Err(format!(
                            "trace file {path} changed since the checkpoint was written \
                             (hash {hash:#018x}, expected {expected:#018x})"
                        ));
                    }
                }
                inputs.trace_hash = Some(hash);
                let trace = match inputs.trace_format.as_str() {
                    "jsonl" => Trace::read_jsonl(&bytes[..]),
                    "google-csv" => google_csv::read_task_events(&bytes[..]),
                    other => return Err(format!("unknown trace format `{other}`")),
                }
                .map_err(|e| format!("cannot parse {path}: {e}"))?;
                let catalog = match inputs.catalog.as_str() {
                    "table2" => MachineCatalog::table2(),
                    "google10" => MachineCatalog::google_ten_types(),
                    other => return Err(format!("unknown catalog `{other}`")),
                }
                .scaled(inputs.catalog_scale.max(1));
                let config = HarmonyConfig {
                    control_period: SimDuration::from_mins(inputs.period_mins),
                    ..Default::default()
                };
                (trace, catalog, config, ClassifierConfig::default())
            }
            None => {
                let scale = Scale::parse(&inputs.scale)
                    .ok_or_else(|| format!("unknown scale `{}`", inputs.scale))?;
                evaluation_setup_seeded(scale, inputs.workload_seed)
            }
        };
        let plan = FaultPlan::scenario(&inputs.scenario, inputs.fault_seed, trace.span())
            .ok_or_else(|| format!("unknown fault scenario `{}`", inputs.scenario))?;
        Ok(ResumableRun {
            inputs,
            trace,
            catalog,
            config,
            classifier_config,
            plan,
            completed: Vec::new(),
        })
    }

    /// Re-derives the setup from a checkpoint and skips the variants it
    /// already finished.
    ///
    /// # Errors
    ///
    /// As [`ResumableRun::from_inputs`], plus unknown or out-of-order
    /// variant names in the checkpoint.
    pub fn from_checkpoint(checkpoint: ReplayCheckpoint) -> Result<Self, String> {
        let mut run = Self::from_inputs(checkpoint.inputs)?;
        for (i, (name, report)) in checkpoint.completed.into_iter().enumerate() {
            let variant = variant_by_name(&name)
                .ok_or_else(|| format!("checkpoint names unknown variant `{name}`"))?;
            let expected = Variant::ALL[i];
            if variant != expected {
                return Err(format!(
                    "checkpoint variants out of order: `{name}` where `{}` was expected",
                    expected.name()
                ));
            }
            run.completed.push((variant, report));
        }
        Ok(run)
    }

    /// The run's (possibly hash-stamped) inputs.
    pub fn inputs(&self) -> &ReplayInputs {
        &self.inputs
    }

    /// The trace under replay.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The derived fault plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Reports finished so far, in [`Variant::ALL`] order.
    pub fn completed(&self) -> &[(Variant, SimReport)] {
        &self.completed
    }

    /// Variants still to run.
    pub fn remaining(&self) -> &[Variant] {
        &Variant::ALL[self.completed.len()..]
    }

    /// Whether every variant has finished.
    pub fn is_done(&self) -> bool {
        self.completed.len() == Variant::ALL.len()
    }

    /// Runs the next pending variant and records its report.
    ///
    /// # Errors
    ///
    /// Returns a message when every variant is already done or the
    /// controller fails.
    pub fn run_next(&mut self) -> Result<(Variant, &SimReport), String> {
        let variant = *self
            .remaining()
            .first()
            .ok_or_else(|| "all variants already completed".to_owned())?;
        let report = run_variant_with_faults(
            &self.trace,
            &self.catalog,
            &self.config,
            &self.classifier_config,
            variant,
            Some(&self.plan),
        )
        .map_err(|e| format!("{} failed: {e}", variant.name()))?;
        self.completed.push((variant, report));
        Ok((variant, &self.completed[self.completed.len() - 1].1))
    }

    /// Snapshot of the run so far.
    pub fn checkpoint(&self) -> ReplayCheckpoint {
        ReplayCheckpoint {
            version: REPLAY_CHECKPOINT_VERSION,
            inputs: self.inputs.clone(),
            completed: self
                .completed
                .iter()
                .map(|(v, r)| (v.name().to_owned(), r.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_inputs() -> ReplayInputs {
        ReplayInputs {
            scenario: "crash-storm".to_owned(),
            fault_seed: 7,
            trace_path: None,
            trace_format: "jsonl".to_owned(),
            trace_hash: None,
            scale: "quick".to_owned(),
            workload_seed: 2013,
            catalog: "table2".to_owned(),
            catalog_scale: 50,
            period_mins: 15.0,
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_json() {
        let checkpoint = ReplayCheckpoint {
            version: REPLAY_CHECKPOINT_VERSION,
            inputs: quick_inputs(),
            completed: Vec::new(),
        };
        let text = serde_json::to_string(&checkpoint).unwrap();
        let back: ReplayCheckpoint = serde_json::from_str(&text).unwrap();
        assert_eq!(back, checkpoint);
    }

    #[test]
    fn unknown_scenario_rejected() {
        let mut inputs = quick_inputs();
        inputs.scenario = "meteor-strike".to_owned();
        assert!(ResumableRun::from_inputs(inputs).is_err());
    }

    #[test]
    fn out_of_order_checkpoint_rejected() {
        let checkpoint = ReplayCheckpoint {
            version: REPLAY_CHECKPOINT_VERSION,
            inputs: quick_inputs(),
            completed: vec![("CBS".to_owned(), empty_report())],
        };
        let err = ResumableRun::from_checkpoint(checkpoint).unwrap_err();
        assert!(err.contains("out of order"), "{err}");
    }

    fn empty_report() -> SimReport {
        SimReport {
            delays_by_group: [Vec::new(), Vec::new(), Vec::new()],
            tasks_completed: 0,
            tasks_running_at_end: 0,
            tasks_pending_at_end: 0,
            tasks_unschedulable: 0,
            tasks_failed: 0,
            total_energy_wh: 0.0,
            energy_cost_dollars: 0.0,
            switch_count: 0,
            switch_cost_dollars: 0.0,
            migrations: 0,
            evictions: 0,
            faults: Vec::new(),
            degradations: Vec::new(),
            series: Vec::new(),
        }
    }
}

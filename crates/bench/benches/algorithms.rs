//! Criterion micro-benchmarks for HARMONY's algorithmic substrates:
//! K-means, ARIMA, Erlang-C/M/G/N, and the CBS-RELAX simplex solve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harmony::cbs::{solve_cbs_relax, CbsInputs};
use harmony::HarmonyConfig;
use harmony_forecast::{Arima, Forecaster};
use harmony_kmeans::{Dataset, KMeans};
use harmony_model::{EnergyPrice, MachineCatalog, Resources, SimDuration, SimTime};
use harmony_queueing::MgnQueue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans");
    for &n in &[1_000usize, 10_000] {
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let center = (i % 5) as f64 * 3.0;
                vec![center + rng.gen::<f64>(), center - rng.gen::<f64>()]
            })
            .collect();
        let data = Dataset::from_rows(rows).unwrap();
        group.bench_with_input(BenchmarkId::new("fit_k5", n), &data, |b, data| {
            b.iter(|| KMeans::new(5).seed(7).restarts(1).fit(data).unwrap())
        });
    }
    group.finish();
}

fn bench_forecast(c: &mut Criterion) {
    let mut group = c.benchmark_group("forecast");
    // A day of 5-minute arrival-rate samples with diurnal shape.
    let series: Vec<f64> = (0..288)
        .map(|i| 10.0 + 4.0 * (i as f64 / 288.0 * std::f64::consts::TAU).sin())
        .collect();
    let arima = Arima::new(2, 0, 1).unwrap().with_mean();
    group.bench_function("arima_2_0_1_fit_forecast", |b| {
        b.iter(|| arima.forecast(&series, 4).unwrap())
    });
    group.bench_function("arima_fit_only", |b| b.iter(|| arima.fit(&series).unwrap()));
    group.finish();
}

fn bench_queueing(c: &mut Criterion) {
    let mut group = c.benchmark_group("queueing");
    group.bench_function("erlang_c_n5000", |b| {
        b.iter(|| harmony_queueing::erlang_c(5000, 4800.0).unwrap())
    });
    let queue = MgnQueue::new(500.0, 0.01, 1.5).unwrap();
    group.bench_function("min_servers_50k_offered", |b| {
        b.iter(|| queue.min_servers(60.0).unwrap())
    });
    group.finish();
}

fn bench_cbs_relax(c: &mut Criterion) {
    let mut group = c.benchmark_group("cbs_relax");
    group.sample_size(10);
    let catalog = MachineCatalog::table2().scaled(20);
    for &(n_classes, horizon) in &[(8usize, 2usize), (24, 4), (48, 4)] {
        let mut rng = StdRng::seed_from_u64(3);
        let sizes: Vec<Resources> = (0..n_classes)
            .map(|_| Resources::new(0.01 + rng.gen::<f64>() * 0.3, 0.01 + rng.gen::<f64>() * 0.3))
            .collect();
        let utility: Vec<f64> = (0..n_classes).map(|_| 0.05 + rng.gen::<f64>()).collect();
        let demand: Vec<Vec<f64>> = (0..horizon)
            .map(|_| (0..n_classes).map(|_| rng.gen::<f64>() * 30.0).collect())
            .collect();
        let config = HarmonyConfig {
            control_period: SimDuration::from_mins(10.0),
            horizon,
            ..Default::default()
        };
        let initial = vec![0.0; catalog.len()];
        group.bench_function(
            BenchmarkId::new("solve", format!("N{n_classes}_W{horizon}")),
            |b| {
                b.iter(|| {
                    solve_cbs_relax(
                        &CbsInputs {
                            catalog: &catalog,
                            container_sizes: &sizes,
                            utility_per_hour: &utility,
                            demand: &demand,
                            initial_active: &initial,
                            price: &EnergyPrice::default(),
                            now: SimTime::ZERO,
                        },
                        &config,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kmeans,
    bench_forecast,
    bench_queueing,
    bench_cbs_relax
);
criterion_main!(benches);

//! Criterion benchmarks for the discrete-event simulator and the
//! end-to-end controller step.

use std::cell::RefCell;
use std::rc::Rc;

use criterion::{criterion_group, criterion_main, Criterion};
use harmony::classify::{ClassifierConfig, TaskClassifier};
use harmony::controllers::{CbpController, QuotaState};
use harmony::HarmonyConfig;
use harmony_model::{EnergyPrice, MachineCatalog, SimDuration, SimTime};
use harmony_sim::{Controller, FirstFit, Observation, Simulation, SimulationConfig, TaskView};
use harmony_trace::{TraceConfig, TraceGenerator};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    let trace = TraceGenerator::new(
        TraceConfig::small()
            .with_span(SimDuration::from_hours(1.0))
            .with_seed(4),
    )
    .generate();
    let catalog = MachineCatalog::table2().scaled(100);
    group.bench_function(format!("replay_{}_tasks_all_on", trace.len()), |b| {
        b.iter(|| {
            let config = SimulationConfig::new(catalog.clone()).all_machines_on();
            Simulation::new(config, &trace, Box::new(FirstFit)).run()
        })
    });
    group.finish();
}

fn bench_controller_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("controller");
    group.sample_size(10);
    let trace = TraceGenerator::new(TraceConfig::small().with_seed(4)).generate();
    let classifier =
        Rc::new(TaskClassifier::fit(trace.tasks(), &ClassifierConfig::default()).unwrap());
    let config = HarmonyConfig {
        control_period: SimDuration::from_mins(10.0),
        horizon: 4,
        ..Default::default()
    };
    let catalog = MachineCatalog::table2().scaled(20);
    let cluster = harmony_sim::Cluster::new(catalog);
    let arrived: Vec<_> = trace.tasks()[..500.min(trace.len())].to_vec();
    group.bench_function("cbp_decide_full_pipeline", |b| {
        b.iter(|| {
            // Fresh controller per iteration: measures the full monitor →
            // forecast → containers → LP → rounding step.
            let mut ctl =
                CbpController::new(classifier.clone(), config.clone(), EnergyPrice::default())
                    .unwrap();
            ctl.decide(&Observation {
                now: SimTime::ZERO,
                cluster: &cluster,
                pending: TaskView::dense(&arrived),
                arrived_last_period: TaskView::dense(&arrived),
                running: TaskView::default(),
            })
        })
    });
    let _ = Rc::new(RefCell::new(QuotaState::default()));
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_controller_step);
criterion_main!(benches);

//! The trace container and its (de)serialization.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use harmony_model::{PriorityGroup, SimDuration, Task};
use serde::{Deserialize, Serialize};

/// An ordered workload trace: tasks sorted by arrival time plus the span
/// they cover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    tasks: Vec<Task>,
    span: SimDuration,
}

/// Errors from trace I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceError {
    /// An I/O failure while reading or writing.
    Io(std::io::Error),
    /// A malformed record at the given line.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The underlying parse error.
        source: serde_json::Error,
    },
    /// Tasks were not sorted by arrival time.
    Unsorted {
        /// Index of the first out-of-order task.
        index: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceError::Malformed { line, .. } => write!(f, "malformed trace record at line {line}"),
            TraceError::Unsorted { index } => {
                write!(f, "trace tasks are not sorted by arrival (first violation at {index})")
            }
        }
    }
}

impl Error for TraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Malformed { source, .. } => Some(source),
            TraceError::Unsorted { .. } => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl Trace {
    /// Builds a trace from tasks already sorted by arrival.
    ///
    /// # Panics
    ///
    /// Panics if the tasks are not sorted by arrival time (generator
    /// output always is; use [`Trace::from_unsorted`] otherwise).
    // The panic is this constructor's documented contract (see
    // `# Panics` above); `from_unsorted` is the non-panicking path.
    #[allow(clippy::panic)]
    pub fn new(tasks: Vec<Task>, span: SimDuration) -> Self {
        if let Some(i) = first_unsorted(&tasks) {
            panic!("tasks not sorted by arrival (violation at index {i})");
        }
        Trace { tasks, span }
    }

    /// Builds a trace from tasks in any order, sorting by arrival.
    pub fn from_unsorted(mut tasks: Vec<Task>, span: SimDuration) -> Self {
        tasks.sort_by(|a, b| a.arrival.cmp(&b.arrival).then(a.id.cmp(&b.id)));
        Trace { tasks, span }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// `true` if the trace holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The covered span.
    pub fn span(&self) -> SimDuration {
        self.span
    }

    /// The tasks, sorted by arrival.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Tasks belonging to one priority group, in arrival order.
    pub fn tasks_in_group(&self, group: PriorityGroup) -> impl Iterator<Item = &Task> {
        self.tasks.iter().filter(move |t| t.priority.group() == group)
    }

    /// Task counts per priority group, indexed by
    /// [`PriorityGroup::index`].
    pub fn group_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for t in &self.tasks {
            counts[t.priority.group().index()] += 1;
        }
        counts
    }

    /// Writes the trace as JSON lines: one header record, then one task
    /// per line.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] on write failures.
    pub fn write_jsonl<W: Write>(&self, mut writer: W) -> Result<(), TraceError> {
        let header = serde_json::json!({ "span_secs": self.span.as_secs() });
        serde_json::to_writer(&mut writer, &header).map_err(io_err)?;
        writer.write_all(b"\n")?;
        for task in &self.tasks {
            serde_json::to_writer(&mut writer, task).map_err(io_err)?;
            writer.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Reads a trace written by [`Trace::write_jsonl`].
    ///
    /// # Errors
    ///
    /// * [`TraceError::Io`] on read failures.
    /// * [`TraceError::Malformed`] on parse failures (with line number).
    /// * [`TraceError::Unsorted`] if task records are out of order.
    pub fn read_jsonl<R: BufRead>(reader: R) -> Result<Self, TraceError> {
        let mut lines = reader.lines();
        let header_line = match lines.next() {
            Some(l) => l?,
            None => {
                return Ok(Trace { tasks: Vec::new(), span: SimDuration::ZERO });
            }
        };
        let header: serde_json::Value = serde_json::from_str(&header_line)
            .map_err(|source| TraceError::Malformed { line: 1, source })?;
        let span_secs = header
            .get("span_secs")
            .and_then(serde_json::Value::as_f64)
            .ok_or_else(|| TraceError::Malformed {
                line: 1,
                source: serde_json::Error::io(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "header is missing a numeric `span_secs` field",
                )),
            })?;
        let mut tasks = Vec::new();
        for (i, line) in lines.enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let task: Task = serde_json::from_str(&line)
                .map_err(|source| TraceError::Malformed { line: i + 2, source })?;
            tasks.push(task);
        }
        if let Some(index) = first_unsorted(&tasks) {
            return Err(TraceError::Unsorted { index });
        }
        Ok(Trace { tasks, span: SimDuration::from_secs(span_secs) })
    }
}

fn first_unsorted(tasks: &[Task]) -> Option<usize> {
    tasks.windows(2).position(|w| w[0].arrival > w[1].arrival).map(|i| i + 1)
}

fn io_err(e: serde_json::Error) -> TraceError {
    TraceError::Io(std::io::Error::other(e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_model::{JobId, Priority, Resources, SchedulingClass, SimTime, TaskId};

    fn task(id: u64, at: f64, level: u8) -> Task {
        Task {
            id: TaskId(id),
            job: JobId(id / 2),
            arrival: SimTime::from_secs(at),
            duration: SimDuration::from_secs(60.0),
            demand: Resources::new(0.01, 0.02),
            priority: Priority::new(level).unwrap(),
            sched_class: SchedulingClass::BATCH,
        }
    }

    #[test]
    fn construction_and_accessors() {
        let t = Trace::new(
            vec![task(0, 0.0, 0), task(1, 5.0, 5), task(2, 9.0, 10)],
            SimDuration::from_secs(10.0),
        );
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.span(), SimDuration::from_secs(10.0));
        assert_eq!(t.group_counts(), [1, 1, 1]);
        assert_eq!(t.tasks_in_group(PriorityGroup::Production).count(), 1);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn unsorted_panics() {
        let _ = Trace::new(vec![task(0, 5.0, 0), task(1, 1.0, 0)], SimDuration::from_secs(10.0));
    }

    #[test]
    fn from_unsorted_sorts() {
        let t = Trace::from_unsorted(
            vec![task(0, 5.0, 0), task(1, 1.0, 0)],
            SimDuration::from_secs(10.0),
        );
        assert_eq!(t.tasks()[0].id, TaskId(1));
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = Trace::new(
            vec![task(0, 0.0, 0), task(1, 5.0, 9)],
            SimDuration::from_secs(100.0),
        );
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let back = Trace::read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn read_empty_input() {
        let t = Trace::read_jsonl(&b""[..]).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn read_rejects_garbage() {
        let err = Trace::read_jsonl(&b"{\"span_secs\": 10}\nnot json\n"[..]).unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 2, .. }));
        assert!(err.source().is_some());
        let err2 = Trace::read_jsonl(&b"nope\n"[..]).unwrap_err();
        assert!(matches!(err2, TraceError::Malformed { line: 1, .. }));
    }

    #[test]
    fn read_rejects_unsorted_records() {
        let t = Trace::new(
            vec![task(0, 0.0, 0), task(1, 5.0, 0)],
            SimDuration::from_secs(10.0),
        );
        let mut buf = Vec::new();
        t.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        lines.swap(1, 2);
        let swapped = lines.join("\n");
        let err = Trace::read_jsonl(swapped.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Unsorted { index: 1 }));
    }
}

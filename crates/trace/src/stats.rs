//! Trace-analysis series behind the paper's Figs. 1–7 and 19.

use harmony_model::{PriorityGroup, Resources, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::Trace;

/// An empirical cumulative distribution function over `f64` samples.
///
/// # Examples
///
/// ```
/// use harmony_trace::stats::Cdf;
///
/// let cdf = Cdf::from_values(vec![1.0, 2.0, 2.0, 10.0]);
/// assert_eq!(cdf.fraction_at_most(2.0), 0.75);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// assert_eq!(cdf.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF, dropping NaN samples and sorting the rest.
    pub fn from_values(mut values: Vec<f64>) -> Self {
        values.retain(|v| !v.is_nan());
        values.sort_by(f64::total_cmp);
        Cdf { sorted: values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// `true` if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (0 for an empty CDF).
    pub fn fraction_at_most(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `p`-quantile (nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of an empty CDF");
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        let idx = ((p * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[idx - 1]
    }

    /// `n` evenly-spaced `(value, cumulative_fraction)` points for
    /// plotting.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        (1..=n)
            .map(|i| {
                let p = i as f64 / n as f64;
                (self.quantile(p), p)
            })
            .collect()
    }
}

/// Total resource demand of tasks alive at each bin boundary, assuming
/// each task occupies its demand from arrival to arrival+duration
/// (Figs. 1–2: total CPU and memory demand over time).
pub fn demand_over_time(trace: &Trace, bin: SimDuration) -> Vec<(SimTime, Resources)> {
    assert!(bin.as_secs() > 0.0, "bin must be positive");
    // Sweep events: +demand at arrival, -demand at finish.
    let mut events: Vec<(f64, Resources, bool)> = Vec::with_capacity(trace.len() * 2);
    for t in trace.tasks() {
        let start = t.arrival.as_secs();
        let end = start + t.duration.as_secs();
        events.push((start, t.demand, true));
        events.push((end, t.demand, false));
    }
    events.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
    let span = trace.span().as_secs();
    let mut out = Vec::new();
    let mut current = Resources::ZERO;
    let mut ev = 0usize;
    let mut t = 0.0;
    while t <= span + 1e-9 {
        while ev < events.len() && events[ev].0 <= t {
            if events[ev].2 {
                current += events[ev].1;
            } else {
                current -= events[ev].1;
            }
            ev += 1;
        }
        out.push((SimTime::from_secs(t), current.max(Resources::ZERO)));
        t += bin.as_secs();
    }
    out
}

/// Per-group CDFs of task durations in seconds (Fig. 6), indexed by
/// [`PriorityGroup::index`].
pub fn duration_cdf_by_group(trace: &Trace) -> [Cdf; 3] {
    let mut buckets: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for t in trace.tasks() {
        buckets[t.priority.group().index()].push(t.duration.as_secs());
    }
    buckets.map(Cdf::from_values)
}

/// Per-group arrival-rate series in tasks/second per bin (Fig. 19),
/// indexed by [`PriorityGroup::index`].
pub fn arrival_rate_series(trace: &Trace, bin: SimDuration) -> [Vec<f64>; 3] {
    assert!(bin.as_secs() > 0.0, "bin must be positive");
    let n_bins = (trace.span().as_secs() / bin.as_secs()).ceil().max(1.0) as usize;
    let mut out: [Vec<f64>; 3] =
        [vec![0.0; n_bins], vec![0.0; n_bins], vec![0.0; n_bins]];
    for t in trace.tasks() {
        let idx = ((t.arrival.as_secs() / bin.as_secs()) as usize).min(n_bins - 1);
        out[t.priority.group().index()][idx] += 1.0;
    }
    for series in &mut out {
        for v in series.iter_mut() {
            *v /= bin.as_secs();
        }
    }
    out
}

/// A deterministic subsample of task `(cpu, mem)` sizes in one priority
/// group (Fig. 7 scatter plots). Takes every k-th task so the subsample
/// is reproducible without an RNG.
pub fn size_scatter(trace: &Trace, group: PriorityGroup, max_points: usize) -> Vec<(f64, f64)> {
    let all: Vec<(f64, f64)> =
        trace.tasks_in_group(group).map(|t| (t.demand.cpu, t.demand.mem)).collect();
    if all.len() <= max_points || max_points == 0 {
        return all;
    }
    let step = all.len() / max_points;
    all.into_iter().step_by(step.max(1)).take(max_points).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceConfig, TraceGenerator};
    use harmony_model::{JobId, Priority, SchedulingClass, Task, TaskId};

    fn mk_task(id: u64, at: f64, dur: f64, cpu: f64, level: u8) -> Task {
        Task {
            id: TaskId(id),
            job: JobId(0),
            arrival: SimTime::from_secs(at),
            duration: SimDuration::from_secs(dur),
            demand: Resources::new(cpu, cpu / 2.0),
            priority: Priority::new(level).unwrap(),
            sched_class: SchedulingClass::BATCH,
        }
    }

    #[test]
    fn cdf_basics() {
        let cdf = Cdf::from_values(vec![3.0, 1.0, 2.0, f64::NAN]);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf.fraction_at_most(0.5), 0.0);
        assert_eq!(cdf.fraction_at_most(2.0), 2.0 / 3.0);
        assert_eq!(cdf.fraction_at_most(100.0), 1.0);
        assert_eq!(cdf.quantile(1.0), 3.0);
        assert_eq!(cdf.quantile(0.0), 1.0);
        let pts = cdf.points(3);
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[2], (3.0, 1.0));
        assert!(Cdf::from_values(vec![]).is_empty());
        assert_eq!(Cdf::from_values(vec![]).fraction_at_most(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn cdf_quantile_empty_panics() {
        Cdf::from_values(vec![]).quantile(0.5);
    }

    #[test]
    fn demand_sweep_tracks_alive_tasks() {
        let trace = Trace::new(
            vec![
                mk_task(0, 0.0, 100.0, 0.2, 0),
                mk_task(1, 50.0, 100.0, 0.3, 0),
            ],
            SimDuration::from_secs(200.0),
        );
        let series = demand_over_time(&trace, SimDuration::from_secs(50.0));
        // t=0: task0 alive (0.2). t=50: both (0.5). t=100: task0 done at
        // exactly 100 (event <= t applies) → only task1 (0.3).
        // t=150: task1 done → 0. t=200: 0.
        let cpus: Vec<f64> = series.iter().map(|(_, r)| r.cpu).collect();
        assert!((cpus[0] - 0.2).abs() < 1e-12);
        assert!((cpus[1] - 0.5).abs() < 1e-12);
        assert!((cpus[2] - 0.3).abs() < 1e-12);
        assert!(cpus[3].abs() < 1e-12);
        assert!(cpus[4].abs() < 1e-12);
    }

    #[test]
    fn demand_fluctuates_on_generated_trace() {
        let trace = TraceGenerator::new(TraceConfig::small()).generate();
        let series = demand_over_time(&trace, SimDuration::from_mins(10.0));
        let cpus: Vec<f64> = series.iter().map(|(_, r)| r.cpu).collect();
        let max = cpus.iter().cloned().fold(0.0, f64::max);
        let min = cpus.iter().skip(2).cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 0.0);
        assert!(max > min * 1.2, "demand should fluctuate: {min}..{max}");
    }

    #[test]
    fn duration_cdfs_ordered_by_group() {
        let trace = TraceGenerator::new(TraceConfig::small()).generate();
        let cdfs = duration_cdf_by_group(&trace);
        // Production median >= gratis median per the calibration.
        let gratis_p90 = cdfs[0].quantile(0.9);
        let prod_p90 = cdfs[2].quantile(0.9);
        assert!(prod_p90 > gratis_p90, "{prod_p90} vs {gratis_p90}");
    }

    #[test]
    fn arrival_rates_sum_to_task_count() {
        let trace = TraceGenerator::new(TraceConfig::small()).generate();
        let bin = SimDuration::from_mins(10.0);
        let series = arrival_rate_series(&trace, bin);
        let total: f64 =
            series.iter().map(|s| s.iter().sum::<f64>()).sum::<f64>() * bin.as_secs();
        assert!((total - trace.len() as f64).abs() < 1e-6);
        let counts = trace.group_counts();
        for g in PriorityGroup::ALL {
            let group_total: f64 =
                series[g.index()].iter().sum::<f64>() * bin.as_secs();
            assert!((group_total - counts[g.index()] as f64).abs() < 1e-6);
        }
    }

    #[test]
    fn scatter_subsamples_deterministically() {
        let trace = TraceGenerator::new(TraceConfig::small()).generate();
        let a = size_scatter(&trace, PriorityGroup::Gratis, 100);
        let b = size_scatter(&trace, PriorityGroup::Gratis, 100);
        assert_eq!(a, b);
        assert!(a.len() <= 100);
        let all = size_scatter(&trace, PriorityGroup::Gratis, usize::MAX);
        assert_eq!(all.len(), trace.group_counts()[0]);
    }
}

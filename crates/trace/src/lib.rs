//! Synthetic Google-cluster-like workload traces for HARMONY.
//!
//! The paper evaluates on 29 days of a proprietary Google compute-cluster
//! trace (12k machines, 25.4M tasks). That trace is not redistributable at
//! this scale, so this crate provides a **statistical workload generator**
//! calibrated to every property Section III reports and the provisioning
//! scheme exploits:
//!
//! * tasks arrive in three priority groups (gratis / other / production)
//!   via a non-homogeneous Poisson process with diurnal swing and noise
//!   (Figs. 1–2: "demand ... can fluctuate significantly over time");
//! * task CPU/memory sizes are drawn from per-group mixture models whose
//!   modes span **three orders of magnitude**, including the dominant
//!   gratis mode at exactly `(0.0125, 0.0159)` holding ≈43% of gratis
//!   tasks, and CPU-heavy / memory-heavy large-task modes (Fig. 7);
//! * durations are bimodal — "tasks are either short or long" — with more
//!   than half of all tasks under 100 s and production tails reaching
//!   17 days (Fig. 6);
//! * machine heterogeneity comes from
//!   [`harmony_model::MachineCatalog::google_ten_types`] (Fig. 5) or the
//!   Table II evaluation catalog.
//!
//! [`stats`] computes the trace-analysis series behind Figs. 1–7, and
//! [`google_csv`] imports/exports the Google cluster-data v1
//! `task_events` CSV layout, so the real trace (where available) can be
//! loaded in place of the generator.
//!
//! # Examples
//!
//! ```
//! use harmony_trace::{TraceConfig, TraceGenerator};
//! use harmony_model::PriorityGroup;
//!
//! let config = TraceConfig::small();
//! let trace = TraceGenerator::new(config).generate();
//! assert!(trace.len() > 100);
//! // All three priority groups are represented.
//! for group in PriorityGroup::ALL {
//!     assert!(trace.tasks_in_group(group).next().is_some());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod config;
mod generator;
pub mod google_csv;
mod random;
pub mod stats;
mod trace_data;

pub use config::{ArrivalConfig, BatchArrivalConfig, DurationConfig, SizeMode, TraceConfig};
pub use generator::TraceGenerator;
pub use random::{exponential, lognormal, poisson, standard_normal};
pub use trace_data::{Trace, TraceError};

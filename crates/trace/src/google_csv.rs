//! Import/export in the Google cluster-data v1 `task_events` layout.
//!
//! The public `clusterdata-2011` trace the paper analyses ships task
//! events as headerless CSV with these columns:
//!
//! ```text
//! 0 timestamp (µs)   1 missing_info   2 job_id        3 task_index
//! 4 machine_id       5 event_type     6 user          7 scheduling_class
//! 8 priority         9 cpu_request   10 memory_request
//! 11 disk_request   12 different_machine_constraint
//! ```
//!
//! [`read_task_events`] reconstructs [`Task`]s by pairing each SUBMIT
//! (event 0) with the matching FINISH/FAIL/KILL/EVICT/LOST terminal
//! event of the same `(job_id, task_index)`; unterminated tasks are
//! truncated at the span end, mirroring the censoring in the real
//! trace. [`write_task_events`] emits the same layout, so synthetic
//! traces can be fed to external clusterdata tooling.

use std::io::{BufRead, Write};

use harmony_model::{
    JobId, Priority, Resources, SchedulingClass, SimDuration, SimTime, Task, TaskId,
};

use crate::{Trace, TraceError};

/// `task_events` event types (v1 schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventType {
    Submit,
    Terminal,
    Other,
}

fn classify_event(code: u32) -> EventType {
    match code {
        0 => EventType::Submit,                 // SUBMIT
        2..=6 => EventType::Terminal,           // EVICT/FAIL/FINISH/KILL/LOST
        _ => EventType::Other,                  // SCHEDULE, UPDATE_*
    }
}

/// Reads a `task_events`-format CSV into a [`Trace`].
///
/// Durations come from SUBMIT→terminal pairing; tasks with no terminal
/// event run to the end of the observed span. Priorities above 11 are
/// clamped (the v1 schema allows 0–11); scheduling classes above 3
/// likewise.
///
/// # Errors
///
/// * [`TraceError::Io`] on read failures.
/// * [`TraceError::Malformed`] for rows with missing/unparsable columns.
// Invariant: priority and sched_class are clamped to their valid ranges
// (`.min(11)` / `.min(3)`) when the SUBMIT row is parsed, so the
// constructors at Task-build time cannot fail.
#[allow(clippy::expect_used)]
pub fn read_task_events<R: BufRead>(reader: R) -> Result<Trace, TraceError> {
    struct Open {
        submit_us: u64,
        cpu: f64,
        mem: f64,
        sched_class: u8,
        priority: u8,
    }
    let mut open: std::collections::HashMap<(u64, u64), Open> = std::collections::HashMap::new();
    let mut finished: Vec<(u64, u64, Open, u64)> = Vec::new(); // job, idx, record, end_us
    let mut max_us = 0u64;

    for (line_no, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        let field = |i: usize| cols.get(i).copied().unwrap_or("");
        let parse_u64 = |i: usize| -> Result<u64, TraceError> {
            field(i).trim().parse().map_err(|_| malformed(line_no))
        };
        let parse_f64_or = |i: usize, default: f64| -> f64 {
            field(i).trim().parse().unwrap_or(default)
        };
        let ts = parse_u64(0)?;
        max_us = max_us.max(ts);
        let job = parse_u64(2)?;
        let idx = parse_u64(3)?;
        let event = parse_u64(5)? as u32;
        match classify_event(event) {
            EventType::Submit => {
                let sched_class = parse_u64(7).unwrap_or(0).min(3) as u8;
                let priority = parse_u64(8).unwrap_or(0).min(11) as u8;
                open.insert(
                    (job, idx),
                    Open {
                        submit_us: ts,
                        cpu: parse_f64_or(9, 0.0).clamp(0.0, 1.0),
                        mem: parse_f64_or(10, 0.0).clamp(0.0, 1.0),
                        sched_class,
                        priority,
                    },
                );
            }
            EventType::Terminal => {
                if let Some(o) = open.remove(&(job, idx)) {
                    let end = ts.max(o.submit_us);
                    finished.push((job, idx, o, end));
                }
            }
            EventType::Other => {}
        }
    }

    // Censor still-open tasks at the span end.
    for ((job, idx), o) in open.drain() {
        let end = max_us.max(o.submit_us);
        finished.push((job, idx, o, end));
    }

    let mut tasks: Vec<Task> = finished
        .into_iter()
        .enumerate()
        .map(|(i, (job, _idx, o, end_us))| Task {
            id: TaskId(i as u64),
            job: JobId(job),
            arrival: SimTime::from_secs(o.submit_us as f64 / 1e6),
            duration: SimDuration::from_secs(((end_us - o.submit_us) as f64 / 1e6).max(1.0)),
            demand: Resources::new(o.cpu.max(1e-4), o.mem.max(1e-4)),
            priority: Priority::new(o.priority).expect("clamped to 0..=11"),
            sched_class: SchedulingClass::new(o.sched_class).expect("clamped to 0..=3"),
        })
        .collect();
    tasks.sort_by(|a, b| a.arrival.cmp(&b.arrival).then(a.id.cmp(&b.id)));
    for (i, t) in tasks.iter_mut().enumerate() {
        t.id = TaskId(i as u64);
    }
    Ok(Trace::from_unsorted(tasks, SimDuration::from_secs(max_us as f64 / 1e6)))
}

/// Writes a trace as `task_events`-format CSV: one SUBMIT and one FINISH
/// row per task.
///
/// # Errors
///
/// Returns [`TraceError::Io`] on write failures.
pub fn write_task_events<W: Write>(trace: &Trace, mut writer: W) -> Result<(), TraceError> {
    for task in trace.tasks() {
        let submit_us = (task.arrival.as_secs() * 1e6).round() as u64;
        let finish_us = submit_us + (task.duration.as_secs() * 1e6).round() as u64;
        // SUBMIT (event 0).
        writeln!(
            writer,
            "{submit_us},,{job},{idx},,0,,{class},{prio},{cpu},{mem},,",
            job = task.job.0,
            idx = task.id.0,
            class = task.sched_class.level(),
            prio = task.priority.level(),
            cpu = task.demand.cpu,
            mem = task.demand.mem,
        )?;
        // FINISH (event 4).
        writeln!(
            writer,
            "{finish_us},,{job},{idx},,4,,{class},{prio},{cpu},{mem},,",
            job = task.job.0,
            idx = task.id.0,
            class = task.sched_class.level(),
            prio = task.priority.level(),
            cpu = task.demand.cpu,
            mem = task.demand.mem,
        )?;
    }
    Ok(())
}

fn malformed(line_no: usize) -> TraceError {
    TraceError::Malformed {
        line: line_no + 1,
        source: serde_json::Error::io(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "unparsable task_events row",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceConfig, TraceGenerator};
    use harmony_model::PriorityGroup;

    #[test]
    fn parses_minimal_event_stream() {
        let csv = "\
1000000,,42,0,,0,,2,9,0.25,0.125,,\n\
5000000,,42,0,,4,,2,9,0.25,0.125,,\n\
2000000,,42,1,,0,,0,0,0.01,0.02,,\n";
        let trace = read_task_events(csv.as_bytes()).unwrap();
        assert_eq!(trace.len(), 2);
        let t0 = &trace.tasks()[0];
        assert_eq!(t0.arrival, SimTime::from_secs(1.0));
        assert_eq!(t0.duration, SimDuration::from_secs(4.0));
        assert_eq!(t0.priority.group(), PriorityGroup::Production);
        assert_eq!(t0.demand, Resources::new(0.25, 0.125));
        // Unterminated task censored at the span end (5 s): 3 s run.
        let t1 = &trace.tasks()[1];
        assert_eq!(t1.duration, SimDuration::from_secs(3.0));
    }

    #[test]
    fn non_submit_events_are_ignored() {
        // SCHEDULE (1) and UPDATE (7/8) rows must not create tasks.
        let csv = "\
1000000,,1,0,,1,,0,0,0.1,0.1,,\n\
2000000,,1,0,,7,,0,0,0.1,0.1,,\n";
        let trace = read_task_events(csv.as_bytes()).unwrap();
        assert!(trace.is_empty());
    }

    #[test]
    fn malformed_rows_error_with_line_number() {
        let csv = "not,numbers,at,all,,x,,0,0,,,\n";
        let err = read_task_events(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceError::Malformed { line: 1, .. }));
    }

    #[test]
    fn clamps_out_of_range_fields() {
        let csv = "\
0,,7,0,,0,,9,99,2.5,-1.0,,\n\
1000000,,7,0,,4,,9,99,2.5,-1.0,,\n";
        let trace = read_task_events(csv.as_bytes()).unwrap();
        let t = &trace.tasks()[0];
        assert_eq!(t.priority.level(), 11);
        assert_eq!(t.sched_class.level(), 3);
        assert!(t.demand.cpu <= 1.0 && t.demand.mem >= 0.0);
    }

    #[test]
    fn roundtrip_through_task_events_format() {
        let config = TraceConfig::small().with_span(SimDuration::from_mins(20.0)).with_seed(3);
        let original = TraceGenerator::new(config).generate();
        let mut buf = Vec::new();
        write_task_events(&original, &mut buf).unwrap();
        let back = read_task_events(buf.as_slice()).unwrap();
        assert_eq!(back.len(), original.len());
        // Arrival order and group mix survive; durations match to µs
        // rounding.
        assert_eq!(back.group_counts(), original.group_counts());
        for (a, b) in back.tasks().iter().zip(original.tasks()) {
            assert!((a.arrival.as_secs() - b.arrival.as_secs()).abs() < 1e-5);
            assert!((a.duration.as_secs() - b.duration.as_secs()).abs() < 1e-5);
            assert_eq!(a.priority, b.priority);
        }
    }
}

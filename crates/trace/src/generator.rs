//! The workload generator.

use harmony_model::{
    JobId, Priority, PriorityGroup, Resources, SchedulingClass, SimDuration, SimTime, Task, TaskId,
};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::{DurationConfig, SizeMode, TraceConfig};
use crate::random::{exponential, lognormal, poisson, standard_normal};
use crate::Trace;

/// Generates deterministic synthetic traces from a [`TraceConfig`].
///
/// Jobs arrive per priority group as a non-homogeneous Poisson process
/// (diurnal rate modulated by lognormal noise, sampled per bin); each job
/// brings a geometric number of tasks that share a size mode — tasks of
/// one application look alike — but draw sizes and durations
/// independently.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceConfig,
}

impl TraceGenerator {
    /// Creates a generator for the given calibration.
    pub fn new(config: TraceConfig) -> Self {
        TraceGenerator { config }
    }

    /// The calibration this generator uses.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Generates the trace. Deterministic for a fixed config (seed
    /// included).
    pub fn generate(&self) -> Trace {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let mut tasks: Vec<Task> = Vec::new();
        let mut next_task = 0u64;
        let mut next_job = 0u64;
        let span_secs = self.config.span.as_secs();
        let bin_secs = self.config.bin.as_secs();

        for group in PriorityGroup::ALL {
            let arrivals = *self.config.arrival(group);
            let modes = self.config.modes(group).to_vec();
            let durations = *self.config.duration(group);
            let mut t = 0.0f64;
            while t < span_secs {
                let bin_end = (t + bin_secs).min(span_secs);
                let width = bin_end - t;
                // Diurnal modulation peaking at `peak_hour`.
                let hour = (t / 3600.0) % 24.0;
                let phase = (hour - arrivals.peak_hour) / 24.0 * std::f64::consts::TAU;
                let diurnal = 1.0 + arrivals.diurnal_amplitude * phase.cos();
                // Multiplicative noise, mean-corrected so the long-run
                // rate stays at base.
                let noise = lognormal(
                    &mut rng,
                    -0.5 * arrivals.noise_sigma * arrivals.noise_sigma,
                    arrivals.noise_sigma,
                );
                let rate = (arrivals.base_jobs_per_sec * diurnal * noise).max(0.0);
                let jobs = poisson(&mut rng, rate * width);
                for _ in 0..jobs {
                    let job = JobId(next_job);
                    next_job += 1;
                    let arrival = SimTime::from_secs(t + rng.gen::<f64>() * width);
                    // Geometric task count with the configured mean.
                    let p_stop = 1.0 / arrivals.mean_tasks_per_job.max(1.0);
                    let mut n_tasks = 1usize;
                    while rng.gen::<f64>() > p_stop && n_tasks < 500 {
                        n_tasks += 1;
                    }
                    let mode = pick_mode(&mut rng, &modes);
                    let priority = sample_priority(&mut rng, group);
                    let sched_class = sample_sched_class(&mut rng, group);
                    for _ in 0..n_tasks {
                        let demand = sample_size(&mut rng, mode);
                        let duration = sample_duration(&mut rng, &durations);
                        tasks.push(Task {
                            id: TaskId(next_task),
                            job,
                            arrival,
                            duration,
                            demand,
                            priority,
                            sched_class,
                        });
                        next_task += 1;
                    }
                }
                t = bin_end;
            }
        }

        // The optional batch/MAP stream: a two-state (quiet ↔ burst)
        // modulated process whose bursts emit fronts of jobs arriving
        // at the very same instant — the correlated structure of batch
        // workloads. It draws from its own RNG stream so layering it on
        // (or off) never perturbs the base workload above.
        if let Some(batch) = &self.config.batches {
            let group = PriorityGroup::ALL[batch.group_index.min(PriorityGroup::ALL.len() - 1)];
            let modes = self.config.modes(group).to_vec();
            let durations = *self.config.duration(group);
            let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0xBA7C_BA7C_BA7C_BA7C);
            let mut t = exponential(&mut rng, 1.0 / batch.mean_quiet_secs.max(1.0));
            while t < span_secs {
                let burst_end =
                    (t + exponential(&mut rng, 1.0 / batch.mean_burst_secs.max(1.0))).min(span_secs);
                loop {
                    t += exponential(&mut rng, batch.fronts_per_sec.max(1e-9));
                    if t >= burst_end {
                        break;
                    }
                    let arrival = SimTime::from_secs(t);
                    let p_front_stop = 1.0 / batch.mean_jobs_per_front.max(1.0);
                    let mut n_jobs = 1usize;
                    while rng.gen::<f64>() > p_front_stop && n_jobs < 100 {
                        n_jobs += 1;
                    }
                    for _ in 0..n_jobs {
                        let job = JobId(next_job);
                        next_job += 1;
                        let p_stop = 1.0 / batch.mean_tasks_per_job.max(1.0);
                        let mut n_tasks = 1usize;
                        while rng.gen::<f64>() > p_stop && n_tasks < 500 {
                            n_tasks += 1;
                        }
                        let mode = pick_mode(&mut rng, &modes);
                        let priority = sample_priority(&mut rng, group);
                        let sched_class = sample_sched_class(&mut rng, group);
                        for _ in 0..n_tasks {
                            tasks.push(Task {
                                id: TaskId(next_task),
                                job,
                                arrival,
                                duration: sample_duration(&mut rng, &durations),
                                demand: sample_size(&mut rng, mode),
                                priority,
                                sched_class,
                            });
                            next_task += 1;
                        }
                    }
                }
                t = burst_end + exponential(&mut rng, 1.0 / batch.mean_quiet_secs.max(1.0));
            }
        }

        tasks.sort_by(|a, b| a.arrival.cmp(&b.arrival).then(a.id.cmp(&b.id)));
        // Re-number so task ids follow arrival order; stable and handy
        // for debugging.
        for (i, task) in tasks.iter_mut().enumerate() {
            task.id = TaskId(i as u64);
        }
        Trace::new(tasks, self.config.span)
    }
}

// Invariant: every built-in TraceConfig ships non-empty mode lists; an
// empty user-supplied list is a configuration bug worth a loud panic.
#[allow(clippy::expect_used)]
fn pick_mode<'m, R: Rng>(rng: &mut R, modes: &'m [SizeMode]) -> &'m SizeMode {
    let total: f64 = modes.iter().map(|m| m.weight).sum();
    let mut target = rng.gen::<f64>() * total;
    for m in modes {
        target -= m.weight;
        if target <= 0.0 {
            return m;
        }
    }
    modes.last().expect("config has at least one mode")
}

fn sample_size<R: Rng>(rng: &mut R, mode: &SizeMode) -> Resources {
    let draw = |rng: &mut R, median: f64| -> f64 {
        if mode.spread == 0.0 {
            median
        } else {
            // Base-10 lognormal around the median; CPU and memory
            // independent (Section III-D).
            (median * 10f64.powf(mode.spread * standard_normal(rng))).clamp(1e-4, 1.0)
        }
    };
    Resources::new(draw(rng, mode.cpu_median), draw(rng, mode.mem_median))
}

fn sample_duration<R: Rng>(rng: &mut R, cfg: &DurationConfig) -> SimDuration {
    let long = rng.gen::<f64>() < cfg.long_fraction;
    let (median, sigma) = if long {
        (cfg.long_median_secs, cfg.long_sigma)
    } else {
        (cfg.short_median_secs, cfg.short_sigma)
    };
    let secs = lognormal(rng, median.ln(), sigma).clamp(1.0, cfg.max_secs);
    SimDuration::from_secs(secs)
}

// Invariant: PriorityGroup::level_range only yields in-range levels.
#[allow(clippy::expect_used)]
fn sample_priority<R: Rng>(rng: &mut R, group: PriorityGroup) -> Priority {
    let (lo, hi) = group.level_range();
    Priority::new(rng.gen_range(lo..=hi)).expect("group ranges are valid priorities")
}

// Invariant: every literal below is within SchedulingClass's 0..=3.
#[allow(clippy::expect_used)]
fn sample_sched_class<R: Rng>(rng: &mut R, group: PriorityGroup) -> SchedulingClass {
    // Scheduling class correlates with priority group (Section III):
    // batchy work dominates gratis, latency-sensitive classes dominate
    // production.
    let class = match group {
        PriorityGroup::Gratis => {
            if rng.gen::<f64>() < 0.8 {
                0
            } else {
                1
            }
        }
        PriorityGroup::Other => rng.gen_range(0..=2),
        PriorityGroup::Production => {
            if rng.gen::<f64>() < 0.6 {
                3
            } else {
                2
            }
        }
    };
    SchedulingClass::new(class).expect("classes 0..=3 are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_trace() -> Trace {
        TraceGenerator::new(TraceConfig::small()).generate()
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TraceGenerator::new(TraceConfig::small().with_seed(7)).generate();
        let b = TraceGenerator::new(TraceConfig::small().with_seed(7)).generate();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.tasks()[10], b.tasks()[10]);
        let c = TraceGenerator::new(TraceConfig::small().with_seed(8)).generate();
        assert_ne!(a.len(), c.len());
    }

    #[test]
    fn tasks_sorted_and_ids_sequential() {
        let t = small_trace();
        for (i, w) in t.tasks().windows(2).enumerate() {
            assert!(w[0].arrival <= w[1].arrival, "unsorted at {i}");
        }
        for (i, task) in t.tasks().iter().enumerate() {
            assert_eq!(task.id, TaskId(i as u64));
        }
    }

    #[test]
    fn arrivals_within_span() {
        let t = small_trace();
        let span = TraceConfig::small().span;
        for task in t.tasks() {
            assert!(task.arrival.as_secs() <= span.as_secs());
            assert!(task.arrival >= SimTime::ZERO);
        }
    }

    #[test]
    fn all_tasks_valid() {
        let t = small_trace();
        for task in t.tasks() {
            task.validate().expect("generated task must satisfy invariants");
            assert!(task.demand.cpu >= 1e-4 && task.demand.cpu <= 1.0);
            assert!(task.duration.as_secs() >= 1.0);
        }
    }

    #[test]
    fn majority_of_tasks_are_short() {
        // Section III-D: more than 50% of tasks run under 100 s.
        let t = small_trace();
        let short =
            t.tasks().iter().filter(|t| t.duration.as_secs() < 100.0).count() as f64;
        let frac = short / t.len() as f64;
        assert!(frac > 0.5, "short fraction = {frac}");
    }

    #[test]
    fn gratis_exact_mode_mass_is_prominent() {
        let t = small_trace();
        let gratis: Vec<&Task> = t.tasks_in_group(PriorityGroup::Gratis).collect();
        let exact = gratis
            .iter()
            .filter(|t| t.demand == Resources::new(0.0125, 0.0159))
            .count() as f64;
        let frac = exact / gratis.len() as f64;
        assert!((0.3..0.55).contains(&frac), "exact-mode fraction = {frac}");
    }

    #[test]
    fn size_span_exceeds_two_orders_of_magnitude() {
        let t = small_trace();
        let cpus: Vec<f64> = t.tasks().iter().map(|t| t.demand.cpu).collect();
        let max = cpus.iter().cloned().fold(0.0, f64::max);
        let min = cpus.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 100.0, "span {}x", max / min);
    }

    #[test]
    fn production_durations_dominate() {
        let t = TraceGenerator::new(TraceConfig::small().with_seed(3)).generate();
        let mean = |g: PriorityGroup| {
            let ds: Vec<f64> =
                t.tasks_in_group(g).map(|t| t.duration.as_secs()).collect();
            ds.iter().sum::<f64>() / ds.len() as f64
        };
        assert!(
            mean(PriorityGroup::Production) > 3.0 * mean(PriorityGroup::Gratis),
            "production tasks should be much longer on average"
        );
    }

    #[test]
    fn jobs_group_multiple_tasks() {
        let t = small_trace();
        let mut per_job = std::collections::HashMap::new();
        for task in t.tasks() {
            *per_job.entry(task.job).or_insert(0usize) += 1;
        }
        let avg = t.len() as f64 / per_job.len() as f64;
        assert!(avg > 2.0, "mean tasks/job = {avg}");
        assert!(per_job.values().all(|&n| n <= 500));
    }

    #[test]
    fn batch_stream_layers_without_perturbing_base_workload() {
        use crate::config::BatchArrivalConfig;
        let base = TraceGenerator::new(TraceConfig::small().with_seed(7)).generate();
        let batched = TraceGenerator::new(
            TraceConfig::small().with_seed(7).with_batches(BatchArrivalConfig::gratis_default()),
        )
        .generate();
        assert!(batched.len() > base.len(), "batches must add tasks");
        // The base workload is byte-identical inside the batched trace:
        // stripping the batch arrivals (identifiable by their shared
        // arrival instants being absent from the base) must leave
        // exactly the base multiset. Cheaper equivalent check: every
        // base task appears in the batched trace with identical
        // (arrival, demand, duration) — ids are renumbered, so compare
        // on content.
        let key = |t: &Task| {
            (
                t.arrival.as_secs().to_bits(),
                t.demand.cpu.to_bits(),
                t.demand.mem.to_bits(),
                t.duration.as_secs().to_bits(),
            )
        };
        let mut batched_keys: std::collections::HashMap<_, usize> = std::collections::HashMap::new();
        for t in batched.tasks() {
            *batched_keys.entry(key(t)).or_insert(0) += 1;
        }
        for t in base.tasks() {
            let n = batched_keys.get_mut(&key(t)).expect("base task missing from batched trace");
            assert!(*n > 0, "base task multiplicity exhausted");
            *n -= 1;
        }
    }

    #[test]
    fn batch_fronts_are_correlated_arrivals() {
        use crate::config::BatchArrivalConfig;
        let cfg = TraceConfig::small().with_seed(11).with_batches(BatchArrivalConfig {
            // Burst often enough that a 2 h trace sees several fronts.
            mean_quiet_secs: 1200.0,
            ..BatchArrivalConfig::gratis_default()
        });
        let a = TraceGenerator::new(cfg.clone()).generate();
        let b = TraceGenerator::new(cfg).generate();
        assert_eq!(a.len(), b.len(), "batched traces are deterministic");
        // Fronts land whole groups of jobs at one instant: there must be
        // arrival timestamps shared by tasks of several distinct jobs,
        // which the continuous Poisson streams essentially never produce.
        let mut jobs_at: std::collections::HashMap<u64, std::collections::HashSet<JobId>> =
            std::collections::HashMap::new();
        for t in a.tasks() {
            jobs_at.entry(t.arrival.as_secs().to_bits()).or_default().insert(t.job);
        }
        let max_jobs_sharing_instant = jobs_at.values().map(|s| s.len()).max().unwrap_or(0);
        assert!(
            max_jobs_sharing_instant >= 3,
            "expected a multi-job batch front, max sharing = {max_jobs_sharing_instant}"
        );
    }

    #[test]
    fn priorities_match_groups() {
        let t = small_trace();
        for task in t.tasks() {
            let (lo, hi) = task.priority.group().level_range();
            assert!((lo..=hi).contains(&task.priority.level()));
        }
    }
}

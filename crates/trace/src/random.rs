//! Small, dependency-free samplers on top of a [`rand::Rng`].
//!
//! The pre-approved `rand` crate provides uniform bits only; the
//! distribution shapes the generator needs (normal, lognormal, Poisson)
//! are implemented here.

use rand::Rng;

/// A standard normal draw via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A lognormal draw: `exp(mu + sigma·Z)`.
///
/// `mu`/`sigma` parameterize the underlying normal, so the median of the
/// result is `exp(mu)`.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// An exponential draw with the given rate (events per unit time).
///
/// # Panics
///
/// Panics if `rate` is non-positive or non-finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate.is_finite() && rate > 0.0, "exponential rate must be positive, got {rate}");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// A Poisson draw with the given mean.
///
/// Uses Knuth's product method for small means and a clamped normal
/// approximation above 64, which is indistinguishable at the bin sizes
/// the generator uses.
///
/// # Panics
///
/// Panics if `mean` is negative or non-finite.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(mean.is_finite() && mean >= 0.0, "poisson mean must be non-negative, got {mean}");
    if mean == 0.0 {
        return 0;
    }
    if mean > 64.0 {
        let draw = mean + mean.sqrt() * standard_normal(rng);
        return draw.round().max(0.0) as u64;
    }
    let limit = (-mean).exp();
    let mut product: f64 = rng.gen();
    let mut count = 0u64;
    while product > limit {
        product *= rng.gen::<f64>();
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.02, "var = {var}");
    }

    #[test]
    fn lognormal_median() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut samples: Vec<f64> = (0..50_001).map(|_| lognormal(&mut rng, 2.0, 0.8)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[25_000];
        assert!((median - 2.0f64.exp()).abs() < 0.3, "median = {median}");
        assert!(samples.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn poisson_small_mean_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean_target = 3.5;
        let total: u64 = (0..n).map(|_| poisson(&mut rng, mean_target)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - mean_target).abs() < 0.05, "mean = {mean}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let mean_target = 500.0;
        let samples: Vec<u64> = (0..n).map(|_| poisson(&mut rng, mean_target)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        let var = samples.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - mean_target).abs() < 2.0, "mean = {mean}");
        assert!((var - mean_target).abs() < 30.0, "var = {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let rate = 0.25;
        let total: f64 = (0..n).map(|_| exponential(&mut rng, rate)).sum();
        let mean = total / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.1, "mean = {mean}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_zero_rate_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = exponential(&mut rng, 0.0);
    }

    #[test]
    fn poisson_zero_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn poisson_negative_mean_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = poisson(&mut rng, -1.0);
    }
}

//! Generator calibration, with defaults matching the paper's Section III
//! workload analysis.

use harmony_model::{PriorityGroup, SimDuration};
use serde::{Deserialize, Serialize};

/// One mode of a per-group task-size mixture model.
///
/// Sizes are sampled per dimension as `median · 10^(σ·Z)` (a base-10
/// lognormal around the median), independently for CPU and memory —
/// Section III-D: "There is usually no correlation between CPU
/// requirement and memory requirements." A mode with `spread == 0`
/// produces the exact median, which is how the dominant gratis mode
/// (43% of gratis tasks at exactly `(0.0125, 0.0159)`) is expressed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeMode {
    /// Relative weight of the mode within its group (normalized by sum).
    pub weight: f64,
    /// Median normalized CPU demand.
    pub cpu_median: f64,
    /// Median normalized memory demand.
    pub mem_median: f64,
    /// Lognormal spread in decades (base-10 sigma) around the medians.
    pub spread: f64,
}

/// Arrival-process calibration for one priority group: a non-homogeneous
/// Poisson process with diurnal modulation and multiplicative noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalConfig {
    /// Mean job arrival rate in jobs per second.
    pub base_jobs_per_sec: f64,
    /// Mean number of tasks per job (geometric distribution).
    pub mean_tasks_per_job: f64,
    /// Diurnal swing in `[0, 1)`: rate varies by `±amplitude` over a day.
    pub diurnal_amplitude: f64,
    /// Hour of day at which the rate peaks.
    pub peak_hour: f64,
    /// Per-bin multiplicative lognormal noise (base-e sigma).
    pub noise_sigma: f64,
}

/// Bimodal (short/long) duration calibration for one priority group —
/// Section III-D: "tasks are either short or long" and "more than 50% of
/// the tasks are short (less than 100 seconds)".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DurationConfig {
    /// Fraction of tasks drawn from the long mode.
    pub long_fraction: f64,
    /// Median of the short mode in seconds.
    pub short_median_secs: f64,
    /// Lognormal sigma (base e) of the short mode.
    pub short_sigma: f64,
    /// Median of the long mode in seconds.
    pub long_median_secs: f64,
    /// Lognormal sigma (base e) of the long mode.
    pub long_sigma: f64,
    /// Hard cap on duration in seconds (the trace span bounds what the
    /// paper can observe; production tasks reach 17 days).
    pub max_secs: f64,
}

/// Calibration for the optional batch/MAP arrival stream: a two-state
/// Markov-modulated process (quiet ↔ burst) that, while bursting, emits
/// *batch fronts* — whole groups of jobs whose tasks all arrive at the
/// same instant. This is the correlated-arrival structure of
/// batch-processing workloads (Furman et al.), which the smooth
/// per-group Poisson streams cannot express.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchArrivalConfig {
    /// Which priority group the batch work belongs to, as a
    /// [`PriorityGroup::index`] (batch tiers are usually gratis/other).
    /// Sizes and durations are drawn from that group's calibration.
    pub group_index: usize,
    /// Mean dwell in the quiet state, seconds (exponential).
    pub mean_quiet_secs: f64,
    /// Mean dwell in the bursting state, seconds (exponential).
    pub mean_burst_secs: f64,
    /// Batch-front rate while bursting, fronts per second.
    pub fronts_per_sec: f64,
    /// Mean jobs arriving together at one front (geometric).
    pub mean_jobs_per_front: f64,
    /// Mean tasks per batch job (geometric).
    pub mean_tasks_per_job: f64,
}

impl BatchArrivalConfig {
    /// A gratis-tier batch stream: a burst every ~2 h on average,
    /// lasting ~10 min, landing a front of ~8 jobs every ~20 s while it
    /// runs. Heavy enough to move provisioning, far from a DoS.
    pub fn gratis_default() -> Self {
        BatchArrivalConfig {
            group_index: 0,
            mean_quiet_secs: 7200.0,
            mean_burst_secs: 600.0,
            fronts_per_sec: 0.05,
            mean_jobs_per_front: 8.0,
            mean_tasks_per_job: 6.0,
        }
    }
}

/// Full generator calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// RNG seed; traces are fully deterministic per seed.
    pub seed: u64,
    /// Total simulated span.
    pub span: SimDuration,
    /// Width of the rate-modulation bins used by the arrival sampler.
    pub bin: SimDuration,
    /// Per-group arrival calibration, indexed by [`PriorityGroup::index`].
    pub arrivals: [ArrivalConfig; 3],
    /// Per-group size mixture, indexed by [`PriorityGroup::index`].
    pub size_modes: [Vec<SizeMode>; 3],
    /// Per-group duration calibration, indexed by
    /// [`PriorityGroup::index`].
    pub durations: [DurationConfig; 3],
    /// Optional correlated batch/MAP arrival stream layered on top of
    /// the per-group Poisson streams. `None` (the default everywhere)
    /// leaves existing traces byte-identical; `Some` adds batch tasks
    /// from an independent RNG stream, so the base workload is
    /// unchanged either way.
    pub batches: Option<BatchArrivalConfig>,
}

impl TraceConfig {
    /// The default 29-day calibration mirroring the paper's analysis
    /// window, at a task volume (~10⁵–10⁶ tasks) that keeps experiments
    /// laptop-scale. Relative group shares, size spreads, and duration
    /// shapes follow Section III; see DESIGN.md §6 for the substitution
    /// note.
    pub fn google_like() -> Self {
        TraceConfig {
            seed: 2013,
            span: SimDuration::from_days(29.0),
            bin: SimDuration::from_mins(5.0),
            arrivals: [
                // Gratis: high volume of small, short tasks.
                ArrivalConfig {
                    base_jobs_per_sec: 0.020,
                    mean_tasks_per_job: 5.0,
                    diurnal_amplitude: 0.35,
                    peak_hour: 14.0,
                    noise_sigma: 0.25,
                },
                // Other: the middle band.
                ArrivalConfig {
                    base_jobs_per_sec: 0.016,
                    mean_tasks_per_job: 5.0,
                    diurnal_amplitude: 0.45,
                    peak_hour: 15.0,
                    noise_sigma: 0.30,
                },
                // Production: fewer, longer-lived tasks.
                ArrivalConfig {
                    base_jobs_per_sec: 0.004,
                    mean_tasks_per_job: 4.0,
                    diurnal_amplitude: 0.25,
                    peak_hour: 13.0,
                    noise_sigma: 0.20,
                },
            ],
            size_modes: [
                Self::gratis_modes(),
                Self::other_modes(),
                Self::production_modes(),
            ],
            durations: [
                // Gratis: mostly short; 90% under ~10 h.
                DurationConfig {
                    long_fraction: 0.12,
                    short_median_secs: 40.0,
                    short_sigma: 1.0,
                    long_median_secs: 2.0 * 3600.0,
                    long_sigma: 1.1,
                    max_secs: 3.0 * 86_400.0,
                },
                // Other: similar, slightly longer tails.
                DurationConfig {
                    long_fraction: 0.15,
                    short_median_secs: 60.0,
                    short_sigma: 1.0,
                    long_median_secs: 3.0 * 3600.0,
                    long_sigma: 1.2,
                    max_secs: 5.0 * 86_400.0,
                },
                // Production: long-lived services up to 17 days.
                DurationConfig {
                    long_fraction: 0.40,
                    short_median_secs: 90.0,
                    short_sigma: 1.1,
                    long_median_secs: 20.0 * 3600.0,
                    long_sigma: 1.4,
                    max_secs: 17.0 * 86_400.0,
                },
            ],
            batches: None,
        }
    }

    /// A 2-hour, high-rate configuration for fast tests and examples.
    pub fn small() -> Self {
        let mut c = Self::google_like();
        c.span = SimDuration::from_hours(2.0);
        c.bin = SimDuration::from_mins(2.0);
        for a in &mut c.arrivals {
            a.base_jobs_per_sec *= 4.0;
        }
        c
    }

    /// The closed-loop controller-evaluation configuration: 3 days at a
    /// rate that loads a 1/20-scale Table II cluster to a meaningful
    /// fraction of capacity.
    pub fn evaluation() -> Self {
        let mut c = Self::google_like();
        c.span = SimDuration::from_days(3.0);
        for a in &mut c.arrivals {
            a.base_jobs_per_sec *= 2.0;
        }
        c
    }

    /// The paper-scale workload: the full 29-day window at 2.5x the
    /// `google_like` arrival rates, which lands above a million tasks —
    /// the volume the paper's 10,000-machine Table II cluster absorbs.
    /// Pairs with `MachineCatalog::table2()` unscaled and the indexed
    /// sim engine (DESIGN.md §16).
    pub fn paper_scale() -> Self {
        let mut c = Self::google_like();
        for a in &mut c.arrivals {
            a.base_jobs_per_sec *= 2.5;
        }
        c
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the span.
    pub fn with_span(mut self, span: SimDuration) -> Self {
        self.span = span;
        self
    }

    /// Layers a batch/MAP arrival stream on top of the Poisson streams.
    pub fn with_batches(mut self, batches: BatchArrivalConfig) -> Self {
        self.batches = Some(batches);
        self
    }

    fn gratis_modes() -> Vec<SizeMode> {
        vec![
            // The dominant exact mode: 43% of gratis tasks at
            // (0.0125, 0.0159) — Section III-D.
            SizeMode { weight: 0.43, cpu_median: 0.0125, mem_median: 0.0159, spread: 0.0 },
            SizeMode { weight: 0.27, cpu_median: 0.004, mem_median: 0.003, spread: 0.12 },
            SizeMode { weight: 0.15, cpu_median: 0.02, mem_median: 0.015, spread: 0.18 },
            // CPU-intensive large tasks.
            SizeMode { weight: 0.08, cpu_median: 0.12, mem_median: 0.008, spread: 0.18 },
            // Memory-intensive large tasks.
            SizeMode { weight: 0.05, cpu_median: 0.008, mem_median: 0.10, spread: 0.18 },
            // The rare giants, skewed per Section III-D ("large tasks are
            // either CPU-intensive or memory-intensive"), ~1000x the
            // smallest.
            SizeMode { weight: 0.013, cpu_median: 0.40, mem_median: 0.05, spread: 0.12 },
            SizeMode { weight: 0.007, cpu_median: 0.05, mem_median: 0.35, spread: 0.12 },
        ]
    }

    fn other_modes() -> Vec<SizeMode> {
        vec![
            SizeMode { weight: 0.35, cpu_median: 0.01, mem_median: 0.012, spread: 0.18 },
            SizeMode { weight: 0.30, cpu_median: 0.03, mem_median: 0.025, spread: 0.18 },
            SizeMode { weight: 0.15, cpu_median: 0.10, mem_median: 0.02, spread: 0.18 },
            SizeMode { weight: 0.12, cpu_median: 0.015, mem_median: 0.12, spread: 0.18 },
            SizeMode { weight: 0.05, cpu_median: 0.35, mem_median: 0.06, spread: 0.15 },
            SizeMode { weight: 0.03, cpu_median: 0.04, mem_median: 0.32, spread: 0.15 },
        ]
    }

    fn production_modes() -> Vec<SizeMode> {
        vec![
            // Production is dominated by modest long-running services;
            // the cluster's true giants live in the batch tiers (the
            // trace's biggest tasks are low-priority).
            SizeMode { weight: 0.32, cpu_median: 0.02, mem_median: 0.025, spread: 0.18 },
            SizeMode { weight: 0.32, cpu_median: 0.06, mem_median: 0.05, spread: 0.18 },
            SizeMode { weight: 0.20, cpu_median: 0.15, mem_median: 0.05, spread: 0.15 },
            SizeMode { weight: 0.13, cpu_median: 0.04, mem_median: 0.18, spread: 0.15 },
            SizeMode { weight: 0.02, cpu_median: 0.40, mem_median: 0.08, spread: 0.12 },
            SizeMode { weight: 0.01, cpu_median: 0.06, mem_median: 0.40, spread: 0.12 },
        ]
    }

    /// The arrival calibration for a priority group.
    pub fn arrival(&self, group: PriorityGroup) -> &ArrivalConfig {
        &self.arrivals[group.index()]
    }

    /// The size mixture for a priority group.
    pub fn modes(&self, group: PriorityGroup) -> &[SizeMode] {
        &self.size_modes[group.index()]
    }

    /// The duration calibration for a priority group.
    pub fn duration(&self, group: PriorityGroup) -> &DurationConfig {
        &self.durations[group.index()]
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::google_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_google_like() {
        let c = TraceConfig::default();
        assert_eq!(c.span, SimDuration::from_days(29.0));
        assert_eq!(c, TraceConfig::google_like());
    }

    #[test]
    fn gratis_dominant_mode_matches_paper() {
        let c = TraceConfig::google_like();
        let modes = c.modes(PriorityGroup::Gratis);
        let dominant = &modes[0];
        assert_eq!(dominant.cpu_median, 0.0125);
        assert_eq!(dominant.mem_median, 0.0159);
        assert_eq!(dominant.spread, 0.0);
        assert!((dominant.weight - 0.43).abs() < 1e-12);
    }

    #[test]
    fn mode_weights_roughly_normalized() {
        let c = TraceConfig::google_like();
        for g in PriorityGroup::ALL {
            let total: f64 = c.modes(g).iter().map(|m| m.weight).sum();
            assert!((total - 1.0).abs() < 1e-9, "{g}: {total}");
        }
    }

    #[test]
    fn size_span_covers_three_orders_of_magnitude() {
        let c = TraceConfig::google_like();
        for g in PriorityGroup::ALL {
            let medians: Vec<f64> = c.modes(g).iter().map(|m| m.cpu_median).collect();
            let max = medians.iter().cloned().fold(0.0, f64::max);
            let min = medians.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(max / min >= 10.0, "{g}: medians span {max}/{min}");
        }
        // Across groups plus spread, the full range exceeds 1000x; check
        // gratis alone: 0.4 / 0.004 = 100x at medians, >1000x with
        // spread tails.
        let g = c.modes(PriorityGroup::Gratis);
        assert!(g.iter().map(|m| m.cpu_median).fold(0.0, f64::max) / g.iter().map(|m| m.cpu_median).fold(f64::INFINITY, f64::min) >= 100.0);
    }

    #[test]
    fn production_has_longest_tails() {
        let c = TraceConfig::google_like();
        let prod = c.duration(PriorityGroup::Production);
        assert!((prod.max_secs - 17.0 * 86_400.0).abs() < 1.0);
        assert!(prod.long_fraction > c.duration(PriorityGroup::Gratis).long_fraction);
    }

    #[test]
    fn variants_scale_sensibly() {
        let small = TraceConfig::small();
        assert_eq!(small.span, SimDuration::from_hours(2.0));
        let eval = TraceConfig::evaluation();
        assert_eq!(eval.span, SimDuration::from_days(3.0));
        assert!(
            eval.arrival(PriorityGroup::Gratis).base_jobs_per_sec
                > TraceConfig::google_like().arrival(PriorityGroup::Gratis).base_jobs_per_sec
        );
        let seeded = TraceConfig::small().with_seed(99);
        assert_eq!(seeded.seed, 99);
        let paper = TraceConfig::paper_scale();
        assert_eq!(paper.span, SimDuration::from_days(29.0));
        // ≥ 1M expected tasks: sum over groups of jobs/s × tasks/job ×
        // span.
        let expected: f64 = paper
            .arrivals
            .iter()
            .map(|a| a.base_jobs_per_sec * a.mean_tasks_per_job)
            .sum::<f64>()
            * paper.span.as_secs();
        assert!(expected >= 1.0e6, "paper-scale expects {expected} tasks");
    }
}

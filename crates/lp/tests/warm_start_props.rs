//! Property tests for warm-started simplex re-solves.
//!
//! The contract under test is the one the MPC control loop relies on:
//! re-solving a structurally identical problem from the previous optimal
//! basis must reach the same objective as a cold solve (warm starts are
//! a performance device, never a correctness trade), and a basis that no
//! longer fits the problem must fall back to the cold path instead of
//! corrupting the answer.

use harmony_lp::{Problem, Sense, SimplexOptions};
use proptest::prelude::*;

const TOL: f64 = 1e-6;

/// A randomly sized covering-style LP that is always feasible and
/// bounded: minimize a positive-cost point under `≥` rows whose
/// coefficients are non-negative with at least one strictly positive
/// entry per row.
///
/// Feasible because every variable is unbounded above and each row has a
/// positive coefficient; bounded below because all costs are positive
/// and variables are non-negative. The `≥` rows force artificials, so
/// cold solves pay a real phase 1 — exactly the cost warm starts avoid.
#[derive(Debug, Clone)]
struct CoverLp {
    costs: Vec<f64>,
    rows: Vec<Vec<f64>>,
    rhs: Vec<f64>,
}

impl CoverLp {
    fn build(&self) -> Problem {
        let mut p = Problem::new(Sense::Minimize);
        let vars: Vec<_> = self
            .costs
            .iter()
            .enumerate()
            .map(|(i, &c)| p.add_var(format!("x{i}"), 0.0, f64::INFINITY, c))
            .collect();
        for (row, &rhs) in self.rows.iter().zip(&self.rhs) {
            let terms: Vec<_> = vars
                .iter()
                .zip(row)
                .filter(|(_, &a)| a != 0.0)
                .map(|(&v, &a)| (v, a))
                .collect();
            p.add_ge(terms, rhs);
        }
        p
    }
}

fn cover_lp(n_vars: usize, n_rows: usize) -> impl Strategy<Value = CoverLp> {
    let costs = proptest::collection::vec(0.5..10.0f64, n_vars);
    // Each coefficient is 0 with probability ~1/2, else in [0.2, 5];
    // one column per row is forced positive below so rows never go empty.
    let coeff =
        (any::<bool>(), 0.2..5.0f64).prop_map(|(zero, v)| if zero { 0.0 } else { v });
    let rows = proptest::collection::vec(
        (proptest::collection::vec(coeff, n_vars), 0..n_vars),
        n_rows,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(mut row, forced)| {
                if row.iter().all(|&a| a == 0.0) {
                    row[forced] = 1.0;
                }
                row
            })
            .collect::<Vec<_>>()
    });
    let rhs = proptest::collection::vec(1.0..50.0f64, n_rows);
    (costs, rows, rhs).prop_map(|(costs, rows, rhs)| CoverLp { costs, rows, rhs })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Warm restart on a perturbed RHS reaches the cold objective.
    #[test]
    fn warm_restart_matches_cold_after_rhs_perturbation(
        lp in cover_lp(6, 4),
        scales in proptest::collection::vec(0.5..2.0f64, 4),
    ) {
        let p0 = lp.build();
        let cold0 = p0.solve().unwrap();

        let mut lp1 = lp.clone();
        for (r, s) in lp1.rhs.iter_mut().zip(&scales) {
            *r *= s;
        }
        let p1 = lp1.build();
        let cold1 = p1.solve().unwrap();
        let warm1 = p1
            .solve_warm_with(&SimplexOptions::default(), Some(cold0.basis()))
            .unwrap();

        prop_assert!(
            (warm1.objective() - cold1.objective()).abs()
                <= TOL * (1.0 + cold1.objective().abs()),
            "warm objective {} != cold objective {}",
            warm1.objective(),
            cold1.objective()
        );
        // Same structure and coefficients: the basis re-installs cleanly,
        // and any primal infeasibility from the moved RHS is repaired in
        // place (CoverLp is always feasible, so repair phase 1 must reach
        // zero) — the warm path is always taken, never the cold fallback.
        prop_assert!(warm1.warm_started());
        prop_assert!(warm1.phase1_pivots() <= warm1.pivots());
    }

    /// Warm restart on perturbed costs reaches the cold objective.
    #[test]
    fn warm_restart_matches_cold_after_cost_perturbation(
        lp in cover_lp(6, 4),
        scales in proptest::collection::vec(0.5..2.0f64, 6),
    ) {
        let p0 = lp.build();
        let cold0 = p0.solve().unwrap();

        let mut lp1 = lp.clone();
        for (c, s) in lp1.costs.iter_mut().zip(&scales) {
            *c *= s;
        }
        let p1 = lp1.build();
        let cold1 = p1.solve().unwrap();
        let warm1 = p1
            .solve_warm_with(&SimplexOptions::default(), Some(cold0.basis()))
            .unwrap();

        prop_assert!(
            (warm1.objective() - cold1.objective()).abs()
                <= TOL * (1.0 + cold1.objective().abs()),
            "warm objective {} != cold objective {}",
            warm1.objective(),
            cold1.objective()
        );
        // Same structure + same RHS: the old basis stays primal-feasible,
        // so the warm path must actually be taken.
        prop_assert!(warm1.warm_started());
    }

    /// A basis from a differently-shaped problem falls back to the cold
    /// path and still returns the correct optimum.
    #[test]
    fn stale_basis_falls_back_cleanly(
        lp_small in cover_lp(4, 3),
        lp_big in cover_lp(7, 5),
    ) {
        let stale = lp_small.build().solve().unwrap();
        let p = lp_big.build();
        let cold = p.solve().unwrap();
        let warm = p
            .solve_warm_with(&SimplexOptions::default(), Some(stale.basis()))
            .unwrap();
        prop_assert!(!warm.warm_started(), "mismatched dimensions must force cold");
        prop_assert!(
            (warm.objective() - cold.objective()).abs()
                <= TOL * (1.0 + cold.objective().abs())
        );
        prop_assert_eq!(warm.pivots(), cold.pivots());
        prop_assert_eq!(warm.phase1_pivots(), cold.phase1_pivots());
    }

    /// Re-solving the *identical* problem warm takes zero pivots: the
    /// previous optimum is still optimal.
    #[test]
    fn identical_resolve_is_free(lp in cover_lp(5, 4)) {
        let p = lp.build();
        let cold = p.solve().unwrap();
        let warm = p
            .solve_warm_with(&SimplexOptions::default(), Some(cold.basis()))
            .unwrap();
        prop_assert!(warm.warm_started());
        prop_assert_eq!(warm.pivots(), 0);
        prop_assert!(
            (warm.objective() - cold.objective()).abs()
                <= TOL * (1.0 + cold.objective().abs())
        );
    }
}

//! Property tests proving the sparse revised simplex and the dense
//! tableau engine are interchangeable: on random feasible, bounded LPs
//! the two backends must reach the same objective (≤ 1e-6 relative) —
//! cold, warm-started, and warm-started *across* backends (a basis
//! taken from one engine installed on the other).
//!
//! The generator covers every standardization shape the solver has:
//! doubly-bounded variables (bound rows), non-negative and upper-only
//! ranges (shifted/mirrored columns), free variables (split columns),
//! all three relations (slack, surplus, artificial-carrying equality
//! rows), and duplicated equality rows (redundant rows whose artificial
//! stays basic). Feasibility is guaranteed by construction — every
//! right-hand side is derived from a random anchor point inside the
//! variable domains — and boundedness by giving each variable a cost
//! sign that bounds its own objective term over its domain.

use harmony_lp::{Problem, Sense, SimplexOptions, SolverBackend, WarmOutcome};
use proptest::prelude::*;
use proptest::TestCaseError;

const REL_TOL: f64 = 1e-6;

fn opts(backend: SolverBackend) -> SimplexOptions {
    SimplexOptions { backend, ..SimplexOptions::default() }
}

/// One random variable: `kind` picks the domain/cost shape so the
/// objective term is bounded below over the domain.
#[derive(Debug, Clone, Copy)]
struct RandVar {
    kind: u8,
    x: f64,
    w: f64,
    c: f64,
}

impl RandVar {
    /// `(lb, ub, cost)` for the problem.
    fn def(self) -> (f64, f64, f64) {
        match self.kind {
            // Doubly bounded: any cost sign is bounded over a box.
            0 => (self.x, self.x + self.w, self.c),
            1 => (self.x, self.x + self.w, -self.c),
            // Non-negative, open above: positive cost bounds it.
            2 => (0.0, f64::INFINITY, self.c),
            // Upper bound only (mirrored column): negative cost bounds it.
            3 => (f64::NEG_INFINITY, self.x, -self.c),
            // Free (split column): zero cost keeps it bounded.
            _ => (f64::NEG_INFINITY, f64::INFINITY, 0.0),
        }
    }

    /// A point inside the domain, at fraction `t ∈ [0, 1]`.
    fn anchor(self, t: f64) -> f64 {
        match self.kind {
            0 | 1 => self.x + t * self.w,
            2 => t * 5.0,
            3 => self.x - t * 4.0,
            _ => 6.0 * t - 3.0,
        }
    }
}

#[derive(Debug, Clone)]
struct RandomLp {
    vars: Vec<RandVar>,
    /// Dense coefficient rows (zeros allowed).
    rows: Vec<Vec<f64>>,
    /// 0 = ≤, 1 = ≥, 2 = =.
    relations: Vec<u8>,
}

impl RandomLp {
    /// Builds the LP with right-hand sides anchored at the feasible
    /// point `anchor_t` (one domain fraction per variable), per-row
    /// non-negative `slacks` widening the inequalities, and per-variable
    /// positive `cost_scales`.
    fn build(&self, anchor_t: &[f64], slacks: &[f64], cost_scales: &[f64]) -> Problem {
        let mut p = Problem::new(Sense::Minimize);
        let ids: Vec<_> = self
            .vars
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let (lb, ub, cost) = v.def();
                p.add_var(format!("x{i}"), lb, ub, cost * cost_scales[i])
            })
            .collect();
        let point: Vec<f64> =
            self.vars.iter().zip(anchor_t).map(|(v, &t)| v.anchor(t)).collect();
        for ((row, &rel), &slack) in self.rows.iter().zip(&self.relations).zip(slacks) {
            let terms: Vec<_> = ids
                .iter()
                .zip(row)
                .filter(|(_, &a)| a != 0.0)
                .map(|(&v, &a)| (v, a))
                .collect();
            if terms.is_empty() {
                continue;
            }
            let at_anchor: f64 = row.iter().zip(&point).map(|(a, x)| a * x).sum();
            match rel {
                0 => p.add_le(terms, at_anchor + slack),
                1 => p.add_ge(terms, at_anchor - slack),
                _ => p.add_eq(terms, at_anchor),
            }
        }
        p
    }
}

fn random_lp(n_vars: usize, n_rows: usize) -> impl Strategy<Value = RandomLp> {
    let vars = proptest::collection::vec(
        (0u8..5, -5.0..5.0f64, 0.5..8.0f64, 0.2..5.0f64)
            .prop_map(|(kind, x, w, c)| RandVar { kind, x, w, c }),
        n_vars,
    );
    let coeff = (any::<bool>(), -3.0..3.0f64).prop_map(|(z, v)| if z { 0.0 } else { v });
    let rows = proptest::collection::vec(proptest::collection::vec(coeff, n_vars), n_rows);
    let relations = proptest::collection::vec(0u8..3, n_rows);
    (vars, rows, relations)
        .prop_map(|(vars, rows, relations)| RandomLp { vars, rows, relations })
}

fn assert_objectives_agree(a: f64, b: f64) -> Result<(), TestCaseError> {
    prop_assert!(
        (a - b).abs() <= REL_TOL * (1.0 + a.abs().max(b.abs())),
        "objectives disagree: {a} vs {b}"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cold solves agree between backends.
    #[test]
    fn cold_backends_agree(
        lp in random_lp(8, 6),
        anchor_t in proptest::collection::vec(0.0..1.0f64, 8),
        slacks in proptest::collection::vec(0.0..4.0f64, 6),
    ) {
        let p = lp.build(&anchor_t, &slacks, &[1.0; 8]);
        let sparse = p.solve_with(&opts(SolverBackend::Sparse)).unwrap();
        let dense = p.solve_with(&opts(SolverBackend::Dense)).unwrap();
        assert_objectives_agree(sparse.objective(), dense.objective())?;
        prop_assert_eq!(sparse.warm_outcome(), WarmOutcome::Cold);
        prop_assert_eq!(dense.warm_outcome(), WarmOutcome::Cold);
    }

    /// Warm restarts after the RHS and costs both moved agree between
    /// backends — including installing each backend's basis on the
    /// *other* backend, which is what a checkpoint written before a
    /// backend change exercises.
    #[test]
    fn warm_backends_agree(
        lp in random_lp(7, 5),
        t1 in proptest::collection::vec(0.0..1.0f64, 7),
        s1 in proptest::collection::vec(0.0..4.0f64, 5),
        t2 in proptest::collection::vec(0.0..1.0f64, 7),
        s2 in proptest::collection::vec(0.0..4.0f64, 5),
        cost_scales in proptest::collection::vec(0.5..2.0f64, 7),
    ) {
        let p1 = lp.build(&t1, &s1, &[1.0; 7]);
        let sparse1 = p1.solve_with(&opts(SolverBackend::Sparse)).unwrap();
        let dense1 = p1.solve_with(&opts(SolverBackend::Dense)).unwrap();

        let p2 = lp.build(&t2, &s2, &cost_scales);
        let cold2 = p2.solve_with(&opts(SolverBackend::Dense)).unwrap();
        // Four warm combinations: each backend from its own basis and
        // from the other's.
        for (backend, basis) in [
            (SolverBackend::Sparse, sparse1.basis()),
            (SolverBackend::Sparse, dense1.basis()),
            (SolverBackend::Dense, dense1.basis()),
            (SolverBackend::Dense, sparse1.basis()),
        ] {
            let warm = p2.solve_warm_with(&opts(backend), Some(basis)).unwrap();
            assert_objectives_agree(warm.objective(), cold2.objective())?;
            // Identical structure and coefficients: the basis installs,
            // and the generator guarantees feasibility, so the in-place
            // repair (if the moved RHS requires one) must succeed.
            prop_assert_eq!(warm.warm_outcome(), WarmOutcome::Hit);
        }
    }

    /// Duplicated equality rows leave an artificial basic (redundant
    /// row): both backends must agree on the objective, carry the
    /// artificial in the basis identically, and reject that basis for
    /// warm-starting the same way.
    #[test]
    fn redundant_rows_agree(
        lp in random_lp(6, 4),
        anchor_t in proptest::collection::vec(0.0..1.0f64, 6),
        slacks in proptest::collection::vec(0.0..4.0f64, 4),
    ) {
        let mut lp = lp;
        // Duplicate every row and force the first pair to equality so at
        // least one redundant row exists.
        lp.rows = lp.rows.iter().cloned().flat_map(|r| [r.clone(), r]).collect();
        lp.relations =
            lp.relations.iter().flat_map(|&r| [r, r]).collect();
        lp.relations[0] = 2;
        lp.relations[1] = 2;
        let slacks: Vec<f64> = slacks.iter().flat_map(|&s| [s, s]).collect();
        let p = lp.build(&anchor_t, &slacks, &[1.0; 6]);
        let sparse = p.solve_with(&opts(SolverBackend::Sparse)).unwrap();
        let dense = p.solve_with(&opts(SolverBackend::Dense)).unwrap();
        assert_objectives_agree(sparse.objective(), dense.objective())?;

        let n_cols = sparse.basis().num_cols();
        prop_assert_eq!(n_cols, dense.basis().num_cols());
        let sparse_kept = sparse.basis().columns().iter().any(|&j| j >= n_cols);
        let dense_kept = dense.basis().columns().iter().any(|&j| j >= n_cols);
        prop_assert_eq!(sparse_kept, dense_kept, "redundancy must classify identically");

        if sparse_kept {
            // A basis that kept an artificial is rejected on re-install —
            // by both backends, with the structural-fallback outcome.
            for backend in [SolverBackend::Sparse, SolverBackend::Dense] {
                let warm = p.solve_warm_with(&opts(backend), Some(sparse.basis())).unwrap();
                prop_assert_eq!(warm.warm_outcome(), WarmOutcome::StructuralFallback);
                assert_objectives_agree(warm.objective(), dense.objective())?;
            }
        }
    }
}

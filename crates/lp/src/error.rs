//! Error type for LP modeling and solving.

use std::error::Error;
use std::fmt;

/// Errors returned by LP construction and the simplex solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LpError {
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// The pivot-count safety limit was reached before optimality.
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// A coefficient, bound, or right-hand side was NaN or infinite where
    /// a finite value is required.
    NonFiniteInput {
        /// Where the bad value appeared.
        context: &'static str,
    },
    /// A variable's lower bound exceeds its upper bound.
    EmptyDomain {
        /// The variable's name.
        name: String,
    },
    /// A variable id from a different problem (or out of range) was used.
    UnknownVariable {
        /// The raw index supplied.
        index: usize,
    },
    /// The sparse engine's basis factorization broke down numerically:
    /// a basis whose pivots were all accepted refactorized as singular,
    /// which means rounding error has degraded it beyond use. Extremely
    /// rare; re-solving without a warm basis (or on the dense backend)
    /// is the caller's best recourse.
    SingularBasis,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => f.write_str("problem is infeasible"),
            LpError::Unbounded => f.write_str("objective is unbounded"),
            LpError::IterationLimit { limit } => {
                write!(f, "simplex did not converge within {limit} pivots")
            }
            LpError::NonFiniteInput { context } => {
                write!(f, "non-finite value supplied in {context}")
            }
            LpError::EmptyDomain { name } => {
                write!(f, "variable {name:?} has lower bound above upper bound")
            }
            LpError::UnknownVariable { index } => {
                write!(f, "variable index {index} does not belong to this problem")
            }
            LpError::SingularBasis => {
                f.write_str("basis factorization broke down numerically")
            }
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert_eq!(LpError::Infeasible.to_string(), "problem is infeasible");
        assert!(LpError::IterationLimit { limit: 10 }.to_string().contains("10"));
        assert!(LpError::EmptyDomain { name: "x".into() }.to_string().contains("x"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<LpError>();
    }
}

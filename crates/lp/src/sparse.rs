//! Sparse revised simplex engine ([`crate::SolverBackend::Sparse`]).
//!
//! Where the dense engine keeps the whole tableau in `B⁻¹A` form and
//! pays O(rows × cols) per pivot to maintain it, this engine stores the
//! standardized constraint matrix once — immutably, in compressed
//! sparse column ([`Csc`]) form — and reconstructs only what a pivot
//! actually needs from an eta-file factorization of the basis
//! (`crate::factor`):
//!
//! 1. **Pricing.** One BTRAN gives the simplex multipliers
//!    `y = B⁻ᵀc_B`; reduced costs `c_j − y·A_j` then cost one sparse
//!    dot per column, O(nnz(A)) for a full Dantzig pass. The Bland
//!    anti-cycling fallback after a degeneracy streak is identical to
//!    the dense engine's.
//! 2. **Ratio test.** One FTRAN gives the pivot direction
//!    `d = B⁻¹A_j`; the leaving row and tie-breaks mirror the dense
//!    engine exactly.
//! 3. **Update.** The basic values update in place
//!    (`x_B ← x_B − θd`), and the pivot appends one eta — no tableau
//!    elimination at all.
//!
//! The eta file is rebuilt from the current basis columns every
//! [`REFACTOR_EVERY`] pivots, which bounds both the per-iteration solve
//! cost and the accumulated rounding error.
//!
//! Warm starts replay the dense semantics in factored form: the
//! supplied basis is refactorized from scratch (structural mismatch,
//! retained artificials, and singularity are rejected identically), and
//! a restart the new RHS pushed outside the polytope is repaired by
//! swapping each violated row's basic column for an artificial equal to
//! its *negation* — which keeps the basis factorization valid at the
//! cost of one sign-flip eta per violated row — then minimizing the
//! artificial sum from that start.

use crate::factor::{factorize, EtaFile};
use crate::problem::Problem;
use crate::simplex::{
    extract, phase2_cost, standardize, Basis, SimplexOptions, Solution, Standardized, WarmOutcome,
};
use crate::LpError;

/// Rebuild the eta file after this many pivots since the last rebuild.
/// Beyond this point the growing file costs more per FTRAN/BTRAN than a
/// fresh sparsity-ordered factorization does.
const REFACTOR_EVERY: usize = 64;

/// Off-pivot eta magnitudes at or below this are dropped (fill-in
/// control); comfortably below the solver's pivot tolerance so no real
/// elimination work is lost.
const ETA_DROP_TOL: f64 = 1e-12;

/// A compressed-sparse-column matrix. Columns can be appended (the
/// phase-1 artificials), never modified.
#[derive(Debug, Clone)]
pub(crate) struct Csc {
    nrows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Csc {
    /// Transposes sparse rows (`(col, value)` pairs, duplicate-free)
    /// into column-major storage via a counting sort.
    pub(crate) fn from_rows(rows: &[Vec<(usize, f64)>], ncols: usize) -> Csc {
        let nrows = rows.len();
        let mut col_ptr = vec![0usize; ncols + 1];
        for row in rows {
            for &(j, _) in row {
                col_ptr[j + 1] += 1;
            }
        }
        for j in 0..ncols {
            col_ptr[j + 1] += col_ptr[j];
        }
        let nnz = col_ptr[ncols];
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![0.0; nnz];
        let mut cursor = col_ptr.clone();
        for (i, row) in rows.iter().enumerate() {
            for &(j, a) in row {
                let k = cursor[j];
                cursor[j] += 1;
                row_idx[k] = i;
                values[k] = a;
            }
        }
        Csc { nrows, col_ptr, row_idx, values }
    }

    pub(crate) fn num_rows(&self) -> usize {
        self.nrows
    }

    pub(crate) fn num_cols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    pub(crate) fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Iterates the `(row, value)` entries of column `j`.
    pub(crate) fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// Appends a column holding `entries` and returns its index.
    pub(crate) fn push_col(&mut self, entries: &[(usize, f64)]) -> usize {
        for &(i, a) in entries {
            debug_assert!(i < self.nrows);
            self.row_idx.push(i);
            self.values.push(a);
        }
        self.col_ptr.push(self.row_idx.len());
        self.col_ptr.len() - 2
    }
}

/// Revised-simplex working state: the (artificial-extended) matrix, the
/// current basis with its eta-file factorization, and the basic values.
struct Revised {
    matrix: Csc,
    /// Standardized right-hand side (for recomputing `xb` on refactor).
    b: Vec<f64>,
    /// Basic column per pivot row.
    basis: Vec<usize>,
    /// Current basic values, kept ≥ 0 up to the feasibility tolerance.
    xb: Vec<f64>,
    etas: EtaFile,
    /// Eta-file length right after the last (re)factorization.
    fresh_len: usize,
    is_basic: Vec<bool>,
    tol: f64,
    feas: f64,
    pivots: usize,
    max_pivots: usize,
}

impl Revised {
    fn new(
        matrix: Csc,
        b: Vec<f64>,
        basis: Vec<usize>,
        xb: Vec<f64>,
        etas: EtaFile,
        options: &SimplexOptions,
        max_pivots: usize,
    ) -> Revised {
        let mut is_basic = vec![false; matrix.num_cols()];
        for &j in &basis {
            is_basic[j] = true;
        }
        let fresh_len = etas.len();
        Revised {
            matrix,
            b,
            basis,
            xb,
            etas,
            fresh_len,
            is_basic,
            tol: options.tolerance,
            feas: options.feas_tol(),
            pivots: 0,
            max_pivots,
        }
    }

    /// Recomputes `xb = B⁻¹b` through the current eta file, clamping
    /// sub-tolerance negatives to zero.
    fn recompute_xb(&mut self) {
        self.xb.copy_from_slice(&self.b);
        self.etas.ftran(&mut self.xb);
        for v in &mut self.xb {
            if *v < 0.0 && *v >= -self.feas {
                *v = 0.0;
            }
        }
    }

    /// Rebuilds the eta file from the current basis columns and
    /// recomputes the basic values from scratch.
    fn refactorize(&mut self) -> Result<(), LpError> {
        match factorize(&self.matrix, &self.basis, self.tol, ETA_DROP_TOL) {
            Some((etas, basis_by_row)) => {
                self.etas = etas;
                self.basis = basis_by_row;
                self.fresh_len = self.etas.len();
                self.recompute_xb();
                Ok(())
            }
            // The basis was nonsingular when its pivots were accepted, so
            // reaching this means rounding error has degraded it beyond
            // use — surface it rather than loop on a broken factorization.
            None => Err(LpError::SingularBasis),
        }
    }

    /// Runs primal simplex minimizing `cost`, allowing only columns
    /// `< allowed_cols` to enter the basis. Returns the objective value.
    /// Pricing and tie-breaking mirror the dense engine: Dantzig's
    /// most-negative reduced cost, Bland's smallest-index rule after a
    /// streak of degenerate pivots, leaving ties broken on the smaller
    /// basis column.
    fn run(&mut self, cost: &[f64], allowed_cols: usize) -> Result<f64, LpError> {
        let m = self.matrix.num_rows();
        let mut y = vec![0.0; m];
        let mut dir = vec![0.0; m];
        let mut degenerate_streak = 0usize;
        loop {
            if self.etas.len() >= self.fresh_len + REFACTOR_EVERY {
                self.refactorize()?;
            }
            let use_bland = degenerate_streak > 64;
            // Simplex multipliers: y = B⁻ᵀ c_B (one BTRAN).
            for (i, v) in y.iter_mut().enumerate() {
                *v = cost[self.basis[i]];
            }
            self.etas.btran(&mut y);
            // Pricing: r_j = c_j − y·A_j, one sparse dot per column.
            let mut entering: Option<(usize, f64)> = None;
            for (j, &basic) in self.is_basic.iter().enumerate().take(allowed_cols) {
                if basic {
                    continue;
                }
                let mut dot = 0.0;
                for (i, a) in self.matrix.col(j) {
                    dot += y[i] * a;
                }
                let r = cost[j] - dot;
                if r >= -self.tol {
                    continue;
                }
                if use_bland {
                    entering = Some((j, r)); // first (smallest) index
                    break;
                }
                if entering.is_none_or(|(_, best)| r < best) {
                    entering = Some((j, r));
                }
            }
            let Some((j, _)) = entering else {
                // Optimal. Recompute xb once through the eta file: the
                // FTRAN result carries less drift than the incrementally
                // updated values, and extraction reads xb directly.
                self.recompute_xb();
                let obj: f64 = (0..m).map(|i| cost[self.basis[i]] * self.xb[i]).sum();
                return Ok(obj);
            };
            // Pivot direction: d = B⁻¹ A_j (one FTRAN).
            dir.fill(0.0);
            for (i, a) in self.matrix.col(j) {
                dir[i] = a;
            }
            self.etas.ftran(&mut dir);
            // Ratio test with Bland tie-breaking on the leaving basis
            // column index (identical to the dense engine).
            let mut leave: Option<(usize, f64)> = None;
            for (i, &d) in dir.iter().enumerate() {
                if d > self.tol {
                    let ratio = self.xb[i].max(0.0) / d;
                    match leave {
                        None => leave = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < lr - self.tol
                                || (ratio < lr + self.tol && self.basis[i] < self.basis[li])
                            {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((r, ratio)) = leave else {
                return Err(LpError::Unbounded);
            };
            if ratio <= self.tol {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }
            // Update basic values: x_B ← x_B − θd, entering takes θ.
            for (v, &d) in self.xb.iter_mut().zip(dir.iter()) {
                if d != 0.0 {
                    *v -= ratio * d;
                    if *v < 0.0 && *v >= -self.feas {
                        *v = 0.0;
                    }
                }
            }
            self.xb[r] = ratio;
            self.is_basic[self.basis[r]] = false;
            self.is_basic[j] = true;
            self.etas.push_pivot(r, &dir, ETA_DROP_TOL);
            self.basis[r] = j;
            self.pivots += 1;
            if self.pivots > self.max_pivots {
                return Err(LpError::IterationLimit { limit: self.max_pivots });
            }
        }
    }

    /// After a successful phase 1, swaps still-basic artificials for
    /// structural/slack columns where one is available; redundant rows
    /// keep their artificial basic at value 0 (barred from entering
    /// phase 2 by `allowed_cols`). Like the dense engine's drive-out,
    /// these degenerate swaps are factorization bookkeeping and are not
    /// charged against the pivot budget.
    fn drive_out_artificials(&mut self, art_start: usize) {
        let m = self.matrix.num_rows();
        let mut rho = vec![0.0; m];
        let mut dir = vec![0.0; m];
        for r in 0..m {
            if self.basis[r] < art_start {
                continue;
            }
            // Row r of B⁻¹A is ρᵀA with ρ = B⁻ᵀe_r: one BTRAN, then one
            // sparse dot per candidate column — the sparse equivalent of
            // scanning the dense tableau row.
            rho.fill(0.0);
            rho[r] = 1.0;
            self.etas.btran(&mut rho);
            let mut found = None;
            for j in 0..art_start {
                if self.is_basic[j] {
                    continue;
                }
                let mut dot = 0.0;
                for (i, a) in self.matrix.col(j) {
                    dot += rho[i] * a;
                }
                if dot.abs() > self.tol {
                    found = Some(j);
                    break;
                }
            }
            let Some(j) = found else {
                continue; // redundant row
            };
            dir.fill(0.0);
            for (i, a) in self.matrix.col(j) {
                dir[i] = a;
            }
            self.etas.ftran(&mut dir);
            if dir[r].abs() <= self.tol {
                continue; // numerically vanished; treat as redundant
            }
            // The artificial sits at value 0, so the swap is degenerate:
            // θ = 0 and no basic value moves.
            self.is_basic[self.basis[r]] = false;
            self.is_basic[j] = true;
            self.etas.push_pivot(r, &dir, ETA_DROP_TOL);
            self.basis[r] = j;
            self.xb[r] = 0.0;
        }
    }

    /// Maps the current basic point back to user space.
    fn extract_solution(
        &self,
        p: &Problem,
        std_form: &Standardized,
        phase1_pivots: usize,
        warm: WarmOutcome,
    ) -> Solution {
        let mut col_values = vec![0.0; self.matrix.num_cols()];
        for (i, &j) in self.basis.iter().enumerate() {
            col_values[j] = self.xb[i].max(0.0);
        }
        extract(p, std_form, &col_values, &self.basis, self.pivots, phase1_pivots, warm)
    }
}

/// Entry point for [`crate::SolverBackend::Sparse`]; semantics match
/// the dense `solve_dense` exactly (same warm-start outcomes, same
/// error conditions).
pub(crate) fn solve_sparse(
    p: &Problem,
    options: &SimplexOptions,
    warm: Option<&Basis>,
) -> Result<Solution, LpError> {
    let std_form = standardize(p);
    let m = std_form.rows.len();
    let struct_and_slack = std_form.struct_and_slack;
    let max_pivots = options
        .max_pivots
        .unwrap_or_else(|| SimplexOptions::auto_pivot_budget(m, struct_and_slack));

    let mut warm_outcome = WarmOutcome::Cold;
    if let Some(basis) = warm {
        match try_warm(p, &std_form, basis, options, max_pivots)? {
            WarmAttempt::Solved(solution) => return Ok(solution),
            WarmAttempt::RepairFailed => warm_outcome = WarmOutcome::RepairFallback,
            WarmAttempt::NotInstalled => warm_outcome = WarmOutcome::StructuralFallback,
        }
    }
    solve_cold(p, &std_form, options, max_pivots, warm_outcome)
}

enum WarmAttempt {
    Solved(Solution),
    /// Installed but the repair phase 1 bottomed out above tolerance.
    RepairFailed,
    /// Dimension mismatch, retained artificial, or singular basis.
    NotInstalled,
}

fn try_warm(
    p: &Problem,
    std_form: &Standardized,
    basis: &Basis,
    options: &SimplexOptions,
    max_pivots: usize,
) -> Result<WarmAttempt, LpError> {
    let m = std_form.rows.len();
    let struct_and_slack = std_form.struct_and_slack;
    let feas = options.feas_tol();
    if basis.cols.len() != m || basis.n_cols != struct_and_slack {
        return Ok(WarmAttempt::NotInstalled); // structural change
    }
    if basis.cols.iter().any(|&j| j >= struct_and_slack) {
        return Ok(WarmAttempt::NotInstalled); // artificial stayed basic
    }
    let mut matrix = Csc::from_rows(&std_form.rows, struct_and_slack);
    let Some((mut etas, mut basis_by_row)) =
        factorize(&matrix, &basis.cols, options.tolerance, ETA_DROP_TOL)
    else {
        return Ok(WarmAttempt::NotInstalled); // singular for the new A
    };
    let mut xb = std_form.b.clone();
    etas.ftran(&mut xb);
    // Rows where the restart point B⁻¹b went negative: the previous
    // vertex is outside today's polytope (RHS moved against it).
    let violated: Vec<usize> = (0..m).filter(|&i| xb[i] < -feas).collect();
    for v in &mut xb {
        if *v < 0.0 && *v >= -feas {
            *v = 0.0;
        }
    }

    if violated.is_empty() {
        let cost = phase2_cost(p, &std_form.maps, struct_and_slack);
        let mut rev =
            Revised::new(matrix, std_form.b.clone(), basis_by_row, xb, etas, options, max_pivots);
        rev.run(&cost, struct_and_slack)?;
        return Ok(WarmAttempt::Solved(rev.extract_solution(p, std_form, 0, WarmOutcome::Hit)));
    }

    // Repair: swap each violated row's basic column for an artificial
    // equal to its negation. The new basis is the old one with those
    // columns sign-flipped — one sign-flip eta each keeps the
    // factorization valid — and the restart point becomes |x_B| ≥ 0 by
    // construction. Minimizing the artificial sum from that start is an
    // ordinary phase 1 seeded with a basis already optimal everywhere
    // else, so it costs pivots proportional to the damage.
    let mut col_buf: Vec<(usize, f64)> = Vec::new();
    for &i in &violated {
        col_buf.clear();
        for (r, a) in matrix.col(basis_by_row[i]) {
            col_buf.push((r, -a));
        }
        let art = matrix.push_col(&col_buf);
        etas.push_sign_flip(i);
        basis_by_row[i] = art;
        xb[i] = -xb[i];
    }
    let total = matrix.num_cols();
    let mut cost = vec![0.0; total];
    for c in cost.iter_mut().skip(struct_and_slack) {
        *c = 1.0;
    }
    let mut rev =
        Revised::new(matrix, std_form.b.clone(), basis_by_row, xb, etas, options, max_pivots);
    let obj = rev.run(&cost, total)?;
    if obj > feas {
        return Ok(WarmAttempt::RepairFailed); // cold solve decides
    }
    rev.drive_out_artificials(struct_and_slack);
    let phase1_pivots = rev.pivots;
    let cost = phase2_cost(p, &std_form.maps, total);
    rev.run(&cost, struct_and_slack)?;
    Ok(WarmAttempt::Solved(rev.extract_solution(p, std_form, phase1_pivots, WarmOutcome::Hit)))
}

fn solve_cold(
    p: &Problem,
    std_form: &Standardized,
    options: &SimplexOptions,
    max_pivots: usize,
    warm_outcome: WarmOutcome,
) -> Result<Solution, LpError> {
    let struct_and_slack = std_form.struct_and_slack;
    let mut matrix = Csc::from_rows(&std_form.rows, struct_and_slack);
    // Initial basis: ready slacks where available, fresh artificial unit
    // columns elsewhere. Both are unit columns, so B = I and the eta
    // file starts empty with x_B = b.
    let mut n_art = 0usize;
    let mut basis: Vec<usize> = Vec::with_capacity(std_form.rows.len());
    for (i, ready) in std_form.ready_basis.iter().enumerate() {
        match ready {
            Some(col) => basis.push(*col),
            None => {
                basis.push(matrix.push_col(&[(i, 1.0)]));
                n_art += 1;
            }
        }
    }
    let total = matrix.num_cols();
    let xb = std_form.b.clone();
    let mut rev = Revised::new(
        matrix,
        std_form.b.clone(),
        basis,
        xb,
        EtaFile::identity(),
        options,
        max_pivots,
    );

    // Phase 1: minimize sum of artificials.
    if n_art > 0 {
        let mut cost = vec![0.0; total];
        for c in cost.iter_mut().skip(struct_and_slack) {
            *c = 1.0;
        }
        let obj = rev.run(&cost, total)?;
        if obj > options.feas_tol() {
            return Err(LpError::Infeasible);
        }
        rev.drive_out_artificials(struct_and_slack);
    }

    let phase1_pivots = rev.pivots;

    // Phase 2: minimize the (sign-adjusted) user objective over
    // structural+slack columns only.
    let cost = phase2_cost(p, &std_form.maps, total);
    rev.run(&cost, struct_and_slack)?;

    Ok(rev.extract_solution(p, std_form, phase1_pivots, warm_outcome))
}

//! LP model construction.

use serde::{Deserialize, Serialize};

use crate::simplex::{solve_problem, solve_problem_warm, Basis, SimplexOptions, Solution};
use crate::LpError;

/// Handle to a decision variable within a [`Problem`].
///
/// The `Default` value is variable 0 — useful for pre-sizing id matrices
/// that are filled in afterwards.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// The dense index of this variable within its problem.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ rhs`
    Le,
    /// `Σ aᵢxᵢ ≥ rhs`
    Ge,
    /// `Σ aᵢxᵢ = rhs`
    Eq,
}

/// A linear constraint `Σ aᵢxᵢ (≤|≥|=) rhs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Sparse `(variable, coefficient)` terms. Duplicate variables are
    /// allowed; their coefficients sum.
    pub terms: Vec<(VarId, f64)>,
    /// The relation between the expression and `rhs`.
    pub relation: Relation,
    /// The right-hand side.
    pub rhs: f64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct VarDef {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
}

/// A linear program under construction.
///
/// Variables carry bounds `[lb, ub]` (either may be infinite) and an
/// objective coefficient; constraints are added with [`Problem::add_le`],
/// [`Problem::add_ge`], [`Problem::add_eq`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty problem with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Problem { sense, vars: Vec::new(), constraints: Vec::new() }
    }

    /// Adds a variable with bounds `[lb, ub]` and objective coefficient
    /// `obj`. Use `f64::NEG_INFINITY` / `f64::INFINITY` for unbounded
    /// sides.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is non-finite, a bound is NaN, or `lb > ub` —
    /// these are programming errors in model construction.
    pub fn add_var(&mut self, name: impl Into<String>, lb: f64, ub: f64, obj: f64) -> VarId {
        let name = name.into();
        assert!(obj.is_finite(), "objective coefficient for {name:?} must be finite");
        assert!(!lb.is_nan() && !ub.is_nan(), "bounds for {name:?} must not be NaN");
        assert!(lb <= ub, "variable {name:?} has empty domain [{lb}, {ub}]");
        let id = VarId(self.vars.len());
        self.vars.push(VarDef { name, lb, ub, obj });
        id
    }

    /// Overwrites the objective coefficient of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this problem or `obj` is
    /// non-finite.
    pub fn set_objective(&mut self, var: VarId, obj: f64) {
        assert!(obj.is_finite(), "objective coefficient must be finite");
        self.vars[var.0].obj = obj;
    }

    /// Adds `Σ aᵢxᵢ ≤ rhs`.
    pub fn add_le(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.add_constraint(Constraint { terms, relation: Relation::Le, rhs });
    }

    /// Adds `Σ aᵢxᵢ ≥ rhs`.
    pub fn add_ge(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.add_constraint(Constraint { terms, relation: Relation::Ge, rhs });
    }

    /// Adds `Σ aᵢxᵢ = rhs`.
    pub fn add_eq(&mut self, terms: Vec<(VarId, f64)>, rhs: f64) {
        self.add_constraint(Constraint { terms, relation: Relation::Eq, rhs });
    }

    /// Adds a pre-built constraint.
    ///
    /// # Panics
    ///
    /// Panics if the constraint references a variable that does not
    /// belong to this problem, or contains a non-finite coefficient or
    /// right-hand side.
    pub fn add_constraint(&mut self, c: Constraint) {
        assert!(c.rhs.is_finite(), "constraint rhs must be finite");
        for (v, a) in &c.terms {
            assert!(v.0 < self.vars.len(), "constraint references unknown variable {}", v.0);
            assert!(a.is_finite(), "constraint coefficient must be finite");
        }
        self.constraints.push(c);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// The name a variable was created with.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this problem.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.vars[var.0].name
    }

    /// Solves with default [`SimplexOptions`].
    ///
    /// # Errors
    ///
    /// [`LpError::Infeasible`], [`LpError::Unbounded`], or
    /// [`LpError::IterationLimit`] depending on the outcome.
    pub fn solve(&self) -> Result<Solution, LpError> {
        self.solve_with(&SimplexOptions::default())
    }

    /// Solves with explicit options.
    ///
    /// # Errors
    ///
    /// See [`Problem::solve`].
    pub fn solve_with(&self, options: &SimplexOptions) -> Result<Solution, LpError> {
        solve_problem(self, options)
    }

    /// Solves, warm-starting from a previous solve's optimal [`Basis`]
    /// when one is given.
    ///
    /// The intended caller is a control loop re-solving the same model
    /// with updated costs or right-hand sides each period: pass the
    /// [`crate::Solution::basis`] of the previous period's solution and
    /// the solver restarts from that basis — skipping phase 1 when the
    /// restart point is still feasible, or repairing it with a phase 1
    /// restricted to the rows the new right-hand side violates. When the
    /// basis no longer fits — the model's standardized dimensions changed
    /// or the basis is singular for the new coefficients — the solver
    /// silently falls back to the cold two-phase path;
    /// [`crate::Solution::warm_started`] reports which path ran.
    /// `solve_warm_with(opts, None)` is exactly `solve_with(opts)`.
    ///
    /// # Errors
    ///
    /// See [`Problem::solve`]. Fallback covers *unusable* bases only:
    /// genuine infeasibility or unboundedness of the problem itself is
    /// still reported as an error.
    pub fn solve_warm_with(
        &self,
        options: &SimplexOptions,
        warm: Option<&Basis>,
    ) -> Result<Solution, LpError> {
        solve_problem_warm(self, options, warm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 10.0, 1.0);
        let y = p.add_var("y", -1.0, f64::INFINITY, 2.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(x.index(), 0);
        assert_eq!(p.var_name(y), "y");
        p.add_le(vec![(x, 1.0), (y, 1.0)], 5.0);
        assert_eq!(p.num_constraints(), 1);
        p.set_objective(x, 3.0);
        assert_eq!(p.vars[0].obj, 3.0);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn empty_domain_panics() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_var("x", 2.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_objective_panics() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_var("x", 0.0, 1.0, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn foreign_var_in_constraint_panics() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_le(vec![(VarId(3), 1.0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "rhs must be finite")]
    fn infinite_rhs_panics() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 1.0, 0.0);
        p.add_le(vec![(x, 1.0)], f64::INFINITY);
    }
}

//! Dense two-phase primal simplex with Bland's anti-cycling rule.
//!
//! The implementation follows the textbook tableau method:
//!
//! 1. **Standardize.** Every user variable is mapped onto one or two
//!    non-negative columns (shift by a finite lower bound, mirror a
//!    `(-∞, ub]` variable, split a free variable); finite upper bounds
//!    become extra `≤` rows. Every constraint gains a slack/surplus
//!    column; rows are negated so all right-hand sides are non-negative.
//! 2. **Phase 1.** Rows without a ready-made basic column receive an
//!    artificial variable; minimizing the artificial sum finds a basic
//!    feasible point or proves infeasibility.
//! 3. **Phase 2.** The user objective (negated for maximization) is
//!    minimized from that starting basis. Artificial columns are barred
//!    from re-entering.
//!
//! Bland's smallest-index pivoting rule guarantees termination; a pivot
//! budget guards against pathological instances anyway.

use serde::{Deserialize, Serialize};

use crate::problem::{Problem, Relation, Sense, VarId};
use crate::LpError;

/// Tuning knobs for the simplex solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimplexOptions {
    /// Numerical tolerance for pivot selection and feasibility tests.
    pub tolerance: f64,
    /// Hard cap on pivots across both phases; `None` picks
    /// `200·(rows + cols) + 10_000` automatically.
    pub max_pivots: Option<usize>,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions { tolerance: 1e-9, max_pivots: None }
    }
}

/// An optimal solution to a [`Problem`].
///
/// A `Solution` always represents an optimal basic point: every failure
/// outcome (infeasible, unbounded, pivot budget exhausted, malformed
/// model) surfaces as an [`LpError`] from the solve call instead. There
/// is deliberately no `status` field — an enum with a single reachable
/// variant would be a misleading always-true API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    objective: f64,
    values: Vec<f64>,
    pivots: usize,
    phase1_pivots: usize,
}

impl Solution {
    /// The objective value in the problem's own sense.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// The value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved problem.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Total simplex pivots across both phases.
    pub fn pivots(&self) -> usize {
        self.pivots
    }

    /// Pivots spent in phase 1 (finding a basic feasible point); zero
    /// when every row had a ready slack basis.
    pub fn phase1_pivots(&self) -> usize {
        self.phase1_pivots
    }
}

/// How a user variable maps onto standard-form columns.
#[derive(Debug, Clone, Copy)]
enum ColMap {
    /// `x = col + lb`, `col ≥ 0`.
    Shifted { col: usize, lb: f64 },
    /// `x = ub - col`, `col ≥ 0` (variable with only an upper bound).
    Mirrored { col: usize, ub: f64 },
    /// `x = pos - neg`, both `≥ 0` (free variable).
    Free { pos: usize, neg: usize },
}

pub(crate) fn solve_problem(p: &Problem, options: &SimplexOptions) -> Result<Solution, LpError> {
    let tol = options.tolerance;

    // --- 1. Map user variables to non-negative columns. -----------------
    let mut maps: Vec<ColMap> = Vec::with_capacity(p.vars.len());
    let mut n_cols = 0usize;
    // Extra `≤` rows for doubly-bounded variables: (col, ub - lb).
    let mut bound_rows: Vec<(usize, f64)> = Vec::new();
    for v in &p.vars {
        if v.lb.is_finite() {
            let col = n_cols;
            n_cols += 1;
            maps.push(ColMap::Shifted { col, lb: v.lb });
            if v.ub.is_finite() {
                bound_rows.push((col, v.ub - v.lb));
            }
        } else if v.ub.is_finite() {
            let col = n_cols;
            n_cols += 1;
            maps.push(ColMap::Mirrored { col, ub: v.ub });
        } else {
            let pos = n_cols;
            let neg = n_cols + 1;
            n_cols += 2;
            maps.push(ColMap::Free { pos, neg });
        }
    }

    // --- 2. Build rows in standard column space. -------------------------
    // Each row: dense coefficients over structural columns + relation+rhs.
    struct Row {
        coeffs: Vec<f64>,
        relation: Relation,
        rhs: f64,
    }
    let m = p.constraints.len() + bound_rows.len();
    let mut rows: Vec<Row> = Vec::with_capacity(m);
    for c in &p.constraints {
        let mut coeffs = vec![0.0; n_cols];
        let mut rhs = c.rhs;
        for &(v, a) in &c.terms {
            match maps[v.index()] {
                ColMap::Shifted { col, lb } => {
                    coeffs[col] += a;
                    rhs -= a * lb;
                }
                ColMap::Mirrored { col, ub } => {
                    coeffs[col] -= a;
                    rhs -= a * ub;
                }
                ColMap::Free { pos, neg } => {
                    coeffs[pos] += a;
                    coeffs[neg] -= a;
                }
            }
        }
        rows.push(Row { coeffs, relation: c.relation, rhs });
    }
    for &(col, width) in &bound_rows {
        let mut coeffs = vec![0.0; n_cols];
        coeffs[col] = 1.0;
        rows.push(Row { coeffs, relation: Relation::Le, rhs: width });
    }

    // --- 3. Equality form with slacks, non-negative rhs. -----------------
    // Total columns: structural + one slack per Le/Ge row + artificials.
    let n_slack = rows.iter().filter(|r| r.relation != Relation::Eq).count();
    let struct_and_slack = n_cols + n_slack;
    // tableau rows built as Vec<f64> of width struct_and_slack (+artificials later) + rhs.
    let mut a_mat: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut b: Vec<f64> = Vec::with_capacity(m);
    // For each row, the column that can serve as the initial basis (+1 unit column), if any.
    let mut ready_basis: Vec<Option<usize>> = Vec::with_capacity(m);
    let mut slack_idx = 0usize;
    for row in &rows {
        let mut coeffs = row.coeffs.clone();
        coeffs.resize(struct_and_slack, 0.0);
        let mut rhs = row.rhs;
        let mut slack_col = None;
        match row.relation {
            Relation::Le => {
                let col = n_cols + slack_idx;
                slack_idx += 1;
                coeffs[col] = 1.0;
                slack_col = Some(col);
            }
            Relation::Ge => {
                let col = n_cols + slack_idx;
                slack_idx += 1;
                coeffs[col] = -1.0;
                slack_col = Some(col);
            }
            Relation::Eq => {}
        }
        // Normalize rhs >= 0.
        if rhs < 0.0 {
            for c in &mut coeffs {
                *c = -*c;
            }
            rhs = -rhs;
        }
        // Slack usable as initial basis only if its coefficient is +1 now.
        let ready = slack_col.filter(|&c| coeffs[c] > 0.5);
        a_mat.push(coeffs);
        b.push(rhs);
        ready_basis.push(ready);
    }

    // --- 4. Artificials and phase-1 tableau. ------------------------------
    let mut n_art = 0usize;
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    for (i, ready) in ready_basis.iter().enumerate() {
        match ready {
            Some(col) => basis.push(*col),
            None => {
                let col = struct_and_slack + n_art;
                n_art += 1;
                basis.push(col);
                let _ = i;
            }
        }
    }
    let total = struct_and_slack + n_art;
    let mut art_seen = 0usize;
    for (i, ready) in ready_basis.iter().enumerate() {
        a_mat[i].resize(total, 0.0);
        if ready.is_none() {
            a_mat[i][struct_and_slack + art_seen] = 1.0;
            art_seen += 1;
        }
    }
    let art_start = struct_and_slack;

    let max_pivots = options.max_pivots.unwrap_or(200 * (m + total) + 10_000);
    let mut tableau = Tableau { a: a_mat, b, basis, tol, pivots: 0, max_pivots };

    // Phase 1: minimize sum of artificials.
    if n_art > 0 {
        let mut cost = vec![0.0; total];
        for c in cost.iter_mut().skip(art_start) {
            *c = 1.0;
        }
        let obj = tableau.run(&cost, total)?;
        if obj > tol.max(1e-7) {
            return Err(LpError::Infeasible);
        }
        // Drive remaining basic artificials out where possible.
        for i in 0..m {
            if tableau.basis[i] >= art_start {
                if let Some(j) = (0..art_start).find(|&j| tableau.a[i][j].abs() > tol) {
                    tableau.pivot(i, j);
                }
                // If no structural column is available the row is
                // redundant; the artificial stays basic at value 0 and is
                // barred from entering in phase 2.
            }
        }
    }

    let phase1_pivots = tableau.pivots;

    // Phase 2: minimize the (sign-adjusted) user objective over
    // structural+slack columns only.
    let sign = match p.sense {
        Sense::Maximize => -1.0,
        Sense::Minimize => 1.0,
    };
    let mut cost = vec![0.0; total];
    for (v, def) in p.vars.iter().enumerate() {
        match maps[v] {
            ColMap::Shifted { col, .. } => cost[col] += sign * def.obj,
            ColMap::Mirrored { col, .. } => cost[col] -= sign * def.obj,
            ColMap::Free { pos, neg } => {
                cost[pos] += sign * def.obj;
                cost[neg] -= sign * def.obj;
            }
        }
    }
    tableau.run(&cost, art_start)?;

    // --- 5. Extract the user-space solution. -----------------------------
    let col_values = tableau.column_values(total);
    let mut values = vec![0.0; p.vars.len()];
    for (v, map) in maps.iter().enumerate() {
        values[v] = match *map {
            ColMap::Shifted { col, lb } => col_values[col] + lb,
            ColMap::Mirrored { col, ub } => ub - col_values[col],
            ColMap::Free { pos, neg } => col_values[pos] - col_values[neg],
        };
    }
    let objective: f64 = p.vars.iter().enumerate().map(|(v, d)| d.obj * values[v]).sum();
    Ok(Solution { objective, values, pivots: tableau.pivots, phase1_pivots })
}

struct Tableau {
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
    basis: Vec<usize>,
    tol: f64,
    pivots: usize,
    max_pivots: usize,
}

impl Tableau {
    /// Runs primal simplex minimizing `cost`, allowing only columns
    /// `< allowed_cols` to enter the basis. Returns the objective value.
    ///
    /// Pivoting uses Dantzig's most-negative-reduced-cost rule for
    /// speed, falling back to Bland's smallest-index rule (which cannot
    /// cycle) after a run of degenerate pivots.
    fn run(&mut self, cost: &[f64], allowed_cols: usize) -> Result<f64, LpError> {
        let m = self.a.len();
        let mut degenerate_streak = 0usize;
        loop {
            let use_bland = degenerate_streak > 64;
            // Reduced costs: r_j = c_j - c_B' * col_j (tableau is kept in
            // B^{-1}A form by Gauss-Jordan pivots).
            let mut entering: Option<(usize, f64)> = None;
            for j in 0..allowed_cols {
                if self.basis.contains(&j) {
                    continue;
                }
                let mut r = cost[j];
                for i in 0..m {
                    r -= cost[self.basis[i]] * self.a[i][j];
                }
                if r < -self.tol {
                    if use_bland {
                        entering = Some((j, r)); // first (smallest) index
                        break;
                    }
                    if entering.is_none_or(|(_, best)| r < best) {
                        entering = Some((j, r));
                    }
                }
            }
            let Some((j, _)) = entering else {
                // Optimal: compute objective.
                let obj: f64 = (0..m).map(|i| cost[self.basis[i]] * self.b[i]).sum();
                return Ok(obj);
            };
            // Ratio test with Bland tie-breaking on the leaving basis index.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..m {
                let aij = self.a[i][j];
                if aij > self.tol {
                    let ratio = self.b[i] / aij;
                    match leave {
                        None => leave = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < lr - self.tol
                                || (ratio < lr + self.tol && self.basis[i] < self.basis[li])
                            {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((i, ratio)) = leave else {
                return Err(LpError::Unbounded);
            };
            if ratio <= self.tol {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }
            self.pivot(i, j);
            self.pivots += 1;
            if self.pivots > self.max_pivots {
                return Err(LpError::IterationLimit { limit: self.max_pivots });
            }
        }
    }

    /// Gauss-Jordan pivot making column `j` basic in row `i`.
    fn pivot(&mut self, i: usize, j: usize) {
        let m = self.a.len();
        let piv = self.a[i][j];
        debug_assert!(piv.abs() > 0.0, "pivot on zero element");
        let inv = 1.0 / piv;
        for x in &mut self.a[i] {
            *x *= inv;
        }
        self.b[i] *= inv;
        for r in 0..m {
            if r == i {
                continue;
            }
            let factor = self.a[r][j];
            if factor == 0.0 {
                continue;
            }
            let (src, dst) = if r < i {
                let (lo, hi) = self.a.split_at_mut(i);
                (&hi[0], &mut lo[r])
            } else {
                let (lo, hi) = self.a.split_at_mut(r);
                (&lo[i], &mut hi[0])
            };
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d -= factor * *s;
            }
            self.b[r] -= factor * self.b[i];
        }
        self.basis[i] = j;
    }

    fn column_values(&self, total: usize) -> Vec<f64> {
        let mut vals = vec![0.0; total];
        for (i, &col) in self.basis.iter().enumerate() {
            vals[col] = self.b[i].max(0.0);
        }
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Sense};

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  → 36 at (2, 6).
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
        p.add_le(vec![(x, 1.0)], 4.0);
        p.add_le(vec![(y, 2.0)], 12.0);
        p.add_le(vec![(x, 3.0), (y, 2.0)], 18.0);
        let s = p.solve().unwrap();
        assert_near(s.objective(), 36.0);
        assert_near(s.value(x), 2.0);
        assert_near(s.value(y), 6.0);
        assert!(s.pivots() > 0, "optimum is off the origin, so pivots happened");
        assert_eq!(s.phase1_pivots(), 0, "all-slack basis needs no phase 1");
    }

    #[test]
    fn minimization_with_ge_rows_needs_phase1() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 → 23 at (7, 3)?
        // Gradient favors x (cost 2 < 3) so push y to its bound: (7, 3) → 23.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 3.0);
        p.add_ge(vec![(x, 1.0), (y, 1.0)], 10.0);
        p.add_ge(vec![(x, 1.0)], 2.0);
        p.add_ge(vec![(y, 1.0)], 3.0);
        let s = p.solve().unwrap();
        assert_near(s.objective(), 23.0);
        assert_near(s.value(x), 7.0);
        assert_near(s.value(y), 3.0);
        assert!(s.phase1_pivots() > 0, "≥ rows force artificials into phase 1");
        assert!(s.pivots() >= s.phase1_pivots());
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 → x = 2, y = 1.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_eq(vec![(x, 1.0), (y, 2.0)], 4.0);
        p.add_eq(vec![(x, 1.0), (y, -1.0)], 1.0);
        let s = p.solve().unwrap();
        assert_near(s.value(x), 2.0);
        assert_near(s.value(y), 1.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_le(vec![(x, 1.0)], 1.0);
        p.add_ge(vec![(x, 1.0)], 2.0);
        assert!(matches!(p.solve(), Err(LpError::Infeasible)));
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 0.0);
        p.add_ge(vec![(x, 1.0), (y, -1.0)], 0.0);
        assert!(matches!(p.solve(), Err(LpError::Unbounded)));
    }

    #[test]
    fn variable_upper_bounds_respected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 3.0, 1.0);
        let y = p.add_var("y", 1.0, 2.0, 1.0);
        p.add_le(vec![(x, 1.0), (y, 1.0)], 100.0);
        let s = p.solve().unwrap();
        assert_near(s.value(x), 3.0);
        assert_near(s.value(y), 2.0);
        assert_near(s.objective(), 5.0);
    }

    #[test]
    fn nonzero_lower_bounds_shift_correctly() {
        // min x + y with x >= 5, y >= 7, x + y >= 15 → 15 (e.g. x = 8, y = 7).
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 5.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 7.0, f64::INFINITY, 1.0);
        p.add_ge(vec![(x, 1.0), (y, 1.0)], 15.0);
        let s = p.solve().unwrap();
        assert_near(s.objective(), 15.0);
        assert!(s.value(x) >= 5.0 - 1e-9);
        assert!(s.value(y) >= 7.0 - 1e-9);
    }

    #[test]
    fn free_variables_split() {
        // min |shape|: free variable pushed negative.
        // min x s.t. x >= -8 expressed via free var + constraint.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_ge(vec![(x, 1.0)], -8.0);
        let s = p.solve().unwrap();
        assert_near(s.value(x), -8.0);
    }

    #[test]
    fn mirrored_variable_with_only_upper_bound() {
        // max x s.t. x <= 4 declared as a bound, plus x <= 10 row.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", f64::NEG_INFINITY, 4.0, 1.0);
        p.add_le(vec![(x, 1.0)], 10.0);
        let s = p.solve().unwrap();
        assert_near(s.value(x), 4.0);
    }

    #[test]
    fn negative_rhs_rows_normalize() {
        // x - y <= -2 with x, y >= 0: max x + y <= bounded by y >= x + 2.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 0.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_le(vec![(x, 1.0), (y, -1.0)], -2.0);
        let s = p.solve().unwrap();
        assert_near(s.value(y), 2.0);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        // max 2*(x) where constraint lists x twice: x + x <= 6 → x = 3.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_le(vec![(x, 1.0), (x, 1.0)], 6.0);
        let s = p.solve().unwrap();
        assert_near(s.value(x), 3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate example; Bland's rule must not cycle.
        let mut p = Problem::new(Sense::Maximize);
        let x1 = p.add_var("x1", 0.0, f64::INFINITY, 0.75);
        let x2 = p.add_var("x2", 0.0, f64::INFINITY, -150.0);
        let x3 = p.add_var("x3", 0.0, f64::INFINITY, 0.02);
        let x4 = p.add_var("x4", 0.0, f64::INFINITY, -6.0);
        p.add_le(vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], 0.0);
        p.add_le(vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], 0.0);
        p.add_le(vec![(x3, 1.0)], 1.0);
        let s = p.solve().unwrap();
        assert_near(s.objective(), 0.05);
    }

    #[test]
    fn redundant_equalities_handled() {
        // Two copies of the same equality: phase 1 leaves a redundant row.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_eq(vec![(x, 1.0), (y, 1.0)], 5.0);
        p.add_eq(vec![(x, 2.0), (y, 2.0)], 10.0);
        let s = p.solve().unwrap();
        assert_near(s.objective(), 5.0);
    }

    #[test]
    fn empty_objective_is_fine() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 5.0, 0.0);
        p.add_le(vec![(x, 1.0)], 4.0);
        let s = p.solve().unwrap();
        assert_near(s.objective(), 0.0);
    }

    #[test]
    fn iteration_limit_reported() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_le(vec![(x, 1.0), (y, 1.0)], 4.0);
        let opts = SimplexOptions { tolerance: 1e-9, max_pivots: Some(0) };
        assert!(matches!(p.solve_with(&opts), Err(LpError::IterationLimit { limit: 0 })));
    }

    #[test]
    fn fixed_variable_via_equal_bounds() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 2.5, 2.5, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_le(vec![(x, 1.0), (y, 1.0)], 10.0);
        let s = p.solve().unwrap();
        assert_near(s.value(x), 2.5);
        assert_near(s.value(y), 7.5);
    }

    #[test]
    fn larger_random_instance_agrees_with_greedy_structure() {
        // A transportation-like LP with known optimum: supply 3 sources,
        // demand 3 sinks, min cost. Optimal cost computed by hand: the
        // classic balanced problem below has optimum 78.
        // costs: [[4,6,8],[5,4,7],[6,5,4]] supplies [10,12,8] demands [9,11,10]
        let costs = [[4.0, 6.0, 8.0], [5.0, 4.0, 7.0], [6.0, 5.0, 4.0]];
        let supply = [10.0, 12.0, 8.0];
        let demand = [9.0, 11.0, 10.0];
        let mut p = Problem::new(Sense::Minimize);
        let mut vars = Vec::new();
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                vars.push((i, j, p.add_var(format!("x{i}{j}"), 0.0, f64::INFINITY, c)));
            }
        }
        for (i, &s) in supply.iter().enumerate() {
            let terms: Vec<_> =
                vars.iter().filter(|(a, _, _)| *a == i).map(|(_, _, v)| (*v, 1.0)).collect();
            p.add_eq(terms, s);
        }
        for (j, &d) in demand.iter().enumerate() {
            let terms: Vec<_> =
                vars.iter().filter(|(_, b, _)| *b == j).map(|(_, _, v)| (*v, 1.0)).collect();
            p.add_eq(terms, d);
        }
        let s = p.solve().unwrap();
        // Verify feasibility and optimality bound: cost must be >= LP bound
        // computed by a known-good reference (hand-computed optimum 125).
        let mut ship = [[0.0f64; 3]; 3];
        for (i, j, v) in &vars {
            ship[*i][*j] = s.value(*v);
            assert!(s.value(*v) >= -1e-9);
        }
        for i in 0..3 {
            let row: f64 = ship[i].iter().sum();
            assert!((row - supply[i]).abs() < 1e-7);
        }
        for j in 0..3 {
            let col: f64 = (0..3).map(|i| ship[i][j]).sum();
            assert!((col - demand[j]).abs() < 1e-7);
        }
        // Optimum for this instance: x00=9, x01=1, x11=10, x12=2? Let's
        // simply assert the solver is at least as good as one feasible
        // hand-built plan and exactly matches its own recomputed cost.
        let cost: f64 =
            (0..3).map(|i| (0..3).map(|j| ship[i][j] * costs[i][j]).sum::<f64>()).sum();
        assert_near(cost, s.objective());
        // Hand plan: x00=9,x01=1 (cost 36+6=42); x11=10,x12=2 (40+14=54);
        // x22=8 (32) → total 128. Solver must do no worse.
        assert!(s.objective() <= 128.0 + 1e-7);
    }
}

//! Shared simplex machinery plus the dense tableau engine.
//!
//! This module owns everything both backends share — standardization to
//! equality form, the phase-2 cost vector, solution extraction, the
//! [`Basis`]/[`Solution`]/[`SimplexOptions`] types, and the
//! [`SolverBackend`] dispatch — and implements the dense two-phase
//! tableau engine ([`SolverBackend::Dense`]); the sparse revised
//! simplex lives in `crate::sparse`.
//!
//! The dense implementation follows the textbook tableau method:
//!
//! 1. **Standardize.** Every user variable is mapped onto one or two
//!    non-negative columns (shift by a finite lower bound, mirror a
//!    `(-∞, ub]` variable, split a free variable); finite upper bounds
//!    become extra `≤` rows. Every constraint gains a slack/surplus
//!    column; rows are negated so all right-hand sides are non-negative.
//! 2. **Phase 1.** Rows without a ready-made basic column receive an
//!    artificial variable; minimizing the artificial sum finds a basic
//!    feasible point or proves infeasibility.
//! 3. **Phase 2.** The user objective (negated for maximization) is
//!    minimized from that starting basis. Artificial columns are barred
//!    from re-entering.
//!
//! Pivot columns are priced with Dantzig's most-negative-reduced-cost
//! rule; after a streak of degenerate pivots the solver falls back to
//! Bland's smallest-index rule, which cannot cycle, so termination is
//! preserved. A pivot budget guards against pathological instances
//! anyway.
//!
//! **Warm starts.** Every [`Solution`] carries the optimal [`Basis`] out
//! in standardized column space. [`crate::Problem::solve_warm_with`]
//! re-installs that basis on a freshly standardized tableau when only
//! costs and right-hand sides changed since the previous solve. A
//! still-feasible restart skips phase 1 entirely; a restart the new RHS
//! pushed outside the polytope gets a *repair* phase 1 restricted to
//! the violated rows, costing pivots proportional to the damage rather
//! than to the whole problem. A basis whose dimensions no longer match
//! or that has gone singular falls back to the cold two-phase path
//! transparently.

use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};

use crate::problem::{Problem, Relation, Sense, VarId};
use crate::LpError;

/// Which simplex engine executes a solve.
///
/// Both engines implement the same two-phase primal simplex with the
/// same pricing rules (Dantzig with a Bland anti-cycling fallback), the
/// same warm-start semantics, and the same [`Basis`] representation, so
/// a basis taken from one backend warm-starts the other. They differ
/// only in how the basis inverse is carried: the dense engine keeps the
/// whole tableau in `B⁻¹A` form (per-pivot cost O(rows × cols)), while
/// the sparse engine stores the constraint matrix once in compressed
/// sparse column form and maintains an eta-file factorization of `B⁻¹`
/// (per-iteration cost proportional to the nonzero count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverBackend {
    /// Sparse revised simplex: CSC matrix, product-form (eta-file) basis
    /// updates with periodic refactorization, BTRAN/FTRAN solves. The
    /// default engine.
    #[default]
    Sparse,
    /// Dense two-phase tableau — the reference oracle the sparse engine
    /// is tested against. Per-pivot cost O(rows × cols), so it only
    /// scales to small instances.
    Dense,
}

impl SolverBackend {
    /// Canonical lowercase name, matching [`std::str::FromStr`].
    pub fn name(self) -> &'static str {
        match self {
            SolverBackend::Sparse => "sparse",
            SolverBackend::Dense => "dense",
        }
    }
}

impl std::str::FromStr for SolverBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sparse" => Ok(SolverBackend::Sparse),
            "dense" => Ok(SolverBackend::Dense),
            other => Err(format!("unknown LP backend {other:?} (expected sparse|dense)")),
        }
    }
}

impl Serialize for SolverBackend {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_owned())
    }
}

impl Deserialize for SolverBackend {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_str() {
            Some("sparse") => Ok(SolverBackend::Sparse),
            Some("dense") => Ok(SolverBackend::Dense),
            _ => Err(DeError::new("unknown SolverBackend")),
        }
    }
}

/// Tuning knobs for the simplex solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimplexOptions {
    /// Numerical tolerance for pivot selection and feasibility tests.
    pub tolerance: f64,
    /// Hard cap on pivots across both phases; `None` picks
    /// [`SimplexOptions::auto_pivot_budget`] automatically.
    pub max_pivots: Option<usize>,
    /// Which engine runs the solve.
    pub backend: SolverBackend,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            tolerance: 1e-9,
            max_pivots: None,
            backend: SolverBackend::default(),
        }
    }
}

impl SimplexOptions {
    /// The automatic pivot budget, `200·(rows + cols) + 10_000`, where
    /// `rows`/`cols` are the *standardized* tableau dimensions (bound
    /// rows and slack columns included, artificials excluded).
    ///
    /// This is the single place the budget formula lives: cold and warm
    /// solves both derive their cap from the standardized shape of the
    /// user problem, so the same problem always gets the same budget
    /// regardless of how it is solved.
    pub fn auto_pivot_budget(rows: usize, cols: usize) -> usize {
        200 * (rows + cols) + 10_000
    }

    /// The primal feasibility tolerance, `tolerance.max(1e-7)`.
    ///
    /// Pivot *selection* uses the sharper `tolerance`; feasibility
    /// *classification* — is a restart point inside the polytope, did
    /// phase 1 reach zero — uses this floored value so accumulated
    /// elimination error cannot misclassify a vertex. Every feasibility
    /// test in both backends (warm-restart repair and cold phase 1
    /// alike) goes through this one definition, so a borderline restart
    /// is classified identically on every path.
    pub fn feas_tol(&self) -> f64 {
        self.tolerance.max(1e-7)
    }
}

/// The optimal basis of a solved LP, in standardized column space.
///
/// Carried out of every solve by [`Solution::basis`] and fed back into
/// [`crate::Problem::solve_warm_with`] to re-solve a problem whose
/// costs or right-hand sides changed (the MPC control loop's situation:
/// successive periods differ only in forecast data). The basis pins the
/// standardized tableau shape it belongs to, so a structural change is
/// detected as a dimension mismatch and triggers a cold solve instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Basis {
    /// Basic column per tableau row.
    pub(crate) cols: Vec<usize>,
    /// Structural + slack column count of the standardized tableau.
    pub(crate) n_cols: usize,
}

impl Basis {
    /// Basic column index per standardized tableau row.
    pub fn columns(&self) -> &[usize] {
        &self.cols
    }

    /// Rows of the standardized tableau this basis belongs to.
    pub fn num_rows(&self) -> usize {
        self.cols.len()
    }

    /// Structural + slack columns of the standardized tableau.
    pub fn num_cols(&self) -> usize {
        self.n_cols
    }
}

impl Serialize for Basis {
    fn to_value(&self) -> Value {
        let mut map = std::collections::BTreeMap::new();
        map.insert("cols".to_owned(), self.cols.to_value());
        map.insert("n_cols".to_owned(), self.n_cols.to_value());
        Value::Object(map)
    }
}

impl Deserialize for Basis {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Basis {
            cols: Vec::from_value(v.field("cols")?)?,
            n_cols: usize::from_value(v.field("n_cols")?)?,
        })
    }
}

/// An optimal solution to a [`Problem`].
///
/// A `Solution` always represents an optimal basic point: every failure
/// outcome (infeasible, unbounded, pivot budget exhausted, malformed
/// model) surfaces as an [`LpError`] from the solve call instead. There
/// is deliberately no `status` field — an enum with a single reachable
/// variant would be a misleading always-true API.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    objective: f64,
    values: Vec<f64>,
    pivots: usize,
    phase1_pivots: usize,
    basis: Basis,
    warm: WarmOutcome,
}

/// How a solve used (or failed to use) a supplied warm-start basis.
///
/// Exactly one outcome applies to every solve, so counting solves by
/// outcome partitions them — there is no half-warm path that belongs to
/// two buckets or to none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmOutcome {
    /// No warm basis was supplied: an ordinary cold two-phase solve.
    Cold,
    /// The supplied basis installed and the solve restarted from it —
    /// either directly (the restart point was still feasible) or after
    /// an in-place repair phase 1 on the violated rows; see
    /// [`Solution::phase1_pivots`] to tell the two apart.
    Hit,
    /// The basis installed but the restart point could not be repaired
    /// (the repair phase 1 bottomed out above the feasibility
    /// tolerance), so the solver fell back to the cold two-phase path.
    RepairFallback,
    /// The basis never installed — its dimensions no longer match the
    /// standardized problem, it kept an artificial column (a redundant
    /// row in the previous solve), or it has gone singular for the new
    /// coefficients — so the solver fell back to the cold path.
    StructuralFallback,
}

impl Solution {
    /// The objective value in the problem's own sense.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// The value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to the solved problem.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// All variable values, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Total simplex pivots across both phases. Warm-started solves
    /// count only phase-2 iterations (basis re-installation is a
    /// factorization, not simplex pivoting).
    pub fn pivots(&self) -> usize {
        self.pivots
    }

    /// Pivots spent in phase 1 (finding a basic feasible point); zero
    /// when every row had a ready slack basis. For a warm-started solve
    /// this counts the *repair* pivots spent restoring primal
    /// feasibility — zero when the restart point was still inside the
    /// polytope.
    pub fn phase1_pivots(&self) -> usize {
        self.phase1_pivots
    }

    /// The optimal basis, for warm-starting a subsequent solve of a
    /// structurally identical problem.
    pub fn basis(&self) -> &Basis {
        &self.basis
    }

    /// Whether this solve restarted from a supplied warm basis (`false`
    /// when no basis was given *or* the given basis was unusable and the
    /// solver fell back to the cold two-phase path). Shorthand for
    /// `warm_outcome() == WarmOutcome::Hit`.
    pub fn warm_started(&self) -> bool {
        self.warm == WarmOutcome::Hit
    }

    /// How the supplied warm basis fared — see [`WarmOutcome`]. Callers
    /// that account for warm-start effectiveness should match on this
    /// rather than [`Solution::warm_started`]: the two fallback variants
    /// distinguish a basis that never installed from one that installed
    /// but could not be repaired.
    pub fn warm_outcome(&self) -> WarmOutcome {
        self.warm
    }
}

/// How a user variable maps onto standard-form columns.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ColMap {
    /// `x = col + lb`, `col ≥ 0`.
    Shifted { col: usize, lb: f64 },
    /// `x = ub - col`, `col ≥ 0` (variable with only an upper bound).
    Mirrored { col: usize, ub: f64 },
    /// `x = pos - neg`, both `≥ 0` (free variable).
    Free { pos: usize, neg: usize },
}

/// A [`Problem`] brought to standard equality form: non-negative
/// columns, slack/surplus columns appended, right-hand sides
/// non-negative. Artificial columns are *not* included — the cold path
/// appends them, the warm path never needs them.
///
/// Rows are stored sparsely — `(column, coefficient)` pairs — so the
/// standardization cost is proportional to the nonzero count, not to
/// `rows × cols`. The dense tableau engine scatters them into dense
/// rows on construction; the sparse engine transposes them into CSC.
pub(crate) struct Standardized {
    pub(crate) maps: Vec<ColMap>,
    /// Sparse coefficient rows over the standardized columns: nonzero
    /// `(col, coeff)` pairs sorted by column, slack/surplus included.
    pub(crate) rows: Vec<Vec<(usize, f64)>>,
    pub(crate) b: Vec<f64>,
    /// Per row, the slack column usable as the initial basis, if any.
    pub(crate) ready_basis: Vec<Option<usize>>,
    /// Structural + slack column count.
    pub(crate) struct_and_slack: usize,
}

pub(crate) fn standardize(p: &Problem) -> Standardized {
    // --- 1. Map user variables to non-negative columns. -----------------
    let mut maps: Vec<ColMap> = Vec::with_capacity(p.vars.len());
    let mut n_cols = 0usize;
    // Extra `≤` rows for doubly-bounded variables: (col, ub - lb).
    let mut bound_rows: Vec<(usize, f64)> = Vec::new();
    for v in &p.vars {
        if v.lb.is_finite() {
            let col = n_cols;
            n_cols += 1;
            maps.push(ColMap::Shifted { col, lb: v.lb });
            if v.ub.is_finite() {
                bound_rows.push((col, v.ub - v.lb));
            }
        } else if v.ub.is_finite() {
            let col = n_cols;
            n_cols += 1;
            maps.push(ColMap::Mirrored { col, ub: v.ub });
        } else {
            let pos = n_cols;
            let neg = n_cols + 1;
            n_cols += 2;
            maps.push(ColMap::Free { pos, neg });
        }
    }

    // --- 2. Build sparse rows in standard column space. ------------------
    struct Row {
        coeffs: Vec<(usize, f64)>,
        relation: Relation,
        rhs: f64,
    }
    let m = p.constraints.len() + bound_rows.len();
    let mut rows: Vec<Row> = Vec::with_capacity(m);
    for c in &p.constraints {
        // Accumulate per-column (duplicate terms sum); BTreeMap keeps the
        // column order sorted and the iteration deterministic.
        let mut acc: std::collections::BTreeMap<usize, f64> = std::collections::BTreeMap::new();
        let mut rhs = c.rhs;
        for &(v, a) in &c.terms {
            match maps[v.index()] {
                ColMap::Shifted { col, lb } => {
                    *acc.entry(col).or_insert(0.0) += a;
                    rhs -= a * lb;
                }
                ColMap::Mirrored { col, ub } => {
                    *acc.entry(col).or_insert(0.0) -= a;
                    rhs -= a * ub;
                }
                ColMap::Free { pos, neg } => {
                    *acc.entry(pos).or_insert(0.0) += a;
                    *acc.entry(neg).or_insert(0.0) -= a;
                }
            }
        }
        let coeffs: Vec<(usize, f64)> = acc.into_iter().filter(|&(_, a)| a != 0.0).collect();
        rows.push(Row { coeffs, relation: c.relation, rhs });
    }
    for &(col, width) in &bound_rows {
        rows.push(Row { coeffs: vec![(col, 1.0)], relation: Relation::Le, rhs: width });
    }

    // --- 3. Equality form with slacks, non-negative rhs. -----------------
    let n_slack = rows.iter().filter(|r| r.relation != Relation::Eq).count();
    let struct_and_slack = n_cols + n_slack;
    let mut a_rows: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
    let mut b: Vec<f64> = Vec::with_capacity(m);
    let mut ready_basis: Vec<Option<usize>> = Vec::with_capacity(m);
    let mut slack_idx = 0usize;
    for row in rows {
        let mut coeffs = row.coeffs;
        let mut rhs = row.rhs;
        // The slack column index exceeds every structural index, so
        // pushing it last keeps the row sorted by column.
        let slack_col = match row.relation {
            Relation::Le => {
                let col = n_cols + slack_idx;
                slack_idx += 1;
                coeffs.push((col, 1.0));
                Some(col)
            }
            Relation::Ge => {
                let col = n_cols + slack_idx;
                slack_idx += 1;
                coeffs.push((col, -1.0));
                Some(col)
            }
            Relation::Eq => None,
        };
        // Normalize rhs >= 0.
        if rhs < 0.0 {
            for (_, c) in &mut coeffs {
                *c = -*c;
            }
            rhs = -rhs;
        }
        // Slack usable as initial basis only if its coefficient is +1 now
        // (it is the last entry, having the largest column index).
        let ready = slack_col.filter(|_| matches!(coeffs.last(), Some(&(_, c)) if c > 0.5));
        a_rows.push(coeffs);
        b.push(rhs);
        ready_basis.push(ready);
    }

    Standardized { maps, rows: a_rows, b, ready_basis, struct_and_slack }
}

/// The phase-2 cost vector (sign-adjusted user objective) over `width`
/// columns.
pub(crate) fn phase2_cost(p: &Problem, maps: &[ColMap], width: usize) -> Vec<f64> {
    let sign = match p.sense {
        Sense::Maximize => -1.0,
        Sense::Minimize => 1.0,
    };
    let mut cost = vec![0.0; width];
    for (v, def) in p.vars.iter().enumerate() {
        match maps[v] {
            ColMap::Shifted { col, .. } => cost[col] += sign * def.obj,
            ColMap::Mirrored { col, .. } => cost[col] -= sign * def.obj,
            ColMap::Free { pos, neg } => {
                cost[pos] += sign * def.obj;
                cost[neg] -= sign * def.obj;
            }
        }
    }
    cost
}

/// Maps an optimal basic point (values per standardized column, basic
/// column per row) back to user variable space. Shared by both engines.
pub(crate) fn extract(
    p: &Problem,
    std_form: &Standardized,
    col_values: &[f64],
    basis_cols: &[usize],
    pivots: usize,
    phase1_pivots: usize,
    warm: WarmOutcome,
) -> Solution {
    let mut values = vec![0.0; p.vars.len()];
    for (v, map) in std_form.maps.iter().enumerate() {
        values[v] = match *map {
            ColMap::Shifted { col, lb } => col_values[col] + lb,
            ColMap::Mirrored { col, ub } => ub - col_values[col],
            ColMap::Free { pos, neg } => col_values[pos] - col_values[neg],
        };
    }
    let objective: f64 = p.vars.iter().enumerate().map(|(v, d)| d.obj * values[v]).sum();
    Solution {
        objective,
        values,
        pivots,
        phase1_pivots,
        basis: Basis { cols: basis_cols.to_vec(), n_cols: std_form.struct_and_slack },
        warm,
    }
}

/// Scatters the standardized sparse rows into dense rows for the
/// tableau engine.
fn dense_rows(std_form: &Standardized) -> Vec<Vec<f64>> {
    std_form
        .rows
        .iter()
        .map(|row| {
            let mut dense = vec![0.0; std_form.struct_and_slack];
            for &(j, a) in row {
                dense[j] = a;
            }
            dense
        })
        .collect()
}

/// Re-installs `basis` on a freshly standardized tableau by Gauss-Jordan
/// elimination with partial pivoting restricted to the basis columns.
///
/// Returns `None` — i.e. "fall back to a cold solve" — when the basis
/// belongs to a different tableau shape, kept an artificial column (a
/// redundant row in the previous solve), or has gone singular for the
/// new coefficient matrix. A primal-infeasible restart point is *not*
/// grounds for rejection here: [`solve_from_basis`] repairs it with a
/// phase 1 restricted to the violated rows.
fn install_basis(
    std_form: &Standardized,
    basis: &Basis,
    tol: f64,
    max_pivots: usize,
) -> Option<Tableau> {
    let m = std_form.rows.len();
    if basis.cols.len() != m || basis.n_cols != std_form.struct_and_slack {
        return None; // structural change since the basis was taken
    }
    if basis.cols.iter().any(|&j| j >= std_form.struct_and_slack) {
        return None; // an artificial stayed basic (redundant row)
    }
    let mut tableau = Tableau {
        a: dense_rows(std_form),
        b: std_form.b.clone(),
        basis: vec![0; m],
        tol,
        pivots: 0,
        max_pivots,
    };
    let mut row_used = vec![false; m];
    for &j in &basis.cols {
        // Best remaining pivot row for column j (partial pivoting keeps
        // the factorization numerically honest).
        let mut best: Option<(usize, f64)> = None;
        for (i, used) in row_used.iter().enumerate() {
            if *used {
                continue;
            }
            let mag = tableau.a[i][j].abs();
            if best.is_none_or(|(_, bm)| mag > bm) {
                best = Some((i, mag));
            }
        }
        let (i, mag) = best?;
        if mag <= tol {
            return None; // singular: duplicate or dependent basis column
        }
        tableau.pivot(i, j);
        row_used[i] = true;
    }
    // Installation is a factorization, not simplex pivoting: do not
    // charge it against the pivot budget or report it as pivots.
    tableau.pivots = 0;
    Some(tableau)
}

/// Finishes a warm solve from an installed basis: repairs primal
/// infeasibility with a phase 1 restricted to the violated rows, then
/// runs phase 2.
///
/// Returns `Ok(None)` when the restart point cannot be repaired (the
/// problem may be infeasible) — the caller falls back to the cold
/// two-phase solve, which settles feasibility authoritatively. Solver
/// errors (unboundedness, pivot budget) propagate.
fn solve_from_basis(
    p: &Problem,
    std_form: &Standardized,
    mut tableau: Tableau,
    options: &SimplexOptions,
) -> Result<Option<Solution>, LpError> {
    let m = std_form.rows.len();
    let struct_and_slack = std_form.struct_and_slack;
    let tol = options.tolerance;
    let feas = options.feas_tol();
    // Rows where the restart point B⁻¹b went negative: the previous
    // vertex is outside today's polytope (RHS moved against it).
    let violated: Vec<usize> = (0..m).filter(|&i| tableau.b[i] < -feas).collect();
    for v in &mut tableau.b {
        if *v < 0.0 && *v >= -feas {
            *v = 0.0;
        }
    }

    if violated.is_empty() {
        let cost = phase2_cost(p, &std_form.maps, struct_and_slack);
        tableau.run(&cost, struct_and_slack)?;
        let col_values = tableau.column_values(struct_and_slack);
        return Ok(Some(extract(
            p,
            std_form,
            &col_values,
            &tableau.basis,
            tableau.pivots,
            0,
            WarmOutcome::Hit,
        )));
    }

    // Repair: give each violated row (sign-flipped so its RHS is
    // positive) an artificial basic column, and minimize the artificial
    // sum. This is an ordinary phase 1, but seeded with a basis that is
    // already optimal everywhere else, so it needs pivots proportional
    // to the damage rather than to the whole problem.
    let n_art = violated.len();
    let total = struct_and_slack + n_art;
    for row in &mut tableau.a {
        row.resize(total, 0.0);
    }
    for (k, &i) in violated.iter().enumerate() {
        for v in &mut tableau.a[i] {
            *v = -*v;
        }
        tableau.b[i] = -tableau.b[i];
        tableau.a[i][struct_and_slack + k] = 1.0;
        tableau.basis[i] = struct_and_slack + k;
    }
    let mut cost = vec![0.0; total];
    for c in cost.iter_mut().skip(struct_and_slack) {
        *c = 1.0;
    }
    let obj = tableau.run(&cost, total)?;
    if obj > feas {
        return Ok(None); // unrepairable restart; cold solve decides
    }
    // Drive remaining basic artificials out where possible (redundant
    // rows keep theirs at value 0, barred from entering in phase 2).
    for i in 0..m {
        if tableau.basis[i] >= struct_and_slack {
            if let Some(j) = (0..struct_and_slack).find(|&j| tableau.a[i][j].abs() > tol) {
                tableau.pivot(i, j);
            }
        }
    }
    let phase1_pivots = tableau.pivots;
    let cost = phase2_cost(p, &std_form.maps, total);
    tableau.run(&cost, struct_and_slack)?;
    let col_values = tableau.column_values(total);
    Ok(Some(extract(
        p,
        std_form,
        &col_values,
        &tableau.basis,
        tableau.pivots,
        phase1_pivots,
        WarmOutcome::Hit,
    )))
}

pub(crate) fn solve_problem(p: &Problem, options: &SimplexOptions) -> Result<Solution, LpError> {
    solve_problem_warm(p, options, None)
}

pub(crate) fn solve_problem_warm(
    p: &Problem,
    options: &SimplexOptions,
    warm: Option<&Basis>,
) -> Result<Solution, LpError> {
    match options.backend {
        SolverBackend::Sparse => crate::sparse::solve_sparse(p, options, warm),
        SolverBackend::Dense => solve_dense(p, options, warm),
    }
}

/// The dense two-phase tableau engine ([`SolverBackend::Dense`]).
fn solve_dense(
    p: &Problem,
    options: &SimplexOptions,
    warm: Option<&Basis>,
) -> Result<Solution, LpError> {
    let tol = options.tolerance;
    let std_form = standardize(p);
    let m = std_form.rows.len();
    let struct_and_slack = std_form.struct_and_slack;
    // The pivot budget is computed here — once, for both the warm and
    // cold paths — from the standardized problem shape.
    let max_pivots = options
        .max_pivots
        .unwrap_or_else(|| SimplexOptions::auto_pivot_budget(m, struct_and_slack));

    // --- Warm path: reuse the previous optimal basis. A still-feasible
    // restart skips phase 1 entirely; an infeasible one gets a repair
    // phase 1 over just the violated rows (see solve_from_basis). ------
    let mut warm_outcome = WarmOutcome::Cold;
    if let Some(basis) = warm {
        match install_basis(&std_form, basis, tol, max_pivots) {
            Some(tableau) => match solve_from_basis(p, &std_form, tableau, options)? {
                Some(solution) => return Ok(solution),
                // Installed but unrepairable: cold solve decides.
                None => warm_outcome = WarmOutcome::RepairFallback,
            },
            // Never installed: dimension mismatch / artificial / singular.
            None => warm_outcome = WarmOutcome::StructuralFallback,
        }
    }

    // --- Cold path: artificials and phase-1 tableau. ----------------------
    let Standardized { ref ready_basis, .. } = std_form;
    let mut n_art = 0usize;
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    for ready in ready_basis {
        match ready {
            Some(col) => basis.push(*col),
            None => {
                let col = struct_and_slack + n_art;
                n_art += 1;
                basis.push(col);
            }
        }
    }
    let total = struct_and_slack + n_art;
    let mut a_mat = dense_rows(&std_form);
    let b = std_form.b.clone();
    let mut art_seen = 0usize;
    for (i, ready) in ready_basis.iter().enumerate() {
        a_mat[i].resize(total, 0.0);
        if ready.is_none() {
            a_mat[i][struct_and_slack + art_seen] = 1.0;
            art_seen += 1;
        }
    }
    let art_start = struct_and_slack;

    let mut tableau = Tableau { a: a_mat, b, basis, tol, pivots: 0, max_pivots };

    // Phase 1: minimize sum of artificials.
    if n_art > 0 {
        let mut cost = vec![0.0; total];
        for c in cost.iter_mut().skip(art_start) {
            *c = 1.0;
        }
        let obj = tableau.run(&cost, total)?;
        if obj > options.feas_tol() {
            return Err(LpError::Infeasible);
        }
        // Drive remaining basic artificials out where possible.
        for i in 0..m {
            if tableau.basis[i] >= art_start {
                if let Some(j) = (0..art_start).find(|&j| tableau.a[i][j].abs() > tol) {
                    tableau.pivot(i, j);
                }
                // If no structural column is available the row is
                // redundant; the artificial stays basic at value 0 and is
                // barred from entering in phase 2.
            }
        }
    }

    let phase1_pivots = tableau.pivots;

    // Phase 2: minimize the (sign-adjusted) user objective over
    // structural+slack columns only.
    let cost = phase2_cost(p, &std_form.maps, total);
    tableau.run(&cost, art_start)?;

    let col_values = tableau.column_values(total);
    Ok(extract(
        p,
        &std_form,
        &col_values,
        &tableau.basis,
        tableau.pivots,
        phase1_pivots,
        warm_outcome,
    ))
}

struct Tableau {
    a: Vec<Vec<f64>>,
    b: Vec<f64>,
    basis: Vec<usize>,
    tol: f64,
    pivots: usize,
    max_pivots: usize,
}

impl Tableau {
    /// Runs primal simplex minimizing `cost`, allowing only columns
    /// `< allowed_cols` to enter the basis. Returns the objective value.
    ///
    /// Pivoting uses Dantzig's most-negative-reduced-cost rule for
    /// speed, falling back to Bland's smallest-index rule (which cannot
    /// cycle) after a run of degenerate pivots. Reduced costs are
    /// computed row-major (`r = c - c_Bᵀ B⁻¹A` accumulated row by row),
    /// skipping rows whose basic column has zero cost — the cache-
    /// friendly layout for the dense tableau.
    fn run(&mut self, cost: &[f64], allowed_cols: usize) -> Result<f64, LpError> {
        let m = self.a.len();
        let width = self.a.first().map_or(0, Vec::len);
        let mut is_basic = vec![false; width];
        for &j in &self.basis {
            is_basic[j] = true;
        }
        let mut reduced = vec![0.0; allowed_cols];
        let mut degenerate_streak = 0usize;
        loop {
            let use_bland = degenerate_streak > 64;
            // Reduced costs: r_j = c_j - c_B' * col_j (tableau is kept in
            // B^{-1}A form by Gauss-Jordan pivots).
            reduced.copy_from_slice(&cost[..allowed_cols]);
            for i in 0..m {
                let cb = cost[self.basis[i]];
                if cb == 0.0 {
                    continue;
                }
                let row = &self.a[i][..allowed_cols];
                for (r, &aij) in reduced.iter_mut().zip(row) {
                    *r -= cb * aij;
                }
            }
            let mut entering: Option<(usize, f64)> = None;
            for (j, &r) in reduced.iter().enumerate() {
                if is_basic[j] || r >= -self.tol {
                    continue;
                }
                if use_bland {
                    entering = Some((j, r)); // first (smallest) index
                    break;
                }
                if entering.is_none_or(|(_, best)| r < best) {
                    entering = Some((j, r));
                }
            }
            let Some((j, _)) = entering else {
                // Optimal: compute objective.
                let obj: f64 = (0..m).map(|i| cost[self.basis[i]] * self.b[i]).sum();
                return Ok(obj);
            };
            // Ratio test with Bland tie-breaking on the leaving basis index.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..m {
                let aij = self.a[i][j];
                if aij > self.tol {
                    let ratio = self.b[i] / aij;
                    match leave {
                        None => leave = Some((i, ratio)),
                        Some((li, lr)) => {
                            if ratio < lr - self.tol
                                || (ratio < lr + self.tol && self.basis[i] < self.basis[li])
                            {
                                leave = Some((i, ratio));
                            }
                        }
                    }
                }
            }
            let Some((i, ratio)) = leave else {
                return Err(LpError::Unbounded);
            };
            if ratio <= self.tol {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }
            is_basic[self.basis[i]] = false;
            is_basic[j] = true;
            self.pivot(i, j);
            self.pivots += 1;
            if self.pivots > self.max_pivots {
                return Err(LpError::IterationLimit { limit: self.max_pivots });
            }
        }
    }

    /// Gauss-Jordan pivot making column `j` basic in row `i`.
    fn pivot(&mut self, i: usize, j: usize) {
        let m = self.a.len();
        let piv = self.a[i][j];
        debug_assert!(piv.abs() > 0.0, "pivot on zero element");
        let inv = 1.0 / piv;
        for x in &mut self.a[i] {
            *x *= inv;
        }
        self.b[i] *= inv;
        for r in 0..m {
            if r == i {
                continue;
            }
            let factor = self.a[r][j];
            if factor == 0.0 {
                continue;
            }
            let (src, dst) = if r < i {
                let (lo, hi) = self.a.split_at_mut(i);
                (&hi[0], &mut lo[r])
            } else {
                let (lo, hi) = self.a.split_at_mut(r);
                (&lo[i], &mut hi[0])
            };
            for (d, s) in dst.iter_mut().zip(src.iter()) {
                *d -= factor * *s;
            }
            self.b[r] -= factor * self.b[i];
        }
        self.basis[i] = j;
    }

    fn column_values(&self, total: usize) -> Vec<f64> {
        let mut vals = vec![0.0; total];
        for (i, &col) in self.basis.iter().enumerate() {
            vals[col] = self.b[i].max(0.0);
        }
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Sense};

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  → 36 at (2, 6).
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 5.0);
        p.add_le(vec![(x, 1.0)], 4.0);
        p.add_le(vec![(y, 2.0)], 12.0);
        p.add_le(vec![(x, 3.0), (y, 2.0)], 18.0);
        let s = p.solve().unwrap();
        assert_near(s.objective(), 36.0);
        assert_near(s.value(x), 2.0);
        assert_near(s.value(y), 6.0);
        assert!(s.pivots() > 0, "optimum is off the origin, so pivots happened");
        assert_eq!(s.phase1_pivots(), 0, "all-slack basis needs no phase 1");
        assert!(!s.warm_started());
    }

    #[test]
    fn minimization_with_ge_rows_needs_phase1() {
        // min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 3 → 23 at (7, 3)?
        // Gradient favors x (cost 2 < 3) so push y to its bound: (7, 3) → 23.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 3.0);
        p.add_ge(vec![(x, 1.0), (y, 1.0)], 10.0);
        p.add_ge(vec![(x, 1.0)], 2.0);
        p.add_ge(vec![(y, 1.0)], 3.0);
        let s = p.solve().unwrap();
        assert_near(s.objective(), 23.0);
        assert_near(s.value(x), 7.0);
        assert_near(s.value(y), 3.0);
        assert!(s.phase1_pivots() > 0, "≥ rows force artificials into phase 1");
        assert!(s.pivots() >= s.phase1_pivots());
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 → x = 2, y = 1.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_eq(vec![(x, 1.0), (y, 2.0)], 4.0);
        p.add_eq(vec![(x, 1.0), (y, -1.0)], 1.0);
        let s = p.solve().unwrap();
        assert_near(s.value(x), 2.0);
        assert_near(s.value(y), 1.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_le(vec![(x, 1.0)], 1.0);
        p.add_ge(vec![(x, 1.0)], 2.0);
        assert!(matches!(p.solve(), Err(LpError::Infeasible)));
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 0.0);
        p.add_ge(vec![(x, 1.0), (y, -1.0)], 0.0);
        assert!(matches!(p.solve(), Err(LpError::Unbounded)));
    }

    #[test]
    fn variable_upper_bounds_respected() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, 3.0, 1.0);
        let y = p.add_var("y", 1.0, 2.0, 1.0);
        p.add_le(vec![(x, 1.0), (y, 1.0)], 100.0);
        let s = p.solve().unwrap();
        assert_near(s.value(x), 3.0);
        assert_near(s.value(y), 2.0);
        assert_near(s.objective(), 5.0);
    }

    #[test]
    fn nonzero_lower_bounds_shift_correctly() {
        // min x + y with x >= 5, y >= 7, x + y >= 15 → 15 (e.g. x = 8, y = 7).
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 5.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 7.0, f64::INFINITY, 1.0);
        p.add_ge(vec![(x, 1.0), (y, 1.0)], 15.0);
        let s = p.solve().unwrap();
        assert_near(s.objective(), 15.0);
        assert!(s.value(x) >= 5.0 - 1e-9);
        assert!(s.value(y) >= 7.0 - 1e-9);
    }

    #[test]
    fn free_variables_split() {
        // min |shape|: free variable pushed negative.
        // min x s.t. x >= -8 expressed via free var + constraint.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        p.add_ge(vec![(x, 1.0)], -8.0);
        let s = p.solve().unwrap();
        assert_near(s.value(x), -8.0);
    }

    #[test]
    fn mirrored_variable_with_only_upper_bound() {
        // max x s.t. x <= 4 declared as a bound, plus x <= 10 row.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", f64::NEG_INFINITY, 4.0, 1.0);
        p.add_le(vec![(x, 1.0)], 10.0);
        let s = p.solve().unwrap();
        assert_near(s.value(x), 4.0);
    }

    #[test]
    fn negative_rhs_rows_normalize() {
        // x - y <= -2 with x, y >= 0: max x + y <= bounded by y >= x + 2.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 0.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_le(vec![(x, 1.0), (y, -1.0)], -2.0);
        let s = p.solve().unwrap();
        assert_near(s.value(y), 2.0);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        // max 2*(x) where constraint lists x twice: x + x <= 6 → x = 3.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        p.add_le(vec![(x, 1.0), (x, 1.0)], 6.0);
        let s = p.solve().unwrap();
        assert_near(s.value(x), 3.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Classic degenerate example; Bland's rule must not cycle.
        let mut p = Problem::new(Sense::Maximize);
        let x1 = p.add_var("x1", 0.0, f64::INFINITY, 0.75);
        let x2 = p.add_var("x2", 0.0, f64::INFINITY, -150.0);
        let x3 = p.add_var("x3", 0.0, f64::INFINITY, 0.02);
        let x4 = p.add_var("x4", 0.0, f64::INFINITY, -6.0);
        p.add_le(vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], 0.0);
        p.add_le(vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], 0.0);
        p.add_le(vec![(x3, 1.0)], 1.0);
        let s = p.solve().unwrap();
        assert_near(s.objective(), 0.05);
    }

    #[test]
    fn redundant_equalities_handled() {
        // Two copies of the same equality: phase 1 leaves a redundant row.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_eq(vec![(x, 1.0), (y, 1.0)], 5.0);
        p.add_eq(vec![(x, 2.0), (y, 2.0)], 10.0);
        let s = p.solve().unwrap();
        assert_near(s.objective(), 5.0);
    }

    #[test]
    fn empty_objective_is_fine() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, 5.0, 0.0);
        p.add_le(vec![(x, 1.0)], 4.0);
        let s = p.solve().unwrap();
        assert_near(s.objective(), 0.0);
    }

    #[test]
    fn iteration_limit_reported() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_le(vec![(x, 1.0), (y, 1.0)], 4.0);
        let opts = SimplexOptions { max_pivots: Some(0), ..SimplexOptions::default() };
        assert!(matches!(p.solve_with(&opts), Err(LpError::IterationLimit { limit: 0 })));
    }

    #[test]
    fn fixed_variable_via_equal_bounds() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 2.5, 2.5, 1.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 1.0);
        p.add_le(vec![(x, 1.0), (y, 1.0)], 10.0);
        let s = p.solve().unwrap();
        assert_near(s.value(x), 2.5);
        assert_near(s.value(y), 7.5);
    }

    #[test]
    fn larger_random_instance_agrees_with_greedy_structure() {
        // A transportation-like LP with known optimum: supply 3 sources,
        // demand 3 sinks, min cost. Optimal cost computed by hand: the
        // classic balanced problem below has optimum 78.
        // costs: [[4,6,8],[5,4,7],[6,5,4]] supplies [10,12,8] demands [9,11,10]
        let costs = [[4.0, 6.0, 8.0], [5.0, 4.0, 7.0], [6.0, 5.0, 4.0]];
        let supply = [10.0, 12.0, 8.0];
        let demand = [9.0, 11.0, 10.0];
        let mut p = Problem::new(Sense::Minimize);
        let mut vars = Vec::new();
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                vars.push((i, j, p.add_var(format!("x{i}{j}"), 0.0, f64::INFINITY, c)));
            }
        }
        for (i, &s) in supply.iter().enumerate() {
            let terms: Vec<_> =
                vars.iter().filter(|(a, _, _)| *a == i).map(|(_, _, v)| (*v, 1.0)).collect();
            p.add_eq(terms, s);
        }
        for (j, &d) in demand.iter().enumerate() {
            let terms: Vec<_> =
                vars.iter().filter(|(_, b, _)| *b == j).map(|(_, _, v)| (*v, 1.0)).collect();
            p.add_eq(terms, d);
        }
        let s = p.solve().unwrap();
        // Verify feasibility and optimality bound: cost must be >= LP bound
        // computed by a known-good reference (hand-computed optimum 125).
        let mut ship = [[0.0f64; 3]; 3];
        for (i, j, v) in &vars {
            ship[*i][*j] = s.value(*v);
            assert!(s.value(*v) >= -1e-9);
        }
        for i in 0..3 {
            let row: f64 = ship[i].iter().sum();
            assert!((row - supply[i]).abs() < 1e-7);
        }
        for j in 0..3 {
            let col: f64 = (0..3).map(|i| ship[i][j]).sum();
            assert!((col - demand[j]).abs() < 1e-7);
        }
        // Optimum for this instance: x00=9, x01=1, x11=10, x12=2? Let's
        // simply assert the solver is at least as good as one feasible
        // hand-built plan and exactly matches its own recomputed cost.
        let cost: f64 =
            (0..3).map(|i| (0..3).map(|j| ship[i][j] * costs[i][j]).sum::<f64>()).sum();
        assert_near(cost, s.objective());
        // Hand plan: x00=9,x01=1 (cost 36+6=42); x11=10,x12=2 (40+14=54);
        // x22=8 (32) → total 128. Solver must do no worse.
        assert!(s.objective() <= 128.0 + 1e-7);
    }

    // --- Warm-start behavior --------------------------------------------

    /// A small transportation-style LP whose ≥/= rows force a real
    /// phase 1, parameterized by its right-hand sides.
    fn phase1_heavy(rhs: [f64; 3]) -> (Problem, VarId, VarId) {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = p.add_var("y", 0.0, f64::INFINITY, 3.0);
        p.add_ge(vec![(x, 1.0), (y, 1.0)], rhs[0]);
        p.add_ge(vec![(x, 1.0)], rhs[1]);
        p.add_ge(vec![(y, 1.0)], rhs[2]);
        (p, x, y)
    }

    #[test]
    fn warm_restart_of_identical_problem_needs_zero_pivots() {
        let (p, _, _) = phase1_heavy([10.0, 2.0, 3.0]);
        let cold = p.solve().unwrap();
        assert!(cold.pivots() > 0);
        let warm = p.solve_warm_with(&SimplexOptions::default(), Some(cold.basis())).unwrap();
        assert!(warm.warm_started());
        assert_eq!(warm.pivots(), 0, "the old optimum is still optimal");
        assert_eq!(warm.phase1_pivots(), 0);
        assert_near(warm.objective(), cold.objective());
        // Re-installation may assign basis columns to rows in a different
        // order (partial pivoting picks rows by magnitude), but the basis
        // as a set of columns is unchanged.
        let mut warm_cols = warm.basis().columns().to_vec();
        let mut cold_cols = cold.basis().columns().to_vec();
        warm_cols.sort_unstable();
        cold_cols.sort_unstable();
        assert_eq!(warm_cols, cold_cols);
        assert_eq!(warm.basis().num_cols(), cold.basis().num_cols());
    }

    #[test]
    fn warm_restart_with_perturbed_rhs_matches_cold() {
        let (p0, _, _) = phase1_heavy([10.0, 2.0, 3.0]);
        let cold0 = p0.solve().unwrap();
        // Same structure, shifted right-hand sides.
        let (p1, x, y) = phase1_heavy([12.0, 3.0, 4.0]);
        let cold1 = p1.solve().unwrap();
        let warm1 =
            p1.solve_warm_with(&SimplexOptions::default(), Some(cold0.basis())).unwrap();
        assert!(warm1.warm_started());
        assert_near(warm1.objective(), cold1.objective());
        assert_near(warm1.value(x), cold1.value(x));
        assert_near(warm1.value(y), cold1.value(y));
        assert!(
            warm1.pivots() < cold1.pivots(),
            "warm restart must beat the cold solve: {} vs {}",
            warm1.pivots(),
            cold1.pivots()
        );
    }

    #[test]
    fn warm_restart_with_perturbed_costs_matches_cold() {
        let (p0, _, _) = phase1_heavy([10.0, 2.0, 3.0]);
        let cold0 = p0.solve().unwrap();
        // Flip the cost gradient: now y is the cheap variable.
        let (mut p1, x, y) = phase1_heavy([10.0, 2.0, 3.0]);
        p1.set_objective(x, 5.0);
        p1.set_objective(y, 1.0);
        let cold1 = p1.solve().unwrap();
        let warm1 =
            p1.solve_warm_with(&SimplexOptions::default(), Some(cold0.basis())).unwrap();
        assert!(warm1.warm_started());
        assert_near(warm1.objective(), cold1.objective());
    }

    #[test]
    fn stale_basis_dimension_mismatch_falls_back_to_cold() {
        let (p0, _, _) = phase1_heavy([10.0, 2.0, 3.0]);
        let cold0 = p0.solve().unwrap();
        // A structurally different problem (extra variable and row).
        let mut p1 = Problem::new(Sense::Minimize);
        let x = p1.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = p1.add_var("y", 0.0, f64::INFINITY, 3.0);
        let w = p1.add_var("w", 0.0, f64::INFINITY, 1.0);
        p1.add_ge(vec![(x, 1.0), (y, 1.0), (w, 1.0)], 10.0);
        p1.add_ge(vec![(x, 1.0)], 2.0);
        p1.add_ge(vec![(y, 1.0)], 3.0);
        p1.add_le(vec![(w, 1.0)], 4.0);
        let cold1 = p1.solve().unwrap();
        let warm1 =
            p1.solve_warm_with(&SimplexOptions::default(), Some(cold0.basis())).unwrap();
        assert!(!warm1.warm_started(), "mismatched basis must fall back cleanly");
        assert_near(warm1.objective(), cold1.objective());
        assert_eq!(warm1.pivots(), cold1.pivots());
    }

    #[test]
    fn infeasible_restart_is_repaired_in_place() {
        // The optimal basis at a loose bound becomes primal-infeasible
        // when the bound row's RHS moves past the ≥ row. The warm path
        // must repair the violated rows with a local phase 1 instead of
        // rejecting the basis.
        let build = |cap: f64| {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
            let y = p.add_var("y", 0.0, f64::INFINITY, 4.0);
            p.add_ge(vec![(x, 1.0), (y, 1.0)], 10.0);
            p.add_le(vec![(x, 1.0)], cap);
            p
        };
        let p0 = build(20.0); // cap slack: optimum x=10, y=0
        let cold0 = p0.solve().unwrap();
        let p1 = build(4.0); // cap binds: optimum x=4, y=6
        let cold1 = p1.solve().unwrap();
        let warm1 =
            p1.solve_warm_with(&SimplexOptions::default(), Some(cold0.basis())).unwrap();
        assert!(warm1.warm_started(), "same-structure basis must be repaired, not rejected");
        assert!(warm1.phase1_pivots() >= 1, "the moved RHS requires repair pivots");
        assert_near(warm1.objective(), cold1.objective());
        let warm_vals = warm1.values().to_vec();
        assert_near(warm_vals[0], cold1.values()[0]);
        assert_near(warm_vals[1], cold1.values()[1]);
    }

    #[test]
    fn solution_carries_a_basis_of_the_standardized_shape() {
        let (p, _, _) = phase1_heavy([10.0, 2.0, 3.0]);
        let s = p.solve().unwrap();
        // 3 constraints, no bound rows → 3 rows; 2 structural + 3 surplus
        // columns → 5 standardized columns.
        assert_eq!(s.basis().num_rows(), 3);
        assert_eq!(s.basis().num_cols(), 5);
        assert_eq!(s.basis().columns().len(), 3);
    }

    #[test]
    fn basis_serde_roundtrip() {
        let (p, _, _) = phase1_heavy([10.0, 2.0, 3.0]);
        let basis = p.solve().unwrap().basis().clone();
        let back = Basis::from_value(&basis.to_value()).unwrap();
        assert_eq!(back, basis);
    }

    // --- Feasibility tolerance (one definition for every path) -----------

    #[test]
    fn feas_tol_formula_is_pinned() {
        // The floor keeps feasibility classification stable when the
        // pivot tolerance is sharper than accumulated elimination error.
        assert_eq!(SimplexOptions::default().feas_tol(), 1e-7);
        let loose = SimplexOptions { tolerance: 1e-4, ..SimplexOptions::default() };
        assert_eq!(loose.feas_tol(), 1e-4);
    }

    /// Regression (satellite of the sparse-engine PR): a warm restart
    /// whose RHS moved by less than `feas_tol()` must be classified
    /// still-feasible (no repair), and one violated by more must be
    /// repaired — identically on both backends, because both share
    /// `SimplexOptions::feas_tol` instead of re-deriving `tol.max(1e-7)`
    /// ad hoc per path.
    #[test]
    fn borderline_restart_classifies_consistently_across_backends() {
        let build = |cap: f64| {
            let mut p = Problem::new(Sense::Minimize);
            let x = p.add_var("x", 0.0, f64::INFINITY, 1.0);
            let y = p.add_var("y", 0.0, f64::INFINITY, 4.0);
            p.add_ge(vec![(x, 1.0), (y, 1.0)], 10.0);
            p.add_le(vec![(x, 1.0)], cap);
            p
        };
        // Optimum of build(20): x = 10, y = 0; the cap row's slack is
        // basic at cap − 10, so re-solving with cap = 10 − δ leaves the
        // restart point violated by exactly δ.
        let cold = build(20.0).solve().unwrap();
        for backend in [SolverBackend::Sparse, SolverBackend::Dense] {
            let options = SimplexOptions { backend, ..SimplexOptions::default() };
            // δ below the 1e-7 feasibility floor: zeroed, not repaired.
            let near = build(10.0 - 5e-8)
                .solve_warm_with(&options, Some(cold.basis()))
                .unwrap();
            assert!(near.warm_started(), "{backend:?}: sub-tolerance restart is a hit");
            assert_eq!(
                near.phase1_pivots(),
                0,
                "{backend:?}: sub-tolerance violation must not trigger repair"
            );
            // δ above the floor: repaired in place, still a hit.
            let repaired = build(10.0 - 1e-3)
                .solve_warm_with(&options, Some(cold.basis()))
                .unwrap();
            assert!(repaired.warm_started(), "{backend:?}: violated restart is repaired");
            assert!(
                repaired.phase1_pivots() >= 1,
                "{backend:?}: real violation must cost repair pivots"
            );
        }
    }

    // --- Warm outcome accounting -----------------------------------------

    #[test]
    fn warm_outcome_partitions_the_paths() {
        let (p, _, _) = phase1_heavy([10.0, 2.0, 3.0]);
        for backend in [SolverBackend::Sparse, SolverBackend::Dense] {
            let options = SimplexOptions { backend, ..SimplexOptions::default() };
            let cold = p.solve_with(&options).unwrap();
            assert_eq!(cold.warm_outcome(), WarmOutcome::Cold);
            assert!(!cold.warm_started());

            let warm = p.solve_warm_with(&options, Some(cold.basis())).unwrap();
            assert_eq!(warm.warm_outcome(), WarmOutcome::Hit);
            assert!(warm.warm_started());

            // A basis from a different tableau shape: structural fallback.
            let (other, _, _) = phase1_heavy([1.0, 0.5, 0.2]);
            let mut bigger = other.clone();
            let z = bigger.add_var("z", 0.0, f64::INFINITY, 1.0);
            bigger.add_ge(vec![(z, 1.0)], 1.0);
            let stale = bigger.solve_with(&options).unwrap();
            let fell_back = p.solve_warm_with(&options, Some(stale.basis())).unwrap();
            assert_eq!(fell_back.warm_outcome(), WarmOutcome::StructuralFallback);
            assert!(!fell_back.warm_started());
            assert_near(fell_back.objective(), cold.objective());
        }
    }

    // --- Pivot budget ----------------------------------------------------

    /// Regression (satellite of the sparse-engine PR): re-installing a
    /// warm basis performs one factorization pivot per row, and those
    /// pivots must not be charged against `max_pivots` — a basis with
    /// more rows than the whole pivot budget still installs and solves.
    /// (`Tableau::pivot` never increments the counter — only
    /// `Tableau::run` does — and the sparse engine's factorization
    /// appends etas without touching its counter; this pins both.)
    #[test]
    fn basis_install_is_not_charged_against_pivot_budget() {
        let (p, _, _) = phase1_heavy([10.0, 2.0, 3.0]);
        let cold = p.solve().unwrap();
        assert_eq!(cold.basis().num_rows(), 3, "basis has more rows than the budget below");
        for backend in [SolverBackend::Sparse, SolverBackend::Dense] {
            let options =
                SimplexOptions { max_pivots: Some(0), backend, ..SimplexOptions::default() };
            let warm = p
                .solve_warm_with(&options, Some(cold.basis()))
                .expect("identical restart needs zero simplex pivots, so a zero budget passes");
            assert!(warm.warm_started());
            assert_eq!(warm.pivots(), 0);
        }
    }

    // --- Backend knob -----------------------------------------------------

    #[test]
    fn backend_parses_and_serializes() {
        assert_eq!("sparse".parse::<SolverBackend>().unwrap(), SolverBackend::Sparse);
        assert_eq!("dense".parse::<SolverBackend>().unwrap(), SolverBackend::Dense);
        assert!("Dense".parse::<SolverBackend>().is_err());
        assert_eq!(SolverBackend::default(), SolverBackend::Sparse);
        for backend in [SolverBackend::Sparse, SolverBackend::Dense] {
            assert_eq!(backend.name().parse::<SolverBackend>().unwrap(), backend);
            assert_eq!(SolverBackend::from_value(&backend.to_value()).unwrap(), backend);
        }
        assert!(SolverBackend::from_value(&Value::Null).is_err());
    }

    #[test]
    fn auto_pivot_budget_formula_is_pinned() {
        assert_eq!(SimplexOptions::auto_pivot_budget(0, 0), 10_000);
        assert_eq!(SimplexOptions::auto_pivot_budget(7, 13), 200 * 20 + 10_000);
    }

    #[test]
    fn auto_budget_derives_from_standardized_dims_only() {
        // Regression: the budget must come from the standardized tableau
        // (bound rows + slack columns, no artificials), computed in one
        // place for cold and warm solves alike. This problem standardizes
        // differently from its user-facing shape: 2 vars / 2 constraints
        // become 3 rows (one bound row for the doubly-bounded x) and
        // 3 + 3 columns (x, y⁺, y⁻ structural? no: x shifted, y free →
        // 3 structural) + 3 slacks.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 1.0, 5.0, 1.0); // shifted + bound row
        let y = p.add_var("y", f64::NEG_INFINITY, f64::INFINITY, -1.0); // free: 2 cols
        p.add_le(vec![(x, 1.0), (y, 1.0)], 10.0);
        p.add_ge(vec![(y, 1.0)], -3.0);
        let std_form = standardize(&p);
        let rows = std_form.rows.len();
        let cols = std_form.struct_and_slack;
        assert_eq!(rows, 3, "2 constraints + 1 bound row");
        assert_eq!(cols, 3 + 3, "x + y⁺ + y⁻ structural, 3 slack/surplus");
        assert_eq!(
            SimplexOptions::auto_pivot_budget(rows, cols),
            200 * (rows + cols) + 10_000
        );
        // The budget is generous: the default options solve this within it.
        assert!(p.solve().unwrap().pivots() <= SimplexOptions::auto_pivot_budget(rows, cols));
    }
}

//! Piecewise-linear concave utility functions.
//!
//! The paper assumes the per-class scheduling utility `f_n(·)` is concave
//! (Section VII-B), derived from SLO penalty curves. A concave
//! piecewise-linear function with decreasing slopes can be embedded in an
//! LP by splitting its argument into one bounded segment variable per
//! piece: concavity makes the LP fill segments greedily from the steepest
//! slope down, so no integer variables are needed.

use serde::{Deserialize, Serialize};

use crate::{Problem, VarId};

/// A concave piecewise-linear function described by segments of
/// decreasing slope.
///
/// # Examples
///
/// ```
/// use harmony_lp::PiecewiseLinear;
///
/// // Utility 10/unit for the first 100 containers, 4/unit for the next
/// // 50, nothing beyond.
/// let f = PiecewiseLinear::concave(vec![(100.0, 10.0), (50.0, 4.0)])?;
/// assert_eq!(f.eval(0.0), 0.0);
/// assert_eq!(f.eval(100.0), 1000.0);
/// assert_eq!(f.eval(125.0), 1100.0);
/// assert_eq!(f.eval(1000.0), 1200.0); // saturates
/// # Ok::<(), harmony_lp::LpError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseLinear {
    /// `(width, slope)` per segment, slopes strictly decreasing.
    segments: Vec<(f64, f64)>,
}

impl PiecewiseLinear {
    /// Builds a concave function from `(width, slope)` segments.
    ///
    /// # Errors
    ///
    /// Returns [`crate::LpError::NonFiniteInput`] if any width or slope is
    /// non-finite, a width is non-positive, or slopes are not
    /// non-increasing (which would break the LP embedding).
    pub fn concave(segments: Vec<(f64, f64)>) -> Result<Self, crate::LpError> {
        let mut prev = f64::INFINITY;
        for &(w, s) in &segments {
            if !w.is_finite() || !s.is_finite() || w <= 0.0 {
                return Err(crate::LpError::NonFiniteInput { context: "piecewise segment" });
            }
            if s > prev + 1e-12 {
                return Err(crate::LpError::NonFiniteInput {
                    context: "piecewise slopes must be non-increasing (concave)",
                });
            }
            prev = s;
        }
        Ok(PiecewiseLinear { segments })
    }

    /// A single-slope linear utility capped at `width`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PiecewiseLinear::concave`].
    pub fn linear_capped(width: f64, slope: f64) -> Result<Self, crate::LpError> {
        Self::concave(vec![(width, slope)])
    }

    /// The segments as `(width, slope)` pairs.
    pub fn segments(&self) -> &[(f64, f64)] {
        &self.segments
    }

    /// The total width (saturation point) of the function.
    pub fn total_width(&self) -> f64 {
        self.segments.iter().map(|(w, _)| w).sum()
    }

    /// Evaluates the function at `x ≥ 0` (clamped below at 0, saturating
    /// beyond the last segment).
    pub fn eval(&self, x: f64) -> f64 {
        let mut remaining = x.max(0.0);
        let mut total = 0.0;
        for &(w, s) in &self.segments {
            let used = remaining.min(w);
            total += used * s;
            remaining -= used;
            if remaining <= 0.0 {
                break;
            }
        }
        total
    }

    /// Adds segment variables for this function to `problem` and returns
    /// their ids. The caller should constrain `Σ segments = argument`
    /// (or `≤`), and the segment variables carry the utility in the
    /// objective directly.
    ///
    /// For a *maximization* problem the embedding is exact: concavity
    /// guarantees the optimizer exhausts steeper segments first.
    pub fn add_to_problem(&self, problem: &mut Problem, name: &str) -> Vec<VarId> {
        self.segments
            .iter()
            .enumerate()
            .map(|(i, &(w, s))| problem.add_var(format!("{name}_seg{i}"), 0.0, w, s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sense;

    #[test]
    fn eval_accumulates_segments() {
        let f = PiecewiseLinear::concave(vec![(10.0, 5.0), (10.0, 2.0), (10.0, 0.5)]).unwrap();
        assert_eq!(f.eval(-3.0), 0.0);
        assert_eq!(f.eval(5.0), 25.0);
        assert_eq!(f.eval(10.0), 50.0);
        assert_eq!(f.eval(15.0), 60.0);
        assert_eq!(f.eval(30.0), 75.0);
        assert_eq!(f.eval(300.0), 75.0);
        assert_eq!(f.total_width(), 30.0);
    }

    #[test]
    fn rejects_non_concave_or_bad_segments() {
        assert!(PiecewiseLinear::concave(vec![(1.0, 1.0), (1.0, 2.0)]).is_err());
        assert!(PiecewiseLinear::concave(vec![(0.0, 1.0)]).is_err());
        assert!(PiecewiseLinear::concave(vec![(-1.0, 1.0)]).is_err());
        assert!(PiecewiseLinear::concave(vec![(1.0, f64::NAN)]).is_err());
        assert!(PiecewiseLinear::concave(vec![]).is_ok());
        assert!(PiecewiseLinear::concave(vec![(5.0, -1.0), (5.0, -2.0)]).is_ok());
    }

    #[test]
    fn lp_embedding_matches_eval() {
        // max f(x) - 3x with f = [(4, 10), (4, 5), (4, 1)]: marginal
        // utility beats cost 3 on the first two segments only → x = 8.
        let f = PiecewiseLinear::concave(vec![(4.0, 10.0), (4.0, 5.0), (4.0, 1.0)]).unwrap();
        let mut p = Problem::new(Sense::Maximize);
        let x = p.add_var("x", 0.0, f64::INFINITY, -3.0);
        let segs = f.add_to_problem(&mut p, "f");
        let mut terms: Vec<(VarId, f64)> = segs.iter().map(|&s| (s, 1.0)).collect();
        terms.push((x, -1.0));
        p.add_eq(terms, 0.0);
        let s = p.solve().unwrap();
        assert!((s.value(x) - 8.0).abs() < 1e-7, "x = {}", s.value(x));
        let expected = f.eval(8.0) - 3.0 * 8.0;
        assert!((s.objective() - expected).abs() < 1e-7);
    }

    #[test]
    fn linear_capped_helper() {
        let f = PiecewiseLinear::linear_capped(7.0, 3.0).unwrap();
        assert_eq!(f.eval(2.0), 6.0);
        assert_eq!(f.eval(100.0), 21.0);
        assert_eq!(f.segments().len(), 1);
    }
}

//! Product-form basis factorization for the sparse revised simplex.
//!
//! The basis inverse is never formed explicitly. It is carried as an
//! *eta file* — a product `B⁻¹ = Eₖ·…·E₂·E₁` of elementary matrices,
//! each an identity with one column replaced — exactly the quantities a
//! simplex pivot produces for free. Solving with the basis then costs
//! one pass over the file:
//!
//! * **FTRAN** (`B·x = v`, used for pivot directions and basic values)
//!   applies the etas oldest-first: `x ← Eᵢ·x`, each application a
//!   scatter of the eta column scaled by the pivot-row value.
//! * **BTRAN** (`Bᵀ·y = v`, used for pricing) applies them newest-first:
//!   `y ← Eᵢᵀ·y`, each application a single sparse dot product that
//!   overwrites the pivot-row entry.
//!
//! Every simplex pivot appends one eta, so solves slow down and rounding
//! error accumulates as the file grows; [`factorize`] rebuilds the file
//! from the current basis columns — sparsest column first, partial
//! pivoting over the unassigned rows — which both compacts the file and
//! restores numerical accuracy. The engine calls it every
//! `REFACTOR_EVERY` pivots (see `crate::sparse`).

use crate::sparse::Csc;

/// One product-form elementary matrix: an identity whose column
/// [`Eta::row`] is replaced by the sparse [`Eta::entries`].
#[derive(Debug, Clone)]
pub(crate) struct Eta {
    /// The pivot row (the replaced column of the identity).
    row: usize,
    /// `(row, value)` pairs of the replacement column, the pivot-row
    /// (diagonal) entry always present.
    entries: Vec<(usize, f64)>,
}

/// An eta file representing `B⁻¹` as a product of [`Eta`] matrices.
#[derive(Debug, Clone)]
pub(crate) struct EtaFile {
    etas: Vec<Eta>,
}

impl EtaFile {
    /// The empty file: `B⁻¹ = I`.
    pub(crate) fn identity() -> Self {
        EtaFile { etas: Vec::new() }
    }

    /// Number of eta matrices in the file.
    pub(crate) fn len(&self) -> usize {
        self.etas.len()
    }

    /// Appends the eta that pivots direction `dir` (= `B⁻¹·a` for the
    /// entering column `a`) on `pivot_row`: `η_r = 1/d_r`,
    /// `η_i = −d_i/d_r` elsewhere. Off-pivot magnitudes at or below
    /// `drop_tol` are dropped to bound fill-in; the diagonal entry is
    /// always kept.
    pub(crate) fn push_pivot(&mut self, pivot_row: usize, dir: &[f64], drop_tol: f64) {
        let d_r = dir[pivot_row];
        debug_assert!(d_r != 0.0, "eta pivot on zero element");
        let inv = 1.0 / d_r;
        let mut entries = Vec::new();
        for (i, &d) in dir.iter().enumerate() {
            if i == pivot_row {
                entries.push((i, inv));
            } else if d != 0.0 {
                let e = -d * inv;
                if e.abs() > drop_tol {
                    entries.push((i, e));
                }
            }
        }
        self.etas.push(Eta { row: pivot_row, entries });
    }

    /// Appends a diagonal sign flip at `row` (`η_r = −1`). The
    /// warm-restart repair uses this: replacing a basic column with its
    /// negation turns `B` into `B·S` for a diagonal sign matrix `S`, so
    /// the new inverse is one sign-flip eta ahead of the old one.
    pub(crate) fn push_sign_flip(&mut self, row: usize) {
        self.etas.push(Eta { row, entries: vec![(row, -1.0)] });
    }

    /// FTRAN: overwrites dense `v` with `B⁻¹v`, applying the etas
    /// oldest-first. Cost: one scatter per eta whose pivot-row value is
    /// nonzero.
    pub(crate) fn ftran(&self, v: &mut [f64]) {
        for eta in &self.etas {
            let f = v[eta.row];
            if f == 0.0 {
                continue;
            }
            for &(i, e) in &eta.entries {
                if i == eta.row {
                    v[i] = e * f;
                } else {
                    v[i] += e * f;
                }
            }
        }
    }

    /// BTRAN: overwrites dense `v` with `B⁻ᵀv`, applying the etas
    /// newest-first. Cost: one sparse dot product per eta.
    pub(crate) fn btran(&self, v: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut dot = 0.0;
            for &(i, e) in &eta.entries {
                dot += v[i] * e;
            }
            v[eta.row] = dot;
        }
    }
}

/// Rebuilds an eta file representing `B⁻¹` for the basis made of
/// `basis_cols` (as a *set* of matrix columns — the assignment of
/// columns to pivot rows is recomputed here). Columns are eliminated
/// sparsest-first, with partial pivoting over the rows no earlier
/// column claimed: both choices are deterministic and the first bounds
/// fill-in while the second bounds element growth.
///
/// Returns the file plus the basic column per pivot row, or `None` when
/// the columns are linearly dependent at `tol` — the sparse analogue of
/// the dense engine rejecting a singular warm basis.
pub(crate) fn factorize(
    matrix: &Csc,
    basis_cols: &[usize],
    tol: f64,
    drop_tol: f64,
) -> Option<(EtaFile, Vec<usize>)> {
    let m = matrix.num_rows();
    debug_assert_eq!(basis_cols.len(), m, "basis must have one column per row");
    let mut file = EtaFile::identity();
    let mut assigned = vec![false; m];
    let mut basis_by_row = vec![0usize; m];
    let mut order: Vec<usize> = basis_cols.to_vec();
    order.sort_by_key(|&j| (matrix.col_nnz(j), j));
    let mut work = vec![0.0; m];
    for &j in &order {
        work.fill(0.0);
        for (i, a) in matrix.col(j) {
            work[i] = a;
        }
        file.ftran(&mut work);
        let mut best: Option<(usize, f64)> = None;
        for (i, &w) in work.iter().enumerate() {
            if assigned[i] {
                continue;
            }
            let mag = w.abs();
            if best.is_none_or(|(_, bm)| mag > bm) {
                best = Some((i, mag));
            }
        }
        let (r, mag) = best?;
        if mag <= tol {
            return None; // dependent (or duplicate) basis column
        }
        file.push_pivot(r, &work, drop_tol);
        assigned[r] = true;
        basis_by_row[r] = j;
    }
    Some((file, basis_by_row))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3×3 matrix in CSC form via sparse rows:
    ///   [ 2 1 0 ]
    ///   [ 0 3 1 ]
    ///   [ 1 0 4 ]
    fn example() -> Csc {
        let rows = vec![
            vec![(0, 2.0), (1, 1.0)],
            vec![(1, 3.0), (2, 1.0)],
            vec![(0, 1.0), (2, 4.0)],
        ];
        Csc::from_rows(&rows, 3)
    }

    fn assert_vec_near(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-9, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn factorized_ftran_solves_the_system() {
        let m = example();
        let (file, by_row) = factorize(&m, &[0, 1, 2], 1e-9, 0.0).unwrap();
        // Solve B x = b for b = (5, 10, 13): by substitution from
        //   2x + y = 5; 3y + z = 10; x + 4z = 13
        // → 25x = 33, so (x, y, z) = (33, 59, 73)/25. Position r of the
        // FTRAN result is the value of the variable whose column is
        // by_row[r].
        let mut v = [5.0, 10.0, 13.0];
        file.ftran(&mut v);
        let mut by_col = [0.0; 3];
        for (r, &j) in by_row.iter().enumerate() {
            by_col[j] = v[r];
        }
        assert_vec_near(&by_col, &[33.0 / 25.0, 59.0 / 25.0, 73.0 / 25.0]);
    }

    #[test]
    fn btran_solves_the_transpose() {
        let m = example();
        let (file, by_row) = factorize(&m, &[0, 1, 2], 1e-9, 0.0).unwrap();
        // Solve Bᵀ y = c where c is in basis-position order: pick the
        // "cost" of the variable on each pivot row as its column index,
        // then check Bᵀy = c by multiplying back.
        let mut y = [0.0; 3];
        for (r, &j) in by_row.iter().enumerate() {
            y[r] = (j + 1) as f64;
        }
        let c = y;
        file.btran(&mut y);
        // Verify: for each basic column j on row r, y·A_j = c[r].
        for (r, &j) in by_row.iter().enumerate() {
            let dot: f64 = m.col(j).map(|(i, a)| y[i] * a).sum();
            assert!((dot - c[r]).abs() < 1e-9);
        }
    }

    #[test]
    fn singular_basis_rejected() {
        let m = example();
        assert!(factorize(&m, &[0, 0, 2], 1e-9, 0.0).is_none(), "duplicate column");
    }

    #[test]
    fn sign_flip_eta_negates_one_row() {
        let mut file = EtaFile::identity();
        file.push_sign_flip(1);
        let mut v = [3.0, 4.0, 5.0];
        file.ftran(&mut v);
        assert_vec_near(&v, &[3.0, -4.0, 5.0]);
        let mut y = [1.0, 2.0, 3.0];
        file.btran(&mut y);
        assert_vec_near(&y, &[1.0, -2.0, 3.0]);
    }

    #[test]
    fn pivot_eta_matches_gauss_jordan() {
        // Pivoting direction d on row r must make FTRAN(d) = e_r.
        let mut file = EtaFile::identity();
        let d = [0.5, 2.0, -1.5];
        file.push_pivot(1, &d, 0.0);
        let mut v = d;
        file.ftran(&mut v);
        assert_vec_near(&v, &[0.0, 1.0, 0.0]);
    }
}

//! A two-phase simplex LP solver — a sparse revised simplex with a
//! dense tableau oracle — built from scratch for solving the paper's
//! CBS-RELAX provisioning relaxation (Eq. 14–16).
//!
//! CBS-RELAX maximizes a concave objective (energy cost, switching cost
//! `q_m|δ|`, and a concave scheduling utility `f_n`) over linear
//! constraints. With piecewise-linear concave `f_n` — the form the paper
//! derives from SLO penalty curves — the whole program is an LP:
//!
//! * `|δ|` terms split into `δ⁺ + δ⁻` with `δ = δ⁺ - δ⁻`, both
//!   non-negative;
//! * each concave `f_n` becomes one variable per linear segment with
//!   per-segment upper bounds ([`PiecewiseLinear`] does the bookkeeping).
//!
//! Two interchangeable engines implement the same two-phase primal
//! simplex ([`SolverBackend`] selects one per solve):
//!
//! * the **sparse revised simplex** (default) stores the constraint
//!   matrix once in compressed sparse column form and carries the basis
//!   inverse as an eta-file factorization with periodic
//!   refactorization — per-iteration cost proportional to the nonzero
//!   count, which is what lets CBS-RELAX instances with tens of
//!   thousands of columns solve inside one control period;
//! * the **dense tableau** keeps the whole `B⁻¹A` tableau explicit —
//!   per-pivot cost O(rows × cols) — and serves as the reference oracle
//!   the sparse engine is property-tested against.
//!
//! Both engines share Dantzig most-negative-cost pricing (with an
//! automatic fallback to Bland's anti-cycling rule after a degeneracy
//! streak, so termination is preserved) and the warm-start API —
//! [`Solution::basis`] carries the optimal [`Basis`] out, and
//! [`Problem::solve_warm_with`] re-solves a structurally identical
//! problem from it, skipping phase 1 (or repairing the restart point
//! with a short phase 1 when the new RHS moved against it); a basis
//! taken from one backend warm-starts the other. Everything stays
//! deterministic: the same problem, options, and warm basis always take
//! the same pivot sequence.
//!
//! A successful solve always yields an optimal [`Solution`]; every
//! failure outcome — infeasible, unbounded, pivot budget exhausted,
//! malformed model — is an [`LpError`]. There is no status enum to
//! inspect on the success path.
//!
//! # Examples
//!
//! Maximize `3x + 2y` subject to `x + y ≤ 4`, `x ≤ 2`:
//!
//! ```
//! use harmony_lp::{Problem, Sense};
//!
//! let mut p = Problem::new(Sense::Maximize);
//! let x = p.add_var("x", 0.0, f64::INFINITY, 3.0);
//! let y = p.add_var("y", 0.0, f64::INFINITY, 2.0);
//! p.add_le(vec![(x, 1.0), (y, 1.0)], 4.0);
//! p.add_le(vec![(x, 1.0)], 2.0);
//! let sol = p.solve()?;
//! assert!((sol.objective() - 10.0).abs() < 1e-9);
//! assert!((sol.value(x) - 2.0).abs() < 1e-9);
//! assert!((sol.value(y) - 2.0).abs() < 1e-9);
//! # Ok::<(), harmony_lp::LpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod error;
mod factor;
mod piecewise;
mod problem;
mod simplex;
mod sparse;

pub use error::LpError;
pub use piecewise::PiecewiseLinear;
pub use problem::{Constraint, Problem, Relation, Sense, VarId};
pub use simplex::{Basis, SimplexOptions, Solution, SolverBackend, WarmOutcome};

//! Golden tests for the rule set.
//!
//! Every `tests/fixtures/*.rs` file is a small source fragment whose
//! first line is a `//@path: <workspace-relative-path>` directive — the
//! virtual location the engine scopes rules by. The sibling
//! `*.expected` file holds the findings the fragment must produce, one
//! per line as `line:col [rule-id] message`; an empty (or absent)
//! golden asserts the fragment is clean. Regenerate after an
//! intentional rule change with:
//!
//! ```text
//! UPDATE_GOLDENS=1 cargo test -p harmony-lint --test golden
//! ```
//!
//! and review the diff like any other code change.

use std::fs;
use std::path::{Path, PathBuf};

use harmony_lint::check_source;
use harmony_lint::rules::DriftData;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Fixtures the corpus must cover: at least one positive (has findings)
/// and one negative (clean) fixture per rule.
const RULES: &[&str] = &[
    "nondeterministic-iteration",
    "float-ordering",
    "wall-clock-in-sim",
    "metric-name-drift",
    "rng-purity",
    "checkpoint-compat",
    "lock-discipline",
    "panic-path",
];

#[test]
fn fixtures_match_goldens() {
    let root = workspace_root();
    let drift = DriftData::load(&root).expect("telemetry key registry must load");
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let update = std::env::var_os("UPDATE_GOLDENS").is_some();

    let mut fixtures: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("fixtures dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    fixtures.sort();
    assert!(!fixtures.is_empty(), "no fixtures found in {}", dir.display());

    let mut positive: Vec<&str> = Vec::new();
    let mut negative: Vec<&str> = Vec::new();
    for path in &fixtures {
        let src = fs::read_to_string(path).expect("read fixture");
        let rel = src
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("//@path:"))
            .map(str::trim)
            .unwrap_or_else(|| panic!("{}: first line must be `//@path: <rel>`", path.display()));

        let findings = check_source(rel, &src, &drift, None);
        let actual: Vec<String> = findings
            .iter()
            .map(|f| format!("{}:{} [{}] {}", f.line, f.col, f.rule, f.message))
            .collect();

        let golden_path = path.with_extension("expected");
        if update {
            let mut text = actual.join("\n");
            if !text.is_empty() {
                text.push('\n');
            }
            fs::write(&golden_path, text).expect("write golden");
        }
        let golden_text = fs::read_to_string(&golden_path).unwrap_or_default();
        let expected: Vec<&str> = golden_text.lines().filter(|l| !l.trim().is_empty()).collect();
        assert_eq!(
            actual, expected,
            "\nfixture {} diverged from its golden {}\n(set UPDATE_GOLDENS=1 to regenerate)",
            path.display(),
            golden_path.display()
        );

        // Fixtures are named `<rule_id>_{pos,neg}*.rs` (underscored) or
        // `lexer_*.rs`; a clean rule-named fixture is that rule's
        // negative case, a finding-producing one its positive case.
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("").replace('_', "-");
        for rule in RULES {
            if actual.iter().any(|l| l.contains(&format!("[{rule}]"))) {
                positive.push(rule);
            } else if actual.is_empty() && stem.starts_with(rule) {
                negative.push(rule);
            }
        }
    }

    for rule in RULES {
        assert!(positive.contains(rule), "corpus has no positive fixture for `{rule}`");
        assert!(negative.contains(rule), "corpus has no negative fixture for `{rule}`");
    }
}

/// The acceptance gate the CI job relies on: a clean tree exits 0 under
/// `--deny`, and the same tree with one injected violation does not.
#[test]
fn deny_gate_flags_injected_violation() {
    let root = workspace_root();
    let drift = DriftData::load(&root).expect("registry");
    let clean = "pub fn plan() -> Vec<u32> { Vec::new() }\n";
    assert!(check_source("crates/sim/src/inject.rs", clean, &drift, None).is_empty());
    let injected = "use std::collections::HashMap;\npub fn plan(m: &HashMap<u32, u32>) {}\n";
    let findings = check_source("crates/sim/src/inject.rs", injected, &drift, None);
    assert!(
        findings.iter().any(|f| f.rule == "nondeterministic-iteration"),
        "injected HashMap must be flagged: {findings:?}"
    );
}

/// End-to-end: the real workspace is clean under `--deny` (nonzero exit
/// would also fail CI's lint job, but catching it here gives a local
/// signal with the findings in the test output).
#[test]
fn real_tree_is_clean_under_deny() {
    let root = workspace_root();
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_harmony-lint"))
        .args(["--deny", "--root"])
        .arg(&root)
        .output()
        .expect("run harmony-lint");
    assert!(
        output.status.success(),
        "harmony-lint --deny failed on the workspace:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}

//! End-to-end allowlist behavior over a synthetic workspace: a
//! matching `lint.toml` entry suppresses its finding, and an entry
//! that matches nothing becomes an `unused-allow` finding that fails
//! `--deny` — the regression gate that keeps the allowlist from
//! accumulating dead exemptions.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use harmony_lint::{run_with, Options};

fn write(path: &Path, text: &str) {
    fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    fs::write(path, text).expect("write");
}

/// Builds a minimal workspace with exactly one violation: an
/// `Instant::now()` call in a sim-crate file (`wall-clock-in-sim`).
/// The telemetry registry and DESIGN.md exist and agree so the drift
/// rule stays quiet.
fn synthetic_root(tag: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("allowlist-{tag}"));
    let _ = fs::remove_dir_all(&root);
    write(
        &root.join("crates/telemetry/src/keys.rs"),
        "pub const REGISTERED_KEYS: &[&str] = &[\"sim.events\"];\n",
    );
    write(&root.join("DESIGN.md"), "The sim counts `sim.events` per run.\n");
    write(
        &root.join("crates/sim/src/clock.rs"),
        "use std::time::Instant;\n\npub fn stamp() -> Instant {\n    Instant::now()\n}\n",
    );
    root
}

#[test]
fn matching_allow_suppresses_and_is_counted() {
    let root = synthetic_root("match");
    write(
        &root.join("lint.toml"),
        "[[allow]]\n\
         rule = \"wall-clock-in-sim\"\n\
         path = \"crates/sim/src/clock.rs\"\n\
         contains = \"Instant::now()\"\n\
         reason = \"fixture: the one sanctioned wall-clock read\"\n",
    );
    let report = run_with(&root, &Options::default()).expect("lint run");
    assert!(report.findings.is_empty(), "allow must suppress the finding: {:?}", report.findings);
    assert_eq!(report.allowed, 1, "the suppression must be reported");
}

#[test]
fn unmatched_allow_is_a_finding_and_fails_deny() {
    let root = synthetic_root("stale");
    write(
        &root.join("lint.toml"),
        "[[allow]]\n\
         rule = \"wall-clock-in-sim\"\n\
         path = \"crates/sim/src/clock.rs\"\n\
         reason = \"fixture: the one sanctioned wall-clock read\"\n\
         \n\
         [[allow]]\n\
         rule = \"panic-path\"\n\
         path = \"crates/sim/src/deleted.rs\"\n\
         reason = \"stale: the file this covered is gone\"\n",
    );
    let report = run_with(&root, &Options::default()).expect("lint run");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "unused-allow");
    assert_eq!(f.path, "lint.toml");
    assert_eq!(f.line, 6, "finding points at the stale [[allow]] header");

    // The CLI gate the CI job relies on: `--deny` exits nonzero.
    let output = Command::new(env!("CARGO_BIN_EXE_harmony-lint"))
        .args(["--deny", "--no-cache", "--root"])
        .arg(&root)
        .output()
        .expect("run harmony-lint");
    assert!(!output.status.success(), "a stale allow must fail --deny");
    assert!(
        String::from_utf8_lossy(&output.stdout).contains("unused-allow"),
        "stdout names the stale entry:\n{}",
        String::from_utf8_lossy(&output.stdout)
    );
}

#[test]
fn json_output_is_schema_versioned() {
    let root = synthetic_root("json");
    let output = Command::new(env!("CARGO_BIN_EXE_harmony-lint"))
        .args(["--json", "--no-cache", "--root"])
        .arg(&root)
        .output()
        .expect("run harmony-lint");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("\"schema_version\""), "JSON must be versioned:\n{stdout}");
    assert!(stdout.contains("\"wall-clock-in-sim\""), "finding must appear:\n{stdout}");
}

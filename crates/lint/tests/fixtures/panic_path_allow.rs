//@path: crates/server/src/fixture_panic_allow.rs
// Scoped `#[allow]` attributes suppress panic-path at the site; the
// clippy lint names are honored so existing annotations keep working.
#[allow(clippy::unwrap_used)]
fn head(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}

#[allow(clippy::indexing_slicing)]
fn pick(xs: &[u64], i: usize) -> u64 {
    xs[i % xs.len()]
}

pub fn route(xs: &[u64], i: usize) -> u64 {
    pick(xs, i) + head(xs)
}

//@path: crates/sim/src/fixture_rng.rs
// Seed violations the token pass missed: the constant and the entropy
// reach the constructor only through let-binding dataflow, and the
// reused seed is only visible by expression fingerprint.
use std::time::Instant;

pub fn build_streams(seed: u64) -> u64 {
    let raw = 42u64;
    let mixed = raw ^ 0x9e3779b97f4a7c15;
    let arrivals = SplitMix64::new(mixed);

    let t = Instant::now();
    let jitter = t.elapsed().as_nanos() as u64;
    let services = SplitMix64::new(seed ^ jitter);

    let failures = SplitMix64::new(seed);
    let repairs = SplitMix64::new(seed);

    let _ = (arrivals, services, failures, repairs);
    0
}

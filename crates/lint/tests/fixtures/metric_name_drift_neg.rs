//@path: crates/sim/src/fixture.rs
pub fn emit(metrics: &Registry, verb: &str) {
    metrics.counter("sim.events.arrival").add(1);
    let t = metrics.timer("server.request_seconds");
    let dynamic = format!("server.requests.{verb}");
    metrics.counter(&dynamic).add(1);
    drop(t);
}

//@path: crates/server/src/fixture.rs
pub fn consumed(service: &RwLock<Service>, stream: &mut TcpStream) {
    let response = lock_write(service).handle();
    write_line(stream, &response);
}

pub fn dropped(service: &RwLock<Service>, stream: &mut TcpStream) {
    let svc = lock_read(service);
    let snapshot = svc.snapshot();
    drop(svc);
    write_line(stream, &snapshot);
}

//@path: crates/sim/src/fixture_rng_ok.rs
// Clean seeding: every stream derives from the configured seed XOR a
// distinct stream constant, so replays are reproducible and streams
// are decorrelated. Pinned literal seeds are fine inside tests.
const ARRIVAL_STREAM: u64 = 0x9e37_79b9;
const SERVICE_STREAM: u64 = 0x85eb_ca6b;

pub struct Workload {
    seed: u64,
}

impl Workload {
    pub fn streams(&self) -> u64 {
        let arrivals = SplitMix64::new(self.seed ^ ARRIVAL_STREAM);
        let services = SplitMix64::new(self.seed ^ SERVICE_STREAM);
        let _ = (arrivals, services);
        0
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn pinned_seed_is_fine_in_tests() {
        let rng = SplitMix64::new(42);
        let _ = rng;
    }
}

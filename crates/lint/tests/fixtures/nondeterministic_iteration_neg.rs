//@path: crates/sim/src/fixture.rs
use std::collections::BTreeMap;

pub struct Plan {
    pub hosts: BTreeMap<u32, u32>,
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hash_order_is_fine_in_test_scratch_space() {
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m.len(), 1);
    }
}

//@path: crates/server/src/fixture_net.rs
// Positive cases the PR 5 token pass provably missed: the guard
// reaches blocking I/O only through a helper call (the token engine
// required the write to be lexically inside the locked fn), and the
// multi-lock ordering inversion spans two separate fns.
use std::sync::{Mutex, RwLock};

fn lock_write(l: &RwLock<String>) -> std::sync::RwLockWriteGuard<'_, String> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn persist_state(text: &str) -> std::io::Result<()> {
    std::fs::write("state.json", text)
}

pub fn tick_and_save(l: &RwLock<String>) {
    let guard = lock_write(l);
    let _ = persist_state(&guard);
}

pub fn transfer(a: &Mutex<u64>, b: &Mutex<u64>) {
    let ga = a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let gb = b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = (*ga, *gb);
}

pub fn refund(a: &Mutex<u64>, b: &Mutex<u64>) {
    let gb = b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let ga = a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = (*ga, *gb);
}

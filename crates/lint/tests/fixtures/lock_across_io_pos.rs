//@path: crates/server/src/fixture.rs
use std::io::Write;
use std::sync::RwLock;

pub fn chained(service: &RwLock<Service>) {
    lock_read(service).save_checkpoint("state.json");
}

pub fn bound<W: Write>(service: &RwLock<Service>, out: &mut W) {
    let svc = lock_write(service);
    let _ = writeln!(out, "{}", svc.status());
}

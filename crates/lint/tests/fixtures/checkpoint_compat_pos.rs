//@path: crates/server/src/fixture_state.rs
// `region` shipped after the pinned baseline schema: reading it with
// `?` and never writing it would brick resume-from-old-checkpoint. A
// token scan has no notion of serde field lists; this rule parses the
// Serialize/Deserialize impls and diffs them against the baseline.
impl Serialize for CatalogSpec {
    fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("name".to_owned(), self.name.to_value());
        map.insert("divisor".to_owned(), self.divisor.to_value());
        Value::Object(map)
    }
}

impl Deserialize for CatalogSpec {
    fn from_value(v: &Value) -> Result<CatalogSpec, String> {
        let name = v.field("name")?.text()?;
        let divisor = v.field("divisor")?.integer()?;
        let region = v.field("region")?.text()?;
        Ok(CatalogSpec { name, divisor, region })
    }
}

//@path: crates/sim/src/fixture.rs
// Violation-shaped text inside string literals must never produce
// findings: the lexer has to track plain, raw, byte, and raw-byte
// string boundaries exactly.
pub fn strings() -> Vec<String> {
    vec![
        "HashMap<u32, u32>::new().unwrap()".to_owned(),
        r"Instant::now() and SystemTime::now()".to_owned(),
        r#"let m: HashMap<u32, u32> = panic!("x");"#.to_owned(),
        r##"nested r#"delimiters"# inside"##.to_owned(),
        "escaped quote \" then x.partial_cmp(&y).unwrap()".to_owned(),
    ]
}

pub fn bytes() -> (&'static [u8], &'static [u8]) {
    (b"SystemTime::now()", br#"xs.sort_by(|a, b| a.partial_cmp(b).unwrap())"#)
}

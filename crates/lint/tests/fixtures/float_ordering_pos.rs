//@path: crates/core/tests/fixture.rs
pub fn order(xs: &mut Vec<f64>, y: f64) -> bool {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let hit = y == 1.5;
    let miss = 2.5e0 != y;
    hit && miss
}

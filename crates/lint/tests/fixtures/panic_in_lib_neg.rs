//@path: crates/core/src/fixture.rs
pub fn f(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "missing".to_owned())
}

// The caller's loop bound keeps the option populated.
#[allow(clippy::unwrap_used)]
pub fn g(x: Option<u32>) -> u32 {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let v: Vec<u32> = Vec::new();
        assert!(v.first().is_none());
        let _ = Option::<u32>::None.unwrap_or_default();
    }
}

//@path: crates/sim/src/fixture.rs
/* Block comment with violations: x.unwrap(); HashMap::new();
   /* nested block comment: Instant::now() and panic!("boom") */
   still commented after the nested close: y.partial_cmp(&z).unwrap()
*/

// 'a is a lifetime, 'x' is a char literal; the lexer must not let an
// unterminated-looking quote swallow the rest of the file.
pub fn lifetimes<'a>(x: &'a str) -> &'a str {
    let c: char = 'x';
    let q = '\'';
    let nl = '\n';
    let _ = (c, q, nl);
    x
}

// Raw identifiers are ordinary idents to the lexer.
pub fn r#match(r#type: u32) -> u32 {
    r#type
}

pub fn numbers() -> f64 {
    let n = 1.max(2);
    let r: Vec<u32> = (0..9).collect();
    let x = 2.5_f64;
    x + n as f64 + r.len() as f64
}

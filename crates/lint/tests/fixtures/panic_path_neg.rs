//@path: crates/server/src/fixture_panic_ok.rs
// The unwrap lives in a helper only the test module calls — no pub
// entry point reaches it. The flat token pass flagged it anyway;
// call-graph reachability keeps it out. The pub fn itself sticks to
// non-panicking accessors.
fn assert_shape(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}

pub fn route(xs: &[u64], i: usize) -> Option<u64> {
    xs.get(i).copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn shape() {
        assert_eq!(super::assert_shape(&[7]), 7);
    }
}

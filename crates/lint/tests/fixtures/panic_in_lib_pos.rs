//@path: crates/core/src/fixture.rs
pub fn f(x: Option<u32>, y: Result<u32, String>) -> u32 {
    let a = x.unwrap();
    let b = y.expect("must parse");
    if a > b {
        panic!("a exceeded b");
    }
    todo!()
}

//@path: crates/server/src/fixture_state_ok.rs
// Tolerant form of the same schema change: the post-baseline `region`
// field defaults when absent and is written on save, so pre-`region`
// checkpoints keep loading and new ones round-trip.
impl Serialize for CatalogSpec {
    fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("name".to_owned(), self.name.to_value());
        map.insert("divisor".to_owned(), self.divisor.to_value());
        map.insert("region".to_owned(), self.region.to_value());
        Value::Object(map)
    }
}

impl Deserialize for CatalogSpec {
    fn from_value(v: &Value) -> Result<CatalogSpec, String> {
        let name = v.field("name")?.text()?;
        let divisor = v.field("divisor")?.integer()?;
        let region = match v.field("region") {
            Ok(value) => value.text()?,
            Err(_) => String::new(),
        };
        Ok(CatalogSpec { name, divisor, region })
    }
}

//@path: crates/core/tests/fixture.rs
pub fn order(xs: &mut Vec<f64>, y: f64) -> bool {
    xs.sort_by(f64::total_cmp);
    let zero = y == 0.0;
    let range = y <= 1.5 || y >= 2.5;
    let cmp = y.partial_cmp(&1.5);
    zero && range && cmp.is_some()
}

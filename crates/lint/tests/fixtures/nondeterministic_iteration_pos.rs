//@path: crates/sim/src/fixture.rs
use std::collections::HashMap;

pub struct Plan {
    pub hosts: HashMap<u32, u32>,
}

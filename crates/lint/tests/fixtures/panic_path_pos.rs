//@path: crates/server/src/fixture_panic.rs
// The PR 5 token pass only saw panic sites lexically inside pub fns;
// both of these live in private helpers and are only reachable
// interprocedurally from the pub entry point.
fn pick(xs: &[u64], i: usize) -> u64 {
    xs[i % xs.len()]
}

fn head(xs: &[u64]) -> u64 {
    xs.first().copied().unwrap()
}

pub fn route(xs: &[u64], i: usize) -> u64 {
    pick(xs, i) + head(xs)
}

//@path: crates/sim/src/fixture.rs
use std::time::Duration;

pub fn horizon(base: Duration) -> Duration {
    base * 3
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn wall_clock_is_fine_in_tests() {
        let t0 = Instant::now();
        assert!(t0.elapsed().as_secs() < 3600);
    }
}

//@path: crates/sim/src/fixture.rs
pub fn emit(metrics: &Registry) {
    metrics.counter("sim.bogus_events").add(1);
    let rows = [("lp.not_a_real_key", 7u64)];
    let _ = rows;
}

//@path: crates/server/src/fixture_net_ok.rs
// Clean counterparts: copy the data out and let the guard die before
// any I/O, end liveness early with `drop`, and keep a consistent
// acquisition order across fns.
use std::sync::{Mutex, RwLock};

fn lock_write(l: &RwLock<String>) -> std::sync::RwLockWriteGuard<'_, String> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn persist_state(text: &str) -> std::io::Result<()> {
    std::fs::write("state.json", text)
}

pub fn tick_then_save(l: &RwLock<String>) {
    let text = {
        let guard = lock_write(l);
        guard.clone()
    };
    let _ = persist_state(&text);
}

pub fn save_after_drop(l: &RwLock<String>) {
    let guard = lock_write(l);
    let text = guard.clone();
    drop(guard);
    let _ = persist_state(&text);
}

pub fn transfer(a: &Mutex<u64>, b: &Mutex<u64>) {
    let ga = a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let gb = b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = (*ga, *gb);
}

pub fn refund(a: &Mutex<u64>, b: &Mutex<u64>) {
    let ga = a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let gb = b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = (*gb, *ga);
}

//! Tolerant recursive-descent parser over the lexed token stream.
//!
//! Produces the lightweight [`crate::ast`] tree. The parser is built
//! for analysis, not compilation: it never rejects a file. Anything it
//! cannot model becomes [`Expr::Unknown`] / [`Item::Other`] with a
//! balanced-token skip, and every loop is guaranteed to make progress,
//! so a confused region is contained rather than fatal. Multi-character
//! operators (`::`, `->`, `=>`, `..`, `&&`, ...) are reassembled from
//! the lexer's single-char puncts by source adjacency (same line,
//! consecutive columns).

use crate::ast::{Arm, Block, Expr, File, Fn, Impl, Item, Mod, Param, Span, Stmt};
use crate::lexer::{Token, TokenKind};

/// Parses a lexed token stream into a [`File`].
pub fn parse(tokens: &[Token]) -> File {
    let mut p = Parser { t: tokens, i: 0 };
    let mut items = Vec::new();
    while !p.at_end() {
        let start = p.i;
        if let Some(item) = p.item() {
            items.push(item);
        }
        if p.i == start {
            p.i += 1; // never stall
        }
    }
    File { items }
}

struct Parser<'a> {
    t: &'a [Token],
    i: usize,
}

const ITEM_KEYWORDS: &[&str] = &[
    "pub", "fn", "mod", "impl", "use", "struct", "enum", "trait", "type", "static", "const",
    "union", "extern", "macro_rules",
];

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.i >= self.t.len()
    }

    fn kind(&self, off: usize) -> Option<&'a TokenKind> {
        self.t.get(self.i + off).map(|t| &t.kind)
    }

    fn at_punct(&self, c: char) -> bool {
        self.t.get(self.i).is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.t.get(self.i).and_then(Token::ident) == Some(s)
    }

    fn ident_at(&self, off: usize) -> Option<&'a str> {
        self.t.get(self.i + off).and_then(Token::ident)
    }

    fn bump(&mut self) -> usize {
        let at = self.i;
        self.i += 1;
        at
    }

    /// True when tokens `i` and `i + 1` are glued in the source (no
    /// whitespace between) — how multi-char operators are recognized.
    fn joint(&self, i: usize) -> bool {
        match (self.t.get(i), self.t.get(i + 1)) {
            (Some(a), Some(b)) => a.line == b.line && b.col == a.col + 1,
            _ => false,
        }
    }

    /// True when the next tokens spell the operator `op` exactly (and
    /// not a longer glued operator: `==` does not match at `=` of `==>`).
    fn at_op(&self, op: &str) -> bool {
        let chars: Vec<char> = op.chars().collect();
        for (k, &c) in chars.iter().enumerate() {
            match self.kind(k) {
                Some(TokenKind::Punct(p)) if *p == c => {}
                _ => return false,
            }
            if k + 1 < chars.len() && !self.joint(self.i + k) {
                return false;
            }
        }
        // Reject a longer glued punct run (`..` at `..=`, `=` at `==`).
        if let Some(TokenKind::Punct(next)) = self.kind(chars.len()) {
            if self.joint(self.i + chars.len() - 1) && is_op_char(*next) {
                // `..` followed by glued `=` is `..=`; `=` + `=` is `==`.
                let longer: String = op.chars().chain(std::iter::once(*next)).collect();
                if OPERATORS.contains(&longer.as_str()) {
                    return false;
                }
            }
        }
        true
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if self.at_op(op) {
            self.i += op.chars().count();
            true
        } else {
            false
        }
    }

    /// Skips `#[...]` / `#![...]` attributes and doc markers.
    fn skip_attrs(&mut self) {
        while self.at_punct('#') {
            let mut j = self.i + 1;
            if self.t.get(j).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            if self.t.get(j).is_some_and(|t| t.is_punct('[')) {
                self.i = self.matching(j, '[', ']') + 1;
            } else {
                self.i += 1;
            }
        }
    }

    /// Index just past the delimiter closing the `open` at index `at`.
    fn matching(&self, at: usize, open: char, close: char) -> usize {
        let mut depth = 0i32;
        let mut k = at;
        while k < self.t.len() {
            if let TokenKind::Punct(c) = self.t[k].kind {
                if c == open {
                    depth += 1;
                } else if c == close {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
            }
            k += 1;
        }
        self.t.len().saturating_sub(1)
    }

    /// Skips a balanced `<...>` generics group starting at `<`.
    fn skip_angles(&mut self) {
        debug_assert!(self.at_punct('<'));
        let mut depth = 0i32;
        while !self.at_end() {
            match self.kind(0) {
                Some(TokenKind::Punct('<')) => {
                    depth += 1;
                    self.i += 1;
                }
                Some(TokenKind::Punct('>')) => {
                    depth -= 1;
                    self.i += 1;
                    if depth <= 0 {
                        return;
                    }
                }
                Some(TokenKind::Punct('-')) if self.joint(self.i) => {
                    // `->` inside `Fn(..) -> T`: the `>` is not a close.
                    if matches!(self.kind(1), Some(TokenKind::Punct('>'))) {
                        self.i += 2;
                    } else {
                        self.i += 1;
                    }
                }
                Some(TokenKind::Punct('(')) => self.i = self.matching(self.i, '(', ')') + 1,
                Some(TokenKind::Punct('[')) => self.i = self.matching(self.i, '[', ']') + 1,
                None => return,
                _ => self.i += 1,
            }
        }
    }

    /// Consumes tokens that look like a type (path, generics, refs,
    /// tuples, slices). Stops at anything else.
    fn skip_type(&mut self) {
        loop {
            match self.kind(0) {
                Some(TokenKind::Ident(s))
                    if !matches!(
                        s.as_str(),
                        "as" | "else" | "if" | "match" | "in" | "where" | "for"
                    ) =>
                {
                    self.i += 1;
                }
                Some(TokenKind::Lifetime(_)) => self.i += 1,
                Some(TokenKind::Punct('&' | '*')) => self.i += 1,
                Some(TokenKind::Punct('<')) => self.skip_angles(),
                Some(TokenKind::Punct('(')) => self.i = self.matching(self.i, '(', ')') + 1,
                Some(TokenKind::Punct('[')) => self.i = self.matching(self.i, '[', ']') + 1,
                Some(TokenKind::Punct(':'))
                    if matches!(self.kind(1), Some(TokenKind::Punct(':'))) =>
                {
                    self.i += 2;
                }
                Some(TokenKind::Punct('-'))
                    if self.joint(self.i)
                        && matches!(self.kind(1), Some(TokenKind::Punct('>'))) =>
                {
                    self.i += 2;
                }
                _ => return,
            }
        }
    }

    // ----- items -----

    fn item(&mut self) -> Option<Item> {
        self.skip_attrs();
        if self.at_end() {
            return None;
        }
        let start = self.i;
        let mut is_pub = false;
        if self.at_ident("pub") {
            is_pub = true;
            self.i += 1;
            if self.at_punct('(') {
                self.i = self.matching(self.i, '(', ')') + 1; // pub(crate)
            }
        }
        // Fn qualifiers.
        while self.at_ident("const") || self.at_ident("async") || self.at_ident("unsafe") {
            // `const NAME: ...` is an item, not a qualifier — only treat
            // `const` as a qualifier when `fn` follows.
            if self.at_ident("const") && self.ident_at(1) != Some("fn") {
                break;
            }
            self.i += 1;
        }
        if self.at_ident("extern") && self.ident_at(1) != Some("crate") {
            self.i += 1;
            if matches!(self.kind(0), Some(TokenKind::Str(_))) {
                self.i += 1;
            }
        }
        if self.at_ident("fn") {
            self.i += 1;
            return Some(Item::Fn(self.fn_item(start, is_pub)));
        }
        if self.at_ident("mod") && matches!(self.kind(1), Some(TokenKind::Ident(_))) {
            self.i += 1;
            let name = self.ident_at(0).unwrap_or("").to_owned();
            self.i += 1;
            if self.at_punct('{') {
                let close = self.matching(self.i, '{', '}');
                self.i += 1;
                let mut items = Vec::new();
                while self.i < close {
                    let at = self.i;
                    if let Some(item) = self.item() {
                        items.push(item);
                    }
                    if self.i == at {
                        self.i += 1;
                    }
                }
                self.i = close + 1;
                return Some(Item::Mod(Mod { name, items, span: Span { start, end: self.i } }));
            }
            // `mod name;` — out-of-line, nothing to parse here.
            self.skip_to_item_end();
            return Some(Item::Other { span: Span { start, end: self.i } });
        }
        if self.at_ident("impl") {
            self.i += 1;
            return Some(Item::Impl(self.impl_item(start)));
        }
        self.skip_to_item_end();
        Some(Item::Other { span: Span { start, end: self.i } })
    }

    /// Advances past the current item: first `;` at depth zero or the
    /// `}` closing the first top-level brace.
    fn skip_to_item_end(&mut self) {
        let mut depth = 0i32;
        while !self.at_end() {
            match self.kind(0) {
                Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
                Some(TokenKind::Punct(')' | ']')) => depth -= 1,
                Some(TokenKind::Punct('}')) => {
                    depth -= 1;
                    if depth <= 0 {
                        self.i += 1;
                        return;
                    }
                }
                Some(TokenKind::Punct(';')) if depth == 0 => {
                    self.i += 1;
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
    }

    fn fn_item(&mut self, start: usize, is_pub: bool) -> Fn {
        let tok = self.i;
        let name = self.ident_at(0).unwrap_or("").to_owned();
        if !name.is_empty() {
            self.i += 1;
        }
        if self.at_punct('<') {
            self.skip_angles();
        }
        let mut params = Vec::new();
        let mut has_self = false;
        if self.at_punct('(') {
            let close = self.matching(self.i, '(', ')');
            let inner: Vec<(usize, usize)> = split_commas(self.t, self.i + 1, close);
            for (lo, hi) in inner {
                parse_param(self.t, lo, hi, &mut params, &mut has_self);
            }
            self.i = close + 1;
        }
        let mut ret = String::new();
        if self.eat_op("->") {
            while !self.at_end() && !self.at_punct('{') && !self.at_punct(';') && !self.at_ident("where")
            {
                if self.at_punct('(') {
                    let close = self.matching(self.i, '(', ')');
                    for t in &self.t[self.i..=close.min(self.t.len() - 1)] {
                        push_text(&mut ret, t);
                    }
                    self.i = close + 1;
                    continue;
                }
                if let Some(t) = self.t.get(self.i) {
                    push_text(&mut ret, t);
                }
                self.i += 1;
            }
        }
        if self.at_ident("where") {
            while !self.at_end() && !self.at_punct('{') && !self.at_punct(';') {
                self.i += 1;
            }
        }
        let body = if self.at_punct('{') {
            Some(self.block())
        } else {
            if self.at_punct(';') {
                self.i += 1;
            }
            None
        };
        Fn { name, is_pub, has_self, params, ret, body, span: Span { start, end: self.i }, tok }
    }

    fn impl_item(&mut self, start: usize) -> Impl {
        if self.at_punct('<') {
            self.skip_angles();
        }
        // First path: either the self type or the trait (when `for`
        // follows). Track the last ident outside angle brackets.
        let first = self.type_head_name();
        let mut trait_name = None;
        let mut type_name = first;
        if self.at_ident("for") {
            self.i += 1;
            trait_name = Some(type_name);
            type_name = self.type_head_name();
        }
        while !self.at_end() && !self.at_punct('{') {
            self.i += 1; // where clause
        }
        let mut items = Vec::new();
        if self.at_punct('{') {
            let close = self.matching(self.i, '{', '}');
            self.i += 1;
            while self.i < close {
                let at = self.i;
                if let Some(item) = self.item() {
                    items.push(item);
                }
                if self.i == at {
                    self.i += 1;
                }
            }
            self.i = close + 1;
        }
        Impl { type_name, trait_name, items, span: Span { start, end: self.i } }
    }

    /// Last path-segment ident of a type header (`a::b::Name<T>` →
    /// `Name`), consuming the type tokens.
    fn type_head_name(&mut self) -> String {
        let mut last = String::new();
        loop {
            match self.kind(0) {
                Some(TokenKind::Ident(s)) => {
                    if s == "for" || s == "where" {
                        return last;
                    }
                    if s != "dyn" && s != "mut" {
                        last = s.clone();
                    }
                    self.i += 1;
                }
                Some(TokenKind::Punct('<')) => self.skip_angles(),
                Some(TokenKind::Punct('&' | '*')) => self.i += 1,
                Some(TokenKind::Punct(':'))
                    if matches!(self.kind(1), Some(TokenKind::Punct(':'))) =>
                {
                    self.i += 2;
                }
                Some(TokenKind::Punct('(')) => {
                    self.i = self.matching(self.i, '(', ')') + 1;
                }
                Some(TokenKind::Punct('[')) => {
                    self.i = self.matching(self.i, '[', ']') + 1;
                }
                _ => return last,
            }
        }
    }

    // ----- statements -----

    fn block(&mut self) -> Block {
        debug_assert!(self.at_punct('{'));
        let start = self.i;
        let close = self.matching(self.i, '{', '}');
        self.i += 1;
        let mut stmts = Vec::new();
        while self.i < close {
            let at = self.i;
            self.skip_attrs();
            if self.i >= close {
                break;
            }
            if self.at_punct(';') {
                self.i += 1;
                continue;
            }
            if self.at_ident("let") {
                stmts.push(self.let_stmt(close));
            } else if self.starts_item() {
                if let Some(item) = self.item() {
                    stmts.push(Stmt::Item(item));
                }
            } else {
                stmts.push(Stmt::Expr(self.expr(false)));
                if self.at_punct(';') {
                    self.i += 1;
                }
            }
            if self.i == at {
                self.i += 1;
            }
        }
        self.i = close + 1;
        Block { stmts, span: Span { start, end: self.i } }
    }

    /// Item-start heuristic in statement position. `unsafe {` and
    /// `const {` are expressions, not items.
    fn starts_item(&self) -> bool {
        let Some(word) = self.ident_at(0) else { return false };
        if word == "unsafe" || word == "const" || word == "async" {
            return self.ident_at(1) == Some("fn")
                || (word == "const" && matches!(self.kind(1), Some(TokenKind::Ident(_))));
        }
        ITEM_KEYWORDS.contains(&word)
    }

    fn let_stmt(&mut self, limit: usize) -> Stmt {
        let tok = self.i;
        self.i += 1; // `let`
        let names = self.pattern_names(&["=", ":", ";"], limit);
        if self.at_punct(':') && !self.at_op("::") {
            self.i += 1;
            self.skip_type_until_eq(limit);
        }
        let mut init = None;
        if self.at_op("=") {
            self.i += 1;
            init = Some(self.expr(false));
        }
        let mut els = None;
        if self.at_ident("else") {
            self.i += 1;
            if self.at_punct('{') {
                els = Some(self.block());
            }
        }
        if self.at_punct(';') {
            self.i += 1;
        }
        Stmt::Let { names, init, els, tok }
    }

    /// Type position in a `let`: skip until a depth-0 `=` or `;`,
    /// tracking angle depth so `Iterator<Item = u64>` does not stop
    /// early.
    fn skip_type_until_eq(&mut self, limit: usize) {
        let mut angle = 0i32;
        while self.i < limit {
            match self.kind(0) {
                Some(TokenKind::Punct('<')) => {
                    angle += 1;
                    self.i += 1;
                }
                Some(TokenKind::Punct('>')) => {
                    angle -= 1;
                    self.i += 1;
                }
                Some(TokenKind::Punct('-'))
                    if self.joint(self.i)
                        && matches!(self.kind(1), Some(TokenKind::Punct('>'))) =>
                {
                    self.i += 2;
                }
                Some(TokenKind::Punct('(')) => self.i = self.matching(self.i, '(', ')') + 1,
                Some(TokenKind::Punct('[')) => self.i = self.matching(self.i, '[', ']') + 1,
                Some(TokenKind::Punct('=')) if angle <= 0 => return,
                Some(TokenKind::Punct(';')) if angle <= 0 => return,
                None => return,
                _ => self.i += 1,
            }
        }
    }

    /// Collects binding idents of a pattern: lowercase- or
    /// underscore-initial idents that are not keywords, skipping the
    /// bare `_`. Stops at any of `stops` (depth 0) or `limit`.
    fn pattern_names(&mut self, stops: &[&str], limit: usize) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0i32;
        while self.i < limit && !self.at_end() {
            // `0..=9` inside a range pattern: the `=` is part of the
            // operator, not an assignment stop.
            if self.at_op("..=") {
                self.i += 3;
                continue;
            }
            if depth == 0 {
                for stop in stops {
                    match *stop {
                        "=" => {
                            if self.at_op("=") {
                                return names;
                            }
                        }
                        "=>" => {
                            if self.at_op("=>") {
                                return names;
                            }
                        }
                        ":" => {
                            if self.at_punct(':') && !self.at_op("::") {
                                return names;
                            }
                        }
                        word if word.chars().all(char::is_alphanumeric) => {
                            if self.at_ident(word) {
                                return names;
                            }
                        }
                        _ => {
                            if word_is_punct(stop) && self.at_punct(stop_char(stop)) {
                                return names;
                            }
                        }
                    }
                }
            }
            match self.kind(0) {
                Some(TokenKind::Punct('(' | '[')) => depth += 1,
                Some(TokenKind::Punct(')' | ']')) => {
                    if depth == 0 {
                        return names;
                    }
                    depth -= 1;
                }
                Some(TokenKind::Punct('{')) => depth += 1,
                Some(TokenKind::Punct('}')) => {
                    if depth == 0 {
                        return names;
                    }
                    depth -= 1;
                }
                // `seg::...` and `field:` name a path/struct field,
                // not a binding.
                Some(TokenKind::Ident(s))
                    if is_binding_name(s)
                        && self.t.get(self.i + 1).is_none_or(|t| !t.is_punct(':')) =>
                {
                    names.push(s.clone());
                }
                _ => {}
            }
            self.i += 1;
        }
        names
    }

    // ----- expressions -----

    fn expr(&mut self, ns: bool) -> Expr {
        let lhs = self.range_level(ns);
        // Assignment (and compound assignment) — right-associative.
        for op in ["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="] {
            if self.at_op(op) {
                self.i += op.chars().count();
                let rhs = self.expr(ns);
                return Expr::Assign { lhs: Box::new(lhs), rhs: Box::new(rhs) };
            }
        }
        lhs
    }

    fn range_level(&mut self, ns: bool) -> Expr {
        if self.at_op("..=") || self.at_op("..") {
            let inclusive = self.at_op("..=");
            self.i += if inclusive { 3 } else { 2 };
            let hi = if self.expr_starts() { Some(Box::new(self.binary_level(ns, 0))) } else { None };
            return Expr::Range { lo: None, hi };
        }
        let lo = self.binary_level(ns, 0);
        if self.at_op("..=") || self.at_op("..") {
            let inclusive = self.at_op("..=");
            self.i += if inclusive { 3 } else { 2 };
            let hi = if self.expr_starts() { Some(Box::new(self.binary_level(ns, 0))) } else { None };
            return Expr::Range { lo: Some(Box::new(lo)), hi };
        }
        lo
    }

    /// Whether the current token can begin an expression — used to
    /// decide if a `..` has a right-hand side.
    fn expr_starts(&self) -> bool {
        match self.kind(0) {
            Some(TokenKind::Ident(s)) => {
                !matches!(s.as_str(), "else" | "in" | "where" | "as")
            }
            Some(TokenKind::Str(_) | TokenKind::Char | TokenKind::Num { .. }) => true,
            Some(TokenKind::Punct(c)) => matches!(c, '(' | '[' | '{' | '&' | '*' | '-' | '!' | '|'),
            _ => false,
        }
    }

    fn binary_level(&mut self, ns: bool, level: usize) -> Expr {
        const LEVELS: &[&[&str]] = &[
            &["||"],
            &["&&"],
            &["==", "!=", "<=", ">=", "<", ">"],
            &["|"],
            &["^"],
            &["&"],
            &["<<", ">>"],
            &["+", "-"],
            &["*", "/", "%"],
        ];
        if level >= LEVELS.len() {
            return self.cast_level(ns);
        }
        let mut lhs = self.binary_level(ns, level + 1);
        loop {
            let mut matched = false;
            for op in LEVELS[level] {
                if self.at_op(op) {
                    self.i += op.chars().count();
                    let rhs = self.binary_level(ns, level + 1);
                    lhs = Expr::Binary { lhs: Box::new(lhs), rhs: Box::new(rhs) };
                    matched = true;
                    break;
                }
            }
            if !matched {
                return lhs;
            }
        }
    }

    fn cast_level(&mut self, ns: bool) -> Expr {
        let mut e = self.unary(ns);
        while self.at_ident("as") {
            self.i += 1;
            self.skip_type();
            e = Expr::Cast { inner: Box::new(e) };
        }
        e
    }

    fn unary(&mut self, ns: bool) -> Expr {
        if self.at_ident("move") && matches!(self.kind(1), Some(TokenKind::Punct('|'))) {
            self.i += 1;
            return self.closure(ns);
        }
        if self.at_punct('|') {
            return self.closure(ns);
        }
        if self.at_punct('&') {
            // `&&expr` (double ref) recurses: the second `&` is the
            // next unary's prefix.
            self.i += 1;
            if self.at_ident("mut") {
                self.i += 1;
            }
            return Expr::Unary { inner: Box::new(self.unary(ns)) };
        }
        if self.at_punct('*') || self.at_punct('-') || self.at_punct('!') {
            self.i += 1;
            return Expr::Unary { inner: Box::new(self.unary(ns)) };
        }
        self.postfix(ns)
    }

    fn closure(&mut self, ns: bool) -> Expr {
        let mut params = Vec::new();
        if self.at_op("||") {
            self.i += 2;
        } else {
            self.i += 1; // `|`
            let mut depth = 0i32;
            let mut in_type = false; // after a top-level `:`, until `,`
            while !self.at_end() {
                match self.kind(0) {
                    Some(TokenKind::Punct('(' | '[' | '<')) => depth += 1,
                    Some(TokenKind::Punct(')' | ']' | '>')) => depth -= 1,
                    Some(TokenKind::Punct('|')) if depth <= 0 => {
                        self.i += 1;
                        break;
                    }
                    Some(TokenKind::Punct(':')) if depth <= 0 => in_type = true,
                    Some(TokenKind::Punct(',')) if depth <= 0 => in_type = false,
                    Some(TokenKind::Ident(s)) if depth <= 0 && !in_type && is_binding_name(s) => {
                        params.push(s.clone());
                    }
                    None => break,
                    _ => {}
                }
                self.i += 1;
            }
        }
        if self.eat_op("->") {
            self.skip_type();
        }
        let body = self.expr(ns);
        Expr::Closure { params, body: Box::new(body) }
    }

    fn postfix(&mut self, ns: bool) -> Expr {
        let mut e = self.primary(ns);
        loop {
            if self.at_op("..") || self.at_op("..=") {
                return e; // range operator, handled one level up
            }
            if self.at_punct('?') {
                self.i += 1;
                e = Expr::Try { inner: Box::new(e) };
                continue;
            }
            if self.at_punct('.') && !self.at_op("..") {
                self.i += 1;
                match self.kind(0).cloned() {
                    Some(TokenKind::Ident(name)) => {
                        let tok = self.bump();
                        if self.at_op("::") {
                            self.i += 2;
                            if self.at_punct('<') {
                                self.skip_angles(); // `.collect::<Vec<_>>()`
                            }
                        }
                        if self.at_punct('(') {
                            let args = self.call_args();
                            e = Expr::MethodCall { recv: Box::new(e), name, args, tok };
                        } else {
                            e = Expr::Field { base: Box::new(e), name, tok };
                        }
                    }
                    Some(TokenKind::Num { text, .. }) => {
                        let tok = self.bump();
                        e = Expr::Field { base: Box::new(e), name: text, tok };
                    }
                    _ => {
                        // `.` followed by something unexpected; stop.
                        return e;
                    }
                }
                continue;
            }
            if self.at_punct('(') {
                let tok = e.tok().unwrap_or(self.i);
                let args = self.call_args();
                e = Expr::Call { callee: Box::new(e), args, tok };
                continue;
            }
            if self.at_punct('[') {
                let tok = self.i;
                let close = self.matching(self.i, '[', ']');
                self.i += 1;
                let index = if self.i < close { self.expr(false) } else { Expr::Unknown { span: Span { start: tok, end: close } } };
                self.i = close + 1;
                e = Expr::Index { base: Box::new(e), index: Box::new(index), tok };
                continue;
            }
            return e;
        }
    }

    /// Parses `(a, b, ...)` call arguments; cursor at `(`.
    fn call_args(&mut self) -> Vec<Expr> {
        let close = self.matching(self.i, '(', ')');
        self.i += 1;
        let mut args = Vec::new();
        while self.i < close {
            let at = self.i;
            args.push(self.expr(false));
            if self.at_punct(',') {
                self.i += 1;
            }
            if self.i == at {
                self.i += 1;
            }
        }
        self.i = close + 1;
        args
    }

    fn primary(&mut self, ns: bool) -> Expr {
        // Loop labels: `'outer: loop { ... }`.
        if matches!(self.kind(0), Some(TokenKind::Lifetime(_)))
            && self.t.get(self.i + 1).is_some_and(|t| t.is_punct(':'))
        {
            self.i += 2;
        }
        match self.kind(0).cloned() {
            Some(TokenKind::Str(_) | TokenKind::Char | TokenKind::Num { .. }) => {
                Expr::Lit { tok: self.bump() }
            }
            Some(TokenKind::Punct('(')) => {
                let close = self.matching(self.i, '(', ')');
                self.i += 1;
                let mut items = Vec::new();
                let mut trailing = false;
                while self.i < close {
                    let at = self.i;
                    items.push(self.expr(false));
                    trailing = false;
                    if self.at_punct(',') {
                        self.i += 1;
                        trailing = true;
                    }
                    if self.i == at {
                        self.i += 1;
                    }
                }
                self.i = close + 1;
                if items.len() == 1 && !trailing {
                    items.pop().unwrap_or(Expr::Unknown { span: Span { start: close, end: close } })
                } else {
                    Expr::Tuple { items }
                }
            }
            Some(TokenKind::Punct('[')) => {
                let close = self.matching(self.i, '[', ']');
                self.i += 1;
                let mut items = Vec::new();
                while self.i < close {
                    let at = self.i;
                    items.push(self.expr(false));
                    if self.at_punct(',') || self.at_punct(';') {
                        self.i += 1;
                    }
                    if self.i == at {
                        self.i += 1;
                    }
                }
                self.i = close + 1;
                Expr::Array { items }
            }
            Some(TokenKind::Punct('{')) => Expr::Block(self.block()),
            Some(TokenKind::Ident(word)) => self.keyword_or_path(&word, ns),
            Some(_) => Expr::Unknown { span: Span { start: self.bump(), end: self.i } },
            None => Expr::Unknown { span: Span { start: self.i, end: self.i } },
        }
    }

    fn keyword_or_path(&mut self, word: &str, ns: bool) -> Expr {
        match word {
            "if" => {
                self.i += 1;
                self.if_expr()
            }
            "match" => {
                self.i += 1;
                let scrutinee = self.expr(true);
                let mut arms = Vec::new();
                if self.at_punct('{') {
                    let close = self.matching(self.i, '{', '}');
                    self.i += 1;
                    while self.i < close {
                        let at = self.i;
                        self.skip_attrs();
                        if self.i >= close {
                            break;
                        }
                        let pat_start = self.i;
                        let names = self.pattern_names(&["=>", "if"], close);
                        let pat = crate::ast::Span { start: pat_start, end: self.i };
                        let mut guard = None;
                        if self.at_ident("if") {
                            self.i += 1;
                            guard = Some(self.guard_expr(close));
                        }
                        if self.at_op("=>") {
                            self.i += 2;
                        }
                        let body = self.expr(false);
                        if self.at_punct(',') {
                            self.i += 1;
                        }
                        arms.push(Arm { names, pat, guard, body });
                        if self.i == at {
                            self.i += 1;
                        }
                    }
                    self.i = close + 1;
                }
                Expr::Match { scrutinee: Box::new(scrutinee), arms }
            }
            "loop" => {
                self.i += 1;
                let body = if self.at_punct('{') { self.block() } else { empty_block(self.i) };
                Expr::Loop { body }
            }
            "while" => {
                self.i += 1;
                if self.at_ident("let") {
                    self.i += 1;
                    let names = self.pattern_names(&["="], self.t.len());
                    if self.at_op("=") {
                        self.i += 1;
                    }
                    let value = self.expr(true);
                    let body = if self.at_punct('{') { self.block() } else { empty_block(self.i) };
                    return Expr::WhileLet { names, value: Box::new(value), body };
                }
                let cond = self.expr(true);
                let body = if self.at_punct('{') { self.block() } else { empty_block(self.i) };
                Expr::While { cond: Box::new(cond), body }
            }
            "for" => {
                self.i += 1;
                let names = self.pattern_names(&["in"], self.t.len());
                if self.at_ident("in") {
                    self.i += 1;
                }
                let iter = self.expr(true);
                let body = if self.at_punct('{') { self.block() } else { empty_block(self.i) };
                Expr::For { names, iter: Box::new(iter), body }
            }
            "unsafe" | "async" => {
                self.i += 1;
                if self.at_ident("move") {
                    self.i += 1;
                }
                if self.at_punct('{') {
                    Expr::Block(self.block())
                } else {
                    Expr::Unknown { span: Span { start: self.i, end: self.i } }
                }
            }
            "return" => {
                self.i += 1;
                let inner =
                    if self.expr_starts() { Some(Box::new(self.expr(ns))) } else { None };
                Expr::Return { inner }
            }
            "break" | "continue" => {
                self.i += 1;
                if matches!(self.kind(0), Some(TokenKind::Lifetime(_))) {
                    self.i += 1;
                }
                let inner = if word == "break" && self.expr_starts() {
                    Some(Box::new(self.expr(ns)))
                } else {
                    None
                };
                Expr::Jump { inner }
            }
            "true" | "false" => Expr::Lit { tok: self.bump() },
            "move" => {
                self.i += 1;
                if self.at_punct('|') {
                    self.closure(ns)
                } else if self.at_punct('{') {
                    Expr::Block(self.block())
                } else {
                    Expr::Unknown { span: Span { start: self.i, end: self.i } }
                }
            }
            _ => self.path_expr(ns),
        }
    }

    /// Match-arm guard: parse up to the `=>` without consuming it.
    fn guard_expr(&mut self, limit: usize) -> Expr {
        let start = self.i;
        // Guards are rare and small; reuse the normal parser, which
        // stops naturally at `=>` because `=` + glued `>` matches no
        // binary operator.
        let e = self.expr(true);
        if self.i > limit {
            self.i = limit;
            return Expr::Unknown { span: Span { start, end: limit } };
        }
        e
    }

    fn if_expr(&mut self) -> Expr {
        if self.at_ident("let") {
            self.i += 1;
            let names = self.pattern_names(&["="], self.t.len());
            if self.at_op("=") {
                self.i += 1;
            }
            let value = self.expr(true);
            let then = if self.at_punct('{') { self.block() } else { empty_block(self.i) };
            let els = self.else_tail();
            return Expr::IfLet { names, value: Box::new(value), then, els };
        }
        let cond = self.expr(true);
        let then = if self.at_punct('{') { self.block() } else { empty_block(self.i) };
        let els = self.else_tail();
        Expr::If { cond: Box::new(cond), then, els }
    }

    fn else_tail(&mut self) -> Option<Box<Expr>> {
        if !self.at_ident("else") {
            return None;
        }
        self.i += 1;
        if self.at_ident("if") {
            self.i += 1;
            return Some(Box::new(self.if_expr()));
        }
        if self.at_punct('{') {
            return Some(Box::new(Expr::Block(self.block())));
        }
        None
    }

    fn path_expr(&mut self, ns: bool) -> Expr {
        let tok = self.i;
        let mut segs = Vec::new();
        while let Some(TokenKind::Ident(s)) = self.kind(0) {
            segs.push(s.clone());
            self.i += 1;
            if self.at_op("::") {
                self.i += 2;
                if self.at_punct('<') {
                    self.skip_angles(); // turbofish
                    if self.at_op("::") {
                        self.i += 2;
                        continue;
                    }
                    break;
                }
                continue;
            }
            break;
        }
        if segs.is_empty() {
            return Expr::Unknown { span: Span { start: tok, end: self.i.max(tok + 1) } };
        }
        // Macro invocation: `name!(...)` / `name![...]` / `name!{...}`.
        if self.at_punct('!') && !self.at_op("!=") {
            self.i += 1;
            let name = segs.last().cloned().unwrap_or_default();
            let (open, closec) = match self.kind(0) {
                Some(TokenKind::Punct('(')) => ('(', ')'),
                Some(TokenKind::Punct('[')) => ('[', ']'),
                Some(TokenKind::Punct('{')) => ('{', '}'),
                _ => return Expr::Macro { name, args: Vec::new(), tok },
            };
            let close = self.matching(self.i, open, closec);
            self.i += 1;
            let mut args = Vec::new();
            while self.i < close {
                let at = self.i;
                args.push(self.expr(false));
                if self.at_punct(',') {
                    self.i += 1;
                }
                if self.i == at {
                    self.i += 1;
                }
            }
            self.i = close + 1;
            return Expr::Macro { name, args, tok };
        }
        // Struct literal: `Path { field: expr, .. }` — only when the
        // context allows it and the last segment is type-shaped.
        let typeish = segs
            .last()
            .and_then(|s| s.chars().next())
            .is_some_and(char::is_uppercase);
        if self.at_punct('{') && !ns && typeish {
            let close = self.matching(self.i, '{', '}');
            self.i += 1;
            let mut fields = Vec::new();
            while self.i < close {
                let at = self.i;
                if self.at_op("..") {
                    self.i += 2;
                    let base = self.expr(false);
                    fields.push(("..".to_owned(), base));
                } else if let Some(TokenKind::Ident(name)) = self.kind(0).cloned() {
                    self.i += 1;
                    if self.at_punct(':') && !self.at_op("::") {
                        self.i += 1;
                        let value = self.expr(false);
                        fields.push((name, value));
                    } else {
                        // Shorthand `Point { x, y }`.
                        fields.push((name.clone(), Expr::Path { segs: vec![name], tok: self.i - 1 }));
                    }
                }
                if self.at_punct(',') {
                    self.i += 1;
                }
                if self.i == at {
                    self.i += 1;
                }
            }
            self.i = close + 1;
            return Expr::StructLit { path: segs, fields, tok };
        }
        Expr::Path { segs, tok }
    }
}

/// All multi-char operators `at_op` must not match a prefix of.
const OPERATORS: &[&str] = &[
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "->", "=>", "::", "..", "..=", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

fn is_op_char(c: char) -> bool {
    matches!(c, '=' | '<' | '>' | '&' | '|' | '.' | ':' | '-' | '+' | '*' | '/' | '%' | '^' | '!')
}

fn word_is_punct(s: &str) -> bool {
    s.len() == 1 && !s.chars().next().is_some_and(char::is_alphanumeric)
}

fn stop_char(s: &str) -> char {
    s.chars().next().unwrap_or(';')
}

fn empty_block(at: usize) -> Block {
    Block { stmts: Vec::new(), span: Span { start: at, end: at } }
}

/// Keyword/binding filter for pattern names: lowercase- or
/// underscore-initial (but not the bare `_`), not a pattern keyword.
fn is_binding_name(s: &str) -> bool {
    if s == "_" {
        return false;
    }
    let Some(first) = s.chars().next() else { return false };
    if !(first.is_lowercase() || first == '_') {
        return false;
    }
    !matches!(s, "mut" | "ref" | "box" | "if" | "in" | "else" | "true" | "false")
}

/// Splits `tokens[lo..hi]` at depth-0 commas into index ranges.
fn split_commas(tokens: &[Token], lo: usize, hi: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = lo;
    for (k, t) in tokens.iter().enumerate().take(hi).skip(lo) {
        match t.kind {
            TokenKind::Punct('(' | '[' | '{' | '<') => depth += 1,
            TokenKind::Punct(')' | ']' | '}' | '>') => depth -= 1,
            TokenKind::Punct(',') if depth <= 0 => {
                if k > start {
                    out.push((start, k));
                }
                start = k + 1;
            }
            _ => {}
        }
    }
    if hi > start {
        out.push((start, hi));
    }
    out
}

/// Parses one fn parameter from `tokens[lo..hi]`.
fn parse_param(
    tokens: &[Token],
    lo: usize,
    hi: usize,
    params: &mut Vec<Param>,
    has_self: &mut bool,
) {
    // Skip attributes on the parameter.
    let mut k = lo;
    while k < hi && tokens[k].is_punct('#') {
        let mut depth = 0i32;
        k += 1;
        while k < hi {
            match tokens[k].kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        k += 1;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }
    // Find the top-level `:` separating pattern from type.
    let mut colon = None;
    let mut depth = 0i32;
    for idx in k..hi {
        match tokens[idx].kind {
            TokenKind::Punct('(' | '[' | '<') => depth += 1,
            TokenKind::Punct(')' | ']' | '>') => depth -= 1,
            TokenKind::Punct(':') if depth == 0 => {
                // `::` is a path separator, not the type colon.
                let double = tokens.get(idx + 1).is_some_and(|t| t.is_punct(':'))
                    || (idx > k && tokens[idx - 1].is_punct(':'));
                if !double {
                    colon = Some(idx);
                    break;
                }
            }
            _ => {}
        }
    }
    let pat_end = colon.unwrap_or(hi);
    // Receiver in any spelling: `self`, `&mut self`, `self: Box<Self>`.
    if tokens[k..pat_end].iter().any(|t| t.ident() == Some("self")) {
        *has_self = true;
        return;
    }
    let ty: String = match colon {
        Some(c) => {
            let mut s = String::new();
            for t in &tokens[c + 1..hi] {
                push_text(&mut s, t);
            }
            s
        }
        None => String::new(),
    };
    for t in &tokens[k..pat_end] {
        if let Some(name) = t.ident() {
            if is_binding_name(name) {
                params.push(Param { name: name.to_owned(), ty: ty.clone() });
            }
        }
    }
}

/// Appends a token's surface text (approximate for literals).
fn push_text(out: &mut String, t: &Token) {
    match &t.kind {
        TokenKind::Ident(s) => {
            if !out.is_empty() && out.chars().last().is_some_and(|c| c.is_alphanumeric() || c == '_')
            {
                out.push(' ');
            }
            out.push_str(s);
        }
        TokenKind::Lifetime(s) => {
            out.push('\'');
            out.push_str(s);
        }
        TokenKind::Punct(c) => out.push(*c),
        TokenKind::Str(s) => {
            out.push('"');
            out.push_str(s);
            out.push('"');
        }
        TokenKind::Char => out.push_str("'_'"),
        TokenKind::Num { text: s, .. } => {
            if !out.is_empty() && out.chars().last().is_some_and(|c| c.is_alphanumeric()) {
                out.push(' ');
            }
            out.push_str(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> File {
        parse(&lex(src))
    }

    fn first_fn(file: &File) -> &Fn {
        for item in &file.items {
            if let Item::Fn(f) = item {
                return f;
            }
        }
        panic!("no fn item");
    }

    #[test]
    fn fn_signature_and_params() {
        let file = parse_src("pub fn f(a: u64, mut b: &str, (c, d): (u8, u8)) -> Result<u64, E> { a }");
        let f = first_fn(&file);
        assert_eq!(f.name, "f");
        assert!(f.is_pub);
        assert!(!f.has_self);
        let names: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
        assert_eq!(f.params[0].ty, "u64");
        assert!(f.ret.contains("Result"));
        assert!(f.body.is_some());
    }

    #[test]
    fn method_chain_parses_nested() {
        let file = parse_src("fn f() { x.lock().unwrap().write_all(buf)?; }");
        let f = first_fn(&file);
        let body = f.body.as_ref().unwrap();
        let Stmt::Expr(Expr::Try { inner }) = &body.stmts[0] else {
            panic!("expected try: {:?}", body.stmts[0]);
        };
        let Expr::MethodCall { name, recv, .. } = inner.as_ref() else { panic!() };
        assert_eq!(name, "write_all");
        let Expr::MethodCall { name, recv, .. } = recv.as_ref() else { panic!() };
        assert_eq!(name, "unwrap");
        let Expr::MethodCall { name, .. } = recv.as_ref() else { panic!() };
        assert_eq!(name, "lock");
    }

    #[test]
    fn let_bindings_capture_pattern_names() {
        let file = parse_src(
            "fn f() { let (a, b) = pair(); let Some(x) = opt else { return; }; let _ = drop_now(); }",
        );
        let f = first_fn(&file);
        let body = f.body.as_ref().unwrap();
        let Stmt::Let { names, .. } = &body.stmts[0] else { panic!() };
        assert_eq!(names, &["a", "b"]);
        let Stmt::Let { names, els, .. } = &body.stmts[1] else { panic!() };
        assert_eq!(names, &["x"]);
        assert!(els.is_some(), "let-else block parsed");
        let Stmt::Let { names, init, .. } = &body.stmts[2] else { panic!() };
        assert!(names.is_empty(), "`_` is not a binding");
        assert!(init.is_some());
    }

    #[test]
    fn if_let_and_while_let_bind_names() {
        let file = parse_src(
            "fn f() { if let Ok(g) = m.lock() { use_it(&g); } while let Some(v) = it.next() { v; } }",
        );
        let f = first_fn(&file);
        let body = f.body.as_ref().unwrap();
        let Stmt::Expr(Expr::IfLet { names, .. }) = &body.stmts[0] else {
            panic!("expected if-let: {:?}", body.stmts[0]);
        };
        assert_eq!(names, &["g"]);
        let Stmt::Expr(Expr::WhileLet { names, .. }) = &body.stmts[1] else { panic!() };
        assert_eq!(names, &["v"]);
    }

    #[test]
    fn turbofish_and_struct_literal() {
        let file = parse_src(
            "fn f() -> P { let v = Vec::<u64>::new(); P { x: 1, y: v.len(), ..base() } }",
        );
        let f = first_fn(&file);
        let body = f.body.as_ref().unwrap();
        let Stmt::Let { init: Some(Expr::Call { callee, .. }), .. } = &body.stmts[0] else {
            panic!("expected call init: {:?}", body.stmts[0]);
        };
        let Expr::Path { segs, .. } = callee.as_ref() else { panic!() };
        assert_eq!(segs, &["Vec", "new"], "turbofish stripped from path");
        let Stmt::Expr(Expr::StructLit { path, fields, .. }) = &body.stmts[1] else {
            panic!("expected struct literal: {:?}", body.stmts[1]);
        };
        assert_eq!(path, &["P"]);
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[2].0, "..");
    }

    #[test]
    fn match_arms_and_guards() {
        let file = parse_src(
            "fn f(x: Option<u64>) -> u64 { match x { Some(v) if v > 2 => v, Some(v) => v + 1, None => 0 } }",
        );
        let f = first_fn(&file);
        let body = f.body.as_ref().unwrap();
        let Stmt::Expr(Expr::Match { arms, .. }) = &body.stmts[0] else {
            panic!("expected match: {:?}", body.stmts[0]);
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].names, ["v"]);
        assert!(arms[0].guard.is_some());
        assert!(arms[2].names.is_empty());
    }

    #[test]
    fn impl_blocks_attribute_methods() {
        let file = parse_src(
            "impl Display for Thing { fn fmt(&self) {} }\nimpl Thing { pub fn new(seed: u64) -> Self { Self { seed } } }",
        );
        let Item::Impl(i) = &file.items[0] else { panic!() };
        assert_eq!(i.type_name, "Thing");
        assert_eq!(i.trait_name.as_deref(), Some("Display"));
        let Item::Fn(f) = &i.items[0] else { panic!() };
        assert!(f.has_self);
        let Item::Impl(i) = &file.items[1] else { panic!() };
        assert_eq!(i.type_name, "Thing");
        assert!(i.trait_name.is_none());
        let Item::Fn(f) = &i.items[0] else { panic!() };
        assert_eq!(f.name, "new");
        assert!(!f.has_self);
        assert_eq!(f.params[0].name, "seed");
    }

    #[test]
    fn closures_and_macro_args_are_walked() {
        let file = parse_src(
            "fn f() { let c = move |a, b: u64| a + b; assert_eq!(c(1, 2), g(3)); }",
        );
        let f = first_fn(&file);
        let body = f.body.as_ref().unwrap();
        let Stmt::Let { init: Some(Expr::Closure { params, .. }), .. } = &body.stmts[0] else {
            panic!("expected closure: {:?}", body.stmts[0]);
        };
        assert_eq!(params, &["a", "b"]);
        let Stmt::Expr(Expr::Macro { name, args, .. }) = &body.stmts[1] else { panic!() };
        assert_eq!(name, "assert_eq");
        assert_eq!(args.len(), 2, "macro args parsed as exprs");
    }

    #[test]
    fn confusion_is_contained() {
        // A deliberately weird region must not swallow the next fn.
        let file = parse_src(
            "fn weird() { let x = <<<; ??? }\nfn after() { ok(); }",
        );
        let names: Vec<&str> = file
            .items
            .iter()
            .filter_map(|i| if let Item::Fn(f) = i { Some(f.name.as_str()) } else { None })
            .collect();
        assert_eq!(names, ["weird", "after"]);
    }

    #[test]
    fn indexing_and_ranges() {
        let file = parse_src("fn f(v: &[u64]) -> u64 { v[0] + v[1..3].len() as u64 }");
        let f = first_fn(&file);
        let body = f.body.as_ref().unwrap();
        let mut index_count = 0;
        crate::dataflow::walk_fn(f, &mut |e| {
            if matches!(e, Expr::Index { .. }) {
                index_count += 1;
            }
        });
        assert_eq!(index_count, 2);
        assert_eq!(body.stmts.len(), 1);
    }
}

//! Heuristic workspace call graph.
//!
//! Resolution is name-based — there is no type inference — and errs
//! toward over-approximation, which is the right bias for the
//! reachability rules built on top (a spurious edge can at worst cause
//! a finding that a human reviews; a missing edge hides one):
//!
//! * `name(...)` — free-fn candidates, preferring same file, then same
//!   crate, then a unique workspace match;
//! * `Type::name(...)` / `Self::name(...)` — qualified candidates,
//!   preferring same crate;
//! * `recv.name(...)` — every method named `name`, narrowed first by a
//!   receiver hint (`self.x.m()` prefers impl types whose snake_case
//!   name contains `x`; `self.m()` prefers the caller's own impl
//!   type), then preferring same-file and same-crate candidates.
//!
//! Call sites inside `#[cfg(test)]` code are kept in the graph but
//! marked, so rules can scope to production paths.

use std::collections::HashMap;

use crate::ast::Expr;
use crate::dataflow::walk_fn;
use crate::symbols::Workspace;

/// One resolved call site.
#[derive(Debug, Clone, Copy)]
pub struct CallEdge {
    /// Callee fn index into [`Workspace::fns`].
    pub callee: usize,
    /// Token index of the call site (callee/method name token).
    pub tok: usize,
}

/// Adjacency list over [`Workspace::fns`] indices.
pub struct CallGraph {
    pub edges: Vec<Vec<CallEdge>>,
}

impl CallGraph {
    /// Builds the graph by walking every fn body.
    pub fn build(ws: &Workspace<'_>) -> Self {
        let mut by_free: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_qual: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_method: HashMap<&str, Vec<usize>> = HashMap::new();
        for (idx, f) in ws.fns.iter().enumerate() {
            match &f.self_type {
                Some(_) => {
                    by_qual.entry(f.qual.as_str()).or_default().push(idx);
                    // Associated fns without a receiver cannot be the
                    // target of `recv.name(...)` — indexing them would
                    // let `x.load(Ordering)` resolve to `Config::load`.
                    if f.node.has_self {
                        by_method.entry(f.node.name.as_str()).or_default().push(idx);
                    }
                }
                None => by_free.entry(f.qual.as_str()).or_default().push(idx),
            }
        }

        let mut edges = Vec::with_capacity(ws.fns.len());
        for caller in ws.fns.iter() {
            let mut out: Vec<CallEdge> = Vec::new();
            walk_fn(caller.node, &mut |e| {
                match e {
                    Expr::Call { callee, tok, .. } => {
                        if let Expr::Path { segs, .. } = callee.as_ref() {
                            for target in resolve_path(ws, caller, segs, &by_free, &by_qual) {
                                out.push(CallEdge { callee: target, tok: *tok });
                            }
                        }
                    }
                    Expr::MethodCall { recv, name, tok, .. } => {
                        for target in resolve_method(ws, caller, recv, name, &by_method) {
                            out.push(CallEdge { callee: target, tok: *tok });
                        }
                    }
                    _ => {}
                }
            });
            out.sort_by_key(|e| (e.callee, e.tok));
            out.dedup_by_key(|e| (e.callee, e.tok));
            edges.push(out);
        }
        CallGraph { edges }
    }

    /// BFS from `seeds`; returns for each reached fn the predecessor
    /// edge it was discovered through (`None` for seeds themselves).
    /// Traversal is in index order, so the predecessor tree — and any
    /// path reconstructed from it — is deterministic.
    pub fn reach_forward(&self, seeds: &[usize]) -> Vec<Option<(usize, usize)>> {
        let mut pred: Vec<Option<(usize, usize)>> = vec![None; self.edges.len()];
        let mut seen = vec![false; self.edges.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &s in seeds {
            if s < seen.len() && !seen[s] {
                seen[s] = true;
                queue.push(s);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let at = queue[head];
            head += 1;
            for edge in &self.edges[at] {
                if !seen[edge.callee] {
                    seen[edge.callee] = true;
                    pred[edge.callee] = Some((at, edge.tok));
                    queue.push(edge.callee);
                }
            }
        }
        // Seeds are "reached with no predecessor"; unreached nodes are
        // also None — callers disambiguate with [`CallGraph::reached`].
        pred
    }

    /// Reached-set BFS (forward).
    pub fn reached(&self, seeds: &[usize]) -> Vec<bool> {
        let mut seen = vec![false; self.edges.len()];
        let mut queue: Vec<usize> = Vec::new();
        for &s in seeds {
            if s < seen.len() && !seen[s] {
                seen[s] = true;
                queue.push(s);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let at = queue[head];
            head += 1;
            for edge in &self.edges[at] {
                if !seen[edge.callee] {
                    seen[edge.callee] = true;
                    queue.push(edge.callee);
                }
            }
        }
        seen
    }
}

/// Candidates for a path call `a::b::name(...)`.
fn resolve_path(
    ws: &Workspace<'_>,
    caller: &crate::symbols::FnEntry<'_>,
    segs: &[String],
    by_free: &HashMap<&str, Vec<usize>>,
    by_qual: &HashMap<&str, Vec<usize>>,
) -> Vec<usize> {
    if segs.is_empty() {
        return Vec::new();
    }
    let name = segs.last().map(String::as_str).unwrap_or("");
    if segs.len() == 1 {
        let Some(cands) = by_free.get(name) else { return Vec::new() };
        return prefer_near(ws, caller, cands, true);
    }
    // `Self::name` / `Type::name` / `module::name`.
    let qualifier = &segs[segs.len() - 2];
    let qualifier = if qualifier == "Self" {
        caller.self_type.clone().unwrap_or_else(|| qualifier.clone())
    } else {
        qualifier.clone()
    };
    if qualifier.chars().next().is_some_and(char::is_uppercase) {
        let key = format!("{qualifier}::{name}");
        let Some(cands) = by_qual.get(key.as_str()) else { return Vec::new() };
        return prefer_near(ws, caller, cands, false);
    }
    // Module-qualified free fn: match free fns whose file stem or crate
    // matches the qualifier.
    let Some(cands) = by_free.get(name) else { return Vec::new() };
    let scoped: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| {
            let f = ws.file_of(c);
            f.rel_path.ends_with(&format!("/{qualifier}.rs"))
                || f.rel_path.contains(&format!("/{qualifier}/"))
                || ws.fns[c].crate_name == *qualifier
                || ws.fns[c].crate_name == qualifier.replace('_', "-")
        })
        .collect();
    if scoped.is_empty() {
        prefer_near(ws, caller, cands, true)
    } else {
        scoped
    }
}

/// Candidates for `recv.name(...)`. When the receiver carries a usable
/// name hint (the trailing identifier of the receiver chain) and it
/// matches at least one candidate's impl type, resolution narrows to
/// those candidates before the proximity preference — this is what
/// keeps `self.pipeline.tick(...)` from resolving to an unrelated
/// same-crate `Client::tick`.
fn resolve_method(
    ws: &Workspace<'_>,
    caller: &crate::symbols::FnEntry<'_>,
    recv: &Expr,
    name: &str,
    by_method: &HashMap<&str, Vec<usize>>,
) -> Vec<usize> {
    let Some(cands) = by_method.get(name) else { return Vec::new() };
    if let Some(hint) = recv_hint(recv) {
        let hinted: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| {
                ws.fns[c].self_type.as_deref().is_some_and(|ty| {
                    if hint == "self" {
                        caller.self_type.as_deref() == Some(ty)
                    } else {
                        hint_matches(hint, ty)
                    }
                })
            })
            .collect();
        if !hinted.is_empty() {
            return prefer_near(ws, caller, &hinted, false);
        }
    }
    prefer_near(ws, caller, cands, false)
}

/// Trailing identifier of a receiver chain: the variable, field, or
/// accessor name the method is invoked on, seen through `?`, unary
/// operators, and casts.
fn recv_hint(e: &Expr) -> Option<&str> {
    match e {
        Expr::Path { segs, .. } => segs.last().map(String::as_str),
        Expr::Field { name, .. } | Expr::MethodCall { name, .. } => Some(name),
        Expr::Try { inner } | Expr::Unary { inner } | Expr::Cast { inner } => recv_hint(inner),
        Expr::Call { callee, .. } => recv_hint(callee),
        _ => None,
    }
}

/// Whether a receiver identifier plausibly names a value of type `ty`:
/// it equals the type's snake_case rendering or one of its `_`-split
/// segments (`pipeline` matches `OnlinePipeline`).
fn hint_matches(hint: &str, ty: &str) -> bool {
    if hint.is_empty() || !hint.chars().next().is_some_and(|c| c.is_ascii_lowercase()) {
        return false;
    }
    let snake = snake_case(ty);
    snake == hint || snake.split('_').any(|seg| seg == hint)
}

/// `OnlinePipeline` → `online_pipeline`.
fn snake_case(ty: &str) -> String {
    let mut out = String::with_capacity(ty.len() + 4);
    for (i, c) in ty.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Narrows candidates to same file, else same crate, else — when
/// `unique_only` — a single workspace-wide match, else all of them.
fn prefer_near(
    ws: &Workspace<'_>,
    caller: &crate::symbols::FnEntry<'_>,
    cands: &[usize],
    unique_only: bool,
) -> Vec<usize> {
    let same_file: Vec<usize> =
        cands.iter().copied().filter(|&c| ws.fns[c].file == caller.file).collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&c| ws.fns[c].crate_name == caller.crate_name)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    if unique_only && cands.len() > 1 {
        return Vec::new();
    }
    cands.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hints_match_snake_case_segments() {
        assert!(hint_matches("pipeline", "OnlinePipeline"));
        assert!(hint_matches("client", "Client"));
        assert!(hint_matches("online_pipeline", "OnlinePipeline"));
        assert!(!hint_matches("svc", "Service"), "abbreviations do not narrow");
        assert!(!hint_matches("Service", "Service"), "uppercase hints are paths, not values");
        assert_eq!(snake_case("LpSolver"), "lp_solver");
        assert_eq!(snake_case("Client"), "client");
    }
}

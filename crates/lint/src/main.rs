//! `harmony-lint` CLI.
//!
//! ```text
//! harmony-lint [--deny] [--rule <id>]... [--root <dir>] [--list-rules]
//!              [--json] [--json-out <path>] [--changed-only <git-ref>]
//!              [--no-cache] [--workers <n>]
//! ```
//!
//! Walks the workspace, runs every rule (or only the `--rule`
//! selections), prints findings as `file:line:col [rule-id] message`
//! (or versioned JSON with `--json`), and exits non-zero under
//! `--deny` when any finding survives the `lint.toml` allowlist.
//! `--changed-only <ref>` restricts *reporting* to files changed since
//! the git ref — interprocedural analysis still sees the whole
//! workspace. Per-file results are cached under `target/` keyed on
//! content hash; `--no-cache` forces a cold run. Without `--root` the
//! workspace is discovered by walking up from the current directory to
//! the first `Cargo.toml` with a `[workspace]` table.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut rules_filter: Vec<String> = Vec::new();
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut json_out: Option<PathBuf> = None;
    let mut changed_only: Option<String> = None;
    let mut use_cache = true;
    let mut workers: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--no-cache" => use_cache = false,
            "--rule" => match args.next() {
                Some(id) => rules_filter.push(id),
                None => return usage("--rule needs a rule id"),
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--json-out" => match args.next() {
                Some(path) => json_out = Some(PathBuf::from(path)),
                None => return usage("--json-out needs a file path"),
            },
            "--changed-only" => match args.next() {
                Some(reference) => changed_only = Some(reference),
                None => return usage("--changed-only needs a git ref"),
            },
            "--workers" => match args.next().as_deref().map(str::parse) {
                Some(Ok(n)) => workers = Some(n),
                _ => return usage("--workers needs a number"),
            },
            "--list-rules" => {
                for rule in harmony_lint::rules::all() {
                    println!("{:<28} {}", rule.id(), rule.describe());
                }
                for rule in harmony_lint::rules::workspace() {
                    println!("{:<28} {}", rule.id(), rule.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let known = harmony_lint::rules::known_ids();
    for id in &rules_filter {
        if !known.contains(&id.as_str()) {
            eprintln!("harmony-lint: unknown rule `{id}` (see --list-rules)");
            return ExitCode::FAILURE;
        }
    }

    let root = match root.or_else(discover_root) {
        Some(dir) => dir,
        None => {
            eprintln!(
                "harmony-lint: no workspace Cargo.toml found above the current \
                 directory; pass --root"
            );
            return ExitCode::FAILURE;
        }
    };

    let filter = if rules_filter.is_empty() { None } else { Some(rules_filter.as_slice()) };
    let opts = harmony_lint::Options {
        rule_filter: filter,
        use_cache,
        changed_only,
        workers,
    };
    let report = match harmony_lint::run_with(&root, &opts) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("harmony-lint: {message}");
            return ExitCode::FAILURE;
        }
    };

    let rendered = harmony_lint::json::render(&report);
    if let Some(path) = &json_out {
        if let Err(e) = std::fs::write(path, &rendered) {
            eprintln!("harmony-lint: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if json {
        print!("{rendered}");
    } else {
        for finding in &report.findings {
            println!("{finding}");
        }
        eprintln!(
            "harmony-lint: {} finding(s), {} allowed by lint.toml, {} file(s) scanned \
             ({} from cache)",
            report.findings.len(),
            report.allowed,
            report.files,
            report.cached
        );
    }
    if deny && !report.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Nearest ancestor (of the current directory) whose `Cargo.toml`
/// declares a `[workspace]`; falls back to the lint crate's own
/// grandparent so `cargo run -p harmony-lint` works from anywhere in
/// the tree.
fn discover_root() -> Option<PathBuf> {
    let cwd = std::env::current_dir().ok()?;
    for dir in cwd.ancestors() {
        if is_workspace_root(dir) {
            return Some(dir.to_owned());
        }
    }
    let fallback = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    is_workspace_root(&fallback).then_some(fallback)
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .is_ok_and(|s| s.contains("[workspace]"))
}

fn usage(error: &str) -> ExitCode {
    if !error.is_empty() {
        eprintln!("harmony-lint: {error}");
    }
    eprintln!(
        "usage: harmony-lint [--deny] [--rule <id>]... [--root <dir>] [--list-rules]\n\
         \x20                  [--json] [--json-out <path>] [--changed-only <git-ref>]\n\
         \x20                  [--no-cache] [--workers <n>]"
    );
    if error.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! File model and rule driver.
//!
//! The engine lexes each source file once, derives token-level masks —
//! which tokens sit inside `#[cfg(test)]` items, which sit under a
//! scoped `#[allow(...)]` — parses the token stream into the
//! lightweight AST ([`crate::parser`]), and drives two rule tiers:
//!
//! * per-file [`crate::rules::Rule`]s run in a deterministic parallel
//!   pass over files (fan-out via `harmony::par`, results merged in
//!   index order) and are cached keyed on content hash
//!   ([`crate::cache`]);
//! * workspace [`crate::rules::WsRule`]s run once over the symbol
//!   table ([`crate::symbols`]) and call graph ([`crate::callgraph`])
//!   built from every parsed file, and are never cached.
//!
//! Findings come back as `file:line:col [rule-id] message`, or as
//! versioned JSON via [`crate::json`].

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use crate::cache::{fnv1a, Cache};
use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::lexer::{lex, Token, TokenKind};
use crate::parser;
use crate::rules::{self, DriftData};
use crate::symbols::{ParsedFile, Workspace};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{} [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// How a file participates in the build — rules scope on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code (`crates/*/src`, outside `src/bin`).
    Lib,
    /// Binary code (`src/bin/*`, `src/main.rs`).
    Bin,
    /// Integration tests (`crates/*/tests`, top-level `tests/`).
    Test,
    /// Examples.
    Example,
}

/// A lexed file plus the per-token region masks rules consume.
pub struct FileModel {
    pub tokens: Vec<Token>,
    /// Token is inside a `#[cfg(test)]` item (or the file is a test).
    pub in_test: Vec<bool>,
    /// Scoped `#[allow(...)]` regions: token index range + lint names.
    pub allows: Vec<AllowRegion>,
}

#[derive(Debug)]
pub struct AllowRegion {
    pub start: usize,
    pub end: usize,
    pub lints: Vec<String>,
}

impl FileModel {
    /// True when `#[allow(<lint>)]` covers token `idx`.
    pub fn allowed(&self, idx: usize, lint: &str) -> bool {
        self.allows
            .iter()
            .any(|r| idx >= r.start && idx < r.end && r.lints.iter().any(|l| l == lint))
    }
}

/// Everything a per-file rule sees about one file.
pub struct Ctx<'a> {
    pub rel_path: &'a str,
    pub kind: FileKind,
    pub model: &'a FileModel,
    pub ast: &'a crate::ast::File,
    pub drift: &'a DriftData,
}

/// Builds the file model: lex, then walk attributes to mark
/// `#[cfg(test)]` items and scoped allows.
pub fn build_model(src: &str, kind: FileKind) -> FileModel {
    let tokens = lex(src);
    let n = tokens.len();
    let mut in_test = vec![kind == FileKind::Test; n];
    let mut allows = Vec::new();

    let mut i = 0usize;
    let mut pending_test = false;
    let mut pending_lints: Vec<String> = Vec::new();
    let mut pending_start: Option<usize> = None;
    while i < n {
        if tokens[i].is_punct('#') {
            let bang = i + 1 < n && tokens[i + 1].is_punct('!');
            let open = i + 1 + usize::from(bang);
            if open < n && tokens[open].is_punct('[') {
                let close = matching_bracket(&tokens, open);
                let attr = &tokens[open + 1..close.min(n)];
                if !bang {
                    pending_start.get_or_insert(i);
                    if is_cfg_test(attr) {
                        pending_test = true;
                    }
                    pending_lints.extend(allow_lints(attr));
                } else if is_cfg_test(attr) {
                    // `#![cfg(test)]`: the whole file is test code.
                    in_test.iter_mut().for_each(|t| *t = true);
                }
                i = close.saturating_add(1);
                continue;
            }
        }
        if pending_test || !pending_lints.is_empty() {
            let start = pending_start.unwrap_or(i);
            let end = item_end(&tokens, i);
            if pending_test {
                for t in in_test.iter_mut().take(end.min(n)).skip(start) {
                    *t = true;
                }
            }
            if !pending_lints.is_empty() {
                allows.push(AllowRegion {
                    start,
                    end,
                    lints: std::mem::take(&mut pending_lints),
                });
            }
            pending_test = false;
            pending_start = None;
            // Do not skip to `end`: nested attributes inside the item
            // must be processed too.
        } else {
            pending_start = None;
        }
        i += 1;
    }

    FileModel { tokens, in_test, allows }
}

/// Index of the `]` matching the `[` at `open` (or the stream end).
fn matching_bracket(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

/// End (exclusive token index) of the item starting at `i`: the first
/// `;` at depth zero, or the `}` closing the first top-level brace.
fn item_end(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(i) {
        match t.kind {
            TokenKind::Punct('(' | '[' | '{') => depth += 1,
            TokenKind::Punct(')' | ']') => depth -= 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            TokenKind::Punct(';') if depth == 0 => return k + 1,
            _ => {}
        }
    }
    tokens.len()
}

/// `cfg(...)` mentioning `test` (and not negated via `not`).
fn is_cfg_test(attr: &[Token]) -> bool {
    if attr.first().and_then(Token::ident) != Some("cfg") {
        return false;
    }
    let mut saw_test = false;
    let mut saw_not = false;
    for t in attr {
        match t.ident() {
            Some("test") => saw_test = true,
            Some("not") => saw_not = true,
            _ => {}
        }
    }
    saw_test && !saw_not
}

/// Lint paths named by an `allow(...)` attribute, joined with `::`.
fn allow_lints(attr: &[Token]) -> Vec<String> {
    if attr.first().and_then(Token::ident) != Some("allow") {
        return Vec::new();
    }
    let mut lints = Vec::new();
    let mut current = String::new();
    for t in &attr[1..] {
        match &t.kind {
            TokenKind::Ident(name) => {
                if !current.is_empty() && !current.ends_with("::") {
                    current.push_str("::");
                }
                current.push_str(name);
            }
            TokenKind::Punct(':') => {}
            TokenKind::Punct(',' | ')') if !current.is_empty() => {
                lints.push(std::mem::take(&mut current));
            }
            _ => {}
        }
    }
    if !current.is_empty() {
        lints.push(current);
    }
    lints
}

/// Classifies a workspace-relative path.
pub fn classify(rel_path: &str) -> FileKind {
    if rel_path.contains("/src/bin/") || rel_path.ends_with("src/main.rs") {
        FileKind::Bin
    } else if rel_path.starts_with("examples/") || rel_path.contains("/examples/") {
        FileKind::Example
    } else if rel_path.starts_with("tests/")
        || rel_path.contains("/tests/")
        || rel_path.contains("/benches/")
    {
        FileKind::Test
    } else {
        FileKind::Lib
    }
}

/// Parses one file into the model + AST pair the rule tiers share.
pub fn parse_file(rel_path: &str, src: &str) -> ParsedFile {
    let kind = classify(rel_path);
    let model = build_model(src, kind);
    let ast = parser::parse(&model.tokens);
    ParsedFile { rel_path: rel_path.to_owned(), kind, model, ast }
}

/// Runs the per-file rules over one already-parsed file.
fn check_local(pf: &ParsedFile, drift: &DriftData, rule_filter: Option<&[String]>) -> Vec<Finding> {
    let ctx = Ctx {
        rel_path: &pf.rel_path,
        kind: pf.kind,
        model: &pf.model,
        ast: &pf.ast,
        drift,
    };
    let mut findings = Vec::new();
    for rule in rules::all() {
        if let Some(filter) = rule_filter {
            if !filter.iter().any(|f| f == rule.id()) {
                continue;
            }
        }
        rule.check(&ctx, &mut findings);
    }
    findings
}

/// Runs the workspace rules over a parsed file set.
fn check_workspace(
    files: &[ParsedFile],
    rule_filter: Option<&[String]>,
    out: &mut Vec<Finding>,
) {
    let ws = Workspace::build(files);
    let graph = CallGraph::build(&ws);
    for rule in rules::workspace() {
        if let Some(filter) = rule_filter {
            if !filter.iter().any(|f| f == rule.id()) {
                continue;
            }
        }
        rule.check(&ws, &graph, out);
    }
}

/// Runs every (filtered) rule — both tiers — over one file's source
/// text. The workspace tier sees a one-file workspace, which is how
/// the fixture goldens exercise the interprocedural families.
pub fn check_source(
    rel_path: &str,
    src: &str,
    drift: &DriftData,
    rule_filter: Option<&[String]>,
) -> Vec<Finding> {
    let pf = parse_file(rel_path, src);
    let mut findings = check_local(&pf, drift, rule_filter);
    let files = [pf];
    check_workspace(&files, rule_filter, &mut findings);
    findings
}

/// The result of a full workspace run.
pub struct Report {
    /// Findings that survived the allowlist, sorted by location.
    pub findings: Vec<Finding>,
    /// Findings suppressed by `lint.toml`.
    pub allowed: usize,
    /// Files scanned.
    pub files: usize,
    /// Files whose per-file findings came from the cache.
    pub cached: usize,
}

/// Knobs for a workspace run.
#[derive(Default)]
pub struct Options<'a> {
    /// Run only these rule ids (both tiers filter on it).
    pub rule_filter: Option<&'a [String]>,
    /// Read/write `target/lint-cache.tsv`. Forced off whenever a rule
    /// filter is active, so partial runs can never poison the store.
    pub use_cache: bool,
    /// Report only findings in files changed since this git ref
    /// (workspace analysis still sees every file).
    pub changed_only: Option<String>,
    /// Worker-thread override for the parallel file pass.
    pub workers: Option<usize>,
}

/// Walks the workspace at `root` and runs all rules (no cache, no
/// change filter — the hermetic library entry point).
///
/// # Errors
///
/// Returns a message when the root is not a workspace, `lint.toml` is
/// malformed, or the telemetry key registry cannot be read.
pub fn run(root: &Path, rule_filter: Option<&[String]>) -> Result<Report, String> {
    run_with(root, &Options { rule_filter, ..Options::default() })
}

/// Walks the workspace at `root` and runs all rules with full control
/// over caching, change filtering, and parallelism.
///
/// # Errors
///
/// Returns a message when the root is not a workspace, `lint.toml` is
/// malformed, the telemetry key registry cannot be read, or
/// `changed_only` is set and `git diff` fails.
pub fn run_with(root: &Path, opts: &Options<'_>) -> Result<Report, String> {
    let config = Config::load(&root.join("lint.toml"))?;
    let drift = rules::DriftData::load(root)?;
    let mut files = collect_files(root)?;
    files.sort();
    let changed = match &opts.changed_only {
        Some(reference) => Some(changed_set(root, reference)?),
        None => None,
    };

    let caching = opts.use_cache && opts.rule_filter.is_none();
    let cache = if caching { Cache::load(root) } else { Cache::default() };

    // Parallel per-file pass: lex + parse + local rules (or cache hit).
    // `map_indexed` merges in index order, so the pass is bit-identical
    // to a serial walk at any worker count.
    struct FileResult {
        parsed: ParsedFile,
        src: String,
        hash: u64,
        local: Vec<Finding>,
        from_cache: bool,
    }
    let jobs = files.len();
    let workers = harmony::par::effective_workers(opts.workers, jobs);
    let results: Vec<FileResult> = harmony::par::map_indexed(jobs, workers, |i| {
        let path = &files[i];
        let src = fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = rel_path(root, path);
        let parsed = parse_file(&rel, &src);
        let hash = fnv1a(src.as_bytes());
        let (local, from_cache) = match cache.lookup(&rel, hash) {
            Some(hit) => (hit.to_vec(), true),
            None => (check_local(&parsed, &drift, opts.rule_filter), false),
        };
        Ok::<_, String>(FileResult { parsed, src, hash, local, from_cache })
    })?;

    let cached = results.iter().filter(|r| r.from_cache).count();
    if caching {
        let store: Vec<(String, u64, Vec<Finding>)> = results
            .iter()
            .map(|r| (r.parsed.rel_path.clone(), r.hash, r.local.clone()))
            .collect();
        Cache::save(root, &store);
    }

    let mut findings: Vec<(Finding, String)> = Vec::new();
    let mut srcs: Vec<String> = Vec::with_capacity(results.len());
    let mut parsed_files: Vec<ParsedFile> = Vec::with_capacity(results.len());
    for r in results {
        for mut f in r.local {
            f.path = r.parsed.rel_path.clone();
            let line_text = src_line(&r.src, f.line);
            findings.push((f, line_text));
        }
        srcs.push(r.src);
        parsed_files.push(r.parsed);
    }

    // Workspace tier: symbol table + call graph over every parsed file.
    let mut ws_findings = Vec::new();
    check_workspace(&parsed_files, opts.rule_filter, &mut ws_findings);
    for f in ws_findings {
        let line_text = parsed_files
            .iter()
            .position(|p| p.rel_path == f.path)
            .map(|i| src_line(&srcs[i], f.line))
            .unwrap_or_default();
        findings.push((f, line_text));
    }

    // Workspace-level drift checks (registry duplicates, undocumented
    // keys) are attributed to the registry file itself.
    if opts
        .rule_filter
        .is_none_or(|f| f.iter().any(|r| r == rules::METRIC_NAME_DRIFT))
    {
        for f in rules::registry_findings(&drift) {
            findings.push((f, String::new()));
        }
    }

    let mut used = vec![0usize; config.allows.len()];
    let mut kept = Vec::new();
    let mut allowed = 0usize;
    for (finding, line_text) in findings {
        match config.matching_allow(&finding, &line_text) {
            Some(idx) => {
                used[idx] += 1;
                allowed += 1;
            }
            None => kept.push(finding),
        }
    }
    // Stale allows are findings themselves — but only on unfiltered
    // runs, where every rule had the chance to use them.
    if opts.rule_filter.is_none() {
        for (idx, count) in used.iter().enumerate() {
            if *count == 0 {
                kept.push(Finding {
                    path: "lint.toml".to_owned(),
                    line: config.allows[idx].line,
                    col: 1,
                    rule: "unused-allow",
                    message: format!(
                        "allow for rule `{}` on `{}` matched nothing; remove it",
                        config.allows[idx].rule, config.allows[idx].path
                    ),
                });
            }
        }
    }
    if let Some(changed) = &changed {
        kept.retain(|f| changed.contains(&f.path));
    }
    kept.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(Report { findings: kept, allowed, files: jobs, cached })
}

/// Workspace-relative paths changed since `reference`, plus untracked
/// files — the view a reviewer of that diff cares about.
fn changed_set(root: &Path, reference: &str) -> Result<BTreeSet<String>, String> {
    let mut out = BTreeSet::new();
    for args in [
        vec!["diff", "--name-only", reference],
        vec!["ls-files", "--others", "--exclude-standard"],
    ] {
        let run = Command::new("git")
            .args(&args)
            .current_dir(root)
            .output()
            .map_err(|e| format!("git {}: {e}", args.join(" ")))?;
        if !run.status.success() {
            return Err(format!(
                "git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&run.stderr).trim()
            ));
        }
        for line in String::from_utf8_lossy(&run.stdout).lines() {
            let line = line.trim();
            if !line.is_empty() {
                out.insert(line.replace('\\', "/"));
            }
        }
    }
    Ok(out)
}

fn src_line(src: &str, line: u32) -> String {
    src.lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .to_owned()
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Every workspace `.rs` file in scope: `crates/**`, top-level `tests/`
/// and `examples/`. Vendored stand-ins and the lint fixture corpus
/// (deliberate violations) are excluded.
fn collect_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "{} has no crates/ directory — pass the workspace root via --root",
            root.display()
        ));
    }
    let mut out = Vec::new();
    walk(&crates_dir, &mut out)?;
    for top in ["tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.retain(|p| {
        let rel = rel_path(root, p);
        !rel.starts_with("crates/lint/tests/fixtures/")
    });
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_items_are_masked() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn b() { y.unwrap(); } }";
        let model = build_model(src, FileKind::Lib);
        let unwraps: Vec<(usize, bool)> = model
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.ident() == Some("unwrap"))
            .map(|(i, _)| (i, model.in_test[i]))
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unwraps[0].1, "lib unwrap must not be test-masked");
        assert!(unwraps[1].1, "test-mod unwrap must be test-masked");
    }

    #[test]
    fn allow_attribute_scopes_to_the_next_item() {
        let src = "#[allow(clippy::unwrap_used)]\nfn a() { x.unwrap(); }\nfn b() { y.unwrap(); }";
        let model = build_model(src, FileKind::Lib);
        let unwraps: Vec<usize> = model
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.ident() == Some("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert!(model.allowed(unwraps[0], "clippy::unwrap_used"));
        assert!(!model.allowed(unwraps[1], "clippy::unwrap_used"));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn a() { x.unwrap(); }";
        let model = build_model(src, FileKind::Lib);
        assert!(model.in_test.iter().all(|t| !t));
    }

    #[test]
    fn classify_kinds() {
        assert_eq!(classify("crates/core/src/cbs.rs"), FileKind::Lib);
        assert_eq!(classify("crates/server/src/bin/harmonyd.rs"), FileKind::Bin);
        assert_eq!(classify("crates/sim/tests/determinism.rs"), FileKind::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileKind::Example);
        assert_eq!(classify("tests/end_to_end.rs"), FileKind::Test);
    }
}

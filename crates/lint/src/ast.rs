//! Lightweight AST for the static-analysis pass.
//!
//! The tree is deliberately smaller than rustc's: it keeps exactly what
//! the rule families need — items, fn signatures, blocks, let-bindings,
//! calls, method chains, and enough control flow to walk every
//! expression — and collapses everything else into [`Expr::Unknown`].
//! Every node carries the index of a representative token in the lexed
//! stream, so rules can map nodes back to line/col and to the
//! [`crate::engine::FileModel`] masks (`in_test`, scoped allows)
//! without a separate span table.

/// Token index range `[start, end)` into the lexed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

/// A parsed source file: the flat list of top-level items.
#[derive(Debug, Default)]
pub struct File {
    pub items: Vec<Item>,
}

/// A top-level or nested item.
#[derive(Debug)]
pub enum Item {
    Fn(Fn),
    Impl(Impl),
    Mod(Mod),
    /// Anything the walker does not model (use, struct, enum, const,
    /// trait declarations without default bodies, macros, ...).
    Other { span: Span },
}

/// A function item (free fn, method, or associated fn).
#[derive(Debug)]
pub struct Fn {
    pub name: String,
    pub is_pub: bool,
    /// `self`, `&self`, `&mut self` receiver present.
    pub has_self: bool,
    pub params: Vec<Param>,
    /// Raw return-type text (token texts joined by spaces), `""` if none.
    pub ret: String,
    /// `None` for trait method declarations without a default body.
    pub body: Option<Block>,
    pub span: Span,
    /// Token index of the fn name.
    pub tok: usize,
}

/// One non-self parameter: binding name and raw type text.
#[derive(Debug)]
pub struct Param {
    pub name: String,
    pub ty: String,
}

/// An `impl` block; `type_name` is the last path segment of the self
/// type, `trait_name` the last segment of the implemented trait.
#[derive(Debug)]
pub struct Impl {
    pub type_name: String,
    pub trait_name: Option<String>,
    pub items: Vec<Item>,
    pub span: Span,
}

/// An inline `mod name { ... }`.
#[derive(Debug)]
pub struct Mod {
    pub name: String,
    pub items: Vec<Item>,
    pub span: Span,
}

/// A `{ ... }` block.
#[derive(Debug)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub span: Span,
}

/// A statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let <pat> = <init> [else { .. }];` — `names` are the
    /// lowercase-initial binding idents of the pattern.
    Let { names: Vec<String>, init: Option<Expr>, els: Option<Block>, tok: usize },
    Expr(Expr),
    Item(Item),
}

/// An expression. `tok` fields point at the token most useful for
/// reporting (the callee name for calls, the method name for method
/// calls, the opening bracket for indexing).
#[derive(Debug)]
pub enum Expr {
    /// `a::b::c` (turbofish stripped). Single-segment paths are plain
    /// variable references.
    Path { segs: Vec<String>, tok: usize },
    /// String/char/number literal, or `true`/`false`.
    Lit { tok: usize },
    /// `callee(args)` where callee is usually a path.
    Call { callee: Box<Expr>, args: Vec<Expr>, tok: usize },
    /// `recv.name(args)`; `tok` is the method-name token.
    MethodCall { recv: Box<Expr>, name: String, args: Vec<Expr>, tok: usize },
    /// `base.name` (also `.await`, numeric tuple fields).
    Field { base: Box<Expr>, name: String, tok: usize },
    /// `base[index]`; `tok` is the `[` token.
    Index { base: Box<Expr>, index: Box<Expr>, tok: usize },
    /// `inner?`
    Try { inner: Box<Expr> },
    /// `&x`, `&mut x`, `*x`, `-x`, `!x`.
    Unary { inner: Box<Expr> },
    /// Any binary operator chain member.
    Binary { lhs: Box<Expr>, rhs: Box<Expr> },
    /// `lhs = rhs` (and compound assignment).
    Assign { lhs: Box<Expr>, rhs: Box<Expr> },
    Block(Block),
    If { cond: Box<Expr>, then: Block, els: Option<Box<Expr>> },
    /// `if let <pat> = value { then } else ...` — `names` binds in `then`.
    IfLet { names: Vec<String>, value: Box<Expr>, then: Block, els: Option<Box<Expr>> },
    Match { scrutinee: Box<Expr>, arms: Vec<Arm> },
    Loop { body: Block },
    While { cond: Box<Expr>, body: Block },
    /// `while let <pat> = value { body }` — `names` binds in `body`.
    WhileLet { names: Vec<String>, value: Box<Expr>, body: Block },
    For { names: Vec<String>, iter: Box<Expr>, body: Block },
    /// `|params| body` / `move |params| body`.
    Closure { params: Vec<String>, body: Box<Expr> },
    /// `name!(args)` — args parsed best-effort as comma-separated exprs.
    Macro { name: String, args: Vec<Expr>, tok: usize },
    /// `Path { field: expr, .. }`.
    StructLit { path: Vec<String>, fields: Vec<(String, Expr)>, tok: usize },
    /// `(a, b, ...)`; also used for parenthesized groups of arity 1.
    Tuple { items: Vec<Expr> },
    /// `[a, b, ...]` / `[x; n]`.
    Array { items: Vec<Expr> },
    Return { inner: Option<Box<Expr>> },
    /// `break` / `continue` (label and value dropped into `inner`).
    Jump { inner: Option<Box<Expr>> },
    /// `lo..hi` / `lo..=hi` with either side optional.
    Range { lo: Option<Box<Expr>>, hi: Option<Box<Expr>> },
    /// `inner as Type` (type dropped).
    Cast { inner: Box<Expr> },
    /// Anything the parser gave up on; `span` covers the skipped tokens.
    Unknown { span: Span },
}

/// One match arm: pattern binding names, optional guard, body. `pat`
/// is the token range of the raw pattern, for rules that need to see
/// constructor names the binding-name scan drops (`Err`, `Value::Null`).
#[derive(Debug)]
pub struct Arm {
    pub names: Vec<String>,
    pub pat: Span,
    pub guard: Option<Expr>,
    pub body: Expr,
}

impl Expr {
    /// A representative token index for reporting, if the node has one.
    pub fn tok(&self) -> Option<usize> {
        match self {
            Expr::Path { tok, .. }
            | Expr::Lit { tok }
            | Expr::Call { tok, .. }
            | Expr::MethodCall { tok, .. }
            | Expr::Field { tok, .. }
            | Expr::Index { tok, .. }
            | Expr::Macro { tok, .. }
            | Expr::StructLit { tok, .. } => Some(*tok),
            Expr::Try { inner } | Expr::Unary { inner } | Expr::Cast { inner } => inner.tok(),
            Expr::Binary { lhs, .. } | Expr::Assign { lhs, .. } => lhs.tok(),
            Expr::Unknown { span } => Some(span.start),
            _ => None,
        }
    }
}

/// Walks every item in a file, recursing into mods and impls.
pub fn walk_items<'a>(items: &'a [Item], f: &mut dyn FnMut(&'a Item)) {
    for item in items {
        f(item);
        match item {
            Item::Impl(i) => walk_items(&i.items, f),
            Item::Mod(m) => walk_items(&m.items, f),
            _ => {}
        }
    }
}

//! Workspace symbol table: every fn, with enough context to resolve
//! calls heuristically.
//!
//! The table is built from the parsed ASTs of every file in one pass.
//! Each fn gets a dense index (its position in [`Workspace::fns`]),
//! which the call graph uses as node id.

use crate::ast::{self, Fn, Item};
use crate::engine::{FileKind, FileModel};

/// One parsed source file plus its token-level masks.
pub struct ParsedFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    pub kind: FileKind,
    pub model: FileModel,
    pub ast: ast::File,
}

/// A fn in the workspace: identity plus scope facts.
pub struct FnEntry<'a> {
    /// Index into the files slice the fn came from.
    pub file: usize,
    /// `Type::name` for methods/assoc fns, plain `name` for free fns.
    pub qual: String,
    /// Enclosing impl's self type, if any.
    pub self_type: Option<String>,
    /// Crate directory name (`server` for `crates/server/src/...`),
    /// or the top-level dir (`tests`, `examples`) outside `crates/`.
    pub crate_name: String,
    pub in_test: bool,
    pub node: &'a Fn,
}

/// The full workspace: files and the flat fn table.
pub struct Workspace<'a> {
    pub files: &'a [ParsedFile],
    pub fns: Vec<FnEntry<'a>>,
}

impl<'a> Workspace<'a> {
    /// Builds the symbol table over already-parsed files.
    pub fn build(files: &'a [ParsedFile]) -> Self {
        let mut fns = Vec::new();
        for (file_idx, pf) in files.iter().enumerate() {
            let crate_name = crate_of(&pf.rel_path);
            collect(&pf.ast.items, None, &mut |self_type, f| {
                let qual = match self_type {
                    Some(t) => format!("{t}::{}", f.name),
                    None => f.name.clone(),
                };
                let in_test = pf.kind == FileKind::Test
                    || pf.model.in_test.get(f.tok).copied().unwrap_or(false);
                fns.push(FnEntry {
                    file: file_idx,
                    qual,
                    self_type: self_type.map(str::to_owned),
                    crate_name: crate_name.clone(),
                    in_test,
                    node: f,
                });
            });
        }
        Workspace { files, fns }
    }

    /// The file a fn lives in.
    pub fn file_of(&self, fn_idx: usize) -> &ParsedFile {
        &self.files[self.fns[fn_idx].file]
    }
}

/// Walks items recursively, tracking the enclosing impl type.
fn collect<'a>(
    items: &'a [Item],
    self_type: Option<&str>,
    f: &mut impl FnMut(Option<&str>, &'a Fn),
) {
    for item in items {
        match item {
            Item::Fn(func) => f(self_type, func),
            Item::Impl(i) => collect(&i.items, Some(&i.type_name), f),
            Item::Mod(m) => collect(&m.items, self_type, f),
            Item::Other { .. } => {}
        }
    }
}

/// Crate directory of a workspace-relative path.
pub fn crate_of(rel_path: &str) -> String {
    let mut parts = rel_path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("").to_owned(),
        Some(top) => top.to_owned(),
        None => String::new(),
    }
}

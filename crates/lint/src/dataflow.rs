//! Shared dataflow utilities: expression visitors and structural
//! fingerprints.
//!
//! The rule families walk fn bodies in evaluation-ish order (pre-order
//! over the tree, statements in sequence), which is enough for the
//! flow-sensitive facts they track — guard liveness and seed taint are
//! both "has X happened textually before Y in this body" properties at
//! the precision this linter aims for.

use crate::ast::{Arm, Block, Expr, Fn, Item, Stmt};
use crate::lexer::{Token, TokenKind};

/// Pre-order walk of every expression in a fn body (including nested
/// items' bodies — a helper fn defined inside a fn is walked too).
pub fn walk_fn<'a>(f: &'a Fn, cb: &mut impl FnMut(&'a Expr)) {
    if let Some(body) = &f.body {
        walk_block(body, cb);
    }
}

/// Pre-order walk of every expression in a block.
pub fn walk_block<'a>(b: &'a Block, cb: &mut impl FnMut(&'a Expr)) {
    for stmt in &b.stmts {
        walk_stmt(stmt, cb);
    }
}

/// Pre-order walk of one statement.
pub fn walk_stmt<'a>(stmt: &'a Stmt, cb: &mut impl FnMut(&'a Expr)) {
    match stmt {
        Stmt::Let { init, els, .. } => {
            if let Some(e) = init {
                walk_expr(e, cb);
            }
            if let Some(b) = els {
                walk_block(b, cb);
            }
        }
        Stmt::Expr(e) => walk_expr(e, cb),
        Stmt::Item(item) => walk_item(item, cb),
    }
}

fn walk_item<'a>(item: &'a Item, cb: &mut impl FnMut(&'a Expr)) {
    match item {
        Item::Fn(f) => walk_fn(f, cb),
        Item::Impl(i) => i.items.iter().for_each(|it| walk_item(it, cb)),
        Item::Mod(m) => m.items.iter().for_each(|it| walk_item(it, cb)),
        Item::Other { .. } => {}
    }
}

/// Pre-order walk of an expression tree.
pub fn walk_expr<'a>(e: &'a Expr, cb: &mut impl FnMut(&'a Expr)) {
    cb(e);
    match e {
        Expr::Path { .. } | Expr::Lit { .. } | Expr::Unknown { .. } => {}
        Expr::Call { callee, args, .. } => {
            walk_expr(callee, cb);
            args.iter().for_each(|a| walk_expr(a, cb));
        }
        Expr::MethodCall { recv, args, .. } => {
            walk_expr(recv, cb);
            args.iter().for_each(|a| walk_expr(a, cb));
        }
        Expr::Field { base, .. } => walk_expr(base, cb),
        Expr::Index { base, index, .. } => {
            walk_expr(base, cb);
            walk_expr(index, cb);
        }
        Expr::Try { inner } | Expr::Unary { inner } | Expr::Cast { inner } => walk_expr(inner, cb),
        Expr::Binary { lhs, rhs } | Expr::Assign { lhs, rhs } => {
            walk_expr(lhs, cb);
            walk_expr(rhs, cb);
        }
        Expr::Block(b) => walk_block(b, cb),
        Expr::If { cond, then, els } => {
            walk_expr(cond, cb);
            walk_block(then, cb);
            if let Some(e) = els {
                walk_expr(e, cb);
            }
        }
        Expr::IfLet { value, then, els, .. } => {
            walk_expr(value, cb);
            walk_block(then, cb);
            if let Some(e) = els {
                walk_expr(e, cb);
            }
        }
        Expr::Match { scrutinee, arms } => {
            walk_expr(scrutinee, cb);
            for Arm { guard, body, .. } in arms {
                if let Some(g) = guard {
                    walk_expr(g, cb);
                }
                walk_expr(body, cb);
            }
        }
        Expr::Loop { body } => walk_block(body, cb),
        Expr::While { cond, body } => {
            walk_expr(cond, cb);
            walk_block(body, cb);
        }
        Expr::WhileLet { value, body, .. } => {
            walk_expr(value, cb);
            walk_block(body, cb);
        }
        Expr::For { iter, body, .. } => {
            walk_expr(iter, cb);
            walk_block(body, cb);
        }
        Expr::Closure { body, .. } => walk_expr(body, cb),
        Expr::Macro { args, .. } => args.iter().for_each(|a| walk_expr(a, cb)),
        Expr::StructLit { fields, .. } => fields.iter().for_each(|(_, v)| walk_expr(v, cb)),
        Expr::Tuple { items } | Expr::Array { items } => {
            items.iter().for_each(|i| walk_expr(i, cb));
        }
        Expr::Return { inner } | Expr::Jump { inner } => {
            if let Some(e) = inner {
                walk_expr(e, cb);
            }
        }
        Expr::Range { lo, hi } => {
            if let Some(e) = lo {
                walk_expr(e, cb);
            }
            if let Some(e) = hi {
                walk_expr(e, cb);
            }
        }
    }
}

/// Structural fingerprint of an expression — identical source
/// expressions (modulo whitespace) produce identical strings. Used by
/// `rng-purity` to catch two RNG streams built from the same seed.
pub fn fingerprint(e: &Expr, tokens: &[Token]) -> String {
    let mut out = String::new();
    print_into(e, tokens, &mut out);
    out
}

fn print_into(e: &Expr, tokens: &[Token], out: &mut String) {
    match e {
        Expr::Path { segs, .. } => out.push_str(&segs.join("::")),
        Expr::Lit { tok } => match tokens.get(*tok).map(|t| &t.kind) {
            Some(TokenKind::Num { text, .. }) => out.push_str(text),
            Some(TokenKind::Str(text)) => {
                out.push('"');
                out.push_str(text);
                out.push('"');
            }
            Some(TokenKind::Char) => out.push_str("'_'"),
            Some(TokenKind::Ident(s)) => out.push_str(s),
            _ => out.push_str("lit"),
        },
        Expr::Call { callee, args, .. } => {
            print_into(callee, tokens, out);
            out.push('(');
            for a in args {
                print_into(a, tokens, out);
                out.push(',');
            }
            out.push(')');
        }
        Expr::MethodCall { recv, name, args, .. } => {
            print_into(recv, tokens, out);
            out.push('.');
            out.push_str(name);
            out.push('(');
            for a in args {
                print_into(a, tokens, out);
                out.push(',');
            }
            out.push(')');
        }
        Expr::Field { base, name, .. } => {
            print_into(base, tokens, out);
            out.push('.');
            out.push_str(name);
        }
        Expr::Index { base, index, .. } => {
            print_into(base, tokens, out);
            out.push('[');
            print_into(index, tokens, out);
            out.push(']');
        }
        Expr::Try { inner } => {
            print_into(inner, tokens, out);
            out.push('?');
        }
        Expr::Unary { inner } => {
            out.push('~');
            print_into(inner, tokens, out);
        }
        Expr::Binary { lhs, rhs } => {
            print_into(lhs, tokens, out);
            out.push('@');
            print_into(rhs, tokens, out);
        }
        Expr::Cast { inner } => {
            print_into(inner, tokens, out);
            out.push_str("as");
        }
        Expr::Tuple { items } | Expr::Array { items } => {
            out.push('(');
            for i in items {
                print_into(i, tokens, out);
                out.push(',');
            }
            out.push(')');
        }
        other => {
            out.push('<');
            if let Some(tok) = other.tok() {
                out.push_str(&tok.to_string());
            }
            out.push('>');
        }
    }
}

//! A minimal hand-rolled Rust lexer.
//!
//! Just enough fidelity for token-level lints with exact line/column
//! reporting: comments (line, nested block, doc) are stripped, string
//! shapes (plain, raw `r#".."#`, byte `b".."`, raw byte `br".."`) are
//! recognized so their contents never masquerade as code, lifetimes are
//! distinguished from char literals, and `r#ident` raw identifiers are
//! resolved to their bare name. There is deliberately no parser: rules
//! pattern-match short token sequences instead.

/// What a token is. Multi-character operators are emitted as adjacent
/// single-character [`TokenKind::Punct`] tokens; rules that care (e.g.
/// `==` detection) match the pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword; `r#ident` is resolved to `ident`.
    Ident(String),
    /// A lifetime such as `'a` or `'static` (without the quote).
    Lifetime(String),
    /// Any string-like literal (plain/raw/byte), with its raw contents.
    Str(String),
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal; `float` is true for literals with a fractional
    /// part or exponent, or an `f32`/`f64` suffix.
    Num { float: bool, text: String },
    /// Any other single character.
    Punct(char),
}

/// A token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// The identifier name, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(name) => Some(name),
            _ => None,
        }
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a token stream, stripping comments and whitespace.
/// Unterminated literals are tolerated (the remainder of the file
/// becomes the literal) so the linter never panics on malformed input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor { chars: src.chars().collect(), i: 0, line: 1, col: 1 };
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' && cur.peek(1) == Some('/') {
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            skip_block_comment(&mut cur);
            continue;
        }
        if c == '"' {
            let value = lex_string(&mut cur);
            out.push(Token { kind: TokenKind::Str(value), line, col });
            continue;
        }
        if c == 'r' && matches!(cur.peek(1), Some('"' | '#')) {
            if let Some(token) = lex_raw(&mut cur, line, col) {
                out.push(token);
                continue;
            }
        }
        if c == 'b' && matches!(cur.peek(1), Some('"' | '\'' | 'r')) {
            if let Some(token) = lex_byte(&mut cur, line, col) {
                out.push(token);
                continue;
            }
        }
        if c == '\'' {
            out.push(lex_quote(&mut cur, line, col));
            continue;
        }
        if is_ident_start(c) {
            let name = lex_ident(&mut cur);
            out.push(Token { kind: TokenKind::Ident(name), line, col });
            continue;
        }
        if c.is_ascii_digit() {
            let (float, text) = lex_number(&mut cur);
            out.push(Token { kind: TokenKind::Num { float, text }, line, col });
            continue;
        }
        cur.bump();
        out.push(Token { kind: TokenKind::Punct(c), line, col });
    }
    out
}

fn skip_block_comment(cur: &mut Cursor) {
    cur.bump();
    cur.bump();
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break,
        }
    }
}

fn lex_string(cur: &mut Cursor) -> String {
    cur.bump(); // opening quote
    let mut value = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                // Keep the escaped character verbatim; rules only do
                // whole-value comparisons on escape-free keys.
                if let Some(next) = cur.bump() {
                    value.push(next);
                }
            }
            _ => value.push(c),
        }
    }
    value
}

/// `r"..."` / `r#"..."#` raw strings, or `r#ident` raw identifiers.
/// Returns `None` when the `r` turns out to start a plain identifier
/// (e.g. `r2d2`), leaving the cursor untouched.
fn lex_raw(cur: &mut Cursor, line: u32, col: u32) -> Option<Token> {
    let mut hashes = 0usize;
    while cur.peek(1 + hashes) == Some('#') {
        hashes += 1;
    }
    match cur.peek(1 + hashes) {
        Some('"') => {
            cur.bump(); // r
            for _ in 0..hashes {
                cur.bump();
            }
            cur.bump(); // opening quote
            let value = lex_raw_body(cur, hashes);
            Some(Token { kind: TokenKind::Str(value), line, col })
        }
        Some(c) if hashes == 1 && is_ident_start(c) => {
            cur.bump(); // r
            cur.bump(); // #
            let name = lex_ident(cur);
            Some(Token { kind: TokenKind::Ident(name), line, col })
        }
        _ => None,
    }
}

fn lex_raw_body(cur: &mut Cursor, hashes: usize) -> String {
    let mut value = String::new();
    while let Some(c) = cur.bump() {
        if c == '"' && (0..hashes).all(|k| cur.peek(k) == Some('#')) {
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
        value.push(c);
    }
    value
}

/// `b"..."`, `br#"..."#`, and `b'x'` byte literals. Returns `None` for
/// identifiers that merely start with `b`.
fn lex_byte(cur: &mut Cursor, line: u32, col: u32) -> Option<Token> {
    match cur.peek(1) {
        Some('"') => {
            cur.bump(); // b
            let value = lex_string(cur);
            Some(Token { kind: TokenKind::Str(value), line, col })
        }
        Some('\'') => {
            cur.bump(); // b
            cur.bump(); // opening quote
            finish_char(cur);
            Some(Token { kind: TokenKind::Char, line, col })
        }
        Some('r') => {
            let mut hashes = 0usize;
            while cur.peek(2 + hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek(2 + hashes) == Some('"') {
                cur.bump(); // b
                cur.bump(); // r
                for _ in 0..hashes {
                    cur.bump();
                }
                cur.bump(); // opening quote
                let value = lex_raw_body(cur, hashes);
                Some(Token { kind: TokenKind::Str(value), line, col })
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) after seeing `'`.
fn lex_quote(cur: &mut Cursor, line: u32, col: u32) -> Token {
    match cur.peek(1) {
        Some('\\') => {
            cur.bump(); // quote
            finish_char(cur);
            Token { kind: TokenKind::Char, line, col }
        }
        Some(c) if is_ident_start(c) && cur.peek(2) != Some('\'') => {
            cur.bump(); // quote
            let name = lex_ident(cur);
            Token { kind: TokenKind::Lifetime(name), line, col }
        }
        Some(_) => {
            cur.bump(); // quote
            finish_char(cur);
            Token { kind: TokenKind::Char, line, col }
        }
        None => {
            cur.bump();
            Token { kind: TokenKind::Punct('\''), line, col }
        }
    }
}

fn finish_char(cur: &mut Cursor) {
    // Consume up to the closing quote, honoring escapes.
    while let Some(c) = cur.bump() {
        match c {
            '\'' => break,
            '\\' => {
                cur.bump();
            }
            _ => {}
        }
    }
}

fn lex_ident(cur: &mut Cursor) -> String {
    let mut name = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        name.push(c);
        cur.bump();
    }
    name
}

fn lex_number(cur: &mut Cursor) -> (bool, String) {
    let mut text = String::new();
    let mut float = false;
    // Radix-prefixed integers (0x, 0o, 0b) are never floats.
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b')) {
        while let Some(c) = cur.peek(0) {
            if !(c.is_ascii_alphanumeric() || c == '_') {
                break;
            }
            text.push(c);
            cur.bump();
        }
        return (false, text);
    }
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_digit() || c == '_' {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    // A fractional part only if a digit follows the dot: `1.max(2)` and
    // the range `0..n` keep their dots as separate tokens.
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        text.push('.');
        cur.bump();
        while let Some(c) = cur.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
    } else if cur.peek(0) == Some('.') && !cur.peek(1).is_some_and(|c| is_ident_start(c) || c == '.')
    {
        // Trailing-dot float: `1.`
        float = true;
        text.push('.');
        cur.bump();
    }
    if matches!(cur.peek(0), Some('e' | 'E')) {
        let sign = usize::from(matches!(cur.peek(1), Some('+' | '-')));
        if cur.peek(1 + sign).is_some_and(|c| c.is_ascii_digit()) {
            float = true;
            for _ in 0..=sign {
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
            }
            while let Some(c) = cur.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
        }
    }
    // Type suffix (f64, u32, usize, ...).
    if cur.peek(0).is_some_and(is_ident_start) {
        let mut suffix = String::new();
        while let Some(c) = cur.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            suffix.push(c);
            cur.bump();
        }
        if suffix.starts_with('f') {
            float = true;
        }
        text.push_str(&suffix);
    }
    (float, text)
}

/// Parses the numeric value of a float literal's text, ignoring `_`
/// separators and any type suffix. Returns `None` for non-floats.
pub fn float_value(text: &str) -> Option<f64> {
    let cleaned: String = text
        .chars()
        .filter(|&c| c != '_')
        .take_while(|&c| c.is_ascii_digit() || ".eE+-".contains(c))
        .collect();
    cleaned.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn comments_are_stripped_including_nested_blocks() {
        let toks = kinds("a /* x /* y */ z */ b // tail\nc");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let toks = kinds(r###"let x = r#"not .unwrap() code "quoted" "#;"###);
        assert!(toks.contains(&TokenKind::Str("not .unwrap() code \"quoted\" ".into())));
        assert!(!toks.contains(&TokenKind::Ident("unwrap".into())));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.contains(&TokenKind::Lifetime("a".into())));
        assert!(toks.contains(&TokenKind::Char));
        assert!(toks.contains(&TokenKind::Ident("str".into())));
    }

    #[test]
    fn raw_identifiers_resolve_to_bare_names() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&TokenKind::Ident("type".into())));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"let x = b"bytes"; let y = b'\n'; let z = br#"raw"#;"##);
        assert!(toks.contains(&TokenKind::Str("bytes".into())));
        assert!(toks.contains(&TokenKind::Char));
    }

    #[test]
    fn numbers_classify_floats() {
        let toks = kinds("1 2.5 1e3 0x1f 1_000 2.5f64 3f32 1.max(2) 0..9");
        let floats: Vec<String> = toks
            .iter()
            .filter_map(|t| match t {
                TokenKind::Num { float: true, text } => Some(text.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(floats, vec!["2.5", "1e3", "2.5f64", "3f32"]);
        assert!(toks.contains(&TokenKind::Ident("max".into())));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn float_values_parse_with_suffix_and_separators() {
        assert_eq!(float_value("2.5f64"), Some(2.5));
        assert_eq!(float_value("1_000.0"), Some(1000.0));
        assert_eq!(float_value("0.0"), Some(0.0));
    }
}

//! Per-file result cache.
//!
//! Local (per-file) rule findings depend only on the file's bytes and
//! the engine revision, so they are cached keyed on an FNV-1a content
//! hash. Workspace rules are never cached — interprocedural facts
//! change when any file does — which keeps the cache a pure
//! micro-optimization: a stale or deleted cache can cost time, never
//! correctness. The store lives at `target/lint-cache.tsv` (a flat
//! tab-separated format so this crate stays parser-free) and is
//! invalidated wholesale whenever the engine fingerprint — the rule-id
//! set plus [`ENGINE_REV`] — changes.

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use crate::engine::Finding;
use crate::rules;

/// Bump when rule logic changes without changing rule ids, so stale
/// caches from older engines never survive an upgrade.
pub const ENGINE_REV: &str = "2";

/// Relative location of the store under the workspace root.
pub const STORE_PATH: &str = "target/lint-cache.tsv";

/// FNV-1a 64-bit — stable across platforms and runs, unlike
/// `DefaultHasher`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The cache-busting engine identity: format revision plus every rule
/// id, hashed.
pub fn engine_fingerprint() -> u64 {
    let mut id = String::from(ENGINE_REV);
    for rule in rules::known_ids() {
        id.push(';');
        id.push_str(rule);
    }
    fnv1a(id.as_bytes())
}

/// One cached file: content hash and the local findings it produced.
pub struct Entry {
    pub hash: u64,
    pub findings: Vec<Finding>,
}

/// In-memory cache, loaded once per run.
#[derive(Default)]
pub struct Cache {
    entries: HashMap<String, Entry>,
}

impl Cache {
    /// Loads the store; any parse problem or fingerprint mismatch
    /// yields an empty cache (a cache must never be able to fail a run).
    pub fn load(root: &Path) -> Cache {
        let Ok(text) = fs::read_to_string(root.join(STORE_PATH)) else {
            return Cache::default();
        };
        Cache::parse(&text).unwrap_or_default()
    }

    fn parse(text: &str) -> Option<Cache> {
        let mut lines = text.lines();
        let header = lines.next()?;
        let expected = format!("harmony-lint-cache\t{}", engine_fingerprint());
        if header != expected {
            return None;
        }
        let ids = rules::known_ids();
        let mut entries = HashMap::new();
        let mut current: Option<(String, Entry)> = None;
        for line in lines {
            if let Some(rest) = line.strip_prefix("file\t") {
                if let Some((path, entry)) = current.take() {
                    entries.insert(path, entry);
                }
                let mut parts = rest.splitn(3, '\t');
                let hash: u64 = parts.next()?.parse().ok()?;
                let _count = parts.next()?;
                let path = parts.next()?.to_owned();
                current = Some((path, Entry { hash, findings: Vec::new() }));
            } else {
                let (path, entry) = current.as_mut()?;
                let mut parts = line.splitn(4, '\t');
                let line_no: u32 = parts.next()?.parse().ok()?;
                let col: u32 = parts.next()?.parse().ok()?;
                let rule = parts.next()?;
                // Rule ids must resolve back to their 'static names; an
                // unknown id means a foreign cache — discard it all.
                let rule = *ids.iter().find(|id| **id == rule)?;
                let message = unescape(parts.next()?);
                entry.findings.push(Finding {
                    path: path.clone(),
                    line: line_no,
                    col,
                    rule,
                    message,
                });
            }
        }
        if let Some((path, entry)) = current.take() {
            entries.insert(path, entry);
        }
        Some(Cache { entries })
    }

    /// Cached findings for `rel_path` when the content hash matches.
    pub fn lookup(&self, rel_path: &str, hash: u64) -> Option<&[Finding]> {
        let entry = self.entries.get(rel_path)?;
        (entry.hash == hash).then_some(entry.findings.as_slice())
    }

    /// Writes a fresh store from this run's per-file results. Errors
    /// are ignored — a read-only target dir degrades to cold runs.
    pub fn save(root: &Path, results: &[(String, u64, Vec<Finding>)]) {
        let mut text = format!("harmony-lint-cache\t{}\n", engine_fingerprint());
        for (path, hash, findings) in results {
            text.push_str(&format!("file\t{hash}\t{}\t{path}\n", findings.len()));
            for f in findings {
                text.push_str(&format!(
                    "{}\t{}\t{}\t{}\n",
                    f.line,
                    f.col,
                    f.rule,
                    escape(&f.message)
                ));
            }
        }
        let target = root.join(STORE_PATH);
        if let Some(dir) = target.parent() {
            let _ = fs::create_dir_all(dir);
        }
        let _ = fs::write(target, text);
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\t', "\\t").replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_the_store_format() {
        let findings = vec![Finding {
            path: "crates/x/src/lib.rs".to_owned(),
            line: 3,
            col: 9,
            rule: rules::RNG_PURITY,
            message: "tab\there, line\nbreak".to_owned(),
        }];
        let results = vec![("crates/x/src/lib.rs".to_owned(), 42u64, findings.clone())];
        let dir = std::env::temp_dir().join("harmony-lint-cache-test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Cache::save(&dir, &results);
        let cache = Cache::load(&dir);
        let hit = cache.lookup("crates/x/src/lib.rs", 42).unwrap();
        assert_eq!(hit, findings.as_slice());
        assert!(cache.lookup("crates/x/src/lib.rs", 43).is_none());
        assert!(cache.lookup("crates/y/src/lib.rs", 42).is_none());
    }

    #[test]
    fn foreign_fingerprint_discards_the_cache() {
        let dir = std::env::temp_dir().join("harmony-lint-cache-fp-test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("target")).unwrap();
        fs::write(
            dir.join(STORE_PATH),
            "harmony-lint-cache\t12345\nfile\t42\t0\tcrates/x/src/lib.rs\n",
        )
        .unwrap();
        let cache = Cache::load(&dir);
        assert!(cache.lookup("crates/x/src/lib.rs", 42).is_none());
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}

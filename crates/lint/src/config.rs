//! `lint.toml` — the checked-in allowlist.
//!
//! Findings are deny-by-default; the only sanctioned escape hatch is a
//! scoped, reason-carrying entry here:
//!
//! ```toml
//! [[allow]]
//! rule = "lock-discipline"
//! path = "crates/server/src/service.rs"
//! contains = "state::write_atomic"     # optional line-text anchor
//! reason = "the commit gate mutex must span the write to order checkpoints"
//! ```
//!
//! The parser is a deliberate TOML subset (table arrays of string
//! pairs, `#` comments) so the linter stays zero-dependency. Unknown
//! keys, missing fields, and empty reasons are hard errors — an allow
//! that cannot say why it exists does not get to exist.

use std::fs;
use std::path::Path;

use crate::engine::Finding;

/// One `[[allow]]` entry.
#[derive(Debug, Clone)]
pub struct Allow {
    pub rule: String,
    pub path: String,
    pub contains: Option<String>,
    pub reason: String,
    /// Line in `lint.toml` where the entry starts (for diagnostics).
    pub line: u32,
}

/// Parsed allowlist.
#[derive(Debug, Default)]
pub struct Config {
    pub allows: Vec<Allow>,
}

impl Config {
    /// Loads `lint.toml`; a missing file is an empty allowlist.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed line or
    /// incomplete entry.
    pub fn load(path: &Path) -> Result<Config, String> {
        match fs::read_to_string(path) {
            Ok(text) => Config::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(format!("read {}: {e}", path.display())),
        }
    }

    /// Parses the TOML subset described in the module docs.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut allows: Vec<Allow> = Vec::new();
        let mut current: Option<(Allow, bool)> = None; // (entry, has_reason)
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim().to_owned();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                finish(&mut current, &mut allows)?;
                current = Some((
                    Allow {
                        rule: String::new(),
                        path: String::new(),
                        contains: None,
                        reason: String::new(),
                        line: lineno,
                    },
                    false,
                ));
                continue;
            }
            let Some((key, value)) = parse_kv(&line) else {
                return Err(format!("lint.toml:{lineno}: expected `key = \"value\"`, got `{line}`"));
            };
            let Some((entry, has_reason)) = current.as_mut() else {
                return Err(format!("lint.toml:{lineno}: `{key}` outside an [[allow]] entry"));
            };
            match key {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "contains" => entry.contains = Some(value),
                "reason" => {
                    entry.reason = value;
                    *has_reason = true;
                }
                other => {
                    return Err(format!("lint.toml:{lineno}: unknown key `{other}`"));
                }
            }
        }
        finish(&mut current, &mut allows)?;
        Ok(Config { allows })
    }

    /// Index of the first allow matching `finding`, if any. `line_text`
    /// is the source line the finding points at, used for the optional
    /// `contains` anchor.
    pub fn matching_allow(&self, finding: &Finding, line_text: &str) -> Option<usize> {
        self.allows.iter().position(|a| {
            a.rule == finding.rule
                && (finding.path == a.path || finding.path.ends_with(&format!("/{}", a.path)))
                && a.contains.as_ref().is_none_or(|c| line_text.contains(c.as_str()))
        })
    }
}

fn finish(current: &mut Option<(Allow, bool)>, allows: &mut Vec<Allow>) -> Result<(), String> {
    if let Some((entry, has_reason)) = current.take() {
        let at = entry.line;
        if entry.rule.is_empty() || entry.path.is_empty() {
            return Err(format!("lint.toml:{at}: [[allow]] needs both `rule` and `path`"));
        }
        if !has_reason || entry.reason.trim().is_empty() {
            return Err(format!(
                "lint.toml:{at}: [[allow]] for `{}` needs a non-empty `reason`",
                entry.rule
            ));
        }
        allows.push(entry);
    }
    Ok(())
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Parses `key = "value"`.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    let mut value = String::new();
    let mut escaped = false;
    for c in inner.chars() {
        if escaped {
            value.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else {
            value.push(c);
        }
    }
    Some((key.trim(), value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding { path: path.to_owned(), line: 1, col: 1, rule, message: String::new() }
    }

    #[test]
    fn parses_entries_and_matches_by_rule_path_and_contains() {
        let cfg = Config::parse(
            r#"
# comment
[[allow]]
rule = "lock-across-io"
path = "crates/server/src/net.rs"
contains = "save_checkpoint"
reason = "final checkpoint runs after all threads joined"
"#,
        )
        .unwrap();
        assert_eq!(cfg.allows.len(), 1);
        let f = finding("lock-across-io", "crates/server/src/net.rs");
        assert_eq!(cfg.matching_allow(&f, "svc.save_checkpoint()"), Some(0));
        assert_eq!(cfg.matching_allow(&f, "svc.tick_once()"), None);
        let other = finding("panic-in-lib", "crates/server/src/net.rs");
        assert_eq!(cfg.matching_allow(&other, "svc.save_checkpoint()"), None);
    }

    #[test]
    fn reason_is_mandatory() {
        let err = Config::parse("[[allow]]\nrule = \"x\"\npath = \"y\"\n").unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let err =
            Config::parse("[[allow]]\nrule = \"x\"\npath = \"y\"\nreasn = \"typo\"\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn missing_file_is_empty() {
        let cfg = Config::load(Path::new("/nonexistent/lint.toml")).unwrap();
        assert!(cfg.allows.is_empty());
    }
}

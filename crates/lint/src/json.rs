//! Machine-readable report output.
//!
//! `harmony-lint --json` emits one JSON object so CI and editor
//! tooling can consume findings without scraping the text format. The
//! schema is versioned: consumers pin on `schema_version` and the
//! field set below only grows, never mutates, within a version.

use crate::engine::Report;

/// Bump on any breaking change to the emitted shape.
pub const SCHEMA_VERSION: u32 = 1;

/// Renders the full report deterministically (findings are already
/// sorted by path/line/col/rule).
pub fn render(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files));
    out.push_str(&format!("  \"files_from_cache\": {},\n", report.cached));
    out.push_str(&format!("  \"allowed\": {},\n", report.allowed));
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\"}}",
            escape(&f.path),
            f.line,
            f.col,
            escape(f.rule),
            escape(&f.message)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// JSON string escaping for the characters the findings can contain.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Finding;

    #[test]
    fn renders_versioned_escaped_output() {
        let report = Report {
            findings: vec![Finding {
                path: "crates/a/src/lib.rs".to_owned(),
                line: 2,
                col: 5,
                rule: "rng-purity",
                message: "say \"no\" to\nentropy".to_owned(),
            }],
            allowed: 3,
            files: 7,
            cached: 4,
        };
        let text = render(&report);
        assert!(text.contains("\"schema_version\": 1"));
        assert!(text.contains("\"files_scanned\": 7"));
        assert!(text.contains("\"files_from_cache\": 4"));
        assert!(text.contains(r#"\"no\" to\nentropy"#));
        assert!(!text.contains("say \"no\" to\nentropy"), "must escape, not embed");
    }

    #[test]
    fn empty_report_is_valid() {
        let report = Report { findings: Vec::new(), allowed: 0, files: 0, cached: 0 };
        let text = render(&report);
        assert!(text.contains("\"findings\": []"));
    }
}

//! harmony-lint: a zero-dependency static-analysis pass for the
//! Harmony workspace.
//!
//! The compiler cannot see most of the invariants the previous PRs
//! established — bit-identical plans across worker counts, NaN-safe
//! float ordering, panic-free library crates, a virtual sim clock,
//! lock-free I/O in the server, seed-pure RNG streams, and a
//! forward-compatible checkpoint schema. This crate enforces them with
//! a hand-rolled Rust lexer ([`lexer`]), a tolerant recursive-descent
//! parser producing a lightweight AST ([`parser`], [`ast`]), a
//! workspace symbol table and heuristic call graph ([`symbols`],
//! [`callgraph`]), and two rule tiers ([`rules`]): cacheable per-file
//! rules and interprocedural workspace rules. Findings print as
//! `file:line:col [rule-id] message` or as versioned JSON ([`json`]);
//! the policy is deny-by-default with a checked-in `lint.toml` of
//! scoped, reason-carrying allows ([`config`]).
//!
//! Run it with `cargo run -p harmony-lint -- --deny` (the CI gate) or
//! see DESIGN.md §12 and §17 for the rule-by-rule rationale.

pub mod ast;
pub mod cache;
pub mod callgraph;
pub mod config;
pub mod dataflow;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod symbols;

pub use engine::{check_source, run, run_with, Finding, Options, Report};

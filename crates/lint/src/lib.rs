//! harmony-lint: a zero-dependency static-analysis pass for the
//! Harmony workspace.
//!
//! The compiler cannot see most of the invariants the previous PRs
//! established — bit-identical plans across worker counts, NaN-safe
//! float ordering, panic-free library crates, a virtual sim clock,
//! lock-free I/O in the server, and a single registry of telemetry key
//! names. This crate enforces them with a hand-rolled Rust lexer
//! ([`lexer`]), a token-level rule engine ([`engine`]), and six
//! project-specific rules ([`rules`]). Findings print as
//! `file:line:col [rule-id] message`; the policy is deny-by-default
//! with a checked-in `lint.toml` of scoped, reason-carrying allows
//! ([`config`]).
//!
//! Run it with `cargo run -p harmony-lint -- --deny` (the CI gate) or
//! see DESIGN.md §12 for the rule-by-rule rationale.

pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{check_source, run, Finding, Report};

//! `wall-clock-in-sim` — deterministic paths must not read the wall
//! clock.
//!
//! The simulator's clock is virtual (`SimTime`), and checkpoint/resume
//! (PR 2) replays runs by event sequence: an `Instant::now()` or
//! `SystemTime::now()` inside `crates/sim`, the controller paths in
//! `crates/core`, or the simplex engines in `crates/lp` (whose pivot
//! sequences must be reproducible for warm-start replay) would smuggle
//! real time into decisions and break bit-identical replay. Real-time
//! *measurement* is still available — route it through
//! `harmony-telemetry`'s `Timer`, which is outside the deterministic
//! scope and only ever feeds metrics, never control decisions.

use crate::engine::{Ctx, Finding};
use crate::rules::{Rule, WALL_CLOCK_IN_SIM};

const SCOPE: &[&str] = &["crates/sim/src/", "crates/core/src/", "crates/lp/src/"];

pub struct WallClock;

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        WALL_CLOCK_IN_SIM
    }

    fn describe(&self) -> &'static str {
        "Instant::now/SystemTime::now inside crates/sim, crates/core, or crates/lp deterministic paths"
    }

    fn check(&self, ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
        if !SCOPE.iter().any(|p| ctx.rel_path.starts_with(p)) {
            return;
        }
        let tokens = &ctx.model.tokens;
        for i in 0..tokens.len() {
            if ctx.model.in_test[i] {
                continue;
            }
            let Some(ty @ ("Instant" | "SystemTime")) = tokens[i].ident() else {
                continue;
            };
            let is_now = tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && tokens.get(i + 3).and_then(|t| t.ident()) == Some("now");
            if is_now {
                out.push(Finding {
                    path: ctx.rel_path.to_owned(),
                    line: tokens[i].line,
                    col: tokens[i].col,
                    rule: self.id(),
                    message: format!(
                        "`{ty}::now()` in a deterministic path breaks replay; use `SimTime` \
                         for logic or `harmony_telemetry` timers for measurement"
                    ),
                });
            }
        }
    }
}

//! `lock-discipline` — guard lifetimes versus blocking I/O, across
//! helper calls, plus workspace-wide lock-ordering consistency.
//!
//! PR 3 taught the server to never hold a lock across a blocking
//! syscall; the token-level `lock-across-io` rule from PR 5 enforced
//! it one line at a time and went blind the moment the guard crossed a
//! statement boundary — `let st = self.state.lock().unwrap();` followed
//! by a call to a helper that writes a file was invisible. This rule
//! replaces it with three interprocedural checks over the AST and call
//! graph:
//!
//! * **guard across I/O** — a let-bound (or `if let`/`match`-bound)
//!   guard that is still live when the body performs blocking I/O
//!   *or calls any fn from which blocking I/O is reachable*. Guard
//!   liveness is block-scoped and `drop(guard)` ends it early.
//! * **temporary guard across I/O** — `lock_write(&self.state).slow()`
//!   style chains where the unnamed guard lives for the whole
//!   statement, including an I/O-reaching method.
//! * **lock-order inversion** — two fns anywhere in the workspace that
//!   acquire the same pair of locks in opposite orders while the first
//!   is still held: the classic ABBA deadlock.
//!
//! Lock identity is the structural fingerprint of the lock expression
//! (`self.state`, `svc.inner`), so renamed bindings still match.
//! Guard-across-I/O is scoped to `crates/server/src/` where the
//! latency contract lives; ordering inversions are checked everywhere.

use std::collections::{BTreeMap, HashMap};

use crate::ast::{Block, Expr, Stmt};
use crate::callgraph::CallGraph;
use crate::dataflow::{fingerprint, walk_fn};
use crate::engine::{FileKind, Finding};
use crate::lexer::Token;
use crate::rules::{WsRule, LOCK_DISCIPLINE};
use crate::symbols::Workspace;

/// No-arg methods that acquire a lock and return a guard.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];
/// Free helpers that acquire on their first argument.
const ACQUIRE_FNS: &[&str] = &["lock_read", "lock_write"];
/// Methods that pass a guard through unchanged (`.lock().unwrap()`).
const GUARD_PRESERVING: &[&str] = &["unwrap", "expect", "unwrap_or_else", "map_err", "ok"];
/// Method names that block on I/O or time.
const IO_METHODS: &[&str] = &[
    "write_all",
    "write_line",
    "writeln_line",
    "read_line",
    "read_exact",
    "read_to_string",
    "read_to_end",
    "flush",
    "sync_all",
    "to_writer",
    "save_atomic",
    "save_checkpoint",
    "persist",
    "recv",
    "recv_timeout",
    "accept",
    "connect",
];
/// Path qualifiers whose associated calls are blocking I/O
/// (`fs::write`, `File::create`, `TcpStream::connect`, `thread::sleep`).
const IO_QUALIFIERS: &[&str] =
    &["fs", "File", "OpenOptions", "TcpStream", "TcpListener", "UnixStream", "thread"];
/// Where guard-across-I/O findings apply (the server latency contract).
const SCOPE: &str = "crates/server/src/";

pub struct LockDiscipline;

impl WsRule for LockDiscipline {
    fn id(&self) -> &'static str {
        LOCK_DISCIPLINE
    }

    fn describe(&self) -> &'static str {
        "no lock guard held across blocking I/O (directly or through helper calls); consistent multi-lock acquisition order workspace-wide"
    }

    fn check(&self, ws: &Workspace<'_>, cg: &CallGraph, out: &mut Vec<Finding>) {
        let n = ws.fns.len();
        // Pass 1: which fns perform blocking I/O directly.
        let mut io_name: Vec<Option<String>> = vec![None; n];
        for (i, entry) in ws.fns.iter().enumerate() {
            walk_fn(entry.node, &mut |e| {
                if io_name[i].is_none() {
                    if let Some((_, what)) = direct_io(e) {
                        io_name[i] = Some(what);
                    }
                }
            });
        }
        // Pass 2: which fns *reach* blocking I/O, with a witness callee
        // per fn so findings can print the chain. Reverse BFS from the
        // direct performers.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (caller, edges) in cg.edges.iter().enumerate() {
            for edge in edges {
                rev[edge.callee].push(caller);
            }
        }
        let mut reach_io = vec![false; n];
        let mut io_next: Vec<Option<usize>> = vec![None; n];
        let mut queue: Vec<usize> = (0..n).filter(|&i| io_name[i].is_some()).collect();
        for &s in &queue {
            reach_io[s] = true;
        }
        let mut head = 0;
        while head < queue.len() {
            let at = queue[head];
            head += 1;
            for &caller in &rev[at] {
                if !reach_io[caller] {
                    reach_io[caller] = true;
                    io_next[caller] = Some(at);
                    queue.push(caller);
                }
            }
        }

        // Pass 3: flow-sensitive guard walk per fn.
        let mut orders: Vec<(String, String, usize, usize)> = Vec::new();
        for i in 0..n {
            let entry = &ws.fns[i];
            if entry.in_test {
                continue;
            }
            let file = ws.file_of(i);
            if !matches!(file.kind, FileKind::Lib | FileKind::Bin) {
                continue;
            }
            let Some(body) = &entry.node.body else { continue };
            let mut by_tok: HashMap<usize, Vec<usize>> = HashMap::new();
            for edge in &cg.edges[i] {
                by_tok.entry(edge.tok).or_default().push(edge.callee);
            }
            let mut walk = Walk {
                ws,
                fn_idx: i,
                tokens: &file.model.tokens,
                edges: by_tok,
                reach_io: &reach_io,
                io_name: &io_name,
                io_next: &io_next,
                in_scope: file.rel_path.starts_with(SCOPE),
                guards: Vec::new(),
                orders: &mut orders,
                out,
            };
            walk.block(body);
        }

        // Pass 4: ordering inversions. First occurrence per ordered
        // pair; a finding fires at the lexicographically-descending
        // pair's site so each inversion reports exactly once.
        let mut first: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
        for (held, acquired, fn_idx, tok) in orders {
            first.entry((held, acquired)).or_insert((fn_idx, tok));
        }
        for ((held, acquired), (fn_idx, tok)) in &first {
            if held < acquired {
                continue;
            }
            let Some((other_fn, other_tok)) = first.get(&(acquired.clone(), held.clone())) else {
                continue;
            };
            let file = ws.file_of(*fn_idx);
            if file.model.allowed(*tok, LOCK_DISCIPLINE) {
                continue;
            }
            let other = ws.file_of(*other_fn);
            let other_line = other.model.tokens.get(*other_tok).map_or(0, |t| t.line);
            let Some(token) = file.model.tokens.get(*tok) else { continue };
            out.push(Finding {
                path: file.rel_path.clone(),
                line: token.line,
                col: token.col,
                rule: LOCK_DISCIPLINE,
                message: format!(
                    "acquires lock `{acquired}` while holding `{held}`, but {}:{other_line} \
                     acquires the same pair in the opposite order — pick one global order to \
                     rule out ABBA deadlock",
                    other.rel_path
                ),
            });
        }
    }
}

/// One live guard binding.
struct Guard {
    name: String,
    lock: String,
}

/// Flow-sensitive walker for one fn body.
struct Walk<'x, 'a> {
    ws: &'x Workspace<'a>,
    fn_idx: usize,
    tokens: &'x [Token],
    /// Call-site token → resolved callee fn indices.
    edges: HashMap<usize, Vec<usize>>,
    reach_io: &'x [bool],
    io_name: &'x [Option<String>],
    io_next: &'x [Option<usize>],
    /// Guard-across-I/O findings only fire inside `SCOPE`.
    in_scope: bool,
    guards: Vec<Guard>,
    orders: &'x mut Vec<(String, String, usize, usize)>,
    out: &'x mut Vec<Finding>,
}

impl Walk<'_, '_> {
    fn block(&mut self, b: &Block) {
        let depth = self.guards.len();
        for stmt in &b.stmts {
            match stmt {
                Stmt::Let { names, init, els, tok } => {
                    if let Some(e) = init {
                        self.expr(e);
                        if let Some(lock) = acquire_of(e, self.tokens) {
                            self.note_acquire(&lock, *tok);
                            for name in names {
                                self.guards.push(Guard { name: name.clone(), lock: lock.clone() });
                            }
                        }
                    }
                    if let Some(blk) = els {
                        self.block(blk);
                    }
                }
                Stmt::Expr(e) => {
                    if let Some(dropped) = drop_call(e) {
                        self.guards.retain(|g| g.name != dropped);
                    } else {
                        self.expr(e);
                    }
                }
                // Nested fn items get no guard context of their own
                // here; they are conservative misses (documented in
                // DESIGN.md §17), not false positives.
                Stmt::Item(_) => {}
            }
        }
        self.guards.truncate(depth);
    }

    fn expr(&mut self, e: &Expr) {
        if !self.guards.is_empty() {
            if let Some((tok, what)) = self.io_of(e) {
                let held = self.guards.last().map(|g| g.lock.clone()).unwrap_or_default();
                let name = self.guards.last().map(|g| g.name.clone()).unwrap_or_default();
                self.flag(
                    tok,
                    format!(
                        "guard `{name}` (lock `{held}`) is still live across {what}; drop the \
                         guard first or defer the blocking work"
                    ),
                );
            }
        }
        // Temporary guard: a method chained directly onto an acquire,
        // where the method itself blocks or reaches blocking I/O.
        if let Expr::MethodCall { recv, name, tok, .. } = e {
            if !GUARD_PRESERVING.contains(&name.as_str())
                && acquire_of(recv, self.tokens).is_some()
            {
                if let Some((_, what)) = self.call_io(*tok, name) {
                    self.flag(
                        *tok,
                        format!(
                            "temporary lock guard lives for this whole statement and is held \
                             across {what}; bind the lock result, extract what you need, and \
                             drop it before the blocking call"
                        ),
                    );
                }
            }
        }
        match e {
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Unknown { .. } => {}
            Expr::Call { callee, args, .. } => {
                self.expr(callee);
                args.iter().for_each(|a| self.expr(a));
            }
            Expr::MethodCall { recv, args, .. } => {
                self.expr(recv);
                args.iter().for_each(|a| self.expr(a));
            }
            Expr::Field { base, .. } => self.expr(base),
            Expr::Index { base, index, .. } => {
                self.expr(base);
                self.expr(index);
            }
            Expr::Try { inner } | Expr::Unary { inner } | Expr::Cast { inner } => self.expr(inner),
            Expr::Binary { lhs, rhs } | Expr::Assign { lhs, rhs } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            Expr::Block(b) => self.block(b),
            Expr::If { cond, then, els } => {
                self.expr(cond);
                self.block(then);
                if let Some(e) = els {
                    self.expr(e);
                }
            }
            Expr::IfLet { names, value, then, els } => {
                self.expr(value);
                let depth = self.guards.len();
                if let Some(lock) = acquire_of(value, self.tokens) {
                    self.note_acquire(&lock, value.tok().unwrap_or(0));
                    for name in names {
                        self.guards.push(Guard { name: name.clone(), lock: lock.clone() });
                    }
                }
                self.block(then);
                self.guards.truncate(depth);
                if let Some(e) = els {
                    self.expr(e);
                }
            }
            Expr::Match { scrutinee, arms } => {
                self.expr(scrutinee);
                let acquired = acquire_of(scrutinee, self.tokens);
                if let Some(lock) = &acquired {
                    self.note_acquire(lock, scrutinee.tok().unwrap_or(0));
                }
                for arm in arms {
                    let depth = self.guards.len();
                    if let Some(lock) = &acquired {
                        for name in &arm.names {
                            self.guards.push(Guard { name: name.clone(), lock: lock.clone() });
                        }
                    }
                    if let Some(g) = &arm.guard {
                        self.expr(g);
                    }
                    self.expr(&arm.body);
                    self.guards.truncate(depth);
                }
            }
            Expr::Loop { body } => self.block(body),
            Expr::While { cond, body } => {
                self.expr(cond);
                self.block(body);
            }
            Expr::WhileLet { names, value, body } => {
                self.expr(value);
                let depth = self.guards.len();
                if let Some(lock) = acquire_of(value, self.tokens) {
                    self.note_acquire(&lock, value.tok().unwrap_or(0));
                    for name in names {
                        self.guards.push(Guard { name: name.clone(), lock: lock.clone() });
                    }
                }
                self.block(body);
                self.guards.truncate(depth);
            }
            Expr::For { iter, body, .. } => {
                self.expr(iter);
                self.block(body);
            }
            Expr::Closure { body, .. } => self.expr(body),
            Expr::Macro { args, .. } => args.iter().for_each(|a| self.expr(a)),
            Expr::StructLit { fields, .. } => fields.iter().for_each(|(_, v)| self.expr(v)),
            Expr::Tuple { items } | Expr::Array { items } => {
                items.iter().for_each(|i| self.expr(i));
            }
            Expr::Return { inner } | Expr::Jump { inner } => {
                if let Some(e) = inner {
                    self.expr(e);
                }
            }
            Expr::Range { lo, hi } => {
                if let Some(e) = lo {
                    self.expr(e);
                }
                if let Some(e) = hi {
                    self.expr(e);
                }
            }
        }
    }

    /// Blocking-I/O classification of one call node: direct I/O by
    /// name, or a resolved callee from which I/O is reachable.
    fn io_of(&self, e: &Expr) -> Option<(usize, String)> {
        if let Some((tok, what)) = direct_io(e) {
            return Some((tok, format!("blocking I/O `{what}`")));
        }
        let (tok, name) = match e {
            Expr::Call { callee, tok, .. } => match callee.as_ref() {
                Expr::Path { segs, .. } => (*tok, segs.last()?.as_str()),
                _ => return None,
            },
            Expr::MethodCall { name, tok, .. } => (*tok, name.as_str()),
            _ => return None,
        };
        self.call_io(tok, name)
    }

    /// I/O reachability of the callees resolved at call-site token
    /// `tok` (plus the direct method-name check for `call_io` callers).
    fn call_io(&self, tok: usize, name: &str) -> Option<(usize, String)> {
        if IO_METHODS.contains(&name) {
            return Some((tok, format!("blocking I/O `{name}`")));
        }
        for &callee in self.edges.get(&tok)?.iter() {
            if self.reach_io[callee] {
                return Some((
                    tok,
                    format!("a call into {}", self.chain(callee)),
                ));
            }
        }
        None
    }

    /// Renders the witness chain from `at` down to the blocking call:
    /// `` `handle` -> `save_checkpoint` -> `write_all` ``.
    fn chain(&self, mut at: usize) -> String {
        let mut parts = vec![format!("`{}`", self.ws.fns[at].qual)];
        for _ in 0..3 {
            match self.io_next[at] {
                Some(next) => {
                    at = next;
                    parts.push(format!("`{}`", self.ws.fns[at].qual));
                }
                None => break,
            }
        }
        match &self.io_name[at] {
            Some(io) => parts.push(format!("blocking `{io}`")),
            None => parts.push("...".to_owned()),
        }
        parts.join(" -> ")
    }

    /// Records lock-ordering pairs (every held lock, then the new one).
    fn note_acquire(&mut self, lock: &str, tok: usize) {
        for g in &self.guards {
            if g.lock != lock {
                self.orders.push((g.lock.clone(), lock.to_owned(), self.fn_idx, tok));
            }
        }
    }

    fn flag(&mut self, tok: usize, message: String) {
        if !self.in_scope {
            return;
        }
        let file = self.ws.file_of(self.fn_idx);
        if file.model.in_test.get(tok).copied().unwrap_or(false)
            || file.model.allowed(tok, LOCK_DISCIPLINE)
        {
            return;
        }
        let Some(token) = file.model.tokens.get(tok) else { return };
        self.out.push(Finding {
            path: file.rel_path.clone(),
            line: token.line,
            col: token.col,
            rule: LOCK_DISCIPLINE,
            message,
        });
    }
}

/// The lock fingerprint when `e` is an acquisition (possibly wrapped in
/// guard-preserving combinators): the receiver of a no-arg
/// `ACQUIRE_METHODS` call, or the first argument of an `ACQUIRE_FNS` /
/// `lock_*` free call.
fn acquire_of(e: &Expr, tokens: &[Token]) -> Option<String> {
    match strip_wrappers(e) {
        Expr::MethodCall { recv, name, args, .. }
            if ACQUIRE_METHODS.contains(&name.as_str()) && args.is_empty() =>
        {
            Some(clean(fingerprint(recv, tokens)))
        }
        Expr::Call { callee, args, .. } => {
            let Expr::Path { segs, .. } = callee.as_ref() else { return None };
            let last = segs.last()?;
            if (ACQUIRE_FNS.contains(&last.as_str()) || last.starts_with("lock_"))
                && !args.is_empty()
            {
                return Some(clean(fingerprint(&args[0], tokens)));
            }
            None
        }
        _ => None,
    }
}

/// Unwraps `.unwrap()` / `.expect(..)` / `?` / `&` layers around an
/// acquisition so the guard's origin stays visible.
fn strip_wrappers(e: &Expr) -> &Expr {
    let mut cur = e;
    loop {
        match cur {
            Expr::MethodCall { recv, name, .. } if GUARD_PRESERVING.contains(&name.as_str()) => {
                cur = recv;
            }
            Expr::Try { inner } | Expr::Unary { inner } => cur = inner,
            _ => return cur,
        }
    }
}

/// Strips the reference markers a fingerprint keeps for `&x` so
/// `self.state` and `&self.state` identify the same lock.
fn clean(print: String) -> String {
    print.trim_start_matches('~').to_owned()
}

/// `drop(name)` — ends the named guard's liveness early.
fn drop_call(e: &Expr) -> Option<String> {
    let Expr::Call { callee, args, .. } = e else { return None };
    let Expr::Path { segs, .. } = callee.as_ref() else { return None };
    if segs.last().map(String::as_str) != Some("drop") || args.len() != 1 {
        return None;
    }
    match args.first() {
        Some(Expr::Path { segs, .. }) if segs.len() == 1 => Some(segs[0].clone()),
        _ => None,
    }
}

/// Direct blocking I/O: a known blocking method name, or an associated
/// call on a filesystem/socket/thread type (`fs::write`,
/// `File::create`, `TcpStream::connect`, `thread::sleep`).
fn direct_io(e: &Expr) -> Option<(usize, String)> {
    match e {
        Expr::MethodCall { name, tok, .. } if IO_METHODS.contains(&name.as_str()) => {
            Some((*tok, name.clone()))
        }
        Expr::Call { callee, tok, .. } => {
            let Expr::Path { segs, .. } = callee.as_ref() else { return None };
            let last = segs.last()?;
            if segs.len() >= 2 && IO_QUALIFIERS.contains(&segs[segs.len() - 2].as_str()) {
                // `thread::` only blocks when it waits; queries like
                // `thread::available_parallelism` are cheap syscalls.
                if segs[segs.len() - 2] == "thread"
                    && !matches!(last.as_str(), "sleep" | "park" | "park_timeout")
                {
                    return None;
                }
                return Some((*tok, format!("{}::{last}", segs[segs.len() - 2])));
            }
            if last == "sleep" || IO_METHODS.contains(&last.as_str()) {
                return Some((*tok, last.clone()));
            }
            None
        }
        _ => None,
    }
}

//! `float-ordering` — floats are ordered with `total_cmp`, never
//! `partial_cmp(..).unwrap()` or exact equality.
//!
//! PR 1's panic audit moved every library sort to `f64::total_cmp`
//! because `partial_cmp` returns `None` on NaN — one poisoned sample
//! panics the whole control loop — and because `sort_by` with a
//! partial order is unstable in the presence of NaN. This rule keeps
//! the idiom from creeping back, in tests too: a test that panics on
//! NaN hides exactly the regression it should catch.

use crate::engine::{Ctx, Finding};
use crate::lexer::{float_value, TokenKind};
use crate::rules::{match_paren, Rule, FLOAT_ORDERING};

pub struct FloatOrdering;

impl Rule for FloatOrdering {
    fn id(&self) -> &'static str {
        FLOAT_ORDERING
    }

    fn describe(&self) -> &'static str {
        "partial_cmp().unwrap() or exact ==/!= on a non-zero float literal; use total_cmp"
    }

    fn check(&self, ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
        let tokens = &ctx.model.tokens;
        for i in 0..tokens.len() {
            // `.partial_cmp(..).unwrap()` / `.expect(..)` — the leading
            // dot keeps `fn partial_cmp` trait impls out.
            if tokens[i].ident() == Some("partial_cmp")
                && i > 0
                && tokens[i - 1].is_punct('.')
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                let close = match_paren(tokens, i + 1);
                let chained = tokens.get(close + 1).is_some_and(|t| t.is_punct('.'))
                    && matches!(
                        tokens.get(close + 2).and_then(|t| t.ident()),
                        Some("unwrap" | "expect")
                    );
                if chained {
                    out.push(Finding {
                        path: ctx.rel_path.to_owned(),
                        line: tokens[i].line,
                        col: tokens[i].col,
                        rule: self.id(),
                        message: "`.partial_cmp(..).unwrap()` panics on NaN; \
                                  use `f64::total_cmp`"
                            .to_owned(),
                    });
                }
            }
            // Exact equality against a non-zero float literal. Exact
            // zero is exempt: `x == 0.0` is a well-defined sentinel
            // check used throughout the numeric code.
            if let TokenKind::Num { float: true, text } = &tokens[i].kind {
                if float_value(text) == Some(0.0) {
                    continue;
                }
                if float_eq_context(tokens, i) {
                    out.push(Finding {
                        path: ctx.rel_path.to_owned(),
                        line: tokens[i].line,
                        col: tokens[i].col,
                        rule: self.id(),
                        message: format!(
                            "exact `==`/`!=` against float literal `{text}`; compare with a \
                             tolerance or use `total_cmp` (exact zero is exempt)"
                        ),
                    });
                }
            }
        }
    }
}

/// Is the float literal at `i` the operand of `==` or `!=`?
fn float_eq_context(tokens: &[crate::lexer::Token], i: usize) -> bool {
    // `x == 1.5` / `x != 1.5`
    if i >= 2 && tokens[i - 1].is_punct('=') {
        if tokens[i - 2].is_punct('!') {
            return true;
        }
        if tokens[i - 2].is_punct('=') {
            // Exclude `<=`, `>=` (single `=`), and malformed runs.
            let before = i.checked_sub(3).map(|k| &tokens[k].kind);
            let shadowed = matches!(
                before,
                Some(TokenKind::Punct('<' | '>' | '=' | '!'))
            );
            return !shadowed;
        }
    }
    // `1.5 == x` / `1.5 != x`
    if let (Some(a), Some(b)) = (tokens.get(i + 1), tokens.get(i + 2)) {
        if b.is_punct('=') && (a.is_punct('=') || a.is_punct('!')) {
            return !tokens.get(i + 3).is_some_and(|t| t.is_punct('='));
        }
    }
    false
}

//! `metric-name-drift` — every telemetry key literal is registered and
//! documented.
//!
//! PR 3's dashboards and PR 4's smoke checks address metrics by name;
//! a typo in one emit site (`pipeline.lp_secs` vs
//! `pipeline.lp_seconds`) silently splits a series and every consumer
//! downstream reads zeros. The registry
//! (`harmony_telemetry::keys::REGISTERED_KEYS`) is the single source
//! of truth; this rule checks the three-way agreement between emit
//! sites, the registry, and DESIGN.md §9.2:
//!
//! * every string passed to `.counter()` / `.gauge()` / `.histogram()`
//!   / `.timer()` / `.time()` must be registered;
//! * every key-shaped string literal under a registered namespace
//!   (`sim.`, `lp.`, …) must be registered, which also catches keys
//!   routed through tables or helper fns rather than direct calls;
//! * registry duplicates and registered-but-undocumented keys are
//!   reported against the registry file itself (see
//!   [`crate::rules::registry_findings`]).
//!
//! Dynamic keys (`format!("server.requests.{}", verb)`) are covered by
//! `REGISTERED_PREFIXES`; the `{}` placeholder keeps the format string
//! itself from matching the key shape.

use std::collections::BTreeSet;

use crate::engine::{Ctx, Finding};
use crate::lexer::TokenKind;
use crate::rules::{key_shaped, Rule, METRIC_NAME_DRIFT};

/// Registry methods taking a key as their first argument.
const SINKS: &[&str] = &["counter", "gauge", "histogram", "timer", "time"];

pub struct MetricDrift;

impl Rule for MetricDrift {
    fn id(&self) -> &'static str {
        METRIC_NAME_DRIFT
    }

    fn describe(&self) -> &'static str {
        "telemetry key literal absent from the keys registry (or registered but undocumented)"
    }

    fn check(&self, ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
        if ctx.rel_path == ctx.drift.keys_path || ctx.drift.keys.is_empty() {
            return;
        }
        let tokens = &ctx.model.tokens;
        let mut flagged: BTreeSet<usize> = BTreeSet::new();
        for i in 0..tokens.len() {
            if ctx.model.in_test[i] {
                continue;
            }
            // Direct sink call: `.counter("...")` etc.
            if tokens[i].ident().is_some_and(|n| SINKS.contains(&n))
                && i > 0
                && tokens[i - 1].is_punct('.')
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                if let Some(TokenKind::Str(key)) = tokens.get(i + 2).map(|t| &t.kind) {
                    if !ctx.drift.is_registered(key) && flagged.insert(i + 2) {
                        out.push(self.finding(ctx, i + 2, key));
                    }
                }
            }
            // Key-shaped literal under a registered namespace — covers
            // tables like `[("sim.events.arrival", n), ..]`.
            if let TokenKind::Str(value) = &tokens[i].kind {
                let namespace = value.split('.').next().unwrap_or("");
                if key_shaped(value)
                    && ctx.drift.namespaces.contains(namespace)
                    && !ctx.drift.is_registered(value)
                    && flagged.insert(i)
                {
                    out.push(self.finding(ctx, i, value));
                }
            }
        }
    }
}

impl MetricDrift {
    fn finding(&self, ctx: &Ctx<'_>, idx: usize, key: &str) -> Finding {
        let t = &ctx.model.tokens[idx];
        Finding {
            path: ctx.rel_path.to_owned(),
            line: t.line,
            col: t.col,
            rule: self.id(),
            message: format!(
                "telemetry key \"{key}\" is not in harmony_telemetry::keys::REGISTERED_KEYS; \
                 register it there and document it in DESIGN.md §9.2"
            ),
        }
    }
}

//! `panic-path` — interprocedural panic reachability from public
//! library entry points.
//!
//! The PR 5 `panic-in-lib` rule flagged every `unwrap` token in a lib
//! file, which had two failure modes: it could not tell a panic buried
//! in a private helper nobody calls from one sitting on the daemon's
//! request path, and it was blind to `harmonyd`'s real exposure —
//! indexing and panicking macros reached *through* helpers. This rule
//! replaces it: a panic site is a finding iff its containing fn is
//! reachable from a `pub` fn of a library crate over the call graph,
//! and the message prints the witness path so the reviewer sees how
//! the panic gets reached, not just where it lives.
//!
//! Sites: `.unwrap()` / `.expect(..)`, the panicking macros
//! (`panic!`, `unreachable!`, `todo!`, `unimplemented!`), and — in
//! `crates/server/src/`, where a panic kills a serving daemon —
//! computed (non-literal, non-range) indexing. The standard clippy
//! allow names (`clippy::unwrap_used`, ...) suppress a site, so one
//! attribute satisfies both this linter and clippy's CI audit.

use crate::ast::Expr;
use crate::callgraph::CallGraph;
use crate::dataflow::walk_fn;
use crate::engine::{FileKind, Finding};
use crate::rules::{WsRule, PANIC_PATH};
use crate::symbols::Workspace;

/// Panicking methods and the clippy allow name that waives each.
const METHODS: &[(&str, &str)] =
    &[("unwrap", "clippy::unwrap_used"), ("expect", "clippy::expect_used")];
/// Panicking macros and their clippy allow names.
const MACROS: &[(&str, &str)] = &[
    ("panic", "clippy::panic"),
    ("unreachable", "clippy::unreachable"),
    ("todo", "clippy::todo"),
    ("unimplemented", "clippy::unimplemented"),
];
/// Computed indexing is only a finding where a panic kills the daemon.
const INDEX_SCOPE: &str = "crates/server/src/";
const INDEX_ALLOW: &str = "clippy::indexing_slicing";

pub struct PanicPath;

impl WsRule for PanicPath {
    fn id(&self) -> &'static str {
        PANIC_PATH
    }

    fn describe(&self) -> &'static str {
        "no unwrap/expect/panic!/computed indexing in library code reachable from a pub entry point (witness path reported)"
    }

    fn check(&self, ws: &Workspace<'_>, cg: &CallGraph, out: &mut Vec<Finding>) {
        let seeds: Vec<usize> = ws
            .fns
            .iter()
            .enumerate()
            .filter(|(i, f)| {
                f.node.is_pub && !f.in_test && ws.file_of(*i).kind == FileKind::Lib
            })
            .map(|(i, _)| i)
            .collect();
        let reached = cg.reached(&seeds);
        let pred = cg.reach_forward(&seeds);

        for (i, entry) in ws.fns.iter().enumerate() {
            if entry.in_test || !reached[i] {
                continue;
            }
            let file = ws.file_of(i);
            if file.kind != FileKind::Lib {
                continue;
            }
            let index_scope = file.rel_path.starts_with(INDEX_SCOPE);
            walk_fn(entry.node, &mut |e| {
                let (tok, what, clippy) = match e {
                    Expr::MethodCall { name, tok, .. } => {
                        match METHODS.iter().find(|(m, _)| m == name) {
                            Some((m, clippy)) => (*tok, format!("`.{m}()`"), *clippy),
                            None => return,
                        }
                    }
                    Expr::Macro { name, tok, .. } => {
                        match MACROS.iter().find(|(m, _)| m == name) {
                            Some((m, clippy)) => (*tok, format!("`{m}!`"), *clippy),
                            None => return,
                        }
                    }
                    Expr::Index { index, tok, .. } if index_scope => match index.as_ref() {
                        // Literal and range indices are the reviewed,
                        // bounds-obvious idioms; computed indices are
                        // where chaos runs actually die.
                        Expr::Lit { .. } | Expr::Range { .. } => return,
                        _ => (*tok, "computed indexing".to_owned(), INDEX_ALLOW),
                    },
                    _ => return,
                };
                if file.model.in_test.get(tok).copied().unwrap_or(false)
                    || file.model.allowed(tok, clippy)
                    || file.model.allowed(tok, PANIC_PATH)
                {
                    return;
                }
                let Some(token) = file.model.tokens.get(tok) else { return };
                out.push(Finding {
                    path: file.rel_path.clone(),
                    line: token.line,
                    col: token.col,
                    rule: PANIC_PATH,
                    message: format!(
                        "{what} can panic and is {}; return an error or prove the invariant \
                         with a non-panicking pattern",
                        witness(ws, &pred, i)
                    ),
                });
            });
        }
    }
}

/// Renders how fn `i` is reached from the public surface:
/// `` reachable from pub `Service::handle` via `dispatch` -> `persist` ``.
fn witness(ws: &Workspace<'_>, pred: &[Option<(usize, usize)>], i: usize) -> String {
    let mut chain = vec![i];
    let mut at = i;
    while let Some((caller, _)) = pred[at] {
        at = caller;
        chain.push(at);
        if chain.len() > 8 {
            break;
        }
    }
    chain.reverse();
    if chain.len() == 1 {
        return format!("in pub fn `{}`", ws.fns[i].qual);
    }
    let entry = &ws.fns[chain[0]].qual;
    let via: Vec<String> = chain[1..]
        .iter()
        .take(3)
        .map(|&f| format!("`{}`", ws.fns[f].qual))
        .collect();
    let ellipsis = if chain.len() > 4 { " -> ..." } else { "" };
    format!("reachable from pub `{entry}` via {}{ellipsis}", via.join(" -> "))
}

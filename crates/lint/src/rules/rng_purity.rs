//! `rng-purity` — every RNG stream in the deterministic crates is
//! seeded from a seed parameter or config field.
//!
//! PR 7 established the independent-stream contract: each subsystem
//! derives its RNG from an explicit seed (`config.seed ^ STREAM_CONST`
//! and friends), so replays are bit-identical and streams never
//! correlate. Three ways to break it, all invisible to rustc:
//!
//! * **entropy seeding** — `thread_rng()`, `from_entropy()`, or a seed
//!   derived from `Instant::now()` / `SystemTime` smuggles wall-clock
//!   entropy into a replayed run;
//! * **constant seeding** — `SplitMix64::new(42)` in library code
//!   collapses every caller onto one stream and hides seed plumbing
//!   bugs (tests pin seeds deliberately and are exempt);
//! * **cross-stream reuse** — two RNGs built in one fn from the same
//!   seed expression produce correlated streams, the exact bug the
//!   per-stream XOR constants exist to prevent.
//!
//! The rule tracks seed taint through let-bindings flow-sensitively:
//! a local assigned from an entropy-tainted expression taints every
//! construction it feeds. Scope: `crates/sim`, `crates/trace`,
//! `crates/pricing`, `server::chaos`, and (entropy checks only, where
//! determinism is a replay contract rather than a library invariant)
//! `crates/bench`.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Expr, Item};
use crate::dataflow::{fingerprint, walk_expr};
use crate::engine::{Ctx, Finding};
use crate::rules::{Rule, RNG_PURITY};

/// Full-purity scope: seed dataflow + constants + reuse.
const SCOPE: &[&str] = &["crates/sim/src/", "crates/trace/src/", "crates/pricing/src/"];
/// Single-file scopes inside other crates.
const SCOPE_FILES: &[&str] = &["crates/server/src/chaos.rs"];
/// Entropy-only scope: constructions from entropy are flagged, but
/// constant seeds are fine (benches pin scenario seeds by design).
const SCOPE_ENTROPY_ONLY: &[&str] = &["crates/bench/src/"];

/// RNG types whose `new(seed)` is a seeded construction.
const RNG_TYPES: &[&str] = &["SplitMix64", "StdRng", "ChaCha8Rng", "SmallRng"];
/// Qualified constructors taking a seed as first argument.
const SEEDED_CTORS: &[&str] = &["seed_from_u64", "from_seed", "new"];
/// Constructions that are entropy-seeded by definition.
const ENTROPY_CTORS: &[&str] = &["thread_rng", "from_entropy", "from_os_rng", "os_rng"];
/// Names that mark an expression as entropy-derived when they appear
/// anywhere in its dataflow.
const ENTROPY_MARKS: &[&str] = &[
    "thread_rng",
    "from_entropy",
    "OsRng",
    "now",
    "elapsed",
    "as_nanos",
    "subsec_nanos",
    "as_millis",
    "random",
    "Instant",
    "SystemTime",
];

pub struct RngPurity;

/// How a seed expression classifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Taint {
    /// Touches an entropy source.
    Entropy,
    /// Literals and named constants only — no caller-supplied input.
    Constant,
    /// Derived from parameters, fields, or calls: deterministic.
    Derived,
}

impl Rule for RngPurity {
    fn id(&self) -> &'static str {
        RNG_PURITY
    }

    fn describe(&self) -> &'static str {
        "RNG constructions must dataflow from a seed parameter or config field — no entropy, no library-constant seeds, no cross-stream seed reuse"
    }

    fn check(&self, ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
        let full = SCOPE.iter().any(|p| ctx.rel_path.starts_with(p))
            || SCOPE_FILES.contains(&ctx.rel_path);
        let entropy_only =
            !full && SCOPE_ENTROPY_ONLY.iter().any(|p| ctx.rel_path.starts_with(p));
        if !full && !entropy_only {
            return;
        }
        let mut fns = Vec::new();
        collect_fns(&ctx.ast.items, &mut fns);
        for f in fns {
            self.check_fn(ctx, f, full, out);
        }
    }
}

impl RngPurity {
    fn check_fn(&self, ctx: &Ctx<'_>, f: &crate::ast::Fn, full: bool, out: &mut Vec<Finding>) {
        if ctx.model.in_test.get(f.tok).copied().unwrap_or(false) {
            return;
        }
        // Flow-sensitive local taint: walk the body in order; `let`
        // inits classify against the locals tainted so far.
        let mut locals: BTreeMap<String, Taint> = BTreeMap::new();
        let mut seed_prints: BTreeSet<String> = BTreeSet::new();
        let mut sites: Vec<(usize, Taint, Option<String>)> = Vec::new();

        // Statement order approximates evaluation order closely enough
        // for straight-line seed plumbing, which is all the codebase
        // has (seeds are derived near the construction site).
        visit_in_order(f, &mut |stmt_names, e| match stmt_names {
            // A subexpression in evaluation order: scan constructions.
            None => {
                if let Some((tok, seed)) = seeded_construction(e) {
                    match seed {
                        Some(seed_expr) => {
                            let taint = classify(seed_expr, &locals);
                            let print = fingerprint(seed_expr, &ctx.model.tokens);
                            let reused = !seed_prints.insert(print.clone());
                            sites.push((tok, taint, reused.then_some(print)));
                        }
                        None => sites.push((tok, Taint::Entropy, None)),
                    }
                }
            }
            // A completed `let`: propagate taint to the bindings.
            Some(names) => {
                let taint = classify(e, &locals);
                for name in names {
                    locals.insert(name.clone(), taint);
                }
            }
        });

        for (tok, taint, reuse) in sites {
            if ctx.model.in_test.get(tok).copied().unwrap_or(false) {
                continue;
            }
            let Some(token) = ctx.model.tokens.get(tok) else { continue };
            let at = |message: String| Finding {
                path: ctx.rel_path.to_owned(),
                line: token.line,
                col: token.col,
                rule: RNG_PURITY,
                message,
            };
            match taint {
                Taint::Entropy => out.push(at(
                    "RNG construction is entropy-seeded; derive the seed from a seed \
                     parameter or config field so replays are bit-identical"
                        .to_owned(),
                )),
                Taint::Constant if full => out.push(at(
                    "RNG seeded from a constant in library code; thread the seed in from \
                     config (tests may pin seeds, libraries must not)"
                        .to_owned(),
                )),
                _ => {}
            }
            if let Some(print) = reuse {
                if full {
                    out.push(at(format!(
                        "second RNG stream built from the same seed expression `{print}` in \
                         one fn; XOR a distinct stream constant so the streams stay independent"
                    )));
                }
            }
        }
    }
}

/// Collects every fn node in the file (nested in mods/impls too).
fn collect_fns<'a>(items: &'a [Item], out: &mut Vec<&'a crate::ast::Fn>) {
    for item in items {
        match item {
            Item::Fn(f) => out.push(f),
            Item::Impl(i) => collect_fns(&i.items, out),
            Item::Mod(m) => collect_fns(&m.items, out),
            Item::Other { .. } => {}
        }
    }
}

/// Walks let-statements and expressions of a fn body in source order,
/// invoking `cb(binding_names_if_let, expr)`.
fn visit_in_order<'a>(
    f: &'a crate::ast::Fn,
    cb: &mut impl FnMut(Option<&'a [String]>, &'a Expr),
) {
    let Some(body) = &f.body else { return };
    visit_block(body, cb);
}

fn visit_block<'a>(
    b: &'a crate::ast::Block,
    cb: &mut impl FnMut(Option<&'a [String]>, &'a Expr),
) {
    for stmt in &b.stmts {
        match stmt {
            crate::ast::Stmt::Let { names, init, els, .. } => {
                if let Some(e) = init {
                    walk_expr(e, &mut |sub| cb(None, sub));
                    cb(Some(names.as_slice()), e);
                }
                if let Some(blk) = els {
                    visit_block(blk, cb);
                }
            }
            crate::ast::Stmt::Expr(e) => walk_expr(e, &mut |sub| cb(None, sub)),
            crate::ast::Stmt::Item(Item::Fn(nested)) => {
                if let Some(body) = &nested.body {
                    visit_block(body, cb);
                }
            }
            crate::ast::Stmt::Item(_) => {}
        }
    }
}

/// Recognizes an RNG construction; returns `(report_token,
/// Some(seed_expr))` for seeded ctors, `(tok, None)` for entropy ctors.
fn seeded_construction(e: &Expr) -> Option<(usize, Option<&Expr>)> {
    match e {
        Expr::Call { callee, args, tok } => {
            let Expr::Path { segs, .. } = callee.as_ref() else { return None };
            let last = segs.last().map(String::as_str)?;
            if ENTROPY_CTORS.contains(&last) {
                return Some((*tok, None));
            }
            if segs.len() >= 2 {
                let ty = &segs[segs.len() - 2];
                let typed = RNG_TYPES.contains(&ty.as_str());
                if typed && SEEDED_CTORS.contains(&last) {
                    return Some((*tok, args.first()));
                }
                // `SomeRng::from_entropy()` with zero args.
                if typed && ENTROPY_CTORS.contains(&last) {
                    return Some((*tok, None));
                }
            }
            None
        }
        Expr::MethodCall { name, .. } if ENTROPY_CTORS.contains(&name.as_str()) => {
            e.tok().map(|t| (t, None))
        }
        _ => None,
    }
}

/// Classifies a seed expression against the current local taints.
fn classify(e: &Expr, locals: &BTreeMap<String, Taint>) -> Taint {
    let mut entropy = false;
    let mut derived = false;
    walk_expr(e, &mut |sub| match sub {
        Expr::Path { segs, .. } => {
            for seg in segs {
                if ENTROPY_MARKS.contains(&seg.as_str()) {
                    entropy = true;
                }
            }
            if let [single] = segs.as_slice() {
                match locals.get(single) {
                    Some(Taint::Entropy) => entropy = true,
                    Some(Taint::Derived) => derived = true,
                    Some(Taint::Constant) => {}
                    None => {
                        // Unknown single ident: a parameter, `self`, or
                        // an out-of-scope binding — caller-supplied.
                        if !single.chars().next().is_some_and(char::is_uppercase) {
                            derived = true;
                        }
                    }
                }
            }
        }
        Expr::MethodCall { name, .. } if ENTROPY_MARKS.contains(&name.as_str()) => {
            entropy = true;
        }
        Expr::Field { .. } => derived = true,
        _ => {}
    });
    if entropy {
        Taint::Entropy
    } else if derived {
        Taint::Derived
    } else {
        Taint::Constant
    }
}

//! `panic-in-lib` — library code must not contain reachable panics.
//!
//! Subsumes and extends the CI clippy unwrap audit (PR 1/PR 3): a
//! panic anywhere in the provisioning stack takes down `harmonyd` and
//! every connection with it, so `unwrap`/`expect` and the panic macros
//! are banned in library crates. The sanctioned escape hatch is the
//! same one the clippy audit uses — a scoped `#[allow(clippy::…)]`
//! whose comment cites the invariant that makes the panic unreachable —
//! and this rule honors those attributes, so one annotation satisfies
//! both gates. Binaries, examples, tests, and `#[cfg(test)]` modules
//! are out of scope; `assert!`/`debug_assert!` remain available for
//! contract checks.

use crate::engine::{Ctx, FileKind, Finding};
use crate::rules::{is_method_call, Rule, PANIC_IN_LIB};

pub struct PanicInLib;

/// `(method, clippy lint honored as an allow)`.
const METHODS: &[(&str, &str)] = &[
    ("unwrap", "clippy::unwrap_used"),
    ("expect", "clippy::expect_used"),
];

/// `(macro, clippy lint honored as an allow)`.
const MACROS: &[(&str, &str)] = &[
    ("panic", "clippy::panic"),
    ("unreachable", "clippy::unreachable"),
    ("todo", "clippy::todo"),
    ("unimplemented", "clippy::unimplemented"),
];

impl Rule for PanicInLib {
    fn id(&self) -> &'static str {
        PANIC_IN_LIB
    }

    fn describe(&self) -> &'static str {
        "unwrap/expect/panic!-family in library code outside a scoped, reasoned #[allow]"
    }

    fn check(&self, ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
        if ctx.kind != FileKind::Lib {
            return;
        }
        let tokens = &ctx.model.tokens;
        for i in 0..tokens.len() {
            if ctx.model.in_test[i] {
                continue;
            }
            for (method, lint) in METHODS {
                if is_method_call(tokens, i, method) && !ctx.model.allowed(i, lint) {
                    out.push(Finding {
                        path: ctx.rel_path.to_owned(),
                        line: tokens[i].line,
                        col: tokens[i].col,
                        rule: self.id(),
                        message: format!(
                            "`.{method}()` in library code can panic the daemon; return an \
                             error, or add `#[allow({lint})]` citing the invariant"
                        ),
                    });
                }
            }
            for (mac, lint) in MACROS {
                if tokens[i].ident() == Some(mac)
                    && tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
                    && !ctx.model.allowed(i, lint)
                {
                    out.push(Finding {
                        path: ctx.rel_path.to_owned(),
                        line: tokens[i].line,
                        col: tokens[i].col,
                        rule: self.id(),
                        message: format!(
                            "`{mac}!` in library code; return an error, or add \
                             `#[allow({lint})]` citing the invariant"
                        ),
                    });
                }
            }
        }
    }
}

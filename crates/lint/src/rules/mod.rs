//! The rule set.
//!
//! Each rule guards an invariant a previous PR established and the
//! compiler cannot see (see DESIGN.md §12 and §17 for the rule-by-rule
//! rationale). Two shapes exist: per-file [`Rule`]s (token- or
//! AST-level pattern matchers over one file, cacheable by content
//! hash) and workspace [`WsRule`]s (interprocedural analyses over the
//! symbol table and call graph built by [`crate::engine`]).

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use crate::callgraph::CallGraph;
use crate::engine::{Ctx, Finding};
use crate::lexer::{lex, Token, TokenKind};
use crate::symbols::Workspace;

mod checkpoint_compat;
mod float_ordering;
mod lock_discipline;
mod metric_drift;
mod nondet_iter;
mod panic_path;
mod rng_purity;
mod wall_clock;

pub const NONDETERMINISTIC_ITERATION: &str = "nondeterministic-iteration";
pub const FLOAT_ORDERING: &str = "float-ordering";
pub const WALL_CLOCK_IN_SIM: &str = "wall-clock-in-sim";
pub const METRIC_NAME_DRIFT: &str = "metric-name-drift";
pub const RNG_PURITY: &str = "rng-purity";
pub const CHECKPOINT_COMPAT: &str = "checkpoint-compat";
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
pub const PANIC_PATH: &str = "panic-path";

/// A per-file lint rule: inspects one file, appends findings. Results
/// depend only on that file (plus the shared [`DriftData`]), so they
/// are cacheable by content hash.
pub trait Rule {
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    fn check(&self, ctx: &Ctx<'_>, out: &mut Vec<Finding>);
}

/// A workspace rule: runs over the full symbol table and call graph.
/// Never cached — interprocedural facts change when any file does.
pub trait WsRule {
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;
    fn check(&self, ws: &Workspace<'_>, graph: &CallGraph, out: &mut Vec<Finding>);
}

/// Every per-file rule, in reporting order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(nondet_iter::NondetIter),
        Box::new(float_ordering::FloatOrdering),
        Box::new(wall_clock::WallClock),
        Box::new(metric_drift::MetricDrift),
        Box::new(rng_purity::RngPurity),
        Box::new(checkpoint_compat::CheckpointCompat),
    ]
}

/// Every workspace rule, in reporting order.
pub fn workspace() -> Vec<Box<dyn WsRule>> {
    vec![Box::new(lock_discipline::LockDiscipline), Box::new(panic_path::PanicPath)]
}

/// Every rule id, for `--rule` validation and `--list-rules`.
pub fn known_ids() -> Vec<&'static str> {
    let mut ids: Vec<&'static str> = all().iter().map(|r| r.id()).collect();
    ids.extend(workspace().iter().map(|r| r.id()));
    ids
}

/// Shared helper: index of the `)` matching the `(` at `open` (or the
/// stream end when unbalanced).
pub(crate) fn match_paren(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

/// The telemetry key registry plus the documented-name set from
/// DESIGN.md, shared by the `metric-name-drift` rule.
#[derive(Debug, Default)]
pub struct DriftData {
    /// `(key, line-in-keys.rs)` in declaration order.
    pub keys: Vec<(String, u32)>,
    /// Dynamic prefixes, e.g. `server.requests.`.
    pub prefixes: Vec<(String, u32)>,
    /// Concrete names documented in DESIGN.md (brace forms expanded).
    pub documented: BTreeSet<String>,
    /// Prefixes documented via `<placeholder>` forms.
    pub documented_prefixes: BTreeSet<String>,
    /// First segments of registered keys; string literals under these
    /// namespaces must be registered.
    pub namespaces: BTreeSet<String>,
    /// Workspace-relative path of the registry source.
    pub keys_path: String,
}

pub(crate) const KEYS_PATH: &str = "crates/telemetry/src/keys.rs";

impl DriftData {
    /// Loads the registry and DESIGN.md from the workspace root.
    ///
    /// # Errors
    ///
    /// Returns a message when the registry file is missing or holds no
    /// keys (a broken registry must not silently disable the rule).
    pub fn load(root: &Path) -> Result<DriftData, String> {
        let keys_file = root.join(KEYS_PATH);
        let src = fs::read_to_string(&keys_file)
            .map_err(|e| format!("read {}: {e}", keys_file.display()))?;
        let tokens = lex(&src);
        let keys = string_array(&tokens, "REGISTERED_KEYS");
        let prefixes = string_array(&tokens, "REGISTERED_PREFIXES");
        if keys.is_empty() {
            return Err(format!("{KEYS_PATH}: found no REGISTERED_KEYS entries"));
        }
        let namespaces = keys
            .iter()
            .filter_map(|(k, _)| k.split('.').next())
            .map(str::to_owned)
            .collect();
        let mut data = DriftData {
            keys,
            prefixes,
            namespaces,
            keys_path: KEYS_PATH.to_owned(),
            ..DriftData::default()
        };
        let design = fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
        scan_documented(&design, &mut data.documented, &mut data.documented_prefixes);
        Ok(data)
    }

    /// Whether a concrete key literal is sanctioned.
    pub fn is_registered(&self, name: &str) -> bool {
        self.keys.iter().any(|(k, _)| k == name)
            || self.prefixes.iter().any(|(p, _)| name.starts_with(p.as_str()))
    }
}

/// Collects the string literals of `const NAME: &[&str] = &[...];`
/// from a lexed file (first occurrence of `NAME` to the next `;`).
fn string_array(tokens: &[Token], name: &str) -> Vec<(String, u32)> {
    let Some(start) = tokens.iter().position(|t| t.ident() == Some(name)) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for t in tokens.iter().skip(start) {
        match &t.kind {
            TokenKind::Str(value) => out.push((value.clone(), t.line)),
            TokenKind::Punct(';') => break,
            _ => {}
        }
    }
    out
}

/// Does `name` look like a metric key: dotted lowercase path.
pub(crate) fn key_shaped(name: &str) -> bool {
    name.contains('.')
        && !name.starts_with('.')
        && !name.ends_with('.')
        && !name.contains("..")
        && name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_')
}

/// Extracts documented metric names from DESIGN.md: every
/// backtick-quoted span, with `{a,b,c}` alternation expanded and
/// `<placeholder>` forms recorded as prefixes.
fn scan_documented(text: &str, names: &mut BTreeSet<String>, prefixes: &mut BTreeSet<String>) {
    for span in text.split('`').skip(1).step_by(2) {
        if let Some(lt) = span.find('<') {
            let head = &span[..lt];
            if key_shaped(head.trim_end_matches('.')) && head.ends_with('.') {
                prefixes.insert(head.to_owned());
            }
            continue;
        }
        if let (Some(open), Some(close)) = (span.find('{'), span.find('}')) {
            if open < close {
                let (head, tail) = (&span[..open], &span[close + 1..]);
                for alt in span[open + 1..close].split(',') {
                    let name = format!("{head}{}{tail}", alt.trim());
                    if key_shaped(&name) {
                        names.insert(name);
                    }
                }
                continue;
            }
        }
        if key_shaped(span) {
            names.insert(span.to_owned());
        }
    }
}

/// Workspace-level registry checks: duplicate registration and
/// registered-but-undocumented keys, attributed to the registry file.
pub fn registry_findings(drift: &DriftData) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for (key, line) in &drift.keys {
        if !seen.insert(key.as_str()) {
            out.push(Finding {
                path: drift.keys_path.clone(),
                line: *line,
                col: 1,
                rule: METRIC_NAME_DRIFT,
                message: format!("telemetry key \"{key}\" is registered more than once"),
            });
        }
        if !drift.documented.contains(key) {
            out.push(Finding {
                path: drift.keys_path.clone(),
                line: *line,
                col: 1,
                rule: METRIC_NAME_DRIFT,
                message: format!(
                    "telemetry key \"{key}\" is registered but not documented in DESIGN.md"
                ),
            });
        }
    }
    for (prefix, line) in &drift.prefixes {
        if !drift.documented_prefixes.contains(prefix) {
            out.push(Finding {
                path: drift.keys_path.clone(),
                line: *line,
                col: 1,
                rule: METRIC_NAME_DRIFT,
                message: format!(
                    "telemetry prefix \"{prefix}\" has no `{prefix}<...>` form in DESIGN.md"
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documented_scan_expands_braces_and_placeholders() {
        let mut names = BTreeSet::new();
        let mut prefixes = BTreeSet::new();
        scan_documented(
            "Keys: `pipeline.{a,b}_seconds`, `lp.pivots`, and `server.requests.<verb>`; \
             prose like `Vec<f64>` or `harmony-lint` is ignored.",
            &mut names,
            &mut prefixes,
        );
        assert!(names.contains("pipeline.a_seconds"));
        assert!(names.contains("pipeline.b_seconds"));
        assert!(names.contains("lp.pivots"));
        assert!(prefixes.contains("server.requests."));
        assert!(!names.iter().any(|n| n.contains('<') || n.contains('-')));
    }

    #[test]
    fn key_shape() {
        assert!(key_shaped("sim.events.arrival"));
        assert!(!key_shaped("DESIGN.md"));
        assert!(!key_shaped("nodots"));
        assert!(!key_shaped(".leading"));
        assert!(!key_shaped("a..b"));
    }
}

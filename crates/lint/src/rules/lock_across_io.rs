//! `lock-across-io` — no socket or file I/O while a service lock is
//! held.
//!
//! `harmonyd` serializes access to `OnlineService` behind one
//! `RwLock`; every request handler takes it. An I/O call made while
//! the guard is live (a checkpoint write, a socket flush) stretches
//! the critical section by the full disk/network latency and stalls
//! every other connection — the exact tail-latency failure mode the
//! server's concurrency tests guard against. The rule tracks guard
//! lifetimes at token level:
//!
//! * an acquisition is `lock_read(..)` / `lock_write(..)` (the net.rs
//!   helpers) or a `.lock()` / `.read()` / `.write()` method call;
//! * the chain after it is walked — `unwrap` / `expect` /
//!   `unwrap_or_else` preserve the guard, any other method consumes it
//!   into a non-guard value and ends tracking;
//! * a preserved guard bound by `let` is live until the enclosing
//!   block closes or an explicit `drop(binding)`; a preserved guard
//!   heading a block expression (`if let Ok(g) = m.lock() { .. }`) is
//!   live to the matching brace; an unbound guard is live only for its
//!   own call chain.
//!
//! Any I/O name inside the live region is a finding — including I/O on
//! *other* objects, since the cost is holding the lock across the
//! wait, not the guard doing the writing.

use crate::engine::{Ctx, Finding};
use crate::lexer::{Token, TokenKind};
use crate::rules::{match_paren, Rule, LOCK_ACROSS_IO};

const SCOPE: &str = "crates/server/src/";

/// Method chain links that return the guard (or the guard itself).
const GUARD_PRESERVING: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Free/helper acquisition functions (take the lock by argument).
const ACQUIRE_FNS: &[&str] = &["lock_read", "lock_write"];

/// Lock methods that yield a guard.
const ACQUIRE_METHODS: &[&str] = &["lock", "read", "write"];

/// Names whose call means blocking I/O (methods, helpers, macros).
const IO_NAMES: &[&str] = &[
    "write_line",
    "read_line",
    "write_all",
    "flush",
    "sync_all",
    "save_checkpoint",
    "to_writer",
    "write",
    "writeln",
];

pub struct LockAcrossIo;

impl Rule for LockAcrossIo {
    fn id(&self) -> &'static str {
        LOCK_ACROSS_IO
    }

    fn describe(&self) -> &'static str {
        "socket/file I/O while a Mutex/RwLock guard is held in crates/server"
    }

    fn check(&self, ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
        if !ctx.rel_path.starts_with(SCOPE) {
            return;
        }
        let tokens = &ctx.model.tokens;
        for i in 0..tokens.len() {
            if ctx.model.in_test[i] {
                continue;
            }
            let Some(open) = acquisition(tokens, i) else {
                continue;
            };
            let mut cursor = match_paren(tokens, open);
            // Walk the method chain; report I/O called directly on the
            // guard, stop if a non-preserving method consumes it.
            let mut preserved = true;
            while let (Some(dot), Some(name_tok)) = (tokens.get(cursor + 1), tokens.get(cursor + 2))
            {
                if !dot.is_punct('.') {
                    break;
                }
                let Some(name) = name_tok.ident() else { break };
                if !tokens.get(cursor + 3).is_some_and(|t| t.is_punct('(')) {
                    break;
                }
                if IO_NAMES.contains(&name) {
                    out.push(self.finding(ctx, name_tok, name, tokens[i].line));
                    preserved = false;
                    break;
                }
                if !GUARD_PRESERVING.contains(&name) {
                    preserved = false;
                    break;
                }
                cursor = match_paren(tokens, cursor + 3);
            }
            if !preserved {
                continue;
            }
            // The chain ended with the guard still live. Find its
            // extent, then scan for I/O inside it.
            let Some((region_start, region_end)) = guard_region(tokens, i, cursor) else {
                continue;
            };
            let mut k = region_start;
            while k < region_end.min(tokens.len()) {
                if let Some(name) = tokens[k].ident() {
                    if name == "drop" && tokens.get(k + 1).is_some_and(|t| t.is_punct('(')) {
                        // Explicit drop: assume it releases the guard.
                        break;
                    }
                    let called = tokens.get(k + 1).is_some_and(|t| t.is_punct('(') || t.is_punct('!'));
                    if called && IO_NAMES.contains(&name) {
                        out.push(self.finding(ctx, &tokens[k], name, tokens[i].line));
                    }
                }
                k += 1;
            }
        }
    }
}

impl LockAcrossIo {
    fn finding(&self, ctx: &Ctx<'_>, at: &Token, name: &str, guard_line: u32) -> Finding {
        Finding {
            path: ctx.rel_path.to_owned(),
            line: at.line,
            col: at.col,
            rule: self.id(),
            message: format!(
                "`{name}` performs I/O while the lock acquired on line {guard_line} is held; \
                 drop the guard (or copy the data out) before the I/O"
            ),
        }
    }
}

/// If `tokens[i]` begins a guard acquisition, returns the index of its
/// opening `(`.
fn acquisition(tokens: &[Token], i: usize) -> Option<usize> {
    let name = tokens[i].ident()?;
    let open = i + 1;
    if !tokens.get(open)?.is_punct('(') {
        return None;
    }
    let prev = i.checked_sub(1).map(|k| &tokens[k]);
    if ACQUIRE_FNS.contains(&name) {
        // Skip the helper's own definition (`fn lock_read(...)`).
        if prev.is_some_and(|t| t.ident() == Some("fn")) {
            return None;
        }
        return Some(open);
    }
    if ACQUIRE_METHODS.contains(&name) && prev.is_some_and(|t| t.is_punct('.')) {
        // `.read()` / `.write()` / `.lock()` with no arguments — an
        // argument list means e.g. `file.write(buf)`, not a lock.
        if tokens.get(open + 1).is_some_and(|t| t.is_punct(')')) {
            return Some(open);
        }
    }
    None
}

/// Extent of a live guard whose chain ends at `chain_end` (the chain's
/// last token index): `Some((start, end))` token range to scan.
fn guard_region(tokens: &[Token], acq: usize, chain_end: usize) -> Option<(usize, usize)> {
    let next = tokens.get(chain_end + 1)?;
    if next.is_punct('{') {
        // Guard heads a block expression: live to the matching brace.
        return Some((chain_end + 2, matching_brace(tokens, chain_end + 1)));
    }
    if next.is_punct(';') && has_let(tokens, acq) {
        // Bound by `let`: live to the end of the enclosing block.
        return Some((chain_end + 2, enclosing_block_end(tokens, chain_end + 1)));
    }
    None
}

/// Was the statement containing `acq` introduced by `let`?
fn has_let(tokens: &[Token], acq: usize) -> bool {
    for k in (0..acq).rev() {
        match &tokens[k].kind {
            TokenKind::Punct(';' | '{' | '}') => return false,
            TokenKind::Ident(name) if name == "let" => return true,
            _ => {}
        }
    }
    false
}

/// Index of the `}` matching the `{` at `open` (or the stream end).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

/// Index of the `}` closing the block that contains token `from`.
fn enclosing_block_end(tokens: &[Token], from: usize) -> usize {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(from) {
        match t.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{build_model, Ctx, FileKind};
    use crate::rules::{DriftData, Rule};

    fn run(src: &str) -> Vec<String> {
        let model = build_model(src, FileKind::Lib);
        let drift = DriftData::default();
        let ctx = Ctx {
            rel_path: "crates/server/src/net.rs",
            kind: FileKind::Lib,
            model: &model,
            drift: &drift,
        };
        let mut out = Vec::new();
        LockAcrossIo.check(&ctx, &mut out);
        out.into_iter().map(|f| f.message).collect()
    }

    #[test]
    fn chained_io_on_guard_is_flagged() {
        let hits = run("fn f() { lock_read(&service).save_checkpoint(path); }");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].contains("save_checkpoint"));
    }

    #[test]
    fn bound_guard_live_across_io_is_flagged() {
        let hits = run(
            "fn f() { let mut svc = lock_write(service); svc.tick(); \
             svc.save_checkpoint(path); }",
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn guard_consumed_by_handler_is_not_flagged() {
        // `.handle(..)` consumes the guard at statement end; the later
        // socket write happens lock-free.
        let hits = run(
            "fn f() { let response = lock_write(service).handle(request); \
             stream.write_line(&response); }",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn explicit_drop_ends_the_region() {
        let hits = run(
            "fn f() { let svc = lock_read(&service); let s = svc.snapshot(); drop(svc); \
             stream.write_line(&s); }",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn lock_method_call_heading_a_block() {
        let hits = run("fn f() { if let Ok(g) = m.lock() { file.write_all(&g.bytes()); } }");
        assert_eq!(hits.len(), 1, "{hits:?}");
    }

    #[test]
    fn helper_definitions_are_ignored() {
        let hits = run(
            "fn lock_write(m: &M) -> G { m.write().unwrap_or_else(|e| e.into_inner()) }\n\
             fn lock_read(m: &M) -> G { m.read().unwrap_or_else(|e| e.into_inner()) }",
        );
        assert!(hits.is_empty(), "{hits:?}");
    }
}

//! `checkpoint-compat` — checkpointed structs must stay loadable by
//! fields, not luck.
//!
//! PR 2's crash/resume contract says a daemon built today must load a
//! checkpoint written by any earlier build of the same
//! `CHECKPOINT_VERSION`. PRs 4, 7, and 8 each added fields
//! (`pipeline_workers`, `lp_basis`, `objective`, `cost_dollars`,
//! `lp_backend`) and each had to re-discover the tolerant-deser idiom
//! by hand:
//!
//! ```text
//! match v.field("name") { Ok(Value::Null) | Err(_) => <default>, Ok(other) => ... }
//! ```
//!
//! This rule pins the baseline field schema of every checkpointed type
//! and parses the hand-written serde impls: a field read in
//! `from_value` that is *not* in the baseline must use the tolerant
//! match (an arm handling `Err`), or old checkpoints stop loading the
//! day the field ships. It also checks read/write symmetry: a field
//! read in `from_value` but never written by `to_value` would silently
//! take its default on every resume.
//!
//! Known limit: the baseline is a pinned constant, so renaming a
//! baseline field needs a rule update — which is the point; schema
//! changes should be loud.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Expr, Item};
use crate::dataflow::walk_fn;
use crate::engine::{Ctx, Finding};
use crate::lexer::TokenKind;
use crate::rules::{Rule, CHECKPOINT_COMPAT};

/// Baseline (required-allowed) fields per checkpointed type: the
/// schema as of the version-3 checkpoint format. Fields beyond these
/// must deserialize tolerantly.
const BASELINE: &[(&str, &[&str])] = &[
    (
        "HarmonyConfig",
        &[
            "control_period",
            "horizon",
            "epsilon",
            "omega",
            "slo_delay_secs",
            "utility_per_container_hour",
            "history_len",
            "arima_min_history",
            "demand_margin",
            "max_lp_pivots",
        ],
    ),
    ("ClassifierConfig", &["k_per_group", "k_max", "elbow_min_gain", "split_by_duration", "seed"]),
    ("IntegerPlan", &["machines", "quotas"]),
    ("ClassForecast", &["rates", "tier", "degraded"]),
    ("OnlineState", &["ticks", "errors", "histories", "last_plan", "pending_events"]),
    (
        "Checkpoint",
        &[
            "version",
            "config",
            "classifier",
            "source",
            "catalog",
            "state",
            "buffered",
            "total_observations",
        ],
    ),
    ("ClassifierSource", &["kind", "path", "format", "hash", "seed", "span_secs"]),
    ("CatalogSpec", &["name", "divisor"]),
    ("ObjectiveSpec", &["kind", "spot", "seed"]),
    ("Basis", &["cols", "n_cols"]),
];

pub struct CheckpointCompat;

impl Rule for CheckpointCompat {
    fn id(&self) -> &'static str {
        CHECKPOINT_COMPAT
    }

    fn describe(&self) -> &'static str {
        "checkpointed structs: fields beyond the pinned baseline must use the tolerant-deser match, and every field read must also be written"
    }

    fn check(&self, ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
        // Serialize-side keys per type, gathered first so the deser
        // pass can check read/write symmetry.
        let mut written: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
        for_impls(&ctx.ast.items, &mut |type_name, trait_name, f| {
            if trait_name == "Serialize" && f.name == "to_value" && baseline_entry(type_name).is_some()
            {
                let keys = written.entry(baseline_key(type_name)).or_default();
                collect_written_keys(ctx, f, keys);
            }
        });

        for_impls(&ctx.ast.items, &mut |type_name, trait_name, f| {
            if trait_name != "Deserialize" || f.name != "from_value" {
                return;
            }
            let Some(baseline) = baseline_entry(type_name) else { return };
            // Fields read through the tolerant match: the scrutinee is
            // the raw `v.field("name")` result (no `?`), and an arm
            // pattern handles `Err`.
            let mut tolerant: BTreeSet<String> = BTreeSet::new();
            walk_fn(f, &mut |e| {
                if let Expr::Match { scrutinee, arms } = e {
                    if let Some(name) = field_read(ctx, scrutinee) {
                        let handles_err = arms.iter().any(|arm| {
                            ctx.model.tokens[arm.pat.start..arm.pat.end.min(ctx.model.tokens.len())]
                                .iter()
                                .any(|t| t.ident() == Some("Err"))
                        });
                        if handles_err {
                            tolerant.insert(name);
                        }
                    }
                }
            });
            // Every field read anywhere in the impl.
            let mut reads: BTreeMap<String, usize> = BTreeMap::new();
            walk_fn(f, &mut |e| {
                if let Expr::MethodCall { name, args, tok, .. } = e {
                    if name == "field" && args.len() == 1 {
                        if let Some(key) = lit_str(ctx, args.first()) {
                            reads.entry(key).or_insert(*tok);
                        }
                    }
                }
            });
            let written_keys = written.get(baseline_key(type_name));
            for (field, tok) in &reads {
                let token = &ctx.model.tokens[(*tok).min(ctx.model.tokens.len() - 1)];
                let mut report = |message: String| {
                    out.push(Finding {
                        path: ctx.rel_path.to_owned(),
                        line: token.line,
                        col: token.col,
                        rule: CHECKPOINT_COMPAT,
                        message,
                    });
                };
                if !baseline.contains(&field.as_str()) && !tolerant.contains(field) {
                    report(format!(
                        "`{type_name}::{field}` is not in the pinned checkpoint baseline and is \
                         read without a tolerant default — old checkpoints written before this \
                         field existed will fail to load; use `match v.field(\"{field}\") {{ \
                         Ok(Value::Null) | Err(_) => <default>, .. }}`"
                    ));
                }
                if let Some(ws) = written_keys {
                    if !ws.is_empty() && !ws.contains(field) {
                        report(format!(
                            "`{type_name}::{field}` is read by from_value but never written by \
                             to_value — every resume would silently take the default"
                        ));
                    }
                }
            }
        });
    }
}

/// Canonical baseline key for a type name.
fn baseline_key(type_name: &str) -> &'static str {
    BASELINE
        .iter()
        .map(|(t, _)| *t)
        .find(|t| *t == type_name)
        .unwrap_or("")
}

fn baseline_entry(type_name: &str) -> Option<&'static [&'static str]> {
    BASELINE.iter().find(|(t, _)| *t == type_name).map(|(_, fields)| *fields)
}

/// Visits every fn inside `impl <Trait> for <Type>` blocks.
fn for_impls<'a>(items: &'a [Item], cb: &mut impl FnMut(&'a str, &'a str, &'a crate::ast::Fn)) {
    for item in items {
        match item {
            Item::Impl(i) => {
                if let Some(trait_name) = &i.trait_name {
                    for inner in &i.items {
                        if let Item::Fn(f) = inner {
                            cb(&i.type_name, trait_name, f);
                        }
                    }
                }
                for_impls(&i.items, cb);
            }
            Item::Mod(m) => for_impls(&m.items, cb),
            _ => {}
        }
    }
}

/// `v.field("name")` (possibly behind a reference), returning the key.
fn field_read(ctx: &Ctx<'_>, e: &Expr) -> Option<String> {
    match e {
        Expr::MethodCall { name, args, .. } if name == "field" && args.len() == 1 => {
            lit_str(ctx, args.first())
        }
        Expr::Unary { inner } => field_read(ctx, inner),
        _ => None,
    }
}

/// The string value of a `Lit` expression, if it is a string literal.
fn lit_str(ctx: &Ctx<'_>, e: Option<&Expr>) -> Option<String> {
    if let Some(Expr::Lit { tok }) = e {
        if let Some(TokenKind::Str(value)) = ctx.model.tokens.get(*tok).map(|t| &t.kind) {
            return Some(value.clone());
        }
    }
    None
}

/// Collects the field keys a `to_value` body writes:
/// `map.insert("key".to_owned(), ...)` and `object(&[("key", ...)])`.
fn collect_written_keys(ctx: &Ctx<'_>, f: &crate::ast::Fn, out: &mut BTreeSet<String>) {
    walk_fn(f, &mut |e| match e {
        Expr::MethodCall { name, args, .. } if name == "insert" && args.len() == 2 => {
            let key = match args.first() {
                Some(Expr::MethodCall { recv, name, .. }) if name == "to_owned" => {
                    lit_str(ctx, Some(recv))
                }
                other => lit_str(ctx, other),
            };
            if let Some(key) = key {
                out.insert(key);
            }
        }
        Expr::Tuple { items } if items.len() >= 2 => {
            if let Some(key) = lit_str(ctx, items.first()) {
                out.insert(key);
            }
        }
        _ => {}
    });
}

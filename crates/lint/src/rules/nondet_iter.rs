//! `nondeterministic-iteration` — no hash-ordered collections in
//! plan-affecting paths.
//!
//! PR 4's parallel pipeline asserts bit-identical plans across worker
//! counts and PR 2's checkpoint/resume replays a run event-for-event;
//! both break silently if any planner, controller, simulator, or
//! server path iterates a `HashMap`/`HashSet`, because hash iteration
//! order varies with the seed and across processes. Ordered collections
//! (or an explicit sort) make the order part of the code.

use crate::engine::{Ctx, FileKind, Finding};
use crate::rules::{Rule, NONDETERMINISTIC_ITERATION};

/// Crate paths whose behavior must be reproducible.
const SCOPE: &[&str] = &["crates/core/src/", "crates/sim/src/", "crates/server/src/"];

pub struct NondetIter;

impl Rule for NondetIter {
    fn id(&self) -> &'static str {
        NONDETERMINISTIC_ITERATION
    }

    fn describe(&self) -> &'static str {
        "HashMap/HashSet in planner, controller, sim, or server paths; use BTreeMap/BTreeSet"
    }

    fn check(&self, ctx: &Ctx<'_>, out: &mut Vec<Finding>) {
        if !matches!(ctx.kind, FileKind::Lib | FileKind::Bin) {
            return;
        }
        if !SCOPE.iter().any(|p| ctx.rel_path.starts_with(p)) {
            return;
        }
        for (i, token) in ctx.model.tokens.iter().enumerate() {
            if ctx.model.in_test[i] {
                continue;
            }
            let Some(name @ ("HashMap" | "HashSet")) = token.ident() else {
                continue;
            };
            out.push(Finding {
                path: ctx.rel_path.to_owned(),
                line: token.line,
                col: token.col,
                rule: self.id(),
                message: format!(
                    "`{name}` in a plan-affecting path: hash iteration order varies across \
                     runs; use `BTree{}` or sort before iterating",
                    &name[4..]
                ),
            });
        }
    }
}

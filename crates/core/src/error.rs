//! Error type for the HARMONY pipeline.

use std::error::Error;
use std::fmt;

/// Errors surfaced by the HARMONY pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum HarmonyError {
    /// Task classification failed (e.g. too few tasks for the requested
    /// number of classes).
    Classification(harmony_kmeans::KMeansError),
    /// Arrival-rate forecasting failed.
    Forecast(harmony_forecast::ForecastError),
    /// Container-count computation failed.
    Queueing(harmony_queueing::QueueingError),
    /// The CBS-RELAX program could not be solved.
    Optimization(harmony_lp::LpError),
    /// A configuration value is out of range.
    InvalidConfig {
        /// What is wrong.
        reason: String,
    },
    /// Not enough observed tasks to fit the pipeline.
    InsufficientData {
        /// What was being fitted.
        context: &'static str,
    },
}

impl fmt::Display for HarmonyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarmonyError::Classification(e) => write!(f, "task classification failed: {e}"),
            HarmonyError::Forecast(e) => write!(f, "workload prediction failed: {e}"),
            HarmonyError::Queueing(e) => write!(f, "container sizing failed: {e}"),
            HarmonyError::Optimization(e) => write!(f, "provisioning optimization failed: {e}"),
            HarmonyError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            HarmonyError::InsufficientData { context } => {
                write!(f, "not enough data to fit {context}")
            }
        }
    }
}

impl Error for HarmonyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HarmonyError::Classification(e) => Some(e),
            HarmonyError::Forecast(e) => Some(e),
            HarmonyError::Queueing(e) => Some(e),
            HarmonyError::Optimization(e) => Some(e),
            _ => None,
        }
    }
}

impl From<harmony_kmeans::KMeansError> for HarmonyError {
    fn from(e: harmony_kmeans::KMeansError) -> Self {
        HarmonyError::Classification(e)
    }
}

impl From<harmony_forecast::ForecastError> for HarmonyError {
    fn from(e: harmony_forecast::ForecastError) -> Self {
        HarmonyError::Forecast(e)
    }
}

impl From<harmony_queueing::QueueingError> for HarmonyError {
    fn from(e: harmony_queueing::QueueingError) -> Self {
        HarmonyError::Queueing(e)
    }
}

impl From<harmony_lp::LpError> for HarmonyError {
    fn from(e: harmony_lp::LpError) -> Self {
        HarmonyError::Optimization(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e: HarmonyError = harmony_lp::LpError::Infeasible.into();
        assert!(e.to_string().contains("infeasible"));
        assert!(e.source().is_some());
        let e = HarmonyError::InvalidConfig { reason: "w = 0".into() };
        assert!(e.to_string().contains("w = 0"));
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<HarmonyError>();
    }
}

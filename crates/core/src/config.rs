//! Top-level HARMONY configuration.

use harmony_model::{PriorityGroup, SimDuration};
use serde::{Deserialize, Serialize};

use crate::HarmonyError;

/// Calibration of the HARMONY control loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarmonyConfig {
    /// Control period (the formulation's time-interval length).
    pub control_period: SimDuration,
    /// MPC horizon `W` in control periods.
    pub horizon: usize,
    /// Machine-capacity violation budget ε for container sizing (Eq. 3).
    pub epsilon: f64,
    /// Over-provisioning factor ω ≥ 1 compensating bin-packing
    /// inefficiency (Eq. 17).
    pub omega: f64,
    /// SLO: target mean scheduling delay (seconds) per priority group,
    /// indexed by [`PriorityGroup::index`].
    pub slo_delay_secs: [f64; 3],
    /// Scheduling utility in dollars per container-hour per priority
    /// group — the slope of the (linear-capped) `f_n`.
    pub utility_per_container_hour: [f64; 3],
    /// How many control periods of arrival history to keep for the
    /// predictor.
    pub history_len: usize,
    /// Minimum history before trusting the ARIMA predictor (falls back
    /// to a moving average below this).
    pub arima_min_history: usize,
    /// Safety margin multiplied onto predicted arrival rates.
    pub demand_margin: f64,
    /// Hard simplex pivot budget for one CBS-RELAX solve. A pathological
    /// instance hits [`harmony_lp::LpError::IterationLimit`] instead of
    /// stalling the control loop; the controller then walks its
    /// degradation ladder (previous plan → greedy sizing → hold).
    pub max_lp_pivots: usize,
    /// Worker threads for the per-class forecast and container-sizing
    /// stages. `None` (the default) uses
    /// [`std::thread::available_parallelism`]; `Some(1)` forces the
    /// serial path. Plans are bit-identical for every setting — results
    /// are merged in deterministic class order — so this is purely a
    /// latency/footprint knob.
    pub pipeline_workers: Option<usize>,
    /// Which simplex engine solves CBS-RELAX. The sparse revised
    /// simplex (the default) is the production engine; the dense
    /// tableau is retained as a reference oracle and escape hatch.
    /// Both reach the same objective and honor the same warm-start
    /// protocol, so flipping this mid-deployment is safe — even across
    /// a checkpointed basis.
    pub lp_backend: harmony_lp::SolverBackend,
}

impl Default for HarmonyConfig {
    fn default() -> Self {
        HarmonyConfig {
            control_period: SimDuration::from_mins(10.0),
            horizon: 4,
            epsilon: 0.10,
            omega: 1.1,
            // Production wants near-immediate scheduling; gratis tolerates
            // queueing (Section III-B / Fig. 4).
            slo_delay_secs: [600.0, 120.0, 15.0],
            utility_per_container_hour: [0.02, 0.06, 0.25],
            history_len: 288,
            arima_min_history: 24,
            demand_margin: 1.25,
            max_lp_pivots: 20_000,
            pipeline_workers: None,
            lp_backend: harmony_lp::SolverBackend::Sparse,
        }
    }
}

impl HarmonyConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HarmonyError::InvalidConfig`] describing the first
    /// violated constraint.
    pub fn validate(&self) -> Result<(), HarmonyError> {
        if self.control_period.as_secs() <= 0.0 {
            return Err(HarmonyError::InvalidConfig {
                reason: "control period must be positive".into(),
            });
        }
        if self.horizon == 0 {
            return Err(HarmonyError::InvalidConfig { reason: "horizon must be >= 1".into() });
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(HarmonyError::InvalidConfig {
                reason: format!("epsilon must be in (0,1), got {}", self.epsilon),
            });
        }
        if self.omega < 1.0 {
            return Err(HarmonyError::InvalidConfig {
                reason: format!("omega must be >= 1, got {}", self.omega),
            });
        }
        if self.slo_delay_secs.iter().any(|&d| d <= 0.0) {
            return Err(HarmonyError::InvalidConfig {
                reason: "SLO delays must be positive".into(),
            });
        }
        if self.utility_per_container_hour.iter().any(|&u| u <= 0.0) {
            return Err(HarmonyError::InvalidConfig {
                reason: "utilities must be positive".into(),
            });
        }
        if self.demand_margin < 1.0 {
            return Err(HarmonyError::InvalidConfig {
                reason: format!("demand margin must be >= 1, got {}", self.demand_margin),
            });
        }
        if self.max_lp_pivots == 0 {
            return Err(HarmonyError::InvalidConfig {
                reason: "max LP pivots must be >= 1".into(),
            });
        }
        if self.pipeline_workers == Some(0) {
            return Err(HarmonyError::InvalidConfig {
                reason: "pipeline workers must be >= 1 when set".into(),
            });
        }
        Ok(())
    }

    /// SLO delay target for a group.
    pub fn slo_for(&self, group: PriorityGroup) -> f64 {
        self.slo_delay_secs[group.index()]
    }

    /// Utility slope for a group, in dollars per container-hour.
    pub fn utility_for(&self, group: PriorityGroup) -> f64 {
        self.utility_per_container_hour[group.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_ordered() {
        let c = HarmonyConfig::default();
        c.validate().unwrap();
        // Production has the tightest SLO and the highest utility.
        assert!(c.slo_for(PriorityGroup::Production) < c.slo_for(PriorityGroup::Gratis));
        assert!(c.utility_for(PriorityGroup::Production) > c.utility_for(PriorityGroup::Gratis));
    }

    #[test]
    fn validation_catches_each_field() {
        let base = HarmonyConfig::default();
        let mut c = base.clone();
        c.horizon = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.epsilon = 1.5;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.omega = 0.5;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.slo_delay_secs[1] = 0.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.utility_per_container_hour[0] = -1.0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.demand_margin = 0.9;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.max_lp_pivots = 0;
        assert!(c.validate().is_err());
        let mut c = base.clone();
        c.pipeline_workers = Some(0);
        assert!(c.validate().is_err());
        c.pipeline_workers = Some(4);
        assert!(c.validate().is_ok());
        let mut c = base;
        c.control_period = SimDuration::ZERO;
        assert!(c.validate().is_err());
    }
}

//! The incremental (online) HARMONY pipeline behind `harmonyd`.
//!
//! [`crate::pipeline`] wires the controllers into the discrete-event
//! simulator for batch replays; this module exposes the same monitor →
//! forecast → size → CBS-RELAX → round loop as a long-lived object that
//! is fed one control period of observations at a time — the shape a
//! real cluster manager (or the provisioning daemon) consumes. Unlike
//! the simulator controllers it holds no cluster reference: the previous
//! integer plan stands in for "machines currently active", which is
//! exactly what the daemon actuated last period.
//!
//! The pipeline's mutable state is small and fully serializable
//! ([`OnlineState`]): arrival histories, the previous plan, the tick
//! counter, the error count, and any degradation events not yet drained
//! by a client. [`OnlinePipeline::state`] / [`OnlinePipeline::restore`]
//! are the daemon's checkpoint/restore hooks; restoring a state into a
//! freshly-built pipeline (same trace-fitted classifier, same config)
//! reproduces the exact plan sequence an uninterrupted pipeline would
//! have produced, which the server crate's end-to-end test asserts
//! through a `kill -9`.

use std::collections::BTreeMap;

use harmony_model::{EnergyPrice, MachineCatalog, Resources, SimTime, Task, TaskClassId};
use harmony_sim::{DegradationEvent, DegradationKind};
use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};

use crate::cbs::{solve_cbs_relax_priced, CbsInputs, CbsObjective};
use crate::classify::TaskClassifier;
use crate::containers::ContainerManager;
use crate::monitor::{ArrivalMonitor, ClassForecast};
use crate::rounding::{round_first_step, IntegerPlan};
use crate::{HarmonyConfig, HarmonyError};

/// The serializable mutable state of an [`OnlinePipeline`] — everything
/// a checkpoint must carry so a restored pipeline continues the exact
/// decision sequence. The immutable parts (classifier, catalog, config)
/// are rebuilt deterministically from their sources and are not part of
/// this snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineState {
    /// Control ticks completed so far.
    pub ticks: u64,
    /// Ticks that failed the full pipeline and took a degradation rung.
    pub errors: usize,
    /// Per-class arrival-rate history (tasks/second).
    pub histories: Vec<Vec<f64>>,
    /// The last successfully-solved integer plan.
    pub last_plan: Option<IntegerPlan>,
    /// Degradation events not yet drained by a client.
    pub pending_events: Vec<DegradationEvent>,
    /// The previous period's optimal simplex basis. Checkpointed so a
    /// restored pipeline takes the same warm/cold solve path as an
    /// uninterrupted one — warm and cold solves may land on different
    /// (equal-objective) vertices, so dropping the basis across a
    /// restore would break bit-identical plan reproduction.
    pub lp_basis: Option<harmony_lp::Basis>,
    /// Cumulative first-step rental dollars actuated so far (stays 0.0
    /// under the energy objective).
    pub cost_dollars: f64,
}

impl Serialize for OnlineState {
    fn to_value(&self) -> Value {
        let mut map = BTreeMap::new();
        map.insert("ticks".to_owned(), self.ticks.to_value());
        map.insert("errors".to_owned(), self.errors.to_value());
        map.insert("histories".to_owned(), self.histories.to_value());
        map.insert("last_plan".to_owned(), self.last_plan.to_value());
        map.insert("pending_events".to_owned(), self.pending_events.to_value());
        map.insert("lp_basis".to_owned(), self.lp_basis.to_value());
        map.insert("cost_dollars".to_owned(), self.cost_dollars.to_value());
        Value::Object(map)
    }
}

impl Deserialize for OnlineState {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(OnlineState {
            ticks: u64::from_value(v.field("ticks")?)?,
            errors: usize::from_value(v.field("errors")?)?,
            histories: Vec::from_value(v.field("histories")?)?,
            last_plan: Option::from_value(v.field("last_plan")?)?,
            pending_events: Vec::from_value(v.field("pending_events")?)?,
            // Tolerate checkpoints written before warm starts existed.
            lp_basis: match v.field("lp_basis") {
                Ok(Value::Null) | Err(_) => None,
                Ok(other) => Some(Deserialize::from_value(other)?),
            },
            // Tolerate checkpoints written before the pricing subsystem.
            cost_dollars: match v.field("cost_dollars") {
                Ok(Value::Null) | Err(_) => 0.0,
                Ok(other) => f64::from_value(other)?,
            },
        })
    }
}

/// The long-lived online control pipeline: one [`OnlinePipeline::tick`]
/// per control period.
#[derive(Debug)]
pub struct OnlinePipeline {
    classifier: TaskClassifier,
    catalog: MachineCatalog,
    config: HarmonyConfig,
    price: EnergyPrice,
    objective: CbsObjective,
    manager: ContainerManager,
    monitor: ArrivalMonitor,
    last_plan: Option<IntegerPlan>,
    /// Previous period's optimal simplex basis (warm-starts the next
    /// CBS-RELAX solve; checkpointed in [`OnlineState`]).
    lp_basis: Option<harmony_lp::Basis>,
    ticks: u64,
    errors: usize,
    degradations: Vec<DegradationEvent>,
    /// Cumulative first-step rental dollars actuated so far (dollar
    /// objective only; checkpointed in [`OnlineState`]).
    cost_dollars: f64,
}

impl OnlinePipeline {
    /// Builds the pipeline from a fitted classifier and a machine
    /// catalog.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and container-sizing errors.
    pub fn new(
        classifier: TaskClassifier,
        catalog: MachineCatalog,
        config: HarmonyConfig,
        price: EnergyPrice,
    ) -> Result<Self, HarmonyError> {
        config.validate()?;
        let manager = ContainerManager::new(&classifier, &config)?;
        let monitor = ArrivalMonitor::new(
            classifier.classes().len(),
            config.control_period,
            config.history_len,
            config.arima_min_history,
        );
        Ok(OnlinePipeline {
            classifier,
            catalog,
            config,
            price,
            objective: CbsObjective::Energy,
            manager,
            monitor,
            last_plan: None,
            lp_basis: None,
            ticks: 0,
            errors: 0,
            degradations: Vec::new(),
            cost_dollars: 0.0,
        })
    }

    /// Provisions under `objective` instead of the default energy
    /// objective.
    #[must_use]
    pub fn with_objective(mut self, objective: CbsObjective) -> Self {
        self.objective = objective;
        self.lp_basis = None;
        self
    }

    /// The objective in effect.
    pub fn objective(&self) -> &CbsObjective {
        &self.objective
    }

    /// Cumulative first-step rental dollars actuated so far (0.0 under
    /// the energy objective).
    pub fn cost_dollars(&self) -> f64 {
        self.cost_dollars
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HarmonyConfig {
        &self.config
    }

    /// The machine catalog provisioned against.
    pub fn catalog(&self) -> &MachineCatalog {
        &self.catalog
    }

    /// The fitted classifier.
    pub fn classifier(&self) -> &TaskClassifier {
        &self.classifier
    }

    /// Number of task classes in the pipeline.
    pub fn n_classes(&self) -> usize {
        self.manager.n_classes()
    }

    /// Control ticks completed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Ticks that failed the full pipeline and degraded instead.
    pub fn error_count(&self) -> usize {
        self.errors
    }

    /// The logical clock: control periods completed × period length.
    pub fn now(&self) -> SimTime {
        SimTime::from_secs(self.ticks as f64 * self.config.control_period.as_secs())
    }

    /// The last successfully-solved plan, if any.
    pub fn last_plan(&self) -> Option<&IntegerPlan> {
        self.last_plan.as_ref()
    }

    /// Degradation events accumulated and not yet drained.
    pub fn pending_degradations(&self) -> &[DegradationEvent] {
        &self.degradations
    }

    /// Drains the degradation events accumulated since the last call.
    pub fn take_degradations(&mut self) -> Vec<DegradationEvent> {
        std::mem::take(&mut self.degradations)
    }

    /// Per-class tiered forecast from the current histories (does not
    /// advance the clock or record events).
    pub fn forecast_tiered(&self, horizon: usize) -> Vec<ClassForecast> {
        self.monitor.forecast_tiered(horizon)
    }

    /// One control period: records `arrived` into the monitor, forecasts
    /// over the MPC horizon, sizes containers, solves CBS-RELAX, and
    /// rounds to an [`IntegerPlan`]. `pending` is the unserved backlog
    /// that must be provisioned for immediately, on top of the forecast.
    ///
    /// Never fails: on a pipeline error the degradation ladder re-actuates
    /// the previous plan ([`DegradationKind::LpReusedPreviousPlan`]) or,
    /// lacking one, holds at zero capacity
    /// ([`DegradationKind::ControlHold`]), recording the event either way.
    pub fn tick(&mut self, arrived: &[Task], pending: &[Task]) -> IntegerPlan {
        let registry = harmony_telemetry::global();
        registry.counter("pipeline.ticks").inc();
        let _period_span = registry.timer("pipeline.period_seconds");
        let now = self.now();
        let span = registry.timer("pipeline.classify_seconds");
        self.monitor.record_period(arrived, &self.classifier);
        drop(span);
        let plan = match self.step(now, pending) {
            Ok(plan) => {
                self.last_plan = Some(plan.clone());
                plan
            }
            Err(err) => {
                self.errors += 1;
                // Force the next tick's solve cold: the basis may be
                // stale relative to whatever just failed.
                self.lp_basis = None;
                registry.counter("pipeline.errors").inc();
                if let Some(prev) = self.last_plan.clone() {
                    self.degrade(now, DegradationKind::LpReusedPreviousPlan, &err);
                    prev
                } else {
                    self.degrade(now, DegradationKind::ControlHold, &err);
                    IntegerPlan {
                        machines: vec![0; self.catalog.len()],
                        quotas: vec![vec![0; self.n_classes()]; self.catalog.len()],
                    }
                }
            }
        };
        self.ticks += 1;
        plan
    }

    fn degrade(&mut self, at: SimTime, kind: DegradationKind, err: &HarmonyError) {
        self.degradations.push(DegradationEvent { at, kind, detail: err.to_string() });
    }

    /// The full pipeline for one period (fallible half of
    /// [`OnlinePipeline::tick`]).
    fn step(&mut self, now: SimTime, pending: &[Task]) -> Result<IntegerPlan, HarmonyError> {
        let registry = harmony_telemetry::global();
        let n_classes = self.n_classes();
        // Per-class forecast and sizing fan out over scoped workers;
        // plans stay bit-identical for any worker count.
        let workers = crate::par::effective_workers(self.config.pipeline_workers, n_classes);
        registry.gauge("pipeline.workers").set(workers as f64);
        let span = registry.timer("pipeline.forecast_seconds");
        let tiered = self.monitor.forecast_tiered_with_workers(self.config.horizon, workers);
        drop(span);
        for (n, class_fc) in tiered.iter().enumerate() {
            if let Some(reason) = &class_fc.degraded {
                self.degradations.push(DegradationEvent {
                    at: now,
                    kind: DegradationKind::ForecastFallback { class: n, tier: class_fc.tier },
                    detail: reason.clone(),
                });
            }
        }

        let sizing_span = registry.timer("pipeline.sizing_seconds");
        let mut backlog = vec![0.0f64; n_classes];
        for task in pending {
            backlog[self.classifier.initial_label(task).0] += 1.0;
        }

        let rates: Vec<Vec<f64>> = tiered.into_iter().map(|c| c.rates).collect();
        let counts = self.manager.containers_for_rates(&rates, workers)?;
        let mut demand = vec![vec![0.0f64; n_classes]; self.config.horizon];
        for n in 0..n_classes {
            for (t, row) in demand.iter_mut().enumerate() {
                row[n] = counts[n][t] + backlog[n];
            }
        }
        drop(sizing_span);

        let container_sizes: Vec<Resources> =
            (0..n_classes).map(|n| self.manager.container_size(TaskClassId(n))).collect();
        let utility: Vec<f64> = self
            .classifier
            .classes()
            .iter()
            .map(|c| self.config.utility_for(c.group))
            .collect();
        // The previous plan is what the daemon actuated last period, so
        // it is the switching-cost baseline for this solve.
        let initial: Vec<f64> = match &self.last_plan {
            Some(plan) => plan.machines.iter().map(|&m| m as f64).collect(),
            None => vec![0.0; self.catalog.len()],
        };
        let lp_span = registry.timer("pipeline.lp_seconds");
        let solve = solve_cbs_relax_priced(
            &CbsInputs {
                catalog: &self.catalog,
                container_sizes: &container_sizes,
                utility_per_hour: &utility,
                demand: &demand,
                initial_active: &initial,
                price: &self.price,
                now,
            },
            &self.config,
            &self.objective,
            self.lp_basis.as_ref(),
        )?;
        drop(lp_span);
        // Carry the optimal basis into the next tick's solve.
        self.lp_basis = Some(solve.basis);
        if let Some(cost) = &solve.cost {
            // The first step is what the daemon actuates, so that is the
            // slice that accrues into the running spend.
            self.cost_dollars += cost.first_step_rental_dollars;
            registry.gauge("cost.cumulative_dollars").set(self.cost_dollars);
        }
        let plan = solve.plan;
        Ok(registry.time("pipeline.rounding_seconds", || {
            round_first_step(&plan, &self.catalog, &container_sizes)
        }))
    }

    /// Snapshots the pipeline's mutable state for a checkpoint.
    pub fn state(&self) -> OnlineState {
        OnlineState {
            ticks: self.ticks,
            errors: self.errors,
            histories: self.monitor.histories().to_vec(),
            last_plan: self.last_plan.clone(),
            pending_events: self.degradations.clone(),
            lp_basis: self.lp_basis.clone(),
            cost_dollars: self.cost_dollars,
        }
    }

    /// Restores a checkpointed state into this (freshly-built) pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`HarmonyError::InvalidConfig`] when the snapshot's shape
    /// does not match this pipeline (class count, history bound, or plan
    /// dimensions) — a checkpoint from a different configuration must
    /// not be silently accepted.
    pub fn restore(&mut self, state: OnlineState) -> Result<(), HarmonyError> {
        if let Some(plan) = &state.last_plan {
            if plan.machines.len() != self.catalog.len() {
                return Err(HarmonyError::InvalidConfig {
                    reason: format!(
                        "checkpoint plan has {} machine types, catalog has {}",
                        plan.machines.len(),
                        self.catalog.len()
                    ),
                });
            }
            if plan.quotas.len() != self.catalog.len()
                || plan.quotas.iter().any(|q| q.len() != self.n_classes())
            {
                return Err(HarmonyError::InvalidConfig {
                    reason: "checkpoint plan quota dimensions do not match".into(),
                });
            }
        }
        self.monitor.restore_histories(state.histories)?;
        self.ticks = state.ticks;
        self.errors = state.errors;
        self.last_plan = state.last_plan;
        self.degradations = state.pending_events;
        self.lp_basis = state.lp_basis;
        self.cost_dollars = state.cost_dollars;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::ClassifierConfig;
    use harmony_model::SimDuration;
    use harmony_trace::{TraceConfig, TraceGenerator};

    fn fixture() -> (OnlinePipeline, harmony_trace::Trace) {
        let trace = TraceGenerator::new(TraceConfig::small().with_seed(33)).generate();
        let classifier = TaskClassifier::fit(
            trace.tasks(),
            &ClassifierConfig { k_per_group: Some([2, 2, 2]), ..Default::default() },
        )
        .unwrap();
        let config = HarmonyConfig {
            horizon: 2,
            control_period: SimDuration::from_mins(10.0),
            ..Default::default()
        };
        let pipeline = OnlinePipeline::new(
            classifier,
            harmony_model::MachineCatalog::table2().scaled(100),
            config,
            EnergyPrice::default(),
        )
        .unwrap();
        (pipeline, trace)
    }

    /// Feed the trace in fixed-size chunks, collecting each tick's plan.
    fn drive(pipeline: &mut OnlinePipeline, trace: &harmony_trace::Trace, chunks: usize) -> Vec<IntegerPlan> {
        (0..chunks)
            .map(|i| {
                let lo = (i * 150).min(trace.len());
                let hi = ((i + 1) * 150).min(trace.len());
                let chunk = &trace.tasks()[lo..hi];
                pipeline.tick(chunk, chunk)
            })
            .collect()
    }

    #[test]
    fn tick_provisions_for_demand_and_advances_clock() {
        let (mut pipeline, trace) = fixture();
        assert_eq!(pipeline.now(), SimTime::ZERO);
        let plans = drive(&mut pipeline, &trace, 3);
        assert_eq!(pipeline.ticks(), 3);
        assert_eq!(pipeline.now(), SimTime::from_secs(3.0 * 600.0));
        assert_eq!(pipeline.error_count(), 0);
        let total: usize = plans[0].machines.iter().sum();
        assert!(total > 0, "arrivals must bring machines up: {plans:?}");
        assert!(pipeline.last_plan().is_some());
    }

    #[test]
    fn empty_ticks_scale_down() {
        let (mut pipeline, trace) = fixture();
        drive(&mut pipeline, &trace, 2);
        // Enough empty periods to flush the moving-average window (6).
        let mut last_total = usize::MAX;
        for _ in 0..8 {
            let plan = pipeline.tick(&[], &[]);
            last_total = plan.machines.iter().sum();
        }
        assert!(last_total <= 2, "idle pipeline should power down, got {last_total}");
    }

    #[test]
    fn restore_reproduces_plan_sequence() {
        let (mut uninterrupted, trace) = fixture();
        let full = drive(&mut uninterrupted, &trace, 6);

        // Run 3 ticks, checkpoint, rebuild, restore, run 3 more.
        let (mut first_half, _) = fixture();
        let mut prefix = drive(&mut first_half, &trace, 3);
        let snapshot = first_half.state();
        let text = serde_json::to_string(&snapshot).unwrap();
        let state: OnlineState = serde_json::from_str(&text).unwrap();
        assert_eq!(state, snapshot);

        let (mut second_half, _) = fixture();
        second_half.restore(state).unwrap();
        assert_eq!(second_half.ticks(), 3);
        for i in 3..6 {
            let lo = (i * 150).min(trace.len());
            let hi = ((i + 1) * 150).min(trace.len());
            let chunk = &trace.tasks()[lo..hi];
            prefix.push(second_half.tick(chunk, chunk));
        }
        assert_eq!(prefix, full, "restored pipeline must reproduce the plan sequence");
    }

    #[test]
    fn failure_without_previous_plan_holds_at_zero() {
        let (mut pipeline, trace) = fixture();
        pipeline.config.max_lp_pivots = 1;
        let chunk = &trace.tasks()[..150];
        let plan = pipeline.tick(chunk, chunk);
        assert_eq!(plan.machines.iter().sum::<usize>(), 0);
        assert_eq!(pipeline.error_count(), 1);
        let events = pipeline.take_degradations();
        assert!(events.iter().any(|d| matches!(d.kind, DegradationKind::ControlHold)));
        assert!(pipeline.take_degradations().is_empty());
    }

    #[test]
    fn failure_with_previous_plan_reuses_it() {
        let (mut pipeline, trace) = fixture();
        let chunk = &trace.tasks()[..150];
        let first = pipeline.tick(chunk, chunk);
        pipeline.config.max_lp_pivots = 1;
        let second = pipeline.tick(chunk, chunk);
        assert_eq!(second, first, "reused plan re-actuates");
        let events = pipeline.take_degradations();
        assert!(events
            .iter()
            .any(|d| matches!(d.kind, DegradationKind::LpReusedPreviousPlan)));
    }

    #[test]
    fn restore_rejects_mismatched_plan_shape() {
        let (mut pipeline, _) = fixture();
        let bad = OnlineState {
            ticks: 1,
            errors: 0,
            histories: vec![Vec::new(); pipeline.n_classes()],
            last_plan: Some(IntegerPlan { machines: vec![1], quotas: vec![vec![0]] }),
            pending_events: Vec::new(),
            lp_basis: None,
            cost_dollars: 0.0,
        };
        assert!(pipeline.restore(bad).is_err());
        let bad_classes = OnlineState {
            ticks: 0,
            errors: 0,
            histories: vec![Vec::new()],
            last_plan: None,
            pending_events: Vec::new(),
            lp_basis: None,
            cost_dollars: 0.0,
        };
        assert!(pipeline.restore(bad_classes).is_err());
    }

    #[test]
    fn checkpoint_without_lp_basis_field_still_loads() {
        // A checkpoint written before warm starts existed has no
        // lp_basis key; it must deserialize (to a cold-start basis).
        let (mut pipeline, trace) = fixture();
        drive(&mut pipeline, &trace, 2);
        let mut v = pipeline.state().to_value();
        if let Value::Object(map) = &mut v {
            map.remove("lp_basis");
        }
        let state = OnlineState::from_value(&v).unwrap();
        assert_eq!(state.lp_basis, None);
        assert_eq!(state.ticks, 2);
    }

    #[test]
    fn checkpoint_without_cost_dollars_field_still_loads() {
        // A checkpoint written before the pricing subsystem has no
        // cost_dollars key; it must deserialize (to zero spend).
        let (mut pipeline, trace) = fixture();
        drive(&mut pipeline, &trace, 2);
        let mut v = pipeline.state().to_value();
        if let Value::Object(map) = &mut v {
            map.remove("cost_dollars");
        }
        let state = OnlineState::from_value(&v).unwrap();
        assert_eq!(state.cost_dollars, 0.0);
        assert_eq!(state.ticks, 2);
    }

    #[test]
    fn dollar_objective_accrues_and_checkpoints_spend() {
        use crate::cbs::{CbsObjective, DollarCosts};
        use harmony_pricing::MarketPolicy;

        let (pipeline, trace) = fixture();
        let groups: Vec<_> =
            pipeline.classifier().classes().iter().map(|c| c.group).collect();
        let costs = DollarCosts::default_for(
            pipeline.catalog(),
            &groups,
            MarketPolicy::SpotAware,
            2013,
        );
        let (base, _) = fixture();
        let mut priced = base.with_objective(CbsObjective::Dollars(costs));
        drive(&mut priced, &trace, 3);
        assert_eq!(priced.error_count(), 0);
        assert!(
            priced.cost_dollars() > 0.0,
            "a served workload must accrue rental spend, got {}",
            priced.cost_dollars()
        );
        // The spend survives a checkpoint/restore round trip.
        let state = priced.state();
        assert_eq!(state.cost_dollars, priced.cost_dollars());
        let text = serde_json::to_string(&state).unwrap();
        let back: OnlineState = serde_json::from_str(&text).unwrap();
        assert_eq!(back, state);
        let (fresh, _) = fixture();
        let mut restored = fresh.with_objective(CbsObjective::Dollars(
            DollarCosts::default_for(
                priced.catalog(),
                &groups,
                MarketPolicy::SpotAware,
                2013,
            ),
        ));
        restored.restore(back).unwrap();
        assert_eq!(restored.cost_dollars(), priced.cost_dollars());
    }

    #[test]
    fn checkpoint_carries_the_warm_basis() {
        let (mut pipeline, trace) = fixture();
        drive(&mut pipeline, &trace, 2);
        let state = pipeline.state();
        assert!(state.lp_basis.is_some(), "a ticked pipeline must checkpoint its basis");
        let text = serde_json::to_string(&state).unwrap();
        let back: OnlineState = serde_json::from_str(&text).unwrap();
        assert_eq!(back, state);
    }
}

//! Capacity-provisioning controllers: HARMONY's CBS and CBP, and the
//! heterogeneity-oblivious baseline they are evaluated against
//! (Section IX-B).

mod baseline;
mod harmony_ctl;
mod quota;

pub use baseline::BaselineController;
pub use harmony_ctl::{CbpController, CbsController, HarmonyCore};
pub use quota::{QuotaScheduler, QuotaState};

//! The heterogeneity-oblivious baseline (Section IX-B): keep the
//! bottleneck resource at a target utilization (80%), bringing machines
//! up "in decreasing order of energy efficiency".

use harmony_model::{MachineTypeId, Resources, SimDuration};
use harmony_sim::{ControlDecision, Controller, Observation};

/// The baseline dynamic-capacity provisioner.
///
/// Each control period it estimates total demand as the resources of
/// running plus pending tasks, targets `demand / utilization` capacity
/// on the bottleneck dimension, and fills that capacity greedily from
/// the most energy-efficient machine type down — ignoring task sizes
/// entirely, which is exactly the failure mode the paper attributes to
/// heterogeneity-oblivious provisioning.
#[derive(Debug, Clone)]
pub struct BaselineController {
    period: SimDuration,
    target_utilization: f64,
}

impl BaselineController {
    /// Creates the baseline with the paper's 80% utilization target.
    pub fn new(period: SimDuration) -> Self {
        Self::with_utilization(period, 0.8)
    }

    /// Creates the baseline with a custom bottleneck-utilization target.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < target_utilization <= 1`.
    pub fn with_utilization(period: SimDuration, target_utilization: f64) -> Self {
        assert!(
            target_utilization > 0.0 && target_utilization <= 1.0,
            "target utilization must be in (0, 1], got {target_utilization}"
        );
        BaselineController { period, target_utilization }
    }
}

impl Controller for BaselineController {
    fn control_period(&self) -> SimDuration {
        self.period
    }

    fn decide(&mut self, observation: &Observation<'_>) -> ControlDecision {
        let cluster = observation.cluster;
        // Purely utilization-reactive, like the paper's baseline: the
        // aggregate *used* resources set the target; queued task shapes
        // are never inspected (that is exactly the heterogeneity- and
        // backlog-obliviousness the paper critiques). The pending count
        // only nudges the estimate as generic backpressure.
        let mut demand: Resources = cluster.machines().iter().map(|m| m.used()).sum();
        if !observation.pending.is_empty() {
            // One average-task-equivalent per pending task, judged from
            // current usage — no per-task inspection. With nothing
            // running yet (cold start), a nominal slot of one tenth of
            // the average machine bootstraps the ramp-up.
            let running = cluster.machines().iter().map(|m| m.running_tasks()).sum::<usize>();
            let avg = if running > 0 {
                demand * (1.0 / running as f64)
            } else {
                cluster.catalog().total_capacity()
                    * (0.1 / cluster.catalog().total_machines() as f64)
            };
            demand += avg * observation.pending.len() as f64;
        }
        let needed = demand * (1.0 / self.target_utilization);

        // Fill capacity in decreasing energy-efficiency order.
        let order = cluster.catalog().by_energy_efficiency();
        let mut remaining = needed;
        let mut target = vec![0usize; cluster.catalog().len()];
        for ty_id in order {
            if remaining.cpu <= 0.0 && remaining.mem <= 0.0 {
                break;
            }
            let ty = cluster.catalog().machine_type(ty_id);
            let per_machine = ty.capacity;
            let needed_machines = (remaining.cpu / per_machine.cpu)
                .max(remaining.mem / per_machine.mem)
                .ceil()
                .max(0.0) as usize;
            let n = needed_machines.min(ty.count);
            target[ty_id.0] = n;
            remaining = (remaining - per_machine * n as f64).max(Resources::ZERO);
        }
        let _ = MachineTypeId(0);
        ControlDecision::targets(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_model::{
        JobId, MachineCatalog, MachineTypeId, Priority, SchedulingClass, SimTime, Task, TaskId,
    };
    use harmony_sim::{Cluster, TaskView};

    fn obs_with_pending(cluster: &Cluster, pending: &[Task]) -> ControlDecision {
        let mut ctl = BaselineController::new(SimDuration::from_mins(10.0));
        ctl.decide(&Observation {
            now: SimTime::ZERO,
            cluster,
            pending: TaskView::dense(pending),
            arrived_last_period: TaskView::default(),
            running: TaskView::default(),
        })
    }

    fn task(cpu: f64, mem: f64) -> Task {
        Task {
            id: TaskId(0),
            job: JobId(0),
            arrival: SimTime::ZERO,
            duration: SimDuration::from_secs(100.0),
            demand: Resources::new(cpu, mem),
            priority: Priority::new(0).unwrap(),
            sched_class: SchedulingClass::BATCH,
        }
    }

    #[test]
    fn no_demand_means_no_machines() {
        let cluster = Cluster::new(MachineCatalog::table2().scaled(100));
        let d = obs_with_pending(&cluster, &[]);
        assert_eq!(d.target_active, vec![0, 0, 0, 0]);
    }

    /// Powers on one DL585 and loads it with `cpu`/`mem` usage.
    fn cluster_with_usage(divisor: usize, cpu: f64, mem: f64) -> Cluster {
        let mut cluster = Cluster::new(MachineCatalog::table2().scaled(divisor));
        let (ids, ready) = cluster.power_on(MachineTypeId(3), 1, SimTime::ZERO);
        cluster.boot_complete(ids[0], ready);
        assert!(cluster.allocate(ids[0], Resources::new(cpu, mem), ready));
        cluster
    }

    #[test]
    fn demand_fills_most_efficient_type_first() {
        let cluster = cluster_with_usage(100, 0.4, 0.25);
        let d = obs_with_pending(&cluster, &[]);
        let order = cluster.catalog().by_energy_efficiency();
        let best = order[0].0;
        assert!(d.target_active[best] > 0, "best type should be used: {:?}", d.target_active);
        // Usage 0.4/0.25 → needed 0.5/0.3125 at 80%; the best type alone
        // should cover it.
        let total: usize = d.target_active.iter().sum();
        assert_eq!(total, d.target_active[best]);
    }

    #[test]
    fn overflow_cascades_to_next_type() {
        // Scale the cluster down so one type cannot cover demand: usage
        // on the single DL585 plus 60 pending average-equivalents.
        let cluster = cluster_with_usage(1000, 0.9, 0.4); // 7/2/1/1 machines
        let pending: Vec<Task> = (0..60).map(|_| task(0.05, 0.02)).collect();
        // One running task of 0.9 cpu → avg-equivalent backpressure of
        // 60 * 0.9 = 54 cpu needed; far beyond any single type.
        let d = obs_with_pending(&cluster, &pending);
        let used_types = d.target_active.iter().filter(|&&n| n > 0).count();
        assert!(used_types >= 2, "{:?}", d.target_active);
    }

    #[test]
    fn utilization_target_scales_capacity() {
        let cluster = cluster_with_usage(100, 0.8, 0.8);
        let pending: Vec<Task> = (0..40).map(|_| task(0.02, 0.02)).collect();
        let mut strict = BaselineController::with_utilization(SimDuration::from_mins(10.0), 0.5);
        let mut loose = BaselineController::with_utilization(SimDuration::from_mins(10.0), 1.0);
        let obs = Observation {
            now: SimTime::ZERO,
            cluster: &cluster,
            pending: TaskView::dense(&pending),
            arrived_last_period: TaskView::default(),
            running: TaskView::default(),
        };
        let strict_total: usize = strict.decide(&obs).target_active.iter().sum();
        let loose_total: usize = loose.decide(&obs).target_active.iter().sum();
        assert!(strict_total >= loose_total);
    }

    #[test]
    #[should_panic(expected = "target utilization")]
    fn invalid_utilization_panics() {
        let _ = BaselineController::with_utilization(SimDuration::from_mins(1.0), 0.0);
    }
}

//! Quota-coordinated scheduling for CBS.
//!
//! The CBS variant of HARMONY controls both provisioning *and*
//! scheduling. Each period the controller publishes, per task class,
//! the container total `Σ_m x_mn` from the rounded CBS-RELAX plan plus
//! the plan's machine-type preference order; the scheduler then:
//!
//! * admits a task only while its class has container slots left
//!   (the M/G/N container count of Section VI is the admission budget);
//! * places admitted tasks on the plan's preferred machine types first,
//!   falling back to any feasible machine — Algorithm 1's "the
//!   controller is free to schedule additional containers as long as the
//!   total number of containers for each n is at most x_mn".
//!
//! The ledger is *occupancy-aware*: slots held by still-running tasks
//! stay consumed across refreshes, so a refresh admits only
//! `max(0, Σ_m x_mn − running_n)` new placements.

use std::cell::RefCell;
use std::rc::Rc;

use harmony_model::{MachineTypeId, Task};
use harmony_sim::{Cluster, MachineId, Scheduler};

use crate::classify::TaskClassifier;

/// The shared (controller ↔ scheduler) quota ledger.
#[derive(Debug, Default)]
pub struct QuotaState {
    /// Remaining new-placement container slots per class.
    remaining: Vec<f64>,
    /// Containers currently held by running tasks per class.
    running: Vec<f64>,
    /// Per-class machine-type preference order (cheapest energy first).
    type_order: Vec<Vec<MachineTypeId>>,
}

impl QuotaState {
    /// Replaces the ledger with a fresh period's plan: per-class slot
    /// totals become `max(0, Σ_m quotas[m][n] − running[n])`.
    ///
    /// `running_per_class` is the controller's authoritative occupancy
    /// count (with short→long relabeling applied); it replaces the
    /// ledger's intra-period approximation, which labels tasks by their
    /// initial class only.
    pub fn refresh(
        &mut self,
        quotas: Vec<Vec<usize>>,
        type_order: Vec<Vec<MachineTypeId>>,
        running_per_class: &[f64],
    ) {
        let n_classes = quotas.iter().map(Vec::len).max().unwrap_or(0).max(running_per_class.len());
        self.running = running_per_class.to_vec();
        self.running.resize(n_classes, 0.0);
        let mut totals = vec![0.0f64; n_classes];
        for per_n in &quotas {
            for (n, &q) in per_n.iter().enumerate() {
                totals[n] += q as f64;
            }
        }
        self.remaining = totals
            .into_iter()
            .enumerate()
            .map(|(n, q)| (q - self.running[n]).max(0.0))
            .collect();
        self.type_order = type_order;
    }

    /// Remaining new-placement slots for a class; 0 when unset.
    pub fn remaining(&self, class: usize) -> f64 {
        self.remaining.get(class).copied().unwrap_or(0.0)
    }

    /// Containers currently held by running tasks of a class.
    pub fn running(&self, class: usize) -> f64 {
        self.running.get(class).copied().unwrap_or(0.0)
    }

    fn on_place(&mut self, class: usize) {
        if let Some(slot) = self.remaining.get_mut(class) {
            *slot = (*slot - 1.0).max(0.0);
        }
        if self.running.len() <= class {
            self.running.resize(class + 1, 0.0);
        }
        self.running[class] += 1.0;
    }

    fn on_finish(&mut self, class: usize) {
        if let Some(slot) = self.running.get_mut(class) {
            *slot = (*slot - 1.0).max(0.0);
        }
        // The freed container slot is available again this period.
        if self.remaining.len() <= class {
            self.remaining.resize(class + 1, 0.0);
        }
        self.remaining[class] += 1.0;
    }

    fn order_for(&self, class: usize) -> &[MachineTypeId] {
        self.type_order.get(class).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// A scheduler that admits tasks against their class's container budget
/// and places them on the plan's preferred machine types first.
#[derive(Debug)]
pub struct QuotaScheduler {
    classifier: Rc<TaskClassifier>,
    state: Rc<RefCell<QuotaState>>,
}

impl QuotaScheduler {
    /// Creates the scheduler over a shared quota ledger.
    pub fn new(classifier: Rc<TaskClassifier>, state: Rc<RefCell<QuotaState>>) -> Self {
        QuotaScheduler { classifier, state }
    }
}

impl Scheduler for QuotaScheduler {
    fn place(&mut self, task: &Task, cluster: &Cluster) -> Option<MachineId> {
        let class = self.classifier.initial_label(task).0;
        let state = self.state.borrow();
        if state.remaining(class) < 1.0 {
            return None;
        }
        // Preferred types first, then every remaining type in catalog
        // order (the class budget, not the per-type split, is binding).
        let preferred = state.order_for(class);
        let rest =
            (0..cluster.catalog().len()).map(MachineTypeId).filter(|t| !preferred.contains(t));
        preferred
            .iter()
            .copied()
            .chain(rest)
            .find_map(|ty| cluster.first_fit_machine_of_type(ty, task.demand))
    }

    fn on_placed(&mut self, task: &Task, _machine: MachineId, _cluster: &Cluster) {
        let class = self.classifier.initial_label(task).0;
        self.state.borrow_mut().on_place(class);
    }

    fn on_finished(&mut self, task: &Task, _machine: MachineId, _cluster: &Cluster) {
        let class = self.classifier.initial_label(task).0;
        self.state.borrow_mut().on_finish(class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{ClassifierConfig, TaskClassifier};
    use harmony_model::{MachineCatalog, SimTime};
    use harmony_trace::{TraceConfig, TraceGenerator};

    fn setup() -> (Rc<TaskClassifier>, Rc<RefCell<QuotaState>>, Cluster, harmony_trace::Trace) {
        let trace = TraceGenerator::new(TraceConfig::small().with_seed(21)).generate();
        let classifier = Rc::new(
            TaskClassifier::fit(trace.tasks(), &ClassifierConfig::default()).unwrap(),
        );
        let state = Rc::new(RefCell::new(QuotaState::default()));
        let mut cluster = Cluster::new(MachineCatalog::table2().scaled(100));
        for ty in 0..4 {
            let (ids, ready) = cluster.power_on(MachineTypeId(ty), usize::MAX, SimTime::ZERO);
            for id in ids {
                cluster.boot_complete(id, ready);
            }
        }
        (classifier, state, cluster, trace)
    }

    /// Place + commit, mirroring the engine's sequence.
    fn place_commit(
        sched: &mut QuotaScheduler,
        task: &Task,
        cluster: &Cluster,
    ) -> Option<MachineId> {
        let id = sched.place(task, cluster)?;
        sched.on_placed(task, id, cluster);
        Some(id)
    }

    #[test]
    fn zero_quota_blocks_placement() {
        let (classifier, state, cluster, trace) = setup();
        let mut sched = QuotaScheduler::new(classifier, state);
        let task = &trace.tasks()[0];
        assert!(sched.place(task, &cluster).is_none());
    }

    #[test]
    fn quota_admits_and_depletes() {
        let (classifier, state, cluster, trace) = setup();
        let n_classes = classifier.classes().len();
        let task = trace.tasks().iter().find(|t| t.demand.cpu < 0.05).unwrap();
        let class = classifier.initial_label(task).0;
        // Two slots for the class, split across types (totals matter).
        let mut quotas = vec![vec![0usize; n_classes]; 4];
        quotas[1][class] = 1;
        quotas[2][class] = 1;
        state.borrow_mut().refresh(quotas, vec![vec![MachineTypeId(1)]; n_classes], &[]);
        let mut sched = QuotaScheduler::new(classifier.clone(), state.clone());
        let m1 = place_commit(&mut sched, task, &cluster).unwrap();
        // Preference order says R515 first.
        assert_eq!(cluster.machine(m1).type_id(), MachineTypeId(1));
        let _m2 = place_commit(&mut sched, task, &cluster).unwrap();
        // Third placement exceeds the class budget.
        assert!(sched.place(task, &cluster).is_none());
        assert_eq!(state.borrow().remaining(class), 0.0);
        assert_eq!(state.borrow().running(class), 2.0);
        // Finishing a task frees a slot again.
        sched.on_finished(task, m1, &cluster);
        assert!(sched.place(task, &cluster).is_some());
        assert_eq!(state.borrow().running(class), 1.0);
    }

    #[test]
    fn refresh_accounts_for_running_containers() {
        let (classifier, state, cluster, trace) = setup();
        let n_classes = classifier.classes().len();
        let task = trace.tasks().iter().find(|t| t.demand.cpu < 0.05).unwrap();
        let class = classifier.initial_label(task).0;
        let mut quotas = vec![vec![0usize; n_classes]; 4];
        quotas[1][class] = 3;
        let order = vec![vec![MachineTypeId(1)]; n_classes];
        state.borrow_mut().refresh(quotas.clone(), order.clone(), &[]);
        let mut sched = QuotaScheduler::new(classifier, state.clone());
        // Occupy two slots.
        place_commit(&mut sched, task, &cluster).unwrap();
        place_commit(&mut sched, task, &cluster).unwrap();
        // New period, same quota of 3 with 2 still running: only 1 new
        // placement is allowed. The controller passes the occupancy.
        let mut running = vec![0.0; n_classes];
        running[class] = 2.0;
        state.borrow_mut().refresh(quotas, order, &running);
        assert_eq!(state.borrow().remaining(class), 1.0);
    }

    #[test]
    fn preference_order_is_respected() {
        let (classifier, state, cluster, trace) = setup();
        let n_classes = classifier.classes().len();
        let task = trace.tasks().iter().find(|t| t.demand.cpu < 0.05).unwrap();
        let class = classifier.initial_label(task).0;
        let mut quotas = vec![vec![0usize; n_classes]; 4];
        quotas[3][class] = 1;
        // Prefer the DL585 (type 3) explicitly.
        let mut order = vec![Vec::new(); n_classes];
        order[class] = vec![MachineTypeId(3), MachineTypeId(0)];
        state.borrow_mut().refresh(quotas, order, &[]);
        let mut sched = QuotaScheduler::new(classifier, state);
        let m = place_commit(&mut sched, task, &cluster).unwrap();
        assert_eq!(cluster.machine(m).type_id(), MachineTypeId(3));
    }

    #[test]
    fn fallback_to_feasible_type_when_preferred_is_unsuitable() {
        let (classifier, state, cluster, trace) = setup();
        let n_classes = classifier.classes().len();
        // A big task cannot land on an R210 even when the plan pointed
        // its class there — the class budget still admits it on a
        // feasible type (Algorithm 1's backfill step).
        let task = trace.tasks().iter().find(|t| t.demand.cpu > 0.3).unwrap();
        let class = classifier.initial_label(task).0;
        let mut quotas = vec![vec![0usize; n_classes]; 4];
        quotas[0][class] = 5;
        state.borrow_mut().refresh(quotas, vec![vec![MachineTypeId(0)]; n_classes], &[]);
        let mut sched = QuotaScheduler::new(classifier, state);
        let m = place_commit(&mut sched, task, &cluster).unwrap();
        assert_ne!(cluster.machine(m).type_id(), MachineTypeId(0));
    }
}

//! The HARMONY controller core and its two variants.
//!
//! * **CBS** (Container-Based Scheduling, Section VII): provisioning and
//!   scheduling are coordinated — the controller publishes container
//!   quotas to a [`super::QuotaScheduler`].
//! * **CBP** (Container-Based Provisioning, Section VIII-B): the same
//!   provisioning pipeline, but the cluster's existing scheduler keeps
//!   running unmodified — "simplicity and practicality ... however, due
//!   to lack of control of the scheduler, CBP does not provide
//!   performance guarantee in terms of task scheduling delay."

use std::cell::RefCell;
use std::rc::Rc;

use harmony_model::{EnergyPrice, MachineTypeId, Resources, SimDuration, TaskClassId};
use harmony_sim::{
    ControlDecision, Controller, DegradationEvent, DegradationKind, Observation,
};
use harmony_telemetry as telemetry;

use crate::cbs::{solve_cbs_relax_priced, CbsInputs, CbsObjective, CbsPlan};
use crate::classify::TaskClassifier;
use crate::containers::ContainerManager;
use crate::monitor::ArrivalMonitor;
use crate::rounding::{round_first_step, IntegerPlan};
use crate::{HarmonyConfig, HarmonyError};

use super::quota::QuotaState;

/// The shared HARMONY control pipeline: monitor → predict → containers →
/// CBS-RELAX → rounding.
#[derive(Debug)]
pub struct HarmonyCore {
    config: HarmonyConfig,
    classifier: Rc<TaskClassifier>,
    manager: ContainerManager,
    monitor: ArrivalMonitor,
    price: EnergyPrice,
    objective: CbsObjective,
    errors: usize,
    /// The last successfully-solved integer plan, re-actuated when a
    /// solve fails (the ladder's first rung).
    last_plan: Option<IntegerPlan>,
    /// The previous period's optimal simplex basis; warm-starts the next
    /// CBS-RELAX solve. Cleared on solve failure so a corrupted state
    /// can never linger past one tick.
    lp_basis: Option<harmony_lp::Basis>,
    /// Degradations accumulated since the engine last drained them.
    degradations: Vec<DegradationEvent>,
}

impl HarmonyCore {
    /// Builds the pipeline from a fitted classifier.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and container-sizing errors.
    pub fn new(
        classifier: Rc<TaskClassifier>,
        config: HarmonyConfig,
        price: EnergyPrice,
    ) -> Result<Self, HarmonyError> {
        config.validate()?;
        let manager = ContainerManager::new(&classifier, &config)?;
        let monitor = ArrivalMonitor::new(
            classifier.classes().len(),
            config.control_period,
            config.history_len,
            config.arima_min_history,
        );
        Ok(HarmonyCore {
            config,
            classifier,
            manager,
            monitor,
            price,
            objective: CbsObjective::Energy,
            errors: 0,
            last_plan: None,
            lp_basis: None,
            degradations: Vec::new(),
        })
    }

    /// Swaps the CBS-RELAX objective (default:
    /// [`CbsObjective::Energy`]). Drops any carried warm-start basis —
    /// the dollar objective builds a different LP.
    pub fn set_objective(&mut self, objective: CbsObjective) {
        self.objective = objective;
        self.lp_basis = None;
    }

    /// The objective in effect.
    pub fn objective(&self) -> &CbsObjective {
        &self.objective
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HarmonyConfig {
        &self.config
    }

    /// How many control periods failed the full pipeline and took a
    /// degradation rung instead.
    pub fn error_count(&self) -> usize {
        self.errors
    }

    /// Drains the degradation events accumulated since the last call.
    pub fn take_degradations(&mut self) -> Vec<DegradationEvent> {
        std::mem::take(&mut self.degradations)
    }

    /// Containers currently occupied per class. Labels use measured
    /// running time, exercising the short→long relabeling path of
    /// Section V.
    pub fn occupied_per_class(&self, observation: &Observation<'_>) -> Vec<f64> {
        let mut occupied = vec![0.0f64; self.manager.n_classes()];
        for task in observation.running {
            let running_for = observation.now.saturating_since(task.arrival);
            occupied[self.classifier.relabel(task, running_for).0] += 1.0;
        }
        occupied
    }

    /// Machine-type preference order per class: compatible types sorted
    /// by the marginal energy cost of hosting one container.
    fn type_orders(&self, catalog: &harmony_model::MachineCatalog) -> Vec<Vec<MachineTypeId>> {
        (0..self.manager.n_classes())
            .map(|n| {
                let size = self.manager.container_size(harmony_model::TaskClassId(n));
                let mut types: Vec<(MachineTypeId, f64)> = catalog
                    .iter()
                    .filter(|ty| size.fits_within(ty.capacity))
                    .map(|ty| {
                        let util = size.utilization_of(ty.capacity);
                        let watts = ty.power.alpha_watts.cpu * util.cpu
                            + ty.power.alpha_watts.mem * util.mem;
                        (ty.id, watts)
                    })
                    .collect();
                types.sort_by(|a, b| f64::total_cmp(&a.1, &b.1));
                types.into_iter().map(|(id, _)| id).collect()
            })
            .collect()
    }

    /// One control step. Returns the fractional plan and its rounding.
    fn step(
        &mut self,
        observation: &Observation<'_>,
    ) -> Result<(CbsPlan, IntegerPlan), HarmonyError> {
        let registry = telemetry::global();
        registry.counter("pipeline.ticks").inc();
        // The guard records the whole period even when a stage errors out.
        let _period_span = registry.timer("pipeline.period_seconds");

        let span = registry.timer("pipeline.classify_seconds");
        self.monitor.record_period(observation.arrived_last_period, &self.classifier);
        drop(span);

        // Per-class forecast and sizing are pure per class; fan them out
        // over scoped workers. Plans are bit-identical for every worker
        // count (deterministic class-order merge).
        let workers =
            crate::par::effective_workers(self.config.pipeline_workers, self.manager.n_classes());
        registry.gauge("pipeline.workers").set(workers as f64);

        let span = registry.timer("pipeline.forecast_seconds");
        let tiered = self.monitor.forecast_tiered_with_workers(self.config.horizon, workers);
        drop(span);
        for (n, class_fc) in tiered.iter().enumerate() {
            if let Some(reason) = &class_fc.degraded {
                self.degradations.push(DegradationEvent {
                    at: observation.now,
                    kind: DegradationKind::ForecastFallback { class: n, tier: class_fc.tier },
                    detail: reason.clone(),
                });
            }
        }
        let rates: Vec<Vec<f64>> = tiered.into_iter().map(|c| c.rates).collect();

        let sizing_span = registry.timer("pipeline.sizing_seconds");
        // Pending backlog per class: must be served *now*, on top of the
        // predicted new arrivals.
        let mut backlog = vec![0.0f64; self.manager.n_classes()];
        for task in observation.pending {
            backlog[self.classifier.initial_label(task).0] += 1.0;
        }
        // Occupied containers: tasks already executing keep their
        // container (and their host powered) until they finish. Their
        // true demand is known (they are placed), so they reserve at the
        // class mean rather than the Z-inflated container size: scale
        // the occupied count by mean/container per class.
        let occupied_raw = self.occupied_per_class(observation);
        let occupied: Vec<f64> = occupied_raw
            .iter()
            .enumerate()
            .map(|(n, &count)| {
                let class = &self.classifier.classes()[n];
                let c = self.manager.container_size(harmony_model::TaskClassId(n));
                let ratio = (class.stats.mean_demand.cpu / c.cpu.max(1e-12))
                    .max(class.stats.mean_demand.mem / c.mem.max(1e-12))
                    .clamp(0.0, 1.0);
                count * ratio
            })
            .collect();

        let counts = self.manager.containers_for_rates(&rates, workers)?;
        let mut demand = vec![vec![0.0f64; self.manager.n_classes()]; self.config.horizon];
        for n in 0..self.manager.n_classes() {
            for (t, row) in demand.iter_mut().enumerate() {
                // Occupied containers persist across the horizon (the LP
                // may not power their hosts down; in the simulator busy
                // machines cannot be powered off either). Backlog needs
                // capacity from the first period on.
                row[n] = counts[n][t] + occupied[n] + backlog[n];
            }
        }
        drop(sizing_span);

        let container_sizes: Vec<harmony_model::Resources> = (0..self.manager.n_classes())
            .map(|n| self.manager.container_size(harmony_model::TaskClassId(n)))
            .collect();
        let utility: Vec<f64> = self
            .classifier
            .classes()
            .iter()
            .map(|c| self.config.utility_for(c.group))
            .collect();
        let initial: Vec<f64> = observation
            .cluster
            .active_per_type()
            .into_iter()
            .map(|n| n as f64)
            .collect();
        let lp_span = registry.timer("pipeline.lp_seconds");
        let solve = solve_cbs_relax_priced(
            &CbsInputs {
                catalog: observation.cluster.catalog(),
                container_sizes: &container_sizes,
                utility_per_hour: &utility,
                demand: &demand,
                initial_active: &initial,
                price: &self.price,
                now: observation.now,
            },
            &self.config,
            &self.objective,
            self.lp_basis.as_ref(),
        )?;
        drop(lp_span);
        // Carry the optimal basis into the next tick's solve.
        self.lp_basis = Some(solve.basis);
        let plan = solve.plan;
        let integer = registry.time("pipeline.rounding_seconds", || {
            round_first_step(&plan, observation.cluster.catalog(), &container_sizes)
        });
        Ok((plan, integer))
    }

    /// One decision, walking the degradation ladder on failure:
    /// full pipeline → previous plan → greedy per-class sizing → hold.
    fn decide_or_hold(
        &mut self,
        observation: &Observation<'_>,
    ) -> (ControlDecision, Option<IntegerPlan>) {
        match self.step(observation) {
            Ok((_plan, integer)) => {
                self.last_plan = Some(integer.clone());
                (ControlDecision::targets(integer.machines.clone()), Some(integer))
            }
            Err(err) => {
                self.errors += 1;
                // A failed solve may leave the carried basis stale
                // relative to whatever changed; force the next tick cold.
                self.lp_basis = None;
                telemetry::global().counter("pipeline.errors").inc();
                if let Some(prev) = self.last_plan.clone() {
                    self.degrade(observation, DegradationKind::LpReusedPreviousPlan, &err);
                    (ControlDecision::targets(prev.machines.clone()), Some(prev))
                } else if let Some(greedy) = self.greedy_plan(observation) {
                    self.degrade(observation, DegradationKind::LpGreedyFallback, &err);
                    (ControlDecision::targets(greedy.machines.clone()), Some(greedy))
                } else {
                    self.degrade(observation, DegradationKind::ControlHold, &err);
                    (ControlDecision::unchanged(observation.cluster), None)
                }
            }
        }
    }

    fn degrade(
        &mut self,
        observation: &Observation<'_>,
        kind: DegradationKind,
        err: &HarmonyError,
    ) {
        self.degradations.push(DegradationEvent {
            at: observation.now,
            kind,
            detail: err.to_string(),
        });
    }

    /// Emergency sizing for when the LP fails with no previous plan to
    /// reuse: count the containers each class needs *right now* (pending
    /// backlog plus running occupancy) and First-Fit them onto the
    /// population, opening machines lazily — cheapest compatible type
    /// first, most-constrained classes first so flexible small
    /// containers cannot starve the classes that only fit the big
    /// machines. Crude — no horizon, no optimality — but total and
    /// safe: the cluster stays provisioned while the optimizer is down.
    ///
    /// Returns `None` (→ hold) only when some class with demand cannot
    /// be hosted at all.
    fn greedy_plan(&self, observation: &Observation<'_>) -> Option<IntegerPlan> {
        let catalog = observation.cluster.catalog();
        let n_classes = self.manager.n_classes();
        let mut need = vec![0usize; n_classes];
        for task in observation.pending {
            need[self.classifier.initial_label(task).0] += 1;
        }
        for task in observation.running {
            let running_for = observation.now.saturating_since(task.arrival);
            need[self.classifier.relabel(task, running_for).0] += 1;
        }
        let orders = self.type_orders(catalog);
        // Most-constrained classes first; within a constraint level,
        // biggest containers first (First-Fit-Decreasing).
        let mut class_order: Vec<usize> = (0..n_classes).collect();
        class_order.sort_by(|&a, &b| {
            orders[a].len().cmp(&orders[b].len()).then(f64::total_cmp(
                &self.manager.container_size(TaskClassId(b)).sum_components(),
                &self.manager.container_size(TaskClassId(a)).sum_components(),
            ))
        });
        // Free space of machines opened so far, per type.
        let mut open: Vec<Vec<Resources>> = vec![Vec::new(); catalog.len()];
        let mut quotas = vec![vec![0usize; n_classes]; catalog.len()];
        for &n in &class_order {
            if need[n] == 0 {
                continue;
            }
            let size = self.manager.container_size(TaskClassId(n));
            let mut remaining = need[n];
            'types: for &ty in &orders[n] {
                // Fill leftover room on machines other classes opened.
                for slot in open[ty.0].iter_mut() {
                    while remaining > 0 && size.fits_within(*slot) {
                        *slot -= size;
                        quotas[ty.0][n] += 1;
                        remaining -= 1;
                    }
                    if remaining == 0 {
                        break 'types;
                    }
                }
                // Open fresh machines up to the type's population.
                let mt = catalog.machine_type(ty);
                while remaining > 0 && open[ty.0].len() < mt.count {
                    let mut slot = mt.capacity;
                    let before = remaining;
                    while remaining > 0 && size.fits_within(slot) {
                        slot -= size;
                        quotas[ty.0][n] += 1;
                        remaining -= 1;
                    }
                    open[ty.0].push(slot);
                    if remaining == before {
                        break; // a fresh machine fits none: give up on ty
                    }
                }
                if remaining == 0 {
                    break;
                }
            }
        }
        // Only a complete failure (demand exists, nothing placed) falls
        // through to hold; a plan serving most classes beats freezing a
        // possibly powered-down cluster.
        let total_need: usize = need.iter().sum();
        let total_placed: usize = quotas.iter().flatten().sum();
        let machines: Vec<usize> = open.iter().map(Vec::len).collect();
        (total_need == 0 || total_placed > 0).then_some(IntegerPlan { machines, quotas })
    }
}

/// The CBS controller: HARMONY provisioning + quota-coordinated
/// scheduling.
#[derive(Debug)]
pub struct CbsController {
    core: HarmonyCore,
    quota: Rc<RefCell<QuotaState>>,
}

impl CbsController {
    /// Builds the CBS controller; pair it with a
    /// [`super::QuotaScheduler`] sharing `quota` and the same
    /// classifier.
    ///
    /// # Errors
    ///
    /// See [`HarmonyCore::new`].
    pub fn new(
        classifier: Rc<TaskClassifier>,
        config: HarmonyConfig,
        price: EnergyPrice,
        quota: Rc<RefCell<QuotaState>>,
    ) -> Result<Self, HarmonyError> {
        Ok(CbsController { core: HarmonyCore::new(classifier, config, price)?, quota })
    }

    /// Provisions under `objective` instead of the default energy
    /// objective.
    #[must_use]
    pub fn with_objective(mut self, objective: CbsObjective) -> Self {
        self.core.set_objective(objective);
        self
    }

    /// The shared pipeline (for inspection in tests/benches).
    pub fn core(&self) -> &HarmonyCore {
        &self.core
    }
}

impl Controller for CbsController {
    fn control_period(&self) -> SimDuration {
        self.core.config.control_period
    }

    fn decide(&mut self, observation: &Observation<'_>) -> ControlDecision {
        let (mut decision, integer) = self.core.decide_or_hold(observation);
        if let Some(integer) = integer {
            let orders = self.core.type_orders(observation.cluster.catalog());
            // Authoritative occupancy (with short→long relabeling) keeps
            // the ledger consistent with the plan's demand accounting.
            let occupied = self.core.occupied_per_class(observation);
            self.quota.borrow_mut().refresh(integer.quotas, orders, &occupied);
            // CBS owns the scheduler, so it may also re-pack running
            // containers to drain machines (Algorithm 1, lines 10-11).
            decision.repack = true;
        }
        decision
    }

    fn take_degradations(&mut self) -> Vec<DegradationEvent> {
        self.core.take_degradations()
    }
}

/// The CBP controller: HARMONY provisioning with the stock scheduler.
#[derive(Debug)]
pub struct CbpController {
    core: HarmonyCore,
}

impl CbpController {
    /// Builds the CBP controller; pair it with any stock
    /// [`harmony_sim::Scheduler`] (the paper's deployable configuration).
    ///
    /// # Errors
    ///
    /// See [`HarmonyCore::new`].
    pub fn new(
        classifier: Rc<TaskClassifier>,
        config: HarmonyConfig,
        price: EnergyPrice,
    ) -> Result<Self, HarmonyError> {
        Ok(CbpController { core: HarmonyCore::new(classifier, config, price)? })
    }

    /// Provisions under `objective` instead of the default energy
    /// objective.
    #[must_use]
    pub fn with_objective(mut self, objective: CbsObjective) -> Self {
        self.core.set_objective(objective);
        self
    }

    /// The shared pipeline (for inspection in tests/benches).
    pub fn core(&self) -> &HarmonyCore {
        &self.core
    }
}

impl Controller for CbpController {
    fn control_period(&self) -> SimDuration {
        self.core.config.control_period
    }

    fn decide(&mut self, observation: &Observation<'_>) -> ControlDecision {
        self.core.decide_or_hold(observation).0
    }

    fn take_degradations(&mut self) -> Vec<DegradationEvent> {
        self.core.take_degradations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{ClassifierConfig, TaskClassifier};
    use harmony_model::{MachineCatalog, SimTime};
    use harmony_sim::{Cluster, TaskView};
    use harmony_trace::{TraceConfig, TraceGenerator};

    fn fixture() -> (Rc<TaskClassifier>, harmony_trace::Trace, HarmonyConfig) {
        let trace = TraceGenerator::new(TraceConfig::small().with_seed(33)).generate();
        let classifier = Rc::new(
            TaskClassifier::fit(
                trace.tasks(),
                &ClassifierConfig { k_per_group: Some([2, 2, 2]), ..Default::default() },
            )
            .unwrap(),
        );
        let config = HarmonyConfig {
            horizon: 2,
            control_period: SimDuration::from_mins(10.0),
            ..Default::default()
        };
        (classifier, trace, config)
    }

    #[test]
    fn cbp_decides_capacity_for_arrivals() {
        let (classifier, trace, config) = fixture();
        let mut ctl =
            CbpController::new(classifier, config, EnergyPrice::default()).unwrap();
        let cluster = Cluster::new(MachineCatalog::table2().scaled(100));
        let arrived: Vec<_> = trace.tasks()[..300].to_vec();
        let decision = ctl.decide(&Observation {
            now: SimTime::ZERO,
            cluster: &cluster,
            pending: TaskView::dense(&arrived),
            arrived_last_period: TaskView::dense(&arrived),
            running: TaskView::default(),
        });
        assert_eq!(decision.target_active.len(), 4);
        let total: usize = decision.target_active.iter().sum();
        assert!(total > 0, "pending demand must bring machines up: {decision:?}");
        assert_eq!(ctl.core().error_count(), 0);
    }

    #[test]
    fn cbs_publishes_quotas() {
        let (classifier, trace, config) = fixture();
        let quota = Rc::new(RefCell::new(QuotaState::default()));
        let mut ctl = CbsController::new(
            classifier.clone(),
            config,
            EnergyPrice::default(),
            quota.clone(),
        )
        .unwrap();
        let cluster = Cluster::new(MachineCatalog::table2().scaled(100));
        let arrived: Vec<_> = trace.tasks()[..300].to_vec();
        let _ = ctl.decide(&Observation {
            now: SimTime::ZERO,
            cluster: &cluster,
            pending: TaskView::dense(&arrived),
            arrived_last_period: TaskView::dense(&arrived),
            running: TaskView::default(),
        });
        // Some class has quota somewhere.
        let state = quota.borrow();
        let any = (0..classifier.classes().len()).any(|n| state.remaining(n) > 0.0);
        assert!(any, "CBS must publish nonzero quotas");
    }

    #[test]
    fn idle_cluster_with_no_arrivals_scales_down() {
        let (classifier, _, config) = fixture();
        let mut ctl =
            CbpController::new(classifier, config, EnergyPrice::default()).unwrap();
        let mut cluster = Cluster::new(MachineCatalog::table2().scaled(100));
        let (ids, ready) = cluster.power_on(MachineTypeId(0), 20, SimTime::ZERO);
        for id in ids {
            cluster.boot_complete(id, ready);
        }
        // Several empty periods: capacity should fall toward zero.
        let mut last_total = 20;
        for i in 0..4 {
            let decision = ctl.decide(&Observation {
                now: SimTime::from_secs(600.0 * i as f64),
                cluster: &cluster,
                pending: TaskView::default(),
                arrived_last_period: TaskView::default(),
                running: TaskView::default(),
            });
            last_total = decision.target_active.iter().sum();
        }
        assert!(last_total <= 2, "idle cluster should power down, got {last_total}");
        assert_eq!(ctl.core().error_count(), 0);
    }

    #[test]
    fn lp_failure_walks_degradation_ladder() {
        let (classifier, trace, mut config) = fixture();
        // A one-pivot budget makes every real instance hit the
        // iteration limit, forcing the ladder.
        config.max_lp_pivots = 1;
        let mut ctl = CbpController::new(classifier, config, EnergyPrice::default()).unwrap();
        let cluster = Cluster::new(MachineCatalog::table2().scaled(100));
        let arrived: Vec<_> = trace.tasks()[..300].to_vec();
        let obs = Observation {
            now: SimTime::ZERO,
            cluster: &cluster,
            pending: TaskView::dense(&arrived),
            arrived_last_period: TaskView::dense(&arrived),
            running: TaskView::default(),
        };
        // No previous plan: greedy per-class sizing.
        let decision = ctl.decide(&obs);
        let degradations = ctl.take_degradations();
        assert!(
            degradations
                .iter()
                .any(|d| matches!(d.kind, DegradationKind::LpGreedyFallback)),
            "expected a greedy fallback, got {degradations:?}"
        );
        let total: usize = decision.target_active.iter().sum();
        assert!(total > 0, "greedy fallback must still provision for backlog");
        assert!(ctl.core().error_count() >= 1);
        // Drained: a second take returns nothing new without a decide.
        assert!(ctl.take_degradations().is_empty());
    }

    #[test]
    fn lp_failure_reuses_previous_plan_when_available() {
        let (classifier, trace, config) = fixture();
        let mut ctl = CbpController::new(classifier, config, EnergyPrice::default()).unwrap();
        let cluster = Cluster::new(MachineCatalog::table2().scaled(100));
        let arrived: Vec<_> = trace.tasks()[..300].to_vec();
        // First tick succeeds and caches a plan.
        let first = ctl.decide(&Observation {
            now: SimTime::ZERO,
            cluster: &cluster,
            pending: TaskView::dense(&arrived),
            arrived_last_period: TaskView::dense(&arrived),
            running: TaskView::default(),
        });
        assert_eq!(ctl.core().error_count(), 0);
        let _ = ctl.take_degradations();
        // Cripple the solver for the second tick. The carried warm basis
        // would let the near-identical re-solve finish in zero pivots, so
        // drop it to force the cold path into the crippled budget.
        ctl.core.lp_basis = None;
        ctl.core.config.max_lp_pivots = 1;
        let second = ctl.decide(&Observation {
            now: SimTime::from_secs(600.0),
            cluster: &cluster,
            pending: TaskView::dense(&arrived),
            arrived_last_period: TaskView::dense(&arrived),
            running: TaskView::default(),
        });
        let degradations = ctl.take_degradations();
        assert!(
            degradations
                .iter()
                .any(|d| matches!(d.kind, DegradationKind::LpReusedPreviousPlan)),
            "expected plan reuse, got {degradations:?}"
        );
        assert_eq!(second.target_active, first.target_active, "reused plan re-actuates");
    }

    #[test]
    fn parallel_pipeline_plans_are_bit_identical_to_serial() {
        // Acceptance criterion for the parallel fan-out: the same
        // observation sequence must produce the same decisions for any
        // worker count, bit for bit.
        let (classifier, trace, config) = fixture();
        let run = |workers: Option<usize>| {
            let cfg = HarmonyConfig { pipeline_workers: workers, ..config.clone() };
            let mut ctl =
                CbpController::new(classifier.clone(), cfg, EnergyPrice::default()).unwrap();
            let cluster = Cluster::new(MachineCatalog::table2().scaled(100));
            let mut decisions = Vec::new();
            for i in 0..4 {
                let lo = (i * 150).min(trace.len());
                let hi = ((i + 1) * 150).min(trace.len());
                let chunk: Vec<_> = trace.tasks()[lo..hi].to_vec();
                decisions.push(ctl.decide(&Observation {
                    now: SimTime::from_secs(600.0 * i as f64),
                    cluster: &cluster,
                    pending: TaskView::dense(&chunk),
                    arrived_last_period: TaskView::dense(&chunk),
                    running: TaskView::default(),
                }));
            }
            assert_eq!(ctl.core().error_count(), 0);
            decisions
        };
        let serial = run(Some(1));
        for workers in [Some(2), Some(4), None] {
            assert_eq!(run(workers), serial, "workers={workers:?}");
        }
    }

    #[test]
    fn warm_basis_is_carried_and_cleared_on_failure() {
        let (classifier, trace, config) = fixture();
        let mut ctl = CbpController::new(classifier, config, EnergyPrice::default()).unwrap();
        let cluster = Cluster::new(MachineCatalog::table2().scaled(100));
        let arrived: Vec<_> = trace.tasks()[..300].to_vec();
        let obs = |i: usize| Observation {
            now: SimTime::from_secs(600.0 * i as f64),
            cluster: &cluster,
            pending: TaskView::dense(&arrived),
            arrived_last_period: TaskView::dense(&arrived),
            running: TaskView::default(),
        };
        assert!(ctl.core().lp_basis.is_none());
        let _ = ctl.decide(&obs(0));
        assert!(ctl.core().lp_basis.is_some(), "a successful solve must carry its basis");
        // Swap in a stale basis from an unrelated tiny LP, then cripple
        // the pivot budget: the warm install rejects the mismatched
        // shape, the cold fallback hits the budget and fails, and the
        // failure must clear the carried basis instead of keeping the
        // stale one around.
        let mut tiny = harmony_lp::Problem::new(harmony_lp::Sense::Minimize);
        let x = tiny.add_var("x", 0.0, f64::INFINITY, 1.0);
        tiny.add_ge(vec![(x, 1.0)], 1.0);
        let stale = tiny.solve().unwrap().basis().clone();
        ctl.core.lp_basis = Some(stale);
        ctl.core.config.max_lp_pivots = 1;
        let _ = ctl.decide(&obs(1));
        assert!(ctl.core().lp_basis.is_none(), "a failed solve must drop the basis");
    }

    #[test]
    fn control_period_is_config_driven() {
        let (classifier, _, config) = fixture();
        let ctl = CbpController::new(classifier.clone(), config.clone(), EnergyPrice::default())
            .unwrap();
        assert_eq!(ctl.control_period(), config.control_period);
        let quota = Rc::new(RefCell::new(QuotaState::default()));
        let cbs = CbsController::new(classifier, config.clone(), EnergyPrice::default(), quota)
            .unwrap();
        assert_eq!(cbs.control_period(), config.control_period);
    }
}

//! Two-step task characterization and run-time classification
//! (Section V).
//!
//! **Step 1** clusters tasks by *static* features — per priority group,
//! K-means over `(log10 cpu, log10 mem)` (sizes span orders of
//! magnitude, so clustering runs in log space). The number of clusters
//! per group is chosen with the elbow rule unless fixed.
//!
//! **Step 2** splits each static class into *short*/*long* sub-classes
//! with k=2 K-means on `log10(duration)`.
//!
//! Run-time labeling cannot see a task's duration, so every arriving
//! task is first labeled with its static class's **short** sub-class;
//! once its measured running time crosses the class's short/long
//! boundary, [`TaskClassifier::relabel`] moves it to the long sub-class.
//! "Since only a small fraction of tasks are long, the error caused by
//! the incorrect labeling is both small and short-lived."

use harmony_kmeans::{elbow_k, Dataset, KMeans, Log10Transform};
use harmony_model::{
    ClassStats, PriorityGroup, Resources, SimDuration, Task, TaskClassId,
};
use serde::{Deserialize, Serialize};

use crate::HarmonyError;

/// Duration regime of a task class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regime {
    /// The short sub-class (initial label for every arriving task).
    Short,
    /// The long sub-class (tasks relabeled after crossing the boundary).
    Long,
}

/// A final (static × duration) task class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskClass {
    /// Stable identifier (dense, `0..classes().len()`).
    pub id: TaskClassId,
    /// Priority group of the member tasks.
    pub group: PriorityGroup,
    /// Index of the parent static class within the group.
    pub static_class: usize,
    /// Short or long sub-class.
    pub regime: Regime,
    /// Member statistics, ready for container sizing and queueing.
    pub stats: ClassStats,
    /// Centroid in clustering space `(log10 cpu, log10 mem)`.
    pub centroid_log: [f64; 2],
}

/// Classifier calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifierConfig {
    /// Fixed number of static classes per priority group; `None` selects
    /// per group with the elbow rule over `2..=k_max`.
    pub k_per_group: Option<[usize; 3]>,
    /// Elbow-sweep cap when `k_per_group` is `None`.
    pub k_max: usize,
    /// Elbow threshold: minimum relative inertia gain to keep adding
    /// clusters.
    pub elbow_min_gain: f64,
    /// Whether to run the second (duration) split.
    pub split_by_duration: bool,
    /// RNG seed for the K-means runs.
    pub seed: u64,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            k_per_group: None,
            k_max: 10,
            elbow_min_gain: 0.02,
            split_by_duration: true,
            seed: 2013,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct StaticClass {
    /// Centroid in log space.
    centroid: [f64; 2],
    /// Short/long boundary on duration (seconds); `None` when the class
    /// has a single duration regime.
    boundary_secs: Option<f64>,
    /// Final class id of the short (or only) sub-class.
    short_id: TaskClassId,
    /// Final class id of the long sub-class (equals `short_id` when not
    /// split).
    long_id: TaskClassId,
}

/// A fitted two-step task classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskClassifier {
    transform: Log10Transform,
    /// Static classes per priority group.
    static_classes: [Vec<StaticClass>; 3],
    classes: Vec<TaskClass>,
}

impl TaskClassifier {
    /// Fits the two-step classifier on observed tasks (durations are
    /// known here — this is the offline characterization step, run on
    /// historical data).
    ///
    /// # Errors
    ///
    /// * [`HarmonyError::InsufficientData`] if any priority group has no
    ///   tasks.
    /// * [`HarmonyError::Classification`] on clustering failures.
    pub fn fit(tasks: &[Task], config: &ClassifierConfig) -> Result<Self, HarmonyError> {
        let transform = Log10Transform::default();
        let mut static_classes: [Vec<StaticClass>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        let mut classes: Vec<TaskClass> = Vec::new();

        for group in PriorityGroup::ALL {
            let members: Vec<&Task> =
                tasks.iter().filter(|t| t.priority.group() == group).collect();
            if members.is_empty() {
                return Err(HarmonyError::InsufficientData { context: "task classifier: empty priority group" });
            }
            // Step 1: static clustering in log size space.
            let rows: Vec<Vec<f64>> = members
                .iter()
                .map(|t| vec![transform.apply(t.demand.cpu), transform.apply(t.demand.mem)])
                .collect();
            let data = Dataset::from_rows(rows)?;
            let k = match config.k_per_group {
                Some(ks) => ks[group.index()].clamp(1, members.len()),
                None => {
                    elbow_k(&data, 1, config.k_max, config.elbow_min_gain, config.seed)?.chosen_k
                }
            };
            let model = KMeans::new(k).seed(config.seed).fit(&data)?;

            for c in 0..k {
                let member_idx: Vec<usize> = model
                    .assignments()
                    .iter()
                    .enumerate()
                    .filter(|(_, &a)| a == c)
                    .map(|(i, _)| i)
                    .collect();
                let centroid = [model.centroids()[c][0], model.centroids()[c][1]];
                let split = if config.split_by_duration {
                    split_by_duration(&member_idx, &members, config.seed)
                } else {
                    None
                };
                match split {
                    Some((boundary, short_members, long_members)) => {
                        let short_id = TaskClassId(classes.len());
                        classes.push(build_class(
                            short_id, group, c, Regime::Short, centroid, &short_members, &members,
                        ));
                        let long_id = TaskClassId(classes.len());
                        classes.push(build_class(
                            long_id, group, c, Regime::Long, centroid, &long_members, &members,
                        ));
                        static_classes[group.index()].push(StaticClass {
                            centroid,
                            boundary_secs: Some(boundary),
                            short_id,
                            long_id,
                        });
                    }
                    None => {
                        let id = TaskClassId(classes.len());
                        classes.push(build_class(
                            id, group, c, Regime::Short, centroid, &member_idx, &members,
                        ));
                        static_classes[group.index()].push(StaticClass {
                            centroid,
                            boundary_secs: None,
                            short_id: id,
                            long_id: id,
                        });
                    }
                }
            }
        }
        Ok(TaskClassifier { transform, static_classes, classes })
    }

    /// All final task classes, ordered by id.
    pub fn classes(&self) -> &[TaskClass] {
        &self.classes
    }

    /// One class by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn class(&self, id: TaskClassId) -> &TaskClass {
        &self.classes[id.0]
    }

    /// The static class a task belongs to (nearest centroid in log-size
    /// space within its priority group) — uses static features only.
    pub fn classify_static(&self, task: &Task) -> usize {
        let group = task.priority.group();
        let point = [
            self.transform.apply(task.demand.cpu),
            self.transform.apply(task.demand.mem),
        ];
        let mut best = (0usize, f64::INFINITY);
        for (i, sc) in self.static_classes[group.index()].iter().enumerate() {
            let d = (point[0] - sc.centroid[0]).powi(2) + (point[1] - sc.centroid[1]).powi(2);
            if d < best.1 {
                best = (i, d);
            }
        }
        best.0
    }

    /// The initial run-time label for an arriving task: the short
    /// sub-class of its static class (duration is unknown at arrival).
    pub fn initial_label(&self, task: &Task) -> TaskClassId {
        let group = task.priority.group();
        let sc = &self.static_classes[group.index()][self.classify_static(task)];
        sc.short_id
    }

    /// Relabels a task given its measured running time so far; returns
    /// the long sub-class once the short/long boundary is crossed.
    pub fn relabel(&self, task: &Task, running_for: SimDuration) -> TaskClassId {
        let group = task.priority.group();
        let sc = &self.static_classes[group.index()][self.classify_static(task)];
        match sc.boundary_secs {
            Some(b) if running_for.as_secs() > b => sc.long_id,
            _ => sc.short_id,
        }
    }

    /// The *oracle* label using the true duration — what run-time
    /// labeling converges to. Used to quantify relabeling error.
    pub fn oracle_label(&self, task: &Task) -> TaskClassId {
        self.relabel(task, task.duration)
    }

    /// Fraction of tasks whose initial label differs from the oracle
    /// label (the relabeling error the two-step design keeps small).
    pub fn initial_label_error(&self, tasks: &[Task]) -> f64 {
        if tasks.is_empty() {
            return 0.0;
        }
        let wrong = tasks
            .iter()
            .filter(|t| self.initial_label(t) != self.oracle_label(t))
            .count();
        wrong as f64 / tasks.len() as f64
    }
}

/// k=2 K-means on log durations. Returns `(boundary_secs, short_member
/// indices, long member indices)`, or `None` when the class is too small
/// or homogeneous to split.
fn split_by_duration(
    member_idx: &[usize],
    members: &[&Task],
    seed: u64,
) -> Option<(f64, Vec<usize>, Vec<usize>)> {
    if member_idx.len() < 4 {
        return None;
    }
    let rows: Vec<Vec<f64>> = member_idx
        .iter()
        .map(|&i| vec![members[i].duration.as_secs().max(1.0).log10()])
        .collect();
    let data = Dataset::from_rows(rows).ok()?;
    let model = KMeans::new(2).seed(seed).fit(&data).ok()?;
    let c0 = model.centroids()[0][0];
    let c1 = model.centroids()[1][0];
    if (c0 - c1).abs() < 0.3 {
        // Less than a factor-of-2 separation: effectively one regime.
        return None;
    }
    let (short_label, _long_label) = if c0 < c1 { (0, 1) } else { (1, 0) };
    let boundary = 10f64.powf((c0 + c1) / 2.0);
    let mut short = Vec::new();
    let mut long = Vec::new();
    for (pos, &i) in member_idx.iter().enumerate() {
        if model.assignments()[pos] == short_label {
            short.push(i);
        } else {
            long.push(i);
        }
    }
    if short.is_empty() || long.is_empty() {
        return None;
    }
    Some((boundary, short, long))
}

fn build_class(
    id: TaskClassId,
    group: PriorityGroup,
    static_class: usize,
    regime: Regime,
    centroid: [f64; 2],
    member_idx: &[usize],
    members: &[&Task],
) -> TaskClass {
    let n = member_idx.len().max(1) as f64;
    let mut mean = Resources::ZERO;
    let mut mean_dur = 0.0f64;
    for &i in member_idx {
        mean += members[i].demand;
        mean_dur += members[i].duration.as_secs();
    }
    mean = mean / n;
    mean_dur /= n;
    let mut var = Resources::ZERO;
    let mut var_dur = 0.0f64;
    for &i in member_idx {
        let d = members[i].demand - mean;
        var += Resources::new(d.cpu * d.cpu, d.mem * d.mem);
        var_dur += (members[i].duration.as_secs() - mean_dur).powi(2);
    }
    var = var / n;
    var_dur /= n;
    let cv2 = if mean_dur > 0.0 { var_dur / (mean_dur * mean_dur) } else { 0.0 };
    TaskClass {
        id,
        group,
        static_class,
        regime,
        stats: ClassStats {
            id,
            group,
            mean_demand: mean,
            std_demand: Resources::new(var.cpu.sqrt(), var.mem.sqrt()),
            mean_duration: SimDuration::from_secs(mean_dur),
            cv2_duration: cv2,
            count: member_idx.len(),
        },
        centroid_log: centroid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_trace::{TraceConfig, TraceGenerator};

    fn classifier() -> (TaskClassifier, harmony_trace::Trace) {
        let trace = TraceGenerator::new(TraceConfig::small().with_seed(5)).generate();
        let c = TaskClassifier::fit(trace.tasks(), &ClassifierConfig::default()).unwrap();
        (c, trace)
    }

    #[test]
    fn classes_cover_all_groups_and_ids_are_dense() {
        let (c, _) = classifier();
        assert!(!c.classes().is_empty());
        for (i, class) in c.classes().iter().enumerate() {
            assert_eq!(class.id, TaskClassId(i));
            assert!(class.stats.count > 0);
        }
        for g in PriorityGroup::ALL {
            assert!(c.classes().iter().any(|cl| cl.group == g), "missing group {g}");
        }
    }

    #[test]
    fn short_and_long_subclasses_exist() {
        let (c, _) = classifier();
        let shorts = c.classes().iter().filter(|cl| cl.regime == Regime::Short).count();
        let longs = c.classes().iter().filter(|cl| cl.regime == Regime::Long).count();
        assert!(shorts > 0);
        assert!(longs > 0, "bimodal durations should produce long sub-classes");
        // Long sub-classes have longer mean durations than their short
        // siblings.
        for long in c.classes().iter().filter(|cl| cl.regime == Regime::Long) {
            let sibling = c
                .classes()
                .iter()
                .find(|cl| {
                    cl.group == long.group
                        && cl.static_class == long.static_class
                        && cl.regime == Regime::Short
                })
                .expect("long class has a short sibling");
            assert!(long.stats.mean_duration > sibling.stats.mean_duration);
        }
    }

    #[test]
    fn initial_label_is_short_subclass() {
        let (c, trace) = classifier();
        for task in trace.tasks().iter().take(500) {
            let label = c.class(c.initial_label(task));
            assert_eq!(label.regime, Regime::Short);
            assert_eq!(label.group, task.priority.group());
        }
    }

    #[test]
    fn relabel_crosses_boundary() {
        let (c, trace) = classifier();
        // Find a task in a split class and push its running time past the
        // boundary.
        let task = trace
            .tasks()
            .iter()
            .find(|t| {
                let sc = &c.static_classes[t.priority.group().index()][c.classify_static(t)];
                sc.boundary_secs.is_some()
            })
            .expect("some class is split");
        let sc = &c.static_classes[task.priority.group().index()][c.classify_static(task)];
        let boundary = sc.boundary_secs.unwrap();
        assert_eq!(c.relabel(task, SimDuration::from_secs(boundary * 0.5)), sc.short_id);
        assert_eq!(c.relabel(task, SimDuration::from_secs(boundary * 2.0)), sc.long_id);
    }

    #[test]
    fn initial_label_error_is_small() {
        // The design claim: most tasks are short, so labeling everything
        // short first is mostly right.
        let (c, trace) = classifier();
        let err = c.initial_label_error(trace.tasks());
        assert!(err < 0.5, "initial label error should be bounded, got {err}");
        // And it matches the long-task fraction by construction.
        let empty_err = c.initial_label_error(&[]);
        assert_eq!(empty_err, 0.0);
    }

    #[test]
    fn fixed_k_is_respected() {
        let trace = TraceGenerator::new(TraceConfig::small().with_seed(5)).generate();
        let config = ClassifierConfig {
            k_per_group: Some([2, 3, 2]),
            split_by_duration: false,
            ..Default::default()
        };
        let c = TaskClassifier::fit(trace.tasks(), &config).unwrap();
        let per_group: Vec<usize> = PriorityGroup::ALL
            .iter()
            .map(|g| c.classes().iter().filter(|cl| cl.group == *g).count())
            .collect();
        assert_eq!(per_group, vec![2, 3, 2]);
        // Without the duration split every class is its own short class.
        assert!(c.classes().iter().all(|cl| cl.regime == Regime::Short));
    }

    #[test]
    fn empty_group_is_an_error() {
        let trace = TraceGenerator::new(TraceConfig::small()).generate();
        let only_gratis: Vec<_> = trace
            .tasks()
            .iter()
            .filter(|t| t.priority.group() == PriorityGroup::Gratis)
            .cloned()
            .collect();
        assert!(matches!(
            TaskClassifier::fit(&only_gratis, &ClassifierConfig::default()),
            Err(HarmonyError::InsufficientData { .. })
        ));
    }

    #[test]
    fn class_stats_capture_size_differences() {
        let (c, _) = classifier();
        // Across gratis classes, centroids must differ (cpu-heavy vs
        // small tasks were generated).
        let gratis: Vec<&TaskClass> =
            c.classes().iter().filter(|cl| cl.group == PriorityGroup::Gratis).collect();
        assert!(gratis.len() >= 2);
        let cpus: Vec<f64> = gratis.iter().map(|cl| cl.stats.mean_demand.cpu).collect();
        let max = cpus.iter().cloned().fold(0.0, f64::max);
        let min = cpus.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > min * 2.0, "classes should separate sizes: {cpus:?}");
    }
}

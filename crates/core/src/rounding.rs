//! Rounding the fractional CBS-RELAX plan to integers (Lemma 1 /
//! Algorithm 1).
//!
//! Lemma 1: given a fractional solution with `z*_m` machines and `x*_mn`
//! containers, a greedy First-Fit can place `x*_mn / (2|R|)` containers
//! of each class on `z*_m + 1` machines. The controller therefore:
//!
//! 1. takes `⌈z*_m⌉` machines of each type (plus the Lemma-1 slack
//!    machine for types that host containers) as the integer target;
//! 2. packs the class container totals `⌈Σ_m x*_mn⌉` into that machine
//!    mix with First-Fit-Decreasing to obtain validated integer quotas —
//!    packing against the *whole* planned mix avoids the mass lost by
//!    rounding each `x_mn` cell independently (fractional assignments
//!    spread thinly across types would otherwise round to zero);
//! 3. hands the per-(type, class) integer quotas to the scheduler.

use harmony_model::{MachineCatalog, MachineTypeId, Resources};
use serde::{Deserialize, Serialize};

use crate::cbs::CbsPlan;

/// An integer provisioning decision for one control period.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntegerPlan {
    /// Machines to keep active per type.
    pub machines: Vec<usize>,
    /// Container quota per `[machine_type][class]`, as packed by
    /// First-Fit.
    pub quotas: Vec<Vec<usize>>,
}

impl IntegerPlan {
    /// Total quota for one class across machine types.
    pub fn class_quota(&self, class: usize) -> usize {
        self.quotas.iter().map(|per_n| per_n.get(class).copied().unwrap_or(0)).sum()
    }
}

/// Rounds the first step of a fractional plan: integer machine targets
/// plus First-Fit-validated container quotas.
pub fn round_first_step(
    plan: &CbsPlan,
    catalog: &MachineCatalog,
    container_sizes: &[Resources],
) -> IntegerPlan {
    let z = plan.first_step_machines();
    let x = plan.first_step_quotas();
    let n_classes = container_sizes.len();

    // Integer machine targets: ceil(z).
    let mut machines = Vec::with_capacity(z.len());
    for (m, &zf) in z.iter().enumerate() {
        let ty = catalog.machine_type(MachineTypeId(m));
        machines.push((zf.ceil() as usize).min(ty.count));
    }

    // Class totals, rounded up so thin fractional spreads keep their
    // mass.
    let totals: Vec<usize> = (0..n_classes)
        .map(|n| {
            let total: f64 = x.iter().map(|per_n| per_n[n]).sum();
            (total - 1e-9).ceil().max(0.0) as usize
        })
        .collect();

    // Pack the totals into the planned mix; only when rounding loss
    // leaves containers unpacked does each hosting type receive its
    // Lemma-1 slack machine (at the paper's 10k-machine scale a +1 per
    // type is noise; at laptop scale it would be systematic
    // over-provisioning).
    let mut quotas = pack_into_mix(&totals, container_sizes, catalog, &machines);
    let packed_all = (0..n_classes)
        .all(|n| quotas.iter().map(|p| p[n]).sum::<usize>() >= totals[n]);
    if !packed_all {
        for (m, target) in machines.iter_mut().enumerate() {
            let ty = catalog.machine_type(MachineTypeId(m));
            let hosts_any = x[m].iter().any(|&v| v > 1e-9);
            *target = (*target + usize::from(hosts_any)).min(ty.count);
        }
        quotas = pack_into_mix(&totals, container_sizes, catalog, &machines);
    }
    IntegerPlan { machines, quotas }
}

/// First-Fit-Decreasing packing of class container totals into a
/// heterogeneous machine mix (`machines[m]` machines of each catalog
/// type). Returns the per-`[machine_type][class]` packed counts.
pub fn pack_into_mix(
    totals: &[usize],
    sizes: &[Resources],
    catalog: &MachineCatalog,
    machines: &[usize],
) -> Vec<Vec<usize>> {
    let mut free: Vec<(usize, Resources)> = Vec::new();
    for (m, &count) in machines.iter().enumerate() {
        let cap = catalog.machine_type(MachineTypeId(m)).capacity;
        free.extend(std::iter::repeat_n((m, cap), count));
    }
    let mut packed = vec![vec![0usize; totals.len()]; machines.len()];
    // Largest containers first (First-Fit-Decreasing).
    let mut order: Vec<usize> = (0..totals.len()).collect();
    order.sort_by(|&a, &b| {
        f64::total_cmp(&sizes[b].sum_components(), &sizes[a].sum_components())
    });
    for &n in &order {
        let size = sizes[n];
        'containers: for _ in 0..totals[n] {
            for (m, slot) in free.iter_mut() {
                if size.fits_within(*slot) {
                    *slot -= size;
                    packed[*m][n] += 1;
                    continue 'containers;
                }
            }
            break; // no machine fits this class anymore
        }
    }
    packed
}

/// Greedy First-Fit packing of `counts[n]` containers of each class into
/// `machines` machines of one capacity. Returns how many containers of
/// each class were placed (classes packed largest-first).
pub fn first_fit_pack(
    counts: &[usize],
    sizes: &[Resources],
    capacity: Resources,
    machines: usize,
) -> Vec<usize> {
    let mut free = vec![capacity; machines];
    let mut placed = vec![0usize; counts.len()];
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by(|&a, &b| {
        f64::total_cmp(&sizes[b].sum_components(), &sizes[a].sum_components())
    });
    for &n in &order {
        let size = sizes[n];
        'containers: for _ in 0..counts[n] {
            for slot in free.iter_mut() {
                if size.fits_within(*slot) {
                    *slot -= size;
                    placed[n] += 1;
                    continue 'containers;
                }
            }
            break;
        }
    }
    placed
}

/// Checks the Lemma-1 guarantee for a packing instance: scaling every
/// class count by `1/(2|R|)` must fit in `machines + 1` machines
/// whenever the fractional solution `(counts, machines)` satisfied the
/// capacity constraints. Returns `true` if First-Fit achieves it.
pub fn lemma1_holds(
    counts: &[usize],
    sizes: &[Resources],
    capacity: Resources,
    machines: usize,
) -> bool {
    let scale = 2.0 * harmony_model::NUM_RESOURCES as f64;
    let scaled: Vec<usize> =
        counts.iter().map(|&c| (c as f64 / scale).floor() as usize).collect();
    let placed = first_fit_pack(&scaled, sizes, capacity, machines + 1);
    placed.iter().zip(&scaled).all(|(p, s)| p >= s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cbs::CbsPlan;

    #[test]
    fn first_fit_packs_simple_case() {
        // 4 containers of 0.5 into machines of capacity 1: 2 machines.
        let placed = first_fit_pack(
            &[4],
            &[Resources::new(0.5, 0.5)],
            Resources::ONE,
            2,
        );
        assert_eq!(placed, vec![4]);
        // Only 1 machine: 2 fit.
        let placed = first_fit_pack(&[4], &[Resources::new(0.5, 0.5)], Resources::ONE, 1);
        assert_eq!(placed, vec![2]);
    }

    #[test]
    fn first_fit_respects_both_dimensions() {
        // CPU-heavy and mem-heavy containers complement each other.
        let sizes = [Resources::new(0.8, 0.1), Resources::new(0.1, 0.8)];
        let placed = first_fit_pack(&[1, 1], &sizes, Resources::ONE, 1);
        assert_eq!(placed, vec![1, 1]);
        // Two CPU-heavy do not share a machine.
        let placed = first_fit_pack(&[2, 0], &sizes, Resources::ONE, 1);
        assert_eq!(placed, vec![1, 0]);
    }

    #[test]
    fn zero_machines_place_nothing() {
        let placed = first_fit_pack(&[3], &[Resources::new(0.1, 0.1)], Resources::ONE, 0);
        assert_eq!(placed, vec![0]);
    }

    #[test]
    fn lemma1_on_random_instances() {
        // Construct fractionally-feasible instances and verify the
        // scaled packing guarantee.
        let mut seed = 12345u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64).abs()
        };
        for _ in 0..50 {
            let n_classes = 1 + (next() * 4.0) as usize;
            let sizes: Vec<Resources> = (0..n_classes)
                .map(|_| Resources::new(0.05 + next() * 0.4, 0.05 + next() * 0.4))
                .collect();
            let machines = 2 + (next() * 10.0) as usize;
            let capacity = Resources::ONE;
            // Fill fractionally: total volume per resource ≤ machines.
            let mut counts = vec![0usize; n_classes];
            let mut cpu = 0.0;
            let mut mem = 0.0;
            loop {
                let n = (next() * n_classes as f64) as usize % n_classes;
                if cpu + sizes[n].cpu > machines as f64 || mem + sizes[n].mem > machines as f64 {
                    break;
                }
                counts[n] += 1;
                cpu += sizes[n].cpu;
                mem += sizes[n].mem;
            }
            assert!(
                lemma1_holds(&counts, &sizes, capacity, machines),
                "lemma 1 violated: counts {counts:?}, sizes {sizes:?}, machines {machines}"
            );
        }
    }

    #[test]
    fn round_first_step_keeps_thin_fractional_mass() {
        let catalog = harmony_model::MachineCatalog::table2().scaled(100);
        let sizes = vec![Resources::new(0.02, 0.02)];
        // 0.3 containers on each of four types: cell-wise rounding would
        // drop all of it; class-total rounding keeps ⌈1.2⌉ = 2.
        let plan = CbsPlan {
            z: vec![vec![1.0, 1.0, 1.0, 1.0]],
            x: vec![vec![vec![0.3], vec![0.3], vec![0.3], vec![0.3]]],
            objective: 0.0,
        };
        let integer = round_first_step(&plan, &catalog, &sizes);
        assert_eq!(integer.class_quota(0), 2);
    }

    #[test]
    fn round_first_step_produces_feasible_quotas() {
        let catalog = harmony_model::MachineCatalog::table2().scaled(100);
        let sizes = vec![Resources::new(0.05, 0.03), Resources::new(0.3, 0.2)];
        let plan = CbsPlan {
            z: vec![vec![3.4, 0.0, 1.5, 0.0]],
            x: vec![vec![
                vec![10.2, 0.0],
                vec![0.0, 0.0],
                vec![0.0, 2.5],
                vec![0.0, 0.0],
            ]],
            objective: 0.0,
        };
        let integer = round_first_step(&plan, &catalog, &sizes);
        // ⌈3.4⌉ + 1 slack = 5 R210s; ⌈1.5⌉ + 1 = 3 DL385s.
        assert_eq!(integer.machines, vec![5, 0, 3, 0]);
        // Class totals are honored up to physical packing: 11 small
        // containers requested; each R210 (0.0833, 0.0625) fits 1 (cpu-
        // bound), each DL385 (0.5, 0.25) fits several after the big
        // containers.
        assert!(integer.class_quota(0) >= 5, "quotas: {:?}", integer.quotas);
        assert_eq!(integer.class_quota(1), 3);
    }

    #[test]
    fn round_respects_population_caps() {
        let catalog = harmony_model::MachineCatalog::table2().scaled(2500); // 3/1/1/1
        let sizes = vec![Resources::new(0.01, 0.01)];
        let plan = CbsPlan {
            z: vec![vec![100.0, 100.0, 100.0, 100.0]],
            x: vec![vec![vec![5.0], vec![5.0], vec![5.0], vec![5.0]]],
            objective: 0.0,
        };
        let integer = round_first_step(&plan, &catalog, &sizes);
        assert_eq!(integer.machines, vec![3, 1, 1, 1]);
        assert_eq!(integer.class_quota(0), 20);
    }

    #[test]
    fn pack_into_mix_uses_all_types() {
        let catalog = harmony_model::MachineCatalog::table2().scaled(1000); // 7/2/1/1
        // 30 small containers across the whole mix.
        let packed = pack_into_mix(
            &[30],
            &[Resources::new(0.05, 0.04)],
            &catalog,
            &[7, 2, 1, 1],
        );
        let total: usize = packed.iter().map(|p| p[0]).sum();
        assert!(total >= 25, "most containers should pack: {packed:?}");
        // R210s (cpu 0.083) host 1 each; big machines host the rest.
        assert!(packed[3][0] > 5);
    }
}

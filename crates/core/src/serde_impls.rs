//! Hand-written serde impls for the controller-state types that cross a
//! serialization boundary (daemon checkpoints, the wire protocol).
//!
//! The vendored `serde` stand-in has no derive machinery, so
//! [`HarmonyConfig`], [`IntegerPlan`], and [`ClassForecast`] implement
//! the value-model traits explicitly here, matching the field-keyed
//! object encoding the upstream derives would produce.

use std::collections::BTreeMap;

use harmony_model::SimDuration;
use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};

use crate::classify::ClassifierConfig;
use crate::monitor::ClassForecast;
use crate::rounding::IntegerPlan;
use crate::HarmonyConfig;

fn object(fields: &[(&str, Value)]) -> Value {
    let mut map = BTreeMap::new();
    for (k, v) in fields {
        map.insert((*k).to_owned(), v.clone());
    }
    Value::Object(map)
}

fn array3(v: &Value, what: &str) -> Result<[f64; 3], DeError> {
    Vec::<f64>::from_value(v)?
        .try_into()
        .map_err(|_| DeError::new(format!("{what} must have exactly 3 entries")))
}

impl Serialize for HarmonyConfig {
    fn to_value(&self) -> Value {
        object(&[
            ("control_period", self.control_period.to_value()),
            ("horizon", self.horizon.to_value()),
            ("epsilon", self.epsilon.to_value()),
            ("omega", self.omega.to_value()),
            ("slo_delay_secs", self.slo_delay_secs.to_vec().to_value()),
            (
                "utility_per_container_hour",
                self.utility_per_container_hour.to_vec().to_value(),
            ),
            ("history_len", self.history_len.to_value()),
            ("arima_min_history", self.arima_min_history.to_value()),
            ("demand_margin", self.demand_margin.to_value()),
            ("max_lp_pivots", self.max_lp_pivots.to_value()),
            (
                "pipeline_workers",
                match self.pipeline_workers {
                    Some(w) => w.to_value(),
                    None => Value::Null,
                },
            ),
            ("lp_backend", self.lp_backend.to_value()),
        ])
    }
}

impl Deserialize for HarmonyConfig {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(HarmonyConfig {
            control_period: SimDuration::from_value(v.field("control_period")?)?,
            horizon: usize::from_value(v.field("horizon")?)?,
            epsilon: f64::from_value(v.field("epsilon")?)?,
            omega: f64::from_value(v.field("omega")?)?,
            slo_delay_secs: array3(v.field("slo_delay_secs")?, "slo_delay_secs")?,
            utility_per_container_hour: array3(
                v.field("utility_per_container_hour")?,
                "utility_per_container_hour",
            )?,
            history_len: usize::from_value(v.field("history_len")?)?,
            arima_min_history: usize::from_value(v.field("arima_min_history")?)?,
            demand_margin: f64::from_value(v.field("demand_margin")?)?,
            max_lp_pivots: usize::from_value(v.field("max_lp_pivots")?)?,
            // Tolerate checkpoints written before this field existed.
            pipeline_workers: match v.field("pipeline_workers") {
                Ok(Value::Null) | Err(_) => None,
                Ok(other) => Some(usize::from_value(other)?),
            },
            // Checkpoints predating the sparse engine carry no backend
            // key; they get the default (sparse) engine.
            lp_backend: match v.field("lp_backend") {
                Ok(Value::Null) | Err(_) => harmony_lp::SolverBackend::default(),
                Ok(other) => harmony_lp::SolverBackend::from_value(other)?,
            },
        })
    }
}

impl Serialize for ClassifierConfig {
    fn to_value(&self) -> Value {
        let k_per_group = match &self.k_per_group {
            Some(ks) => ks.to_vec().to_value(),
            None => Value::Null,
        };
        object(&[
            ("k_per_group", k_per_group),
            ("k_max", self.k_max.to_value()),
            ("elbow_min_gain", self.elbow_min_gain.to_value()),
            ("split_by_duration", self.split_by_duration.to_value()),
            ("seed", self.seed.to_value()),
        ])
    }
}

impl Deserialize for ClassifierConfig {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let k_per_group = match v.field("k_per_group")? {
            Value::Null => None,
            other => Some(Vec::<usize>::from_value(other)?.try_into().map_err(|_| {
                DeError::new("k_per_group must have exactly 3 entries".to_owned())
            })?),
        };
        Ok(ClassifierConfig {
            k_per_group,
            k_max: usize::from_value(v.field("k_max")?)?,
            elbow_min_gain: f64::from_value(v.field("elbow_min_gain")?)?,
            split_by_duration: bool::from_value(v.field("split_by_duration")?)?,
            seed: u64::from_value(v.field("seed")?)?,
        })
    }
}

impl Serialize for IntegerPlan {
    fn to_value(&self) -> Value {
        object(&[("machines", self.machines.to_value()), ("quotas", self.quotas.to_value())])
    }
}

impl Deserialize for IntegerPlan {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(IntegerPlan {
            machines: Vec::from_value(v.field("machines")?)?,
            quotas: Vec::from_value(v.field("quotas")?)?,
        })
    }
}

impl Serialize for ClassForecast {
    fn to_value(&self) -> Value {
        object(&[
            ("rates", self.rates.to_value()),
            ("tier", self.tier.to_value()),
            ("degraded", self.degraded.to_value()),
        ])
    }
}

impl Deserialize for ClassForecast {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(ClassForecast {
            rates: Vec::from_value(v.field("rates")?)?,
            tier: Deserialize::from_value(v.field("tier")?)?,
            degraded: Option::from_value(v.field("degraded")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_sim::ForecastTier;

    #[test]
    fn harmony_config_roundtrip() {
        let config = HarmonyConfig {
            horizon: 7,
            epsilon: 0.05,
            pipeline_workers: Some(3),
            ..Default::default()
        };
        let text = serde_json::to_string(&config).unwrap();
        let back: HarmonyConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(back, config);
        back.validate().unwrap();
    }

    #[test]
    fn config_without_pipeline_workers_field_still_loads() {
        // Checkpoints from before the parallel pipeline existed have no
        // pipeline_workers key; they must deserialize to None.
        let mut v = HarmonyConfig::default().to_value();
        if let Value::Object(map) = &mut v {
            map.remove("pipeline_workers");
        }
        let back = HarmonyConfig::from_value(&v).unwrap();
        assert_eq!(back.pipeline_workers, None);
    }

    #[test]
    fn config_without_lp_backend_field_defaults_to_sparse() {
        // Checkpoints from before the sparse engine carry no lp_backend
        // key; they must load with the default backend.
        let mut v = HarmonyConfig::default().to_value();
        if let Value::Object(map) = &mut v {
            map.remove("lp_backend");
        }
        let back = HarmonyConfig::from_value(&v).unwrap();
        assert_eq!(back.lp_backend, harmony_lp::SolverBackend::Sparse);
    }

    #[test]
    fn config_lp_backend_roundtrips_both_ways() {
        let config =
            HarmonyConfig { lp_backend: harmony_lp::SolverBackend::Dense, ..Default::default() };
        let text = serde_json::to_string(&config).unwrap();
        assert!(text.contains("\"dense\""), "backend serializes as its name: {text}");
        let back: HarmonyConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn classifier_config_roundtrip() {
        let config = ClassifierConfig {
            k_per_group: Some([2, 3, 4]),
            seed: 42,
            ..ClassifierConfig::default()
        };
        let text = serde_json::to_string(&config).unwrap();
        let back: ClassifierConfig = serde_json::from_str(&text).unwrap();
        assert_eq!(back, config);
        let config = ClassifierConfig::default();
        let back = ClassifierConfig::from_value(&config.to_value()).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn integer_plan_roundtrip() {
        let plan = IntegerPlan { machines: vec![3, 0, 1], quotas: vec![vec![2, 0], vec![0, 0], vec![0, 5]] };
        let back = IntegerPlan::from_value(&plan.to_value()).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn class_forecast_roundtrip() {
        let fc = ClassForecast {
            rates: vec![0.5, 0.25],
            tier: ForecastTier::MovingAverage,
            degraded: Some("ARIMA failed".to_owned()),
        };
        let back = ClassForecast::from_value(&fc.to_value()).unwrap();
        assert_eq!(back, fc);
        let fc = ClassForecast { rates: vec![], tier: ForecastTier::Arima, degraded: None };
        let back = ClassForecast::from_value(&fc.to_value()).unwrap();
        assert_eq!(back, fc);
    }

    #[test]
    fn bad_slo_arity_rejected() {
        let mut v = HarmonyConfig::default().to_value();
        if let Value::Object(map) = &mut v {
            map.insert("slo_delay_secs".to_owned(), Value::Array(vec![Value::Number(1.0)]));
        }
        assert!(HarmonyConfig::from_value(&v).is_err());
    }
}

//! Per-class arrival-rate monitoring and prediction (the paper's task
//! analysis + prediction modules).

use harmony_forecast::{Arima, Forecaster, MovingAverage};
use harmony_model::{SimDuration, Task, TaskClassId};
use harmony_sim::ForecastTier;
use harmony_telemetry as telemetry;

use crate::classify::TaskClassifier;
use crate::HarmonyError;

/// Forecast outputs above this multiple of the largest observed rate are
/// rejected as model blow-ups and the next ladder tier is tried instead.
const OUTLIER_FACTOR: f64 = 10.0;

/// One class's forecast plus the quality tier that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassForecast {
    /// Predicted arrival rates (tasks/second), one per horizon period;
    /// always finite and non-negative.
    pub rates: Vec<f64>,
    /// The ladder tier that produced `rates`.
    pub tier: ForecastTier,
    /// Why the class ran below the tier its history length entitles
    /// (`None` when it ran at full entitlement).
    pub degraded: Option<String>,
}

/// Monitors the arrival rate of every task class, one sample per control
/// period, and forecasts future rates.
#[derive(Debug)]
pub struct ArrivalMonitor {
    period: SimDuration,
    history_len: usize,
    arima_min_history: usize,
    /// Rate history (tasks/second) per class.
    history: Vec<Vec<f64>>,
}

impl ArrivalMonitor {
    /// Creates a monitor for `n_classes` classes sampling once per
    /// `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `history_len == 0`.
    pub fn new(
        n_classes: usize,
        period: SimDuration,
        history_len: usize,
        arima_min_history: usize,
    ) -> Self {
        assert!(period.as_secs() > 0.0, "control period must be positive");
        assert!(history_len > 0, "history length must be positive");
        ArrivalMonitor {
            period,
            history_len,
            arima_min_history,
            history: vec![Vec::new(); n_classes],
        }
    }

    /// Number of classes tracked.
    pub fn n_classes(&self) -> usize {
        self.history.len()
    }

    /// Records one control period's arrivals, labeling each task with
    /// its initial (short) class.
    ///
    /// Tasks whose label falls outside the monitor's class range (a
    /// stale or mismatched classifier) are **not** silently ignored:
    /// they are excluded from the rate history, counted into the
    /// `monitor.dropped_arrivals` telemetry counter, logged, and the
    /// number dropped this period is returned so callers can react.
    pub fn record_period<'a, I>(&mut self, arrived: I, classifier: &TaskClassifier) -> usize
    where
        I: IntoIterator<Item = &'a Task>,
    {
        let mut counts = vec![0usize; self.history.len()];
        let mut dropped = 0usize;
        for task in arrived {
            let label = classifier.initial_label(task);
            match counts.get_mut(label.0) {
                Some(c) => *c += 1,
                None => dropped += 1,
            }
        }
        if dropped > 0 {
            telemetry::global().counter("monitor.dropped_arrivals").add(dropped as u64);
            eprintln!(
                "harmony: monitor dropped {dropped} arrival(s) with out-of-range \
                 class labels (classifier has more classes than the monitor?)"
            );
        }
        let secs = self.period.as_secs();
        for (class, count) in counts.into_iter().enumerate() {
            let h = &mut self.history[class];
            h.push(count as f64 / secs);
            let len = h.len();
            if len > self.history_len {
                h.drain(..len - self.history_len);
            }
        }
        dropped
    }

    /// The recorded rate history (tasks/second) of one class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn history(&self, class: TaskClassId) -> &[f64] {
        &self.history[class.0]
    }

    /// Number of recorded periods so far (same for every class).
    pub fn periods_recorded(&self) -> usize {
        self.history.first().map_or(0, Vec::len)
    }

    /// The full rate history of every class — the monitor's checkpoint
    /// payload (see `harmony::online`).
    pub fn histories(&self) -> &[Vec<f64>] {
        &self.history
    }

    /// Replaces the rate histories wholesale — the checkpoint-restore
    /// path. Rejects payloads whose class count differs from the
    /// monitor's, whose per-class lengths are unequal, or that exceed the
    /// configured history bound (a truncated-on-write checkpoint can
    /// never be longer than `history_len`).
    ///
    /// # Errors
    ///
    /// Returns [`HarmonyError::InvalidConfig`] describing the mismatch.
    pub fn restore_histories(&mut self, histories: Vec<Vec<f64>>) -> Result<(), HarmonyError> {
        if histories.len() != self.history.len() {
            return Err(HarmonyError::InvalidConfig {
                reason: format!(
                    "history class count {} does not match monitor's {}",
                    histories.len(),
                    self.history.len()
                ),
            });
        }
        let len = histories.first().map_or(0, Vec::len);
        if histories.iter().any(|h| h.len() != len) {
            return Err(HarmonyError::InvalidConfig {
                reason: "per-class history lengths differ".into(),
            });
        }
        if len > self.history_len {
            return Err(HarmonyError::InvalidConfig {
                reason: format!(
                    "history length {len} exceeds the configured bound {}",
                    self.history_len
                ),
            });
        }
        self.history = histories;
        Ok(())
    }

    /// Appends raw rate samples to one class's history, bypassing
    /// [`ArrivalMonitor::record_period`] — lets tests feed corrupted
    /// (non-finite) histories to the forecast guard.
    #[cfg(test)]
    pub(crate) fn inject_history(&mut self, class: usize, values: &[f64]) {
        self.history[class].extend_from_slice(values);
    }

    /// Forecasts arrival rates for the next `horizon` periods, one
    /// series per class.
    ///
    /// Convenience wrapper over [`ArrivalMonitor::forecast_tiered`] that
    /// drops the tier annotations.
    ///
    /// # Errors
    ///
    /// Infallible in practice (the ladder's last rung is total); the
    /// `Result` is kept for signature stability.
    pub fn forecast(&self, horizon: usize) -> Result<Vec<Vec<f64>>, HarmonyError> {
        Ok(self.forecast_tiered(horizon).into_iter().map(|c| c.rates).collect())
    }

    /// Forecasts arrival rates for the next `horizon` periods, walking
    /// the graceful-degradation ladder per class: ARIMA (when the
    /// history is long enough) → moving average → last observation.
    ///
    /// A tier's output is rejected — and the next rung tried — when it
    /// contains non-finite values or an outlier above
    /// [`OUTLIER_FACTOR`]× the largest observed rate (a blown-up model
    /// fit must not drive provisioning). The final rates are always
    /// finite and non-negative; a class whose history itself is
    /// corrupted (non-finite) degrades to zero-rate last-observation
    /// output rather than poisoning the LP.
    pub fn forecast_tiered(&self, horizon: usize) -> Vec<ClassForecast> {
        self.forecast_tiered_with_workers(horizon, 1)
    }

    /// [`ArrivalMonitor::forecast_tiered`] fanned out over `workers`
    /// scoped threads, one job per class.
    ///
    /// Each class's forecast is a pure function of its own history, and
    /// results merge back in class order, so the output is bit-identical
    /// to the serial path for any worker count. Telemetry tier counts are
    /// tallied once, after the merge.
    pub fn forecast_tiered_with_workers(
        &self,
        horizon: usize,
        workers: usize,
    ) -> Vec<ClassForecast> {
        let result = crate::par::map_indexed(self.history.len(), workers, |class| {
            Ok::<_, std::convert::Infallible>(self.forecast_class(&self.history[class], horizon))
        });
        let forecasts = result.unwrap_or_else(|never| match never {});
        record_tier_counts(&forecasts);
        forecasts
    }

    /// Walks the forecast ladder for one class's history. Pure: no
    /// telemetry, no shared state — safe to run from worker threads.
    fn forecast_class(&self, h: &[f64], horizon: usize) -> ClassForecast {
        if h.is_empty() {
            return ClassForecast {
                rates: vec![0.0; horizon],
                tier: ForecastTier::LastObservation,
                degraded: None,
            };
        }
        let cap = h.iter().copied().filter(|v| v.is_finite()).fold(0.0, f64::max)
            * OUTLIER_FACTOR
            + 1e-9;
        let entitled = if h.len() >= self.arima_min_history {
            ForecastTier::Arima
        } else {
            ForecastTier::MovingAverage
        };
        let mut reason: Option<String> = None;
        let mut note = |why: String| {
            if reason.is_none() {
                reason = Some(why);
            }
        };
        let (rates, tier) = 'ladder: {
            if entitled == ForecastTier::Arima {
                match auto_forecast(h, horizon) {
                    Ok(fc) if usable(&fc, cap) => break 'ladder (fc, ForecastTier::Arima),
                    Ok(_) => note("ARIMA forecast non-finite or outlier".into()),
                    Err(e) => note(format!("ARIMA failed: {e}")),
                }
            }
            match fallback_forecast(h, horizon) {
                Ok(fc) if usable(&fc, cap) => break 'ladder (fc, ForecastTier::MovingAverage),
                Ok(_) => note("moving average non-finite or outlier".into()),
                Err(e) => note(format!("moving average failed: {e}")),
            }
            // Last rung: repeat the most recent finite
            // observation (zero when none exists). Total.
            let last = h.iter().rev().copied().find(|v| v.is_finite()).unwrap_or(0.0);
            (vec![last; horizon], ForecastTier::LastObservation)
        };
        let degraded = if tier == entitled { None } else { reason };
        ClassForecast {
            rates: rates
                .into_iter()
                .map(|v| if v.is_finite() { v.max(0.0) } else { 0.0 })
                .collect(),
            tier,
            degraded,
        }
    }
}

/// Tallies which ladder rung each class's forecast ran at (one local
/// pass, then a single registry update per tier used).
fn record_tier_counts(forecasts: &[ClassForecast]) {
    let (mut arima, mut moving_average, mut last_observation, mut degraded) = (0u64, 0, 0, 0);
    for class in forecasts {
        match class.tier {
            ForecastTier::Arima => arima += 1,
            ForecastTier::MovingAverage => moving_average += 1,
            ForecastTier::LastObservation => last_observation += 1,
        }
        if class.degraded.is_some() {
            degraded += 1;
        }
    }
    let registry = telemetry::global();
    for (name, n) in [
        ("forecast.tier.arima", arima),
        ("forecast.tier.moving_average", moving_average),
        ("forecast.tier.last_observation", last_observation),
        ("forecast.degraded", degraded),
    ] {
        if n > 0 {
            registry.counter(name).add(n);
        }
    }
}

/// A forecast series is usable when every value is finite and none blows
/// past the outlier cap.
fn usable(fc: &[f64], cap: f64) -> bool {
    fc.iter().all(|v| v.is_finite() && *v <= cap)
}

fn auto_forecast(history: &[f64], horizon: usize) -> Result<Vec<f64>, HarmonyError> {
    // A small fixed order keeps per-tick cost bounded; auto_arima's grid
    // search is reserved for offline studies.
    let model = Arima::new(2, 0, 1)?.with_mean();
    Ok(model.forecast(history, horizon)?)
}

fn fallback_forecast(history: &[f64], horizon: usize) -> Result<Vec<f64>, HarmonyError> {
    let window = history.len().clamp(1, 6);
    Ok(MovingAverage::new(window)?.forecast(history, horizon)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::ClassifierConfig;
    use harmony_trace::{TraceConfig, TraceGenerator};

    fn setup() -> (TaskClassifier, harmony_trace::Trace) {
        let trace = TraceGenerator::new(TraceConfig::small().with_seed(9)).generate();
        let c = TaskClassifier::fit(trace.tasks(), &ClassifierConfig::default()).unwrap();
        (c, trace)
    }

    #[test]
    fn records_rates_per_class() {
        let (classifier, trace) = setup();
        let period = SimDuration::from_mins(10.0);
        let mut monitor =
            ArrivalMonitor::new(classifier.classes().len(), period, 100, 24);
        // Feed the whole trace in 10-minute chunks.
        let mut chunk = Vec::new();
        let mut boundary = period;
        for task in trace.tasks() {
            if task.arrival.as_secs() > boundary.as_secs() {
                monitor.record_period(&chunk, &classifier);
                chunk.clear();
                boundary += period;
            }
            chunk.push(*task);
        }
        monitor.record_period(&chunk, &classifier);
        assert!(monitor.periods_recorded() >= 10);
        // Total recorded rate mass equals the trace size.
        let total: f64 = (0..monitor.n_classes())
            .map(|c| monitor.history(TaskClassId(c)).iter().sum::<f64>() * period.as_secs())
            .sum();
        assert!((total - trace.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn out_of_range_labels_are_counted_not_silently_dropped() {
        // Regression: a monitor built for fewer classes than the
        // classifier produces (a stale classifier after refit) used to
        // swallow those arrivals without a trace, silently zeroing the
        // affected classes' rates.
        let (classifier, trace) = setup();
        assert!(classifier.classes().len() > 1, "test needs multiple classes");
        let period = SimDuration::from_mins(10.0);
        let mut monitor = ArrivalMonitor::new(1, period, 100, 24);
        let tasks = &trace.tasks()[..200];
        let before = harmony_telemetry::global()
            .snapshot()
            .counter("monitor.dropped_arrivals");
        let dropped = monitor.record_period(tasks, &classifier);
        assert!(dropped > 0, "seed trace must spread over >1 class");
        // The drop surfaces in the telemetry snapshot (delta-based: the
        // global registry is shared across parallel tests).
        let after = harmony_telemetry::global()
            .snapshot()
            .counter("monitor.dropped_arrivals");
        assert_eq!(after - before, dropped as u64);
        // Only in-range arrivals reach the rate history.
        let recorded = monitor.history(TaskClassId(0)).iter().sum::<f64>() * period.as_secs();
        assert!((recorded - (tasks.len() - dropped) as f64).abs() < 1e-6);

        // A monitor sized to the classifier drops nothing.
        let mut full = ArrivalMonitor::new(classifier.classes().len(), period, 100, 24);
        assert_eq!(full.record_period(tasks, &classifier), 0);
    }

    #[test]
    fn history_is_bounded() {
        let (classifier, trace) = setup();
        let mut monitor =
            ArrivalMonitor::new(classifier.classes().len(), SimDuration::from_mins(1.0), 5, 3);
        for _ in 0..12 {
            monitor.record_period(&trace.tasks()[..50], &classifier);
        }
        assert_eq!(monitor.periods_recorded(), 5);
    }

    #[test]
    fn forecast_shapes_and_nonnegativity() {
        let (classifier, trace) = setup();
        let mut monitor =
            ArrivalMonitor::new(classifier.classes().len(), SimDuration::from_mins(10.0), 50, 8);
        for i in 0..10 {
            let lo = i * 100;
            let hi = (lo + 100).min(trace.len());
            monitor.record_period(&trace.tasks()[lo..hi], &classifier);
        }
        let fc = monitor.forecast(3).unwrap();
        assert_eq!(fc.len(), classifier.classes().len());
        for series in &fc {
            assert_eq!(series.len(), 3);
            assert!(series.iter().all(|&v| v >= 0.0 && v.is_finite()));
        }
    }

    #[test]
    fn non_finite_history_still_yields_finite_forecast() {
        // Regression: a corrupted (NaN/∞) history must never reach the
        // LP as a non-finite rate — the ladder degrades instead.
        let mut monitor = ArrivalMonitor::new(2, SimDuration::from_mins(10.0), 50, 24);
        monitor.inject_history(0, &[f64::NAN, f64::INFINITY, 1.0, f64::NAN]);
        monitor.inject_history(1, &[0.5, 0.6, 0.7]);
        let fc = monitor.forecast_tiered(4);
        for class in &fc {
            assert_eq!(class.rates.len(), 4);
            assert!(
                class.rates.iter().all(|v| v.is_finite() && *v >= 0.0),
                "forecast leaked a non-finite rate: {:?}",
                class.rates
            );
        }
        // Class 0's moving average is poisoned by NaN, so it lands on
        // the last-observation rung with the reason recorded.
        assert_eq!(fc[0].tier, ForecastTier::LastObservation);
        assert!(fc[0].degraded.is_some());
        assert_eq!(fc[0].rates, vec![1.0; 4]);
        // Class 1's clean short history runs at its entitled tier.
        assert_eq!(fc[1].tier, ForecastTier::MovingAverage);
        assert!(fc[1].degraded.is_none());
    }

    #[test]
    fn usable_rejects_nan_inf_and_outliers() {
        assert!(usable(&[0.0, 1.0, 2.0], 10.0));
        assert!(!usable(&[f64::NAN], 10.0));
        assert!(!usable(&[f64::INFINITY], 10.0));
        assert!(!usable(&[11.0], 10.0), "outliers above the cap are rejected");
        assert!(usable(&[-5.0], 10.0), "negatives pass here; the final clamp zeroes them");
    }

    #[test]
    fn parallel_forecast_is_bit_identical_to_serial() {
        let (classifier, trace) = setup();
        let mut monitor =
            ArrivalMonitor::new(classifier.classes().len(), SimDuration::from_mins(10.0), 50, 8);
        for i in 0..10 {
            let lo = i * 100;
            let hi = (lo + 100).min(trace.len());
            monitor.record_period(&trace.tasks()[lo..hi], &classifier);
        }
        let serial = monitor.forecast_tiered(4);
        for workers in [2, 3, 8] {
            let parallel = monitor.forecast_tiered_with_workers(4, workers);
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn forecast_with_no_history_is_zero() {
        let monitor = ArrivalMonitor::new(3, SimDuration::from_mins(10.0), 10, 5);
        let fc = monitor.forecast(2).unwrap();
        assert_eq!(fc, vec![vec![0.0, 0.0]; 3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let _ = ArrivalMonitor::new(1, SimDuration::ZERO, 10, 5);
    }

    #[test]
    fn histories_roundtrip_through_restore() {
        let (classifier, trace) = setup();
        let mut monitor =
            ArrivalMonitor::new(classifier.classes().len(), SimDuration::from_mins(10.0), 50, 8);
        for i in 0..6 {
            let lo = i * 100;
            let hi = (lo + 100).min(trace.len());
            monitor.record_period(&trace.tasks()[lo..hi], &classifier);
        }
        let saved = monitor.histories().to_vec();
        let mut fresh =
            ArrivalMonitor::new(classifier.classes().len(), SimDuration::from_mins(10.0), 50, 8);
        fresh.restore_histories(saved.clone()).unwrap();
        assert_eq!(fresh.histories(), monitor.histories());
        assert_eq!(fresh.periods_recorded(), 6);
        // The restored monitor forecasts identically.
        assert_eq!(fresh.forecast(3).unwrap(), monitor.forecast(3).unwrap());
    }

    #[test]
    fn restore_rejects_malformed_payloads() {
        let mut monitor = ArrivalMonitor::new(2, SimDuration::from_mins(10.0), 4, 3);
        // Wrong class count.
        assert!(monitor.restore_histories(vec![vec![1.0]]).is_err());
        // Ragged lengths.
        assert!(monitor.restore_histories(vec![vec![1.0, 2.0], vec![1.0]]).is_err());
        // Over the configured bound.
        assert!(monitor
            .restore_histories(vec![vec![0.0; 5], vec![0.0; 5]])
            .is_err());
        // A valid payload still lands.
        monitor.restore_histories(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(monitor.periods_recorded(), 2);
    }
}

//! Per-class arrival-rate monitoring and prediction (the paper's task
//! analysis + prediction modules).

use harmony_forecast::{Arima, Forecaster, MovingAverage};
use harmony_model::{SimDuration, Task, TaskClassId};

use crate::classify::TaskClassifier;
use crate::HarmonyError;

/// Monitors the arrival rate of every task class, one sample per control
/// period, and forecasts future rates.
#[derive(Debug)]
pub struct ArrivalMonitor {
    period: SimDuration,
    history_len: usize,
    arima_min_history: usize,
    /// Rate history (tasks/second) per class.
    history: Vec<Vec<f64>>,
}

impl ArrivalMonitor {
    /// Creates a monitor for `n_classes` classes sampling once per
    /// `period`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `history_len == 0`.
    pub fn new(
        n_classes: usize,
        period: SimDuration,
        history_len: usize,
        arima_min_history: usize,
    ) -> Self {
        assert!(period.as_secs() > 0.0, "control period must be positive");
        assert!(history_len > 0, "history length must be positive");
        ArrivalMonitor {
            period,
            history_len,
            arima_min_history,
            history: vec![Vec::new(); n_classes],
        }
    }

    /// Number of classes tracked.
    pub fn n_classes(&self) -> usize {
        self.history.len()
    }

    /// Records one control period's arrivals, labeling each task with
    /// its initial (short) class.
    pub fn record_period(&mut self, arrived: &[Task], classifier: &TaskClassifier) {
        let mut counts = vec![0usize; self.history.len()];
        for task in arrived {
            let label = classifier.initial_label(task);
            if let Some(c) = counts.get_mut(label.0) {
                *c += 1;
            }
        }
        let secs = self.period.as_secs();
        for (class, count) in counts.into_iter().enumerate() {
            let h = &mut self.history[class];
            h.push(count as f64 / secs);
            let len = h.len();
            if len > self.history_len {
                h.drain(..len - self.history_len);
            }
        }
    }

    /// The recorded rate history (tasks/second) of one class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn history(&self, class: TaskClassId) -> &[f64] {
        &self.history[class.0]
    }

    /// Number of recorded periods so far (same for every class).
    pub fn periods_recorded(&self) -> usize {
        self.history.first().map_or(0, Vec::len)
    }

    /// Forecasts arrival rates for the next `horizon` periods, one
    /// series per class.
    ///
    /// Falls back to a moving average when the history is too short for
    /// a meaningful ARIMA fit, and to the last observation when even
    /// that is unavailable; rates are clamped non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`HarmonyError::Forecast`] only when every fallback fails
    /// (never with a non-empty history).
    pub fn forecast(&self, horizon: usize) -> Result<Vec<Vec<f64>>, HarmonyError> {
        let mut out = Vec::with_capacity(self.history.len());
        for h in &self.history {
            if h.is_empty() {
                out.push(vec![0.0; horizon]);
                continue;
            }
            let fc = if h.len() >= self.arima_min_history {
                match auto_forecast(h, horizon) {
                    Ok(fc) => fc,
                    Err(_) => fallback_forecast(h, horizon)?,
                }
            } else {
                fallback_forecast(h, horizon)?
            };
            out.push(fc.into_iter().map(|v| v.max(0.0)).collect());
        }
        Ok(out)
    }
}

fn auto_forecast(history: &[f64], horizon: usize) -> Result<Vec<f64>, HarmonyError> {
    // A small fixed order keeps per-tick cost bounded; auto_arima's grid
    // search is reserved for offline studies.
    let model = Arima::new(2, 0, 1)?.with_mean();
    Ok(model.forecast(history, horizon)?)
}

fn fallback_forecast(history: &[f64], horizon: usize) -> Result<Vec<f64>, HarmonyError> {
    let window = history.len().min(6).max(1);
    Ok(MovingAverage::new(window)?.forecast(history, horizon)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::ClassifierConfig;
    use harmony_trace::{TraceConfig, TraceGenerator};

    fn setup() -> (TaskClassifier, harmony_trace::Trace) {
        let trace = TraceGenerator::new(TraceConfig::small().with_seed(9)).generate();
        let c = TaskClassifier::fit(trace.tasks(), &ClassifierConfig::default()).unwrap();
        (c, trace)
    }

    #[test]
    fn records_rates_per_class() {
        let (classifier, trace) = setup();
        let period = SimDuration::from_mins(10.0);
        let mut monitor =
            ArrivalMonitor::new(classifier.classes().len(), period, 100, 24);
        // Feed the whole trace in 10-minute chunks.
        let mut chunk = Vec::new();
        let mut boundary = period;
        for task in trace.tasks() {
            if task.arrival.as_secs() > boundary.as_secs() {
                monitor.record_period(&chunk, &classifier);
                chunk.clear();
                boundary += period;
            }
            chunk.push(*task);
        }
        monitor.record_period(&chunk, &classifier);
        assert!(monitor.periods_recorded() >= 10);
        // Total recorded rate mass equals the trace size.
        let total: f64 = (0..monitor.n_classes())
            .map(|c| monitor.history(TaskClassId(c)).iter().sum::<f64>() * period.as_secs())
            .sum();
        assert!((total - trace.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn history_is_bounded() {
        let (classifier, trace) = setup();
        let mut monitor =
            ArrivalMonitor::new(classifier.classes().len(), SimDuration::from_mins(1.0), 5, 3);
        for _ in 0..12 {
            monitor.record_period(&trace.tasks()[..50], &classifier);
        }
        assert_eq!(monitor.periods_recorded(), 5);
    }

    #[test]
    fn forecast_shapes_and_nonnegativity() {
        let (classifier, trace) = setup();
        let mut monitor =
            ArrivalMonitor::new(classifier.classes().len(), SimDuration::from_mins(10.0), 50, 8);
        for i in 0..10 {
            let lo = i * 100;
            let hi = (lo + 100).min(trace.len());
            monitor.record_period(&trace.tasks()[lo..hi], &classifier);
        }
        let fc = monitor.forecast(3).unwrap();
        assert_eq!(fc.len(), classifier.classes().len());
        for series in &fc {
            assert_eq!(series.len(), 3);
            assert!(series.iter().all(|&v| v >= 0.0 && v.is_finite()));
        }
    }

    #[test]
    fn forecast_with_no_history_is_zero() {
        let monitor = ArrivalMonitor::new(3, SimDuration::from_mins(10.0), 10, 5);
        let fc = monitor.forecast(2).unwrap();
        assert_eq!(fc, vec![vec![0.0, 0.0]; 3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_panics() {
        let _ = ArrivalMonitor::new(1, SimDuration::ZERO, 10, 5);
    }
}

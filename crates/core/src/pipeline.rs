//! End-to-end experiment wiring: trace → classifier → controller →
//! simulator → report (the Section IX evaluation harness).

use std::cell::RefCell;
use std::rc::Rc;

use harmony_model::{EnergyPrice, MachineCatalog};
use harmony_sim::{EnergyEfficientFirstFit, FaultPlan, SimReport, Simulation, SimulationConfig};
use harmony_trace::Trace;
use serde::{Deserialize, Serialize};

use crate::cbs::CbsObjective;
use crate::classify::{ClassifierConfig, TaskClassifier};
use crate::controllers::{
    BaselineController, CbpController, CbsController, QuotaScheduler, QuotaState,
};
use crate::{HarmonyConfig, HarmonyError};

/// Which controller variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Heterogeneity-oblivious 80%-utilization baseline.
    Baseline,
    /// HARMONY with container-based scheduling (quota-coordinated).
    Cbs,
    /// HARMONY provisioning with the stock scheduler.
    Cbp,
}

impl Variant {
    /// All variants, in the paper's comparison order.
    pub const ALL: [Variant; 3] = [Variant::Baseline, Variant::Cbs, Variant::Cbp];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::Cbs => "CBS",
            Variant::Cbp => "CBP",
        }
    }
}

/// Runs one controller variant over a trace on a catalog.
///
/// The classifier is fitted offline on the full trace (the paper
/// characterizes the workload from historical data before the controller
/// runs).
///
/// # Errors
///
/// Propagates classifier/controller construction failures.
pub fn run_variant(
    trace: &Trace,
    catalog: &MachineCatalog,
    harmony_config: &HarmonyConfig,
    classifier_config: &ClassifierConfig,
    variant: Variant,
) -> Result<SimReport, HarmonyError> {
    run_variant_with_faults(trace, catalog, harmony_config, classifier_config, variant, None)
}

/// Like [`run_variant`], but optionally injecting a fault plan into the
/// simulation — the robustness-evaluation entry point (`replay --faults`
/// and the `fault_scenarios` bench).
///
/// # Errors
///
/// Propagates classifier/controller construction failures.
pub fn run_variant_with_faults(
    trace: &Trace,
    catalog: &MachineCatalog,
    harmony_config: &HarmonyConfig,
    classifier_config: &ClassifierConfig,
    variant: Variant,
    faults: Option<&FaultPlan>,
) -> Result<SimReport, HarmonyError> {
    run_variant_priced(
        trace,
        catalog,
        harmony_config,
        classifier_config,
        variant,
        faults,
        &CbsObjective::Energy,
    )
}

/// Like [`run_variant_with_faults`], but provisioning under an explicit
/// [`CbsObjective`] — the cost-matrix entry point. The baseline variant
/// has no provisioning LP and ignores the objective.
///
/// # Errors
///
/// Propagates classifier/controller construction failures.
pub fn run_variant_priced(
    trace: &Trace,
    catalog: &MachineCatalog,
    harmony_config: &HarmonyConfig,
    classifier_config: &ClassifierConfig,
    variant: Variant,
    faults: Option<&FaultPlan>,
    objective: &CbsObjective,
) -> Result<SimReport, HarmonyError> {
    let price = EnergyPrice::default();
    // The paper's Section IX evaluation charges queueing (scheduling
    // delay) rather than evicting running tasks; preemption stays off in
    // the controller comparison (it is on for the Section III trace
    // analysis, where the real Google cluster does evict).
    let mut sim_config =
        SimulationConfig::new(catalog.clone()).price(price.clone()).without_preemption();
    if let Some(plan) = faults {
        sim_config = sim_config.with_faults(plan.clone());
    }
    let report = match variant {
        Variant::Baseline => {
            let controller = BaselineController::new(harmony_config.control_period);
            let scheduler =
                EnergyEfficientFirstFit::new(&harmony_sim::Cluster::new(catalog.clone()));
            Simulation::new(sim_config, trace, Box::new(scheduler))
                .with_controller(Box::new(controller))
                .run()
        }
        Variant::Cbs => {
            let classifier =
                Rc::new(TaskClassifier::fit(trace.tasks(), classifier_config)?);
            let quota = Rc::new(RefCell::new(QuotaState::default()));
            let controller = CbsController::new(
                classifier.clone(),
                harmony_config.clone(),
                price,
                quota.clone(),
            )?
            .with_objective(objective.clone());
            let scheduler = QuotaScheduler::new(classifier, quota);
            Simulation::new(sim_config, trace, Box::new(scheduler))
                .with_controller(Box::new(controller))
                .run()
        }
        Variant::Cbp => {
            // CBP keeps the cluster's existing scheduler (Section VIII-B)
            // — the same energy-greedy policy the baseline uses — and
            // only changes how machines are provisioned.
            let classifier =
                Rc::new(TaskClassifier::fit(trace.tasks(), classifier_config)?);
            let controller = CbpController::new(classifier, harmony_config.clone(), price)?
                .with_objective(objective.clone());
            let scheduler = EnergyEfficientFirstFit::new(&harmony_sim::Cluster::new(catalog.clone()));
            Simulation::new(sim_config, trace, Box::new(scheduler))
                .with_controller(Box::new(controller))
                .run()
        }
    };
    Ok(report)
}

/// Runs all three variants and returns `(variant, report)` pairs — the
/// Fig. 21–26 comparison.
///
/// # Errors
///
/// Propagates the first variant failure.
pub fn run_comparison(
    trace: &Trace,
    catalog: &MachineCatalog,
    harmony_config: &HarmonyConfig,
    classifier_config: &ClassifierConfig,
) -> Result<Vec<(Variant, SimReport)>, HarmonyError> {
    Variant::ALL
        .iter()
        .map(|&v| run_variant(trace, catalog, harmony_config, classifier_config, v).map(|r| (v, r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_model::SimDuration;
    use harmony_trace::{TraceConfig, TraceGenerator};

    fn small_setup() -> (Trace, MachineCatalog, HarmonyConfig, ClassifierConfig) {
        let trace = TraceGenerator::new(TraceConfig::small().with_seed(44)).generate();
        let catalog = MachineCatalog::table2().scaled(100);
        let config = HarmonyConfig {
            horizon: 2,
            control_period: SimDuration::from_mins(15.0),
            ..Default::default()
        };
        let classifier_config =
            ClassifierConfig { k_per_group: Some([2, 2, 2]), ..Default::default() };
        (trace, catalog, config, classifier_config)
    }

    #[test]
    fn baseline_runs_and_serves_tasks() {
        let (trace, catalog, config, cc) = small_setup();
        let report = run_variant(&trace, &catalog, &config, &cc, Variant::Baseline).unwrap();
        assert!(report.tasks_completed > 0, "{report:?}");
        assert!(report.total_energy_wh > 0.0);
    }

    #[test]
    fn cbp_runs_and_serves_tasks() {
        let (trace, catalog, config, cc) = small_setup();
        let report = run_variant(&trace, &catalog, &config, &cc, Variant::Cbp).unwrap();
        assert!(report.tasks_completed > 0);
        assert!(report.total_energy_wh > 0.0);
    }

    #[test]
    fn cbs_runs_and_serves_tasks() {
        let (trace, catalog, config, cc) = small_setup();
        let report = run_variant(&trace, &catalog, &config, &cc, Variant::Cbs).unwrap();
        assert!(report.tasks_completed > 0);
    }

    #[test]
    fn dollar_objective_runs_end_to_end() {
        use crate::cbs::DollarCosts;
        use harmony_pricing::MarketPolicy;

        let (trace, _, config, cc) = small_setup();
        let catalog = MachineCatalog::table2_with_accel().scaled(100);
        let classifier = TaskClassifier::fit(trace.tasks(), &cc).unwrap();
        let groups: Vec<_> = classifier.classes().iter().map(|c| c.group).collect();
        let objective = CbsObjective::Dollars(DollarCosts::default_for(
            &catalog,
            &groups,
            MarketPolicy::SpotAware,
            2013,
        ));
        for variant in [Variant::Cbs, Variant::Cbp] {
            let report =
                run_variant_priced(&trace, &catalog, &config, &cc, variant, None, &objective)
                    .unwrap();
            assert!(report.tasks_completed > 0, "{variant:?}: {report:?}");
        }
        // Determinism: the priced path reproduces byte-identical reports.
        let a = run_variant_priced(&trace, &catalog, &config, &cc, Variant::Cbs, None, &objective)
            .unwrap();
        let b = run_variant_priced(&trace, &catalog, &config, &cc, Variant::Cbs, None, &objective)
            .unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "priced runs must be reproducible"
        );
    }

    #[test]
    fn variant_names() {
        assert_eq!(Variant::Baseline.name(), "baseline");
        assert_eq!(Variant::Cbs.name(), "CBS");
        assert_eq!(Variant::Cbp.name(), "CBP");
        assert_eq!(Variant::ALL.len(), 3);
    }
}

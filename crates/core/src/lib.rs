//! **HARMONY** — Heterogeneity-Aware Resource Monitoring and management
//! sYstem (ICDCS 2013), reproduced in Rust.
//!
//! HARMONY is a dynamic capacity provisioning (DCP) framework for
//! heterogeneous data centers. It continuously decides *how many machines
//! of each type* should be powered on so that total energy cost and task
//! scheduling delay are jointly minimized. The pipeline, mirroring the
//! paper's architecture (Fig. 8):
//!
//! 1. **Task analysis** ([`classify`]) — K-means over static features
//!    (per priority group, log-scale CPU/memory) divides the workload
//!    into task classes; a second k=2 clustering on duration splits each
//!    class into *short*/*long* sub-classes, enabling run-time labeling
//!    that starts every task as "short" and relabels the few long ones as
//!    they age (Section V).
//! 2. **Workload prediction** ([`monitor`], `harmony-forecast`) — per-
//!    class arrival rates are monitored each control period and forecast
//!    with ARIMA (Section VI).
//! 3. **Container management** ([`containers`]) — each class's container
//!    count comes from the M/G/N delay model (Eq. 1–2) and its container
//!    size from Gaussian statistical multiplexing (Eq. 3).
//! 4. **Capacity provisioning** ([`cbs`], [`rounding`]) — the CBS-RELAX
//!    convex program (Eq. 14–16) is solved over an MPC horizon with
//!    machine switching costs; Lemma-1 First-Fit rounding converts the
//!    fractional plan into integer machine counts and per-type container
//!    quotas (Algorithm 1).
//! 5. **Control** ([`controllers`]) — three drop-in controllers for
//!    `harmony-sim`: [`controllers::CbsController`] (quota-coordinated
//!    scheduling), [`controllers::CbpController`] (provisioning only,
//!    stock scheduler), and the heterogeneity-oblivious
//!    [`controllers::BaselineController`] (80% bottleneck utilization,
//!    energy-greedy machine order) the paper compares against.
//!
//! [`pipeline`] wires everything together for the evaluation scenarios;
//! [`online`] exposes the same loop incrementally for long-running
//! services (the `harmonyd` provisioning daemon in `crates/server`).
//!
//! # Examples
//!
//! ```
//! use harmony::classify::{ClassifierConfig, TaskClassifier};
//! use harmony_trace::{TraceConfig, TraceGenerator};
//!
//! let trace = TraceGenerator::new(TraceConfig::small()).generate();
//! let classifier = TaskClassifier::fit(trace.tasks(), &ClassifierConfig::default())?;
//! // Every task gets a run-time label from its static features alone.
//! let label = classifier.initial_label(&trace.tasks()[0]);
//! assert!(label.0 < classifier.classes().len());
//! # Ok::<(), harmony::HarmonyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cbs;
pub mod classify;
pub mod config;
pub mod containers;
pub mod controllers;
mod error;
pub mod monitor;
pub mod online;
pub mod par;
pub mod pipeline;
pub mod rounding;
mod serde_impls;

pub use cbs::{CbsObjective, DollarCosts, PlanCost};
pub use config::HarmonyConfig;
// Re-exported so binaries configuring the solver (harmonyd's
// --lp-backend flag) need not depend on harmony-lp directly.
pub use harmony_lp::{SolverBackend, WarmOutcome};
pub use error::HarmonyError;
pub use online::{OnlinePipeline, OnlineState};

//! The container manager (Section VI): how many containers of each
//! class, and how big each one is.

use harmony_model::{Resources, TaskClassId};
use harmony_queueing::{ContainerSizer, MgnQueue, QueueingError};
use serde::{Deserialize, Serialize};

use crate::classify::TaskClassifier;
use crate::{HarmonyConfig, HarmonyError};

/// The container requirement of one task class for one control period.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContainerDemand {
    /// The class.
    pub class: TaskClassId,
    /// Number of containers `c_i` needed so the class SLO holds.
    pub count: usize,
    /// Per-container reservation `c_n = μ + Z·σ` (Eq. 3).
    pub size: Resources,
}

/// Computes per-class container demands from predicted arrival rates.
#[derive(Debug, Clone)]
pub struct ContainerManager {
    sizer: ContainerSizer,
    /// Per-class container size, fixed at fit time.
    sizes: Vec<Resources>,
    /// Per-class service rate μ (1/mean duration).
    service_rates: Vec<f64>,
    /// Per-class squared coefficient of variation of duration.
    cv2: Vec<f64>,
    /// Per-class SLO mean-delay target (seconds).
    slo: Vec<f64>,
    margin: f64,
}

impl ContainerManager {
    /// Builds the manager from a fitted classifier and the HARMONY
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`HarmonyError::Queueing`] if ε is out of range.
    pub fn new(classifier: &TaskClassifier, config: &HarmonyConfig) -> Result<Self, HarmonyError> {
        let sizer = ContainerSizer::new(config.epsilon)?;
        let mut sizes = Vec::new();
        let mut service_rates = Vec::new();
        let mut cv2 = Vec::new();
        let mut slo = Vec::new();
        for class in classifier.classes() {
            let size = sizer.container_size(&class.stats);
            // A container must reserve something; floor at the class mean
            // or a tiny epsilon so capacity math stays meaningful.
            sizes.push(size.max(Resources::splat(1e-4)));
            service_rates.push(class.stats.service_rate().min(1.0)); // ≥1s durations
            cv2.push(class.stats.cv2_duration.max(0.0));
            slo.push(config.slo_for(class.group));
        }
        Ok(ContainerManager { sizer, sizes, service_rates, cv2, slo, margin: config.demand_margin })
    }

    /// Number of classes managed.
    pub fn n_classes(&self) -> usize {
        self.sizes.len()
    }

    /// The fixed container size of a class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn container_size(&self, class: TaskClassId) -> Resources {
        self.sizes[class.0]
    }

    /// The container sizer (exposes ε and Z).
    pub fn sizer(&self) -> &ContainerSizer {
        &self.sizer
    }

    /// Container counts for one class at one predicted arrival rate
    /// (tasks/second), per Eq. (1): the smallest `N` with `ρ < 1` and
    /// mean wait `≤` the class SLO.
    ///
    /// # Errors
    ///
    /// Returns [`HarmonyError::Queueing`] if the queueing solve fails
    /// (e.g. an absurd rate).
    pub fn containers_for_rate(
        &self,
        class: TaskClassId,
        rate: f64,
    ) -> Result<usize, HarmonyError> {
        let rate = (rate * self.margin).max(0.0);
        if rate == 0.0 {
            return Ok(0);
        }
        let mu = self.service_rates[class.0];
        let queue = MgnQueue::new(rate, mu, self.cv2[class.0])?;
        match queue.min_servers(self.slo[class.0]) {
            Ok(n) => Ok(n),
            // An unreachable SLO degenerates to "provision for stability
            // plus headroom" rather than failing the control loop.
            Err(QueueingError::TargetUnreachable { .. }) => {
                Ok((queue.offered_load().ceil() as usize) * 2)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Container demands for every class given predicted rates
    /// (`rates[class]`, tasks/second).
    ///
    /// # Errors
    ///
    /// Propagates the first queueing failure.
    ///
    /// # Panics
    ///
    /// Panics if `rates.len()` differs from [`ContainerManager::n_classes`].
    pub fn demands(&self, rates: &[f64]) -> Result<Vec<ContainerDemand>, HarmonyError> {
        assert_eq!(rates.len(), self.n_classes(), "one rate per class required");
        let mut out = Vec::with_capacity(rates.len());
        for (i, &rate) in rates.iter().enumerate() {
            let class = TaskClassId(i);
            out.push(ContainerDemand {
                class,
                count: self.containers_for_rate(class, rate)?,
                size: self.sizes[i],
            });
        }
        Ok(out)
    }

    /// Container counts for every class across a whole forecast horizon,
    /// fanned out over `workers` scoped threads, one job per class.
    ///
    /// `rates[class][t]` is the predicted rate of `class` in horizon
    /// period `t`; the result is `counts[class][t]` as `f64` (the LP's
    /// demand unit). Each class's sizing is a pure function of its own
    /// rates, and results merge in class order, so the output is
    /// bit-identical to calling [`ContainerManager::containers_for_rate`]
    /// in a serial loop. Errors propagate lowest-class-first, matching
    /// the serial loop's first failure.
    ///
    /// # Errors
    ///
    /// Propagates the first queueing failure (by class order).
    pub fn containers_for_rates(
        &self,
        rates: &[Vec<f64>],
        workers: usize,
    ) -> Result<Vec<Vec<f64>>, HarmonyError> {
        assert_eq!(rates.len(), self.n_classes(), "one rate series per class required");
        crate::par::map_indexed(rates.len(), workers, |n| {
            let class = TaskClassId(n);
            rates[n]
                .iter()
                .map(|&rate| Ok(self.containers_for_rate(class, rate)? as f64))
                .collect::<Result<Vec<f64>, HarmonyError>>()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{ClassifierConfig, TaskClassifier};
    use harmony_model::PriorityGroup;
    use harmony_trace::{TraceConfig, TraceGenerator};

    fn manager() -> (ContainerManager, TaskClassifier) {
        let trace = TraceGenerator::new(TraceConfig::small().with_seed(13)).generate();
        let classifier =
            TaskClassifier::fit(trace.tasks(), &ClassifierConfig::default()).unwrap();
        let manager = ContainerManager::new(&classifier, &HarmonyConfig::default()).unwrap();
        (manager, classifier)
    }

    #[test]
    fn sizes_cover_every_class_and_exceed_means() {
        let (m, c) = manager();
        assert_eq!(m.n_classes(), c.classes().len());
        for class in c.classes() {
            let size = m.container_size(class.id);
            assert!(size.cpu >= class.stats.mean_demand.cpu - 1e-12);
            assert!(size.mem >= class.stats.mean_demand.mem - 1e-12);
            assert!(size.cpu <= 1.0 && size.mem <= 1.0);
        }
    }

    #[test]
    fn zero_rate_needs_zero_containers() {
        let (m, _) = manager();
        assert_eq!(m.containers_for_rate(TaskClassId(0), 0.0).unwrap(), 0);
    }

    #[test]
    fn counts_scale_with_rate() {
        let (m, _) = manager();
        let low = m.containers_for_rate(TaskClassId(0), 0.01).unwrap();
        let high = m.containers_for_rate(TaskClassId(0), 1.0).unwrap();
        assert!(high > low, "more arrivals need more containers: {low} vs {high}");
    }

    #[test]
    fn production_gets_relatively_more_headroom() {
        // Same arrival rate: a tighter SLO cannot need fewer containers
        // than a looser one for the same service-time distribution. We
        // verify within the model rather than across heterogeneous
        // classes: shrink the SLO and recompute.
        let (m, c) = manager();
        let class = c.classes().iter().find(|cl| cl.group == PriorityGroup::Gratis).unwrap();
        let mut tight = m.clone();
        tight.slo[class.id.0] = 1.0;
        let loose_n = m.containers_for_rate(class.id, 0.5).unwrap();
        let tight_n = tight.containers_for_rate(class.id, 0.5).unwrap();
        assert!(tight_n >= loose_n);
    }

    #[test]
    fn demands_vector_is_aligned() {
        let (m, _) = manager();
        let rates = vec![0.05; m.n_classes()];
        let demands = m.demands(&rates).unwrap();
        assert_eq!(demands.len(), m.n_classes());
        for (i, d) in demands.iter().enumerate() {
            assert_eq!(d.class, TaskClassId(i));
            assert_eq!(d.size, m.container_size(d.class));
        }
    }

    #[test]
    fn parallel_sizing_is_bit_identical_to_serial() {
        let (m, _) = manager();
        let horizon = 4;
        let rates: Vec<Vec<f64>> = (0..m.n_classes())
            .map(|n| (0..horizon).map(|t| 0.02 * (n + 1) as f64 + 0.01 * t as f64).collect())
            .collect();
        let serial: Vec<Vec<f64>> = rates
            .iter()
            .enumerate()
            .map(|(n, series)| {
                series
                    .iter()
                    .map(|&r| m.containers_for_rate(TaskClassId(n), r).unwrap() as f64)
                    .collect()
            })
            .collect();
        for workers in [1, 2, 5] {
            assert_eq!(m.containers_for_rates(&rates, workers).unwrap(), serial);
        }
    }

    #[test]
    #[should_panic(expected = "one rate per class")]
    fn misaligned_rates_panic() {
        let (m, _) = manager();
        let _ = m.demands(&[0.1]);
    }

    #[test]
    fn slo_respected_by_queueing_model() {
        let (m, c) = manager();
        let config = HarmonyConfig::default();
        for class in c.classes().iter().take(4) {
            let rate: f64 = 0.2;
            let n = m.containers_for_rate(class.id, rate).unwrap();
            if n == 0 {
                continue;
            }
            let queue = MgnQueue::new(
                rate * config.demand_margin,
                class.stats.service_rate().min(1.0),
                class.stats.cv2_duration,
            )
            .unwrap();
            if let Ok(wait) = queue.mean_wait(n) {
                assert!(
                    wait <= config.slo_for(class.group) + 1e-9,
                    "class {:?}: wait {wait} > slo",
                    class.id
                );
            }
        }
    }
}

//! Deterministic fan-out over scoped threads.
//!
//! The per-class pipeline stages (forecast, container sizing) are
//! independent across task classes, so they parallelize trivially — but
//! the plans they feed must stay bit-identical to the serial path. The
//! helpers here guarantee that by construction: each job is a pure
//! function of its index, results are merged back in index order, and
//! error propagation picks the *lowest-index* failure, exactly as a
//! serial `for` loop would surface it. No work-stealing, no channels, no
//! nondeterministic reduction order.

use std::num::NonZeroUsize;
use std::thread;

/// The number of workers a stage should use: the configured override if
/// present, otherwise [`std::thread::available_parallelism`], clamped to
/// `[1, jobs]` so tiny stages never spawn idle threads.
pub fn effective_workers(override_workers: Option<usize>, jobs: usize) -> usize {
    let detected = override_workers.unwrap_or_else(|| {
        thread::available_parallelism().map_or(1, NonZeroUsize::get)
    });
    detected.max(1).min(jobs.max(1))
}

/// Runs `f(0..jobs)` across `workers` scoped threads and returns the
/// results in index order, or the error of the lowest failing index.
///
/// Jobs are dealt to workers as contiguous index chunks, so a worker's
/// cache footprint is a contiguous slice of the problem. With
/// `workers <= 1` (or a single job) the loop runs inline on the caller's
/// thread — the serial path is literally the same code, which is what
/// makes "parallel output equals serial output" true by construction
/// rather than by test alone.
pub fn map_indexed<T, E, F>(jobs: usize, workers: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    if workers <= 1 || jobs <= 1 {
        return (0..jobs).map(&f).collect();
    }
    let workers = workers.min(jobs);
    let mut slots: Vec<Option<Result<T, E>>> = Vec::with_capacity(jobs);
    slots.resize_with(jobs, || None);

    // Deal contiguous chunks: the first `rem` workers get one extra job.
    let base = jobs / workers;
    let rem = jobs % workers;
    thread::scope(|scope| {
        let mut rest = slots.as_mut_slice();
        let mut start = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < rem);
            let (chunk, tail) = rest.split_at_mut(len);
            rest = tail;
            let f = &f;
            scope.spawn(move || {
                for (offset, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(f(start + offset));
                }
            });
            start += len;
        }
    });

    let mut out = Vec::with_capacity(jobs);
    for slot in slots {
        // Invariant: the chunks above partition 0..jobs exactly, and
        // thread::scope joins every worker before returning, so every
        // slot has been written.
        #[allow(clippy::expect_used)]
        let result = slot.expect("scoped worker wrote every slot in its chunk");
        out.push(result?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_output_for_all_worker_counts() {
        let f = |i: usize| Ok::<_, String>(i * i + 1);
        let serial: Vec<_> = (0..23).map(|i| i * i + 1).collect();
        for workers in 1..=8 {
            let got = map_indexed(23, workers, f).unwrap();
            assert_eq!(got, serial, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single_job_run_inline() {
        assert_eq!(map_indexed(0, 4, Ok::<_, ()>).unwrap(), Vec::<usize>::new());
        assert_eq!(map_indexed(1, 4, |i| Ok::<_, ()>(i + 7)).unwrap(), vec![7]);
    }

    #[test]
    fn first_error_by_index_wins() {
        // Indices 5 and 11 both fail; the reported error must be index
        // 5's regardless of which worker finishes first.
        for workers in 1..=6 {
            let err = map_indexed(16, workers, |i| {
                if i == 5 || i == 11 {
                    Err(format!("boom at {i}"))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            assert_eq!(err, "boom at 5", "workers={workers}");
        }
    }

    #[test]
    fn effective_workers_clamps_to_jobs() {
        assert_eq!(effective_workers(Some(8), 3), 3);
        assert_eq!(effective_workers(Some(2), 100), 2);
        assert_eq!(effective_workers(Some(1), 0), 1);
        assert!(effective_workers(None, 64) >= 1);
    }
}

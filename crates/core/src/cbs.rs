//! The CBS-RELAX provisioning program (Section VII, Eq. 14–16).
//!
//! Decision variables over an MPC horizon `t = 0..W`:
//!
//! * `z_mt ∈ [0, N_m]` — fractional active machines of type `m`;
//! * `x_mnt ≥ 0` — containers of class `n` assigned to machines of type
//!   `m` (only for compatible pairs: the container fits the machine);
//! * `δ⁺_mt, δ⁻_mt ≥ 0` — machines switched on/off, linearizing the
//!   `q_m|δ|` switching cost.
//!
//! Objective (maximize):
//!
//! ```text
//!   Σ_t Σ_n f_n(Σ_m x_mnt)                       scheduling utility
//! − Σ_t p_t·Δt [ Σ_m z_mt·E_idle,m + Σ_{m,n} (Σ_r α_mr c_nr / C_mr) x_mnt ]
//! − Σ_t Σ_m q_m (δ⁺_mt + δ⁻_mt)                  switching cost
//! ```
//!
//! subject to the state equations `z_{m,t} = z_{m,t-1} + δ⁺ − δ⁻`, the
//! capacity constraints `Σ_n ω c_nr x_mnt ≤ C_mr z_mt` (Eq. 16/17), and
//! demand caps `Σ_m x_mnt ≤ N_nt`. With piecewise-linear concave `f_n`
//! this is exactly an LP, solved by `harmony-lp`.

use harmony_lp::{PiecewiseLinear, Problem, Sense, VarId};
use harmony_model::{
    EnergyPrice, MachineCatalog, MachineTypeId, PriorityGroup, Resources, SimTime, NUM_RESOURCES,
};
use harmony_pricing::{MarketPolicy, PriceBook, SloCostCurve};
use serde::{Deserialize, Serialize};

use crate::{HarmonyConfig, HarmonyError};

/// The monetary inputs for [`CbsObjective::Dollars`]: who charges what
/// for a machine-hour, which market the plan may shop, what an unserved
/// container-hour costs per class, and which classes need accelerators.
#[derive(Debug, Clone, PartialEq)]
pub struct DollarCosts {
    /// Per-machine-type rental rates (on-demand and spot).
    pub book: PriceBook,
    /// Whether the plan may price capacity on the spot market.
    pub market: MarketPolicy,
    /// Per-class SLO-violation cost curves (index = class id); replaces
    /// the flat `utility_per_hour` slope of the energy objective.
    pub slo_costs: Vec<SloCostCurve>,
    /// Per-class accelerator slots one container needs (index = class
    /// id); `0.0` for CPU-only classes. A class with accelerator demand
    /// is only compatible with machine types whose
    /// [`harmony_model::MachineType::accel_capacity`] covers it, and
    /// accelerator slots get their own capacity row.
    pub accel_demand: Vec<f64>,
}

impl DollarCosts {
    /// Default costs for a catalog and a set of class priority groups:
    /// the seeded default price book, the per-group default SLO curves,
    /// and no accelerator demand.
    pub fn default_for(
        catalog: &MachineCatalog,
        groups: &[PriorityGroup],
        market: MarketPolicy,
        seed: u64,
    ) -> Self {
        DollarCosts {
            book: PriceBook::default_for(catalog, seed),
            market,
            slo_costs: groups.iter().map(|&g| SloCostCurve::default_for_group(g)).collect(),
            accel_demand: vec![0.0; groups.len()],
        }
    }
}

/// What CBS-RELAX optimizes.
///
/// `Energy` is the paper's Section VII objective — scheduling utility
/// minus electricity and switching cost. `Dollars` swaps the coefficient
/// model for cloud economics: active machines additionally pay their
/// rental rate (risk-adjusted spot or on-demand, per
/// [`PriceBook::planning_rate`]), and serving demand earns the avoided
/// SLO-violation dollars of the per-class [`SloCostCurve`] instead of a
/// flat utility. The LP structure (variables, rows) is unchanged for
/// `Energy`, so plans and bases are bit-identical with pre-pricing
/// builds.
#[derive(Debug, Clone, PartialEq)]
pub enum CbsObjective {
    /// Utility minus energy and switching cost (Section VII, Eq. 14).
    Energy,
    /// Rental + energy + switching + expected SLO-violation dollars.
    Dollars(DollarCosts),
}

impl CbsObjective {
    /// Stable lowercase name (used in artifacts and CLI flags).
    pub fn name(&self) -> &'static str {
        match self {
            CbsObjective::Energy => "energy",
            CbsObjective::Dollars(_) => "dollars",
        }
    }
}

/// The dollar accounting of a solved plan (only produced under
/// [`CbsObjective::Dollars`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCost {
    /// Planned rental over the whole horizon, in dollars.
    pub rental_dollars: f64,
    /// Rental of the first (actuated) step alone, in dollars.
    pub first_step_rental_dollars: f64,
    /// Expected SLO-violation dollars of demand the plan leaves
    /// unserved over the horizon.
    pub slo_dollars: f64,
    /// Machine-weighted fraction of the plan priced on spot quotes,
    /// in `[0, 1]`.
    pub spot_fraction: f64,
}

/// Inputs to one CBS-RELAX solve.
#[derive(Debug, Clone)]
pub struct CbsInputs<'a> {
    /// The machine catalog (`M`, `C_mr`, `E_idle`, `α`, `q_m`, `N_m`).
    pub catalog: &'a MachineCatalog,
    /// Container size `c_n` per class.
    pub container_sizes: &'a [Resources],
    /// Utility slope per class in dollars per container-hour.
    pub utility_per_hour: &'a [f64],
    /// Predicted container demand `N_nt`: `demand[t][n]` containers.
    pub demand: &'a [Vec<f64>],
    /// Active machines per type at the start of the horizon.
    pub initial_active: &'a [f64],
    /// Electricity price curve.
    pub price: &'a EnergyPrice,
    /// Wall-clock start of the horizon (for `p_t`).
    pub now: SimTime,
}

/// The fractional provisioning plan returned by a solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CbsPlan {
    /// `z[t][m]`: fractional active machines.
    pub z: Vec<Vec<f64>>,
    /// `x[t][m][n]`: fractional container assignments.
    pub x: Vec<Vec<Vec<f64>>>,
    /// Objective value in dollars over the horizon.
    pub objective: f64,
}

impl CbsPlan {
    /// The first-step (to be actuated now) fractional machine counts.
    pub fn first_step_machines(&self) -> &[f64] {
        &self.z[0]
    }

    /// The first-step fractional container quota matrix `x[m][n]`.
    pub fn first_step_quotas(&self) -> &[Vec<f64>] {
        &self.x[0]
    }
}

/// One CBS-RELAX solve with its warm-start bookkeeping: the plan, the
/// optimal basis to warm-start the next period's solve from, and how
/// this solve ran.
#[derive(Debug, Clone)]
pub struct CbsSolve {
    /// The fractional provisioning plan.
    pub plan: CbsPlan,
    /// The optimal simplex basis, to pass as `warm` next period.
    pub basis: harmony_lp::Basis,
    /// Whether the solver actually restarted from the supplied basis
    /// (`false` on a cold solve *or* a fallback after an unusable basis).
    pub warm_started: bool,
    /// How the warm-start attempt resolved — [`WarmOutcome::Hit`],
    /// one of the two fallback kinds, or [`WarmOutcome::Cold`] when no
    /// basis was supplied. Refines [`CbsSolve::warm_started`].
    pub warm_outcome: harmony_lp::WarmOutcome,
    /// Simplex pivots this solve took (phase 1 + phase 2).
    pub pivots: usize,
    /// Decision variables in the LP the solve built (before
    /// standardization), for capacity planning and benchmarks.
    pub lp_vars: usize,
    /// Constraint rows in the LP the solve built.
    pub lp_constraints: usize,
    /// Dollar accounting of the plan; `None` under
    /// [`CbsObjective::Energy`].
    pub cost: Option<PlanCost>,
}

/// Solves CBS-RELAX cold.
///
/// Convenience wrapper over [`solve_cbs_relax_warm`] without a basis;
/// control loops that re-solve every period should prefer the warm
/// variant and thread [`CbsSolve::basis`] across ticks.
///
/// # Errors
///
/// * [`HarmonyError::InvalidConfig`] for inconsistent input shapes.
/// * [`HarmonyError::Optimization`] if the LP solve fails.
pub fn solve_cbs_relax(
    inputs: &CbsInputs<'_>,
    config: &HarmonyConfig,
) -> Result<CbsPlan, HarmonyError> {
    Ok(solve_cbs_relax_warm(inputs, config, None)?.plan)
}

/// Solves CBS-RELAX, warm-starting from a previous period's optimal
/// basis when one is supplied.
///
/// Successive MPC ticks build the same LP structure with updated
/// forecast right-hand sides and price-dependent costs, so the previous
/// basis usually remains primal-feasible and the solve skips phase 1
/// entirely. When demand crosses zero for some class the LP's structure
/// changes (zero-demand classes generate cap rows instead of utility
/// segments) and the basis dimensions no longer match — the solver then
/// falls back to a cold solve transparently. [`CbsSolve::warm_outcome`]
/// says which path ran, mirrored by three mutually exclusive counters:
/// `lp.warm_start_hits` (restarted from the basis, including in-place
/// repairs), `lp.warm_start_repair_fallbacks` (basis installed but the
/// repair phase could not reach feasibility), and
/// `lp.warm_start_structural_fallbacks` (basis rejected outright —
/// dimension mismatch, kept artificial, or singular).
///
/// # Errors
///
/// * [`HarmonyError::InvalidConfig`] for inconsistent input shapes.
/// * [`HarmonyError::Optimization`] if the LP solve fails.
pub fn solve_cbs_relax_warm(
    inputs: &CbsInputs<'_>,
    config: &HarmonyConfig,
    warm: Option<&harmony_lp::Basis>,
) -> Result<CbsSolve, HarmonyError> {
    solve_cbs_relax_priced(inputs, config, &CbsObjective::Energy, warm)
}

/// Solves CBS-RELAX under an explicit [`CbsObjective`].
///
/// With [`CbsObjective::Energy`] this is exactly
/// [`solve_cbs_relax_warm`] — same variables, rows, and coefficients,
/// bit for bit. With [`CbsObjective::Dollars`] the coefficient model
/// changes (rental on `z`, SLO-cost curves as utility) and two
/// accelerator-aware pieces activate: classes with accelerator demand
/// are only compatible with machine types that can host them, and
/// accelerator slots get their own capacity row per type and period.
///
/// # Errors
///
/// * [`HarmonyError::InvalidConfig`] for inconsistent input shapes, a
///   price book that does not cover the catalog, or per-class cost
///   vectors of the wrong length.
/// * [`HarmonyError::Optimization`] if the LP solve fails.
// Index loops mirror the x[t][m][n] variable grid; iterators would
// obscure the LP structure.
#[allow(clippy::needless_range_loop)]
pub fn solve_cbs_relax_priced(
    inputs: &CbsInputs<'_>,
    config: &HarmonyConfig,
    objective: &CbsObjective,
    warm: Option<&harmony_lp::Basis>,
) -> Result<CbsSolve, HarmonyError> {
    let m_types = inputs.catalog.len();
    let n_classes = inputs.container_sizes.len();
    let horizon = inputs.demand.len();
    if horizon == 0 {
        return Err(HarmonyError::InvalidConfig { reason: "empty demand horizon".into() });
    }
    if inputs.initial_active.len() != m_types {
        return Err(HarmonyError::InvalidConfig {
            reason: "initial_active length must match machine types".into(),
        });
    }
    for (t, d) in inputs.demand.iter().enumerate() {
        if d.len() != n_classes {
            return Err(HarmonyError::InvalidConfig {
                reason: format!("demand[{t}] length must match classes"),
            });
        }
    }
    if inputs.utility_per_hour.len() != n_classes {
        return Err(HarmonyError::InvalidConfig {
            reason: "utility length must match classes".into(),
        });
    }
    let costs = match objective {
        CbsObjective::Energy => None,
        CbsObjective::Dollars(costs) => {
            costs
                .book
                .check_covers(inputs.catalog)
                .map_err(|e| HarmonyError::InvalidConfig { reason: e.to_string() })?;
            if costs.slo_costs.len() != n_classes {
                return Err(HarmonyError::InvalidConfig {
                    reason: "slo_costs length must match classes".into(),
                });
            }
            if costs.accel_demand.len() != n_classes {
                return Err(HarmonyError::InvalidConfig {
                    reason: "accel_demand length must match classes".into(),
                });
            }
            if costs.accel_demand.iter().any(|a| !a.is_finite() || *a < 0.0) {
                return Err(HarmonyError::InvalidConfig {
                    reason: "accel_demand must be finite and non-negative".into(),
                });
            }
            Some(costs)
        }
    };

    let period_hours = config.control_period.as_hours();
    let mut p = Problem::new(Sense::Maximize);

    // Compatibility: which machine types can host which containers. A
    // class with accelerator demand additionally needs a type whose
    // accelerator capacity covers one container's slots.
    let compatible: Vec<Vec<bool>> = (0..m_types)
        .map(|m| {
            let ty = inputs.catalog.machine_type(MachineTypeId(m));
            (0..n_classes)
                .map(|n| {
                    let fits = inputs.container_sizes[n].fits_within(ty.capacity);
                    match costs {
                        Some(c) if c.accel_demand[n] > 0.0 => {
                            fits && c.accel_demand[n] <= ty.accel_capacity + 1e-9
                        }
                        _ => fits,
                    }
                })
                .collect()
        })
        .collect();

    // Variables.
    let mut z = vec![vec![VarId::default(); m_types]; horizon];
    let mut x = vec![vec![vec![None::<VarId>; n_classes]; m_types]; horizon];
    let mut dp = vec![vec![VarId::default(); m_types]; horizon];
    let mut dm = vec![vec![VarId::default(); m_types]; horizon];

    for t in 0..horizon {
        let time = inputs.now + config.control_period * t as f64;
        let price = inputs.price.price_at(time); // $/kWh
        for m in 0..m_types {
            let ty = inputs.catalog.machine_type(MachineTypeId(m));
            // Energy cost of keeping one machine idle for one period.
            let idle_cost = price * ty.power.idle_watts / 1000.0 * period_hours;
            // Under the dollar objective an active machine also pays its
            // risk-adjusted rental rate for the period (spot-eviction
            // premium included via the planning rate); under the energy
            // objective the hardware is owned and rental is zero, which
            // leaves the coefficient bit-identical to the unpriced build.
            let rental = costs.map_or(0.0, |c| {
                c.book.planning_rate(MachineTypeId(m), time, c.market).dollars_per_hour
                    * period_hours
            });
            z[t][m] = p.add_var(format!("z_{m}_{t}"), 0.0, ty.count as f64, -(idle_cost + rental));
            dp[t][m] = p.add_var(format!("dp_{m}_{t}"), 0.0, f64::INFINITY, -ty.switching_cost);
            dm[t][m] = p.add_var(format!("dm_{m}_{t}"), 0.0, f64::INFINITY, -ty.switching_cost);
            for n in 0..n_classes {
                if !compatible[m][n] {
                    continue;
                }
                // Marginal energy of hosting one class-n container on a
                // type-m machine for one period (Eq. 7's α term).
                let c = inputs.container_sizes[n];
                let util = c.utilization_of(ty.capacity);
                let watts = ty.power.alpha_watts.cpu * util.cpu + ty.power.alpha_watts.mem * util.mem;
                let energy_cost = price * watts / 1000.0 * period_hours;
                x[t][m][n] =
                    Some(p.add_var(format!("x_{m}_{n}_{t}"), 0.0, f64::INFINITY, -energy_cost));
            }
        }
    }

    // Scheduling utility f_n: linear-capped per class and period, width
    // = predicted demand N_nt. Expressed through PiecewiseLinear for
    // uniformity with richer concave shapes.
    for t in 0..horizon {
        for n in 0..n_classes {
            let width = inputs.demand[t][n];
            if width <= 0.0 {
                // No demand: cap assignments at zero.
                let terms: Vec<(VarId, f64)> =
                    (0..m_types).filter_map(|m| x[t][m][n].map(|v| (v, 1.0))).collect();
                if !terms.is_empty() {
                    p.add_le(terms, 0.0);
                }
                continue;
            }
            // Energy: the flat per-class utility slope. Dollars: the
            // concave SLO-cost curve — the critical head of demand earns
            // the full violation cost when served, the elastic tail the
            // lower one.
            let f = match costs {
                None => {
                    let slope = inputs.utility_per_hour[n] * period_hours;
                    PiecewiseLinear::linear_capped(width, slope)
                        .map_err(HarmonyError::Optimization)?
                }
                Some(c) => {
                    let segs: Vec<(f64, f64)> = c.slo_costs[n]
                        .utility_segments(width)
                        .into_iter()
                        .map(|(w, s)| (w, s * period_hours))
                        .collect();
                    PiecewiseLinear::concave(segs).map_err(HarmonyError::Optimization)?
                }
            };
            let segs = f.add_to_problem(&mut p, &format!("u_{n}_{t}"));
            // Σ segments = Σ_m x_mnt (utility accrues per assigned
            // container, saturating at demand).
            let mut terms: Vec<(VarId, f64)> = segs.iter().map(|&s| (s, 1.0)).collect();
            let mut any = false;
            for m in 0..m_types {
                if let Some(v) = x[t][m][n] {
                    terms.push((v, -1.0));
                    any = true;
                }
            }
            if any {
                p.add_eq(terms, 0.0);
                // Do not assign beyond demand (utility would be zero but
                // energy positive, so the LP avoids it anyway; the cap
                // keeps the polytope tight).
                let cap_terms: Vec<(VarId, f64)> =
                    (0..m_types).filter_map(|m| x[t][m][n].map(|v| (v, 1.0))).collect();
                p.add_le(cap_terms, width);
            }
        }
    }

    // State equations and capacity constraints.
    for t in 0..horizon {
        for m in 0..m_types {
            // z_mt - z_{m,t-1} - δ⁺ + δ⁻ = 0  (z_{-1} = initial_active).
            let mut terms = vec![(z[t][m], 1.0), (dp[t][m], -1.0), (dm[t][m], 1.0)];
            let rhs = if t == 0 {
                inputs.initial_active[m]
            } else {
                terms.push((z[t - 1][m], -1.0));
                0.0
            };
            p.add_eq(terms, rhs);

            // Capacity per resource: Σ_n ω c_nr x ≤ C_mr z  (Eq. 17).
            let ty = inputs.catalog.machine_type(MachineTypeId(m));
            let cap = ty.capacity;
            for r in 0..NUM_RESOURCES {
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                for n in 0..n_classes {
                    if let Some(v) = x[t][m][n] {
                        terms.push((v, config.omega * inputs.container_sizes[n][r]));
                    }
                }
                if terms.is_empty() {
                    continue;
                }
                terms.push((z[t][m], -cap[r]));
                p.add_le(terms, 0.0);
            }
            // Accelerator slots are a third capacity axis, present only
            // under the dollar objective: Σ_n ω a_n x ≤ A_m z.
            if let Some(c) = costs {
                if ty.accel_capacity > 0.0 {
                    let terms: Vec<(VarId, f64)> = (0..n_classes)
                        .filter(|&n| c.accel_demand[n] > 0.0)
                        .filter_map(|n| {
                            x[t][m][n].map(|v| (v, config.omega * c.accel_demand[n]))
                        })
                        .collect();
                    if !terms.is_empty() {
                        let mut terms = terms;
                        terms.push((z[t][m], -ty.accel_capacity));
                        p.add_le(terms, 0.0);
                    }
                }
            }
        }
    }

    // Provisioning runs once per control period; a hard pivot cap keeps
    // a pathological instance from stalling the controller (the error
    // path walks the degradation ladder instead).
    let options = harmony_lp::SimplexOptions {
        max_pivots: Some(config.max_lp_pivots),
        backend: config.lp_backend,
        ..Default::default()
    };
    let lp_vars = p.num_vars();
    let lp_constraints = p.num_constraints();
    let solution = p.solve_warm_with(&options, warm).map_err(|e| {
        harmony_telemetry::global().counter("lp.failures").inc();
        HarmonyError::Optimization(e)
    })?;
    let registry = harmony_telemetry::global();
    registry.counter("lp.solves").inc();
    registry.counter("lp.pivots").add(solution.pivots() as u64);
    registry.counter("lp.phase1_pivots").add(solution.phase1_pivots() as u64);
    // Fetch all three warm-start counters eagerly so every name exists in
    // every snapshot (a dashboard summing hits plus both fallback kinds
    // should never see a missing key), then bump the one that applies.
    // The three are mutually exclusive and, over solves that were handed
    // a basis, exhaustive.
    let hits = registry.counter("lp.warm_start_hits");
    let repair_fallbacks = registry.counter("lp.warm_start_repair_fallbacks");
    let structural_fallbacks = registry.counter("lp.warm_start_structural_fallbacks");
    match solution.warm_outcome() {
        harmony_lp::WarmOutcome::Cold => {}
        harmony_lp::WarmOutcome::Hit => hits.inc(),
        harmony_lp::WarmOutcome::RepairFallback => repair_fallbacks.inc(),
        harmony_lp::WarmOutcome::StructuralFallback => structural_fallbacks.inc(),
    }

    let z_out: Vec<Vec<f64>> = z
        .iter()
        .map(|row| row.iter().map(|&v| solution.value(v).max(0.0)).collect())
        .collect();
    let x_out: Vec<Vec<Vec<f64>>> = x
        .iter()
        .map(|per_m| {
            per_m
                .iter()
                .map(|per_n| {
                    per_n
                        .iter()
                        .map(|v| v.map_or(0.0, |v| solution.value(v).max(0.0)))
                        .collect()
                })
                .collect()
        })
        .collect();
    let cost = costs.map(|c| {
        let plan_cost = account_plan(inputs, config, c, &z_out, &x_out);
        registry.counter("cost.dollar_solves").inc();
        registry.gauge("cost.plan_rental_dollars").set(plan_cost.rental_dollars);
        registry.gauge("cost.plan_slo_dollars").set(plan_cost.slo_dollars);
        registry.gauge("cost.spot_fraction").set(plan_cost.spot_fraction);
        plan_cost
    });
    Ok(CbsSolve {
        plan: CbsPlan { z: z_out, x: x_out, objective: solution.objective() },
        basis: solution.basis().clone(),
        warm_started: solution.warm_started(),
        warm_outcome: solution.warm_outcome(),
        pivots: solution.pivots(),
        lp_vars,
        lp_constraints,
        cost,
    })
}

/// Dollar accounting of a solved plan: rental at the planning rates the
/// LP priced with, and the SLO-violation dollars of demand left
/// unserved (the utility the plan left on the table).
fn account_plan(
    inputs: &CbsInputs<'_>,
    config: &HarmonyConfig,
    costs: &DollarCosts,
    z: &[Vec<f64>],
    x: &[Vec<Vec<f64>>],
) -> PlanCost {
    let period_hours = config.control_period.as_hours();
    let mut rental = 0.0;
    let mut first_step = 0.0;
    let mut spot_machines = 0.0;
    let mut total_machines = 0.0;
    for (t, row) in z.iter().enumerate() {
        let time = inputs.now + config.control_period * t as f64;
        for (m, &zv) in row.iter().enumerate() {
            let quote = costs.book.planning_rate(MachineTypeId(m), time, costs.market);
            let dollars = zv * quote.dollars_per_hour * period_hours;
            rental += dollars;
            if t == 0 {
                first_step += dollars;
            }
            total_machines += zv;
            if quote.spot {
                spot_machines += zv;
            }
        }
    }
    // Violation dollars of the unserved slice of each class-period: the
    // curve's value over [served, demand], charged for one period.
    let mut slo = 0.0;
    for (t, demand_row) in inputs.demand.iter().enumerate() {
        for (n, &width) in demand_row.iter().enumerate() {
            if width <= 0.0 {
                continue;
            }
            let served: f64 = x[t].iter().map(|per_n| per_n[n]).sum::<f64>().min(width);
            let mut pos = 0.0;
            for (w, slope) in costs.slo_costs[n].utility_segments(width) {
                let unserved = (pos + w - served.max(pos)).clamp(0.0, w);
                slo += unserved * slope * period_hours;
                pos += w;
            }
        }
    }
    PlanCost {
        rental_dollars: rental,
        first_step_rental_dollars: first_step,
        slo_dollars: slo,
        spot_fraction: if total_machines > 0.0 { spot_machines / total_machines } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_model::SimDuration;

    fn config() -> HarmonyConfig {
        HarmonyConfig {
            control_period: SimDuration::from_mins(10.0),
            horizon: 2,
            omega: 1.0,
            ..Default::default()
        }
    }

    fn catalog() -> MachineCatalog {
        MachineCatalog::table2().scaled(100) // 70/15/10/5 machines
    }

    #[test]
    fn zero_demand_turns_everything_off() {
        let catalog = catalog();
        let sizes = vec![Resources::new(0.05, 0.05)];
        let utility = vec![0.5];
        let demand = vec![vec![0.0], vec![0.0]];
        let initial = vec![10.0, 5.0, 2.0, 1.0];
        let plan = solve_cbs_relax(
            &CbsInputs {
                catalog: &catalog,
                container_sizes: &sizes,
                utility_per_hour: &utility,
                demand: &demand,
                initial_active: &initial,
                price: &EnergyPrice::default(),
                now: SimTime::ZERO,
            },
            &config(),
        )
        .unwrap();
        // With zero demand, paying idle energy is pure loss... but
        // switching off also costs. Horizon 2 with cheap switching →
        // machines go to (near) zero by the end.
        let final_total: f64 = plan.z.last().unwrap().iter().sum();
        assert!(final_total < 1.0, "machines should power down, got {final_total}");
    }

    #[test]
    fn demand_brings_capacity_up_and_prefers_cheap_hosts() {
        let catalog = catalog();
        // Containers of 0.05 CPU / 0.03 mem fit every type including the
        // R210.
        let sizes = vec![Resources::new(0.05, 0.03)];
        let utility = vec![1.0];
        let demand = vec![vec![20.0], vec![20.0]];
        let initial = vec![0.0; 4];
        let plan = solve_cbs_relax(
            &CbsInputs {
                catalog: &catalog,
                container_sizes: &sizes,
                utility_per_hour: &utility,
                demand: &demand,
                initial_active: &initial,
                price: &EnergyPrice::default(),
                now: SimTime::ZERO,
            },
            &config(),
        )
        .unwrap();
        let assigned: f64 = plan.x[0].iter().map(|per_n| per_n[0]).sum();
        assert!(assigned > 19.0, "demand should be served, got {assigned}");
        // At bulk scale the DL585 G7 amortizes idle power over 20
        // containers per machine and is the cheapest feasible host; the
        // LP should concentrate the assignment there. (Small machines
        // win only for trickle loads after integer rounding — see the
        // rounding tests.)
        let per_container_cost = |m: usize| {
            let ty = catalog.machine_type(harmony_model::MachineTypeId(m));
            let util = sizes[0].utilization_of(ty.capacity);
            let marginal = ty.power.alpha_watts.cpu * util.cpu + ty.power.alpha_watts.mem * util.mem;
            let per_machine = (ty.capacity.cpu / sizes[0].cpu).min(ty.capacity.mem / sizes[0].mem);
            marginal + ty.power.idle_watts / per_machine
        };
        let cheapest = (0..4)
            .filter(|&m| sizes[0].fits_within(catalog.machine_type(harmony_model::MachineTypeId(m)).capacity))
            .min_by(|&a, &b| per_container_cost(a).total_cmp(&per_container_cost(b)))
            .unwrap();
        assert!(
            plan.x[0][cheapest][0] > assigned * 0.5,
            "cheapest host (type {cheapest}) should carry the bulk: {:?}",
            plan.x[0]
        );
        assert!(plan.objective > 0.0);
    }

    #[test]
    fn big_containers_skip_small_machines() {
        let catalog = catalog();
        // 0.3 CPU does not fit the R210 (0.083) or R515 (0.25).
        let sizes = vec![Resources::new(0.3, 0.1)];
        let utility = vec![2.0];
        let demand = vec![vec![4.0]];
        let initial = vec![0.0; 4];
        let plan = solve_cbs_relax(
            &CbsInputs {
                catalog: &catalog,
                container_sizes: &sizes,
                utility_per_hour: &utility,
                demand: &demand,
                initial_active: &initial,
                price: &EnergyPrice::default(),
                now: SimTime::ZERO,
            },
            &config(),
        )
        .unwrap();
        assert_eq!(plan.x[0][0][0], 0.0);
        assert_eq!(plan.x[0][1][0], 0.0);
        let hosted = plan.x[0][2][0] + plan.x[0][3][0];
        assert!(hosted > 3.9, "large types must host the containers, got {hosted}");
    }

    #[test]
    fn capacity_constraint_binds() {
        let catalog = MachineCatalog::table2().scaled(2500); // 3/1/1/1
        let sizes = vec![Resources::new(0.04, 0.03)];
        let utility = vec![10.0];
        // Demand far beyond the whole cluster.
        let demand = vec![vec![10_000.0]];
        let initial = vec![0.0; 4];
        let cfg = config();
        let plan = solve_cbs_relax(
            &CbsInputs {
                catalog: &catalog,
                container_sizes: &sizes,
                utility_per_hour: &utility,
                demand: &demand,
                initial_active: &initial,
                price: &EnergyPrice::default(),
                now: SimTime::ZERO,
            },
            &cfg,
        )
        .unwrap();
        // Machines are capped by the population.
        for (m, &zv) in plan.z[0].iter().enumerate() {
            let count = catalog.machine_type(harmony_model::MachineTypeId(m)).count as f64;
            assert!(zv <= count + 1e-6, "z[{m}] = {zv} exceeds population {count}");
        }
        // And assignments respect Σ ω c x ≤ C z per type/resource.
        for m in 0..catalog.len() {
            let cap = catalog.machine_type(harmony_model::MachineTypeId(m)).capacity;
            let used_cpu = plan.x[0][m][0] * sizes[0].cpu * cfg.omega;
            assert!(used_cpu <= cap.cpu * plan.z[0][m] + 1e-6);
        }
    }

    #[test]
    fn switching_cost_smooths_the_plan() {
        let catalog = catalog();
        let sizes = vec![Resources::new(0.05, 0.03)];
        let utility = vec![0.8];
        // Demand spike in period 0 only.
        let demand = vec![vec![30.0], vec![0.0], vec![0.0]];
        let initial = vec![0.0; 4];
        let mut cheap_switch = config();
        cheap_switch.horizon = 3;
        let plan = solve_cbs_relax(
            &CbsInputs {
                catalog: &catalog,
                container_sizes: &sizes,
                utility_per_hour: &utility,
                demand: &demand,
                initial_active: &initial,
                price: &EnergyPrice::default(),
                now: SimTime::ZERO,
            },
            &cheap_switch,
        )
        .unwrap();
        let t0: f64 = plan.z[0].iter().sum();
        let t2: f64 = plan.z[2].iter().sum();
        assert!(t0 > 0.0, "capacity must come up for the spike");
        assert!(t2 < t0, "capacity should decay after the spike");
    }

    #[test]
    fn time_of_use_price_defers_low_value_work() {
        // Hour 0 is peak-priced, hour 1 off-peak. The class utility sits
        // between the two marginal energy costs, so the LP serves demand
        // only in the cheap period.
        let catalog = catalog();
        let sizes = vec![Resources::new(0.05, 0.03)];
        let demand = vec![vec![10.0], vec![10.0]];
        let initial = vec![0.0; 4];
        let price = EnergyPrice::TimeOfUse {
            peak: 2.0,      // $/kWh, absurdly high: serving at peak loses money
            off_peak: 0.01, // serving off-peak is nearly free
            peak_start_hour: 0.0,
            peak_end_hour: 1.0,
        };
        let mut cfg = config();
        cfg.control_period = SimDuration::from_hours(1.0);
        cfg.horizon = 2;
        // Marginal energy per container-hour on the cheapest host is
        // tens of watts → peak cost ~0.1 $/h, off-peak ~0.0005 $/h.
        let utility = vec![0.02];
        let plan = solve_cbs_relax(
            &CbsInputs {
                catalog: &catalog,
                container_sizes: &sizes,
                utility_per_hour: &utility,
                demand: &demand,
                initial_active: &initial,
                price: &price,
                now: SimTime::ZERO,
            },
            &cfg,
        )
        .unwrap();
        let served_peak: f64 = plan.x[0].iter().map(|per_n| per_n[0]).sum();
        let served_cheap: f64 = plan.x[1].iter().map(|per_n| per_n[0]).sum();
        assert!(served_peak < 0.5, "peak-period work should be deferred: {served_peak}");
        assert!(served_cheap > 9.0, "off-peak period should serve: {served_cheap}");
    }

    #[test]
    fn warm_resolve_matches_cold_and_saves_pivots() {
        let catalog = catalog();
        let sizes = vec![Resources::new(0.05, 0.03)];
        let utility = vec![1.0];
        let initial = vec![0.0; 4];
        let cfg = config();
        let price = EnergyPrice::default();
        let demand_20 = vec![vec![20.0], vec![20.0]];
        let demand_24 = vec![vec![24.0], vec![24.0]];
        fn inputs<'a>(
            catalog: &'a MachineCatalog,
            sizes: &'a [Resources],
            utility: &'a [f64],
            demand: &'a [Vec<f64>],
            initial: &'a [f64],
            price: &'a EnergyPrice,
        ) -> CbsInputs<'a> {
            CbsInputs {
                catalog,
                container_sizes: sizes,
                utility_per_hour: utility,
                demand,
                initial_active: initial,
                price,
                now: SimTime::ZERO,
            }
        }
        let first = solve_cbs_relax_warm(
            &inputs(&catalog, &sizes, &utility, &demand_20, &initial, &price),
            &cfg,
            None,
        )
        .unwrap();
        assert!(!first.warm_started);
        // Next tick: same structure, perturbed demand.
        let cold = solve_cbs_relax_warm(
            &inputs(&catalog, &sizes, &utility, &demand_24, &initial, &price),
            &cfg,
            None,
        )
        .unwrap();
        let warm = solve_cbs_relax_warm(
            &inputs(&catalog, &sizes, &utility, &demand_24, &initial, &price),
            &cfg,
            Some(&first.basis),
        )
        .unwrap();
        assert!(warm.warm_started, "same-structure re-solve must warm start");
        assert!(
            (warm.plan.objective - cold.plan.objective).abs()
                < 1e-6 * (1.0 + cold.plan.objective.abs()),
            "warm {} vs cold {}",
            warm.plan.objective,
            cold.plan.objective
        );
        assert!(
            warm.pivots < cold.pivots,
            "warm restart must save pivots: {} vs {}",
            warm.pivots,
            cold.pivots
        );
    }

    #[test]
    fn zero_demand_structure_change_falls_back_cleanly() {
        // Demand crossing zero changes the LP's variable/constraint
        // structure; the stale basis must fall back to a cold solve, not
        // corrupt the plan.
        let catalog = catalog();
        let sizes = vec![Resources::new(0.05, 0.03)];
        let utility = vec![1.0];
        let initial = vec![5.0, 0.0, 0.0, 0.0];
        let cfg = config();
        let solve = |demand: f64, warm: Option<&harmony_lp::Basis>| {
            solve_cbs_relax_warm(
                &CbsInputs {
                    catalog: &catalog,
                    container_sizes: &sizes,
                    utility_per_hour: &utility,
                    demand: &[vec![demand], vec![demand]],
                    initial_active: &initial,
                    price: &EnergyPrice::default(),
                    now: SimTime::ZERO,
                },
                &cfg,
                warm,
            )
        };
        let busy = solve(20.0, None).unwrap();
        let idle_cold = solve(0.0, None).unwrap();
        let idle_warm = solve(0.0, Some(&busy.basis)).unwrap();
        assert!(!idle_warm.warm_started, "structure change must force a cold fallback");
        assert_eq!(idle_warm.plan, idle_cold.plan, "fallback must match the cold plan");
    }

    fn dollar_costs(catalog: &MachineCatalog, n_classes: usize) -> DollarCosts {
        DollarCosts::default_for(
            catalog,
            &vec![harmony_model::PriorityGroup::Production; n_classes],
            MarketPolicy::SpotAware,
            2013,
        )
    }

    #[test]
    fn energy_objective_is_bit_identical_through_priced_entry() {
        let catalog = catalog();
        let sizes = vec![Resources::new(0.05, 0.03)];
        let utility = vec![1.0];
        let demand = vec![vec![20.0], vec![20.0]];
        let initial = vec![0.0; 4];
        let inputs = CbsInputs {
            catalog: &catalog,
            container_sizes: &sizes,
            utility_per_hour: &utility,
            demand: &demand,
            initial_active: &initial,
            price: &EnergyPrice::default(),
            now: SimTime::ZERO,
        };
        let via_warm = solve_cbs_relax_warm(&inputs, &config(), None).unwrap();
        let via_priced =
            solve_cbs_relax_priced(&inputs, &config(), &CbsObjective::Energy, None).unwrap();
        assert_eq!(via_priced.plan, via_warm.plan);
        assert_eq!(via_priced.pivots, via_warm.pivots);
        assert!(via_priced.cost.is_none(), "energy solves carry no dollar accounting");
    }

    #[test]
    fn dollar_objective_accounts_rental_and_prefers_spot() {
        let catalog = MachineCatalog::table2_with_accel().scaled(100);
        let sizes = vec![Resources::new(0.05, 0.03)];
        let utility = vec![1.0];
        let demand = vec![vec![40.0], vec![40.0]];
        let initial = vec![0.0; 5];
        let costs = dollar_costs(&catalog, 1);
        let inputs = CbsInputs {
            catalog: &catalog,
            container_sizes: &sizes,
            utility_per_hour: &utility,
            demand: &demand,
            initial_active: &initial,
            price: &EnergyPrice::default(),
            now: SimTime::ZERO,
        };
        let solve = solve_cbs_relax_priced(
            &inputs,
            &config(),
            &CbsObjective::Dollars(costs.clone()),
            None,
        )
        .unwrap();
        let cost = solve.cost.expect("dollar solves must carry accounting");
        let served: f64 = solve.plan.x[0].iter().map(|per_n| per_n[0]).sum();
        assert!(served > 39.0, "production demand must be served, got {served}");
        assert!(cost.rental_dollars > 0.0);
        assert!(cost.first_step_rental_dollars > 0.0);
        assert!(cost.first_step_rental_dollars <= cost.rental_dollars + 1e-12);
        assert!((0.0..=1.0).contains(&cost.spot_fraction));
        // Under SpotAware with the default book, every type except the
        // R210 has a spot quote that undercuts on-demand; the plan
        // should put essentially all capacity on spot-priced types (the
        // R210 is the most expensive host per unit of capacity).
        assert!(
            cost.spot_fraction > 0.9,
            "spot capacity should dominate, got {}",
            cost.spot_fraction
        );
        // The same instance under OnDemandOnly pays strictly more rent
        // for the same served demand.
        let od = DollarCosts { market: MarketPolicy::OnDemandOnly, ..costs };
        let od_solve =
            solve_cbs_relax_priced(&inputs, &config(), &CbsObjective::Dollars(od), None).unwrap();
        let od_cost = od_solve.cost.unwrap();
        assert_eq!(od_cost.spot_fraction, 0.0);
        assert!(
            od_cost.rental_dollars > cost.rental_dollars,
            "on-demand rent {} must exceed spot-aware rent {}",
            od_cost.rental_dollars,
            cost.rental_dollars
        );
    }

    #[test]
    fn accel_demand_routes_to_accelerator_machines_only() {
        let catalog = MachineCatalog::table2_with_accel().scaled(100);
        // Class 0 is CPU-only, class 1 needs one accelerator slot.
        let sizes = vec![Resources::new(0.05, 0.03), Resources::new(0.05, 0.05)];
        let utility = vec![1.0, 1.0];
        let demand = vec![vec![10.0, 6.0]];
        let initial = vec![0.0; 5];
        let mut costs = dollar_costs(&catalog, 2);
        costs.accel_demand = vec![0.0, 1.0];
        let plan = solve_cbs_relax_priced(
            &CbsInputs {
                catalog: &catalog,
                container_sizes: &sizes,
                utility_per_hour: &utility,
                demand: &demand,
                initial_active: &initial,
                price: &EnergyPrice::default(),
                now: SimTime::ZERO,
            },
            &config(),
            &CbsObjective::Dollars(costs),
            None,
        )
        .unwrap()
        .plan;
        // Only the GPU type (id 4) may host the accelerator class.
        for m in 0..4 {
            assert_eq!(plan.x[0][m][1], 0.0, "CPU type {m} must not host accel containers");
        }
        assert!(
            plan.x[0][4][1] > 5.9,
            "the GPU type must host the accel class: {:?}",
            plan.x[0]
        );
        // And accelerator slots cap the assignment: 4 slots/machine, so
        // 6 containers need at least 1.5 machines powered.
        assert!(plan.z[0][4] >= 1.5 - 1e-6, "accel capacity row must bind, got {}", plan.z[0][4]);
    }

    #[test]
    fn slo_curve_tail_is_left_unserved_when_rent_exceeds_value() {
        // One class whose critical head is worth far more than a
        // machine-hour and whose tail is worth nothing: the LP serves
        // exactly the head.
        let catalog = MachineCatalog::table2_with_accel().scaled(100);
        let sizes = vec![Resources::new(0.05, 0.03)];
        let utility = vec![1.0];
        let demand = vec![vec![20.0]];
        let initial = vec![0.0; 5];
        let mut costs = dollar_costs(&catalog, 1);
        costs.slo_costs = vec![harmony_pricing::SloCostCurve::new(0.5, 5.0, 0.0).unwrap()];
        let solve = solve_cbs_relax_priced(
            &CbsInputs {
                catalog: &catalog,
                container_sizes: &sizes,
                utility_per_hour: &utility,
                demand: &demand,
                initial_active: &initial,
                price: &EnergyPrice::default(),
                now: SimTime::ZERO,
            },
            &config(),
            &CbsObjective::Dollars(costs),
            None,
        )
        .unwrap();
        let served: f64 = solve.plan.x[0].iter().map(|per_n| per_n[0]).sum();
        assert!(
            (served - 10.0).abs() < 0.5,
            "only the critical head should be served, got {served}"
        );
        // The plan accounts the unserved tail... at its zero tail rate.
        let cost = solve.cost.unwrap();
        assert!(cost.slo_dollars.abs() < 1e-9, "a zero-rate tail costs nothing: {cost:?}");
    }

    #[test]
    fn dollar_warm_restart_matches_cold() {
        let catalog = MachineCatalog::table2_with_accel().scaled(100);
        let sizes = vec![Resources::new(0.05, 0.03)];
        let utility = vec![1.0];
        let initial = vec![0.0; 5];
        let costs = dollar_costs(&catalog, 1);
        let objective = CbsObjective::Dollars(costs);
        let solve = |demand: f64, warm: Option<&harmony_lp::Basis>| {
            solve_cbs_relax_priced(
                &CbsInputs {
                    catalog: &catalog,
                    container_sizes: &sizes,
                    utility_per_hour: &utility,
                    demand: &[vec![demand], vec![demand]],
                    initial_active: &initial,
                    price: &EnergyPrice::default(),
                    now: SimTime::ZERO,
                },
                &config(),
                &objective,
                warm,
            )
            .unwrap()
        };
        let first = solve(20.0, None);
        let cold = solve(24.0, None);
        let warm = solve(24.0, Some(&first.basis));
        assert!(warm.warm_started, "same-structure dollar re-solve must warm start");
        assert!(
            (warm.plan.objective - cold.plan.objective).abs()
                < 1e-6 * (1.0 + cold.plan.objective.abs()),
            "warm {} vs cold {}",
            warm.plan.objective,
            cold.plan.objective
        );
    }

    #[test]
    fn dollar_shape_validation() {
        let catalog = MachineCatalog::table2_with_accel().scaled(100);
        let sizes = vec![Resources::new(0.05, 0.03)];
        let utility = vec![1.0];
        let demand = vec![vec![5.0]];
        let initial = vec![0.0; 5];
        let inputs = CbsInputs {
            catalog: &catalog,
            container_sizes: &sizes,
            utility_per_hour: &utility,
            demand: &demand,
            initial_active: &initial,
            price: &EnergyPrice::default(),
            now: SimTime::ZERO,
        };
        let good = dollar_costs(&catalog, 1);
        // A book priced for a different catalog must be rejected.
        let mut wrong_book = good.clone();
        wrong_book.book = PriceBook::default_for(&MachineCatalog::table2(), 2013);
        // Mis-sized per-class vectors must be rejected.
        let mut wrong_curves = good.clone();
        wrong_curves.slo_costs.push(harmony_pricing::SloCostCurve::default_for_group(
            harmony_model::PriorityGroup::Gratis,
        ));
        let mut wrong_accel = good.clone();
        wrong_accel.accel_demand = vec![0.0, 0.0];
        let mut negative_accel = good;
        negative_accel.accel_demand = vec![-1.0];
        for bad in [wrong_book, wrong_curves, wrong_accel, negative_accel] {
            assert!(matches!(
                solve_cbs_relax_priced(&inputs, &config(), &CbsObjective::Dollars(bad), None),
                Err(HarmonyError::InvalidConfig { .. })
            ));
        }
        assert_eq!(CbsObjective::Energy.name(), "energy");
    }

    #[test]
    fn shape_validation() {
        let catalog = catalog();
        let sizes = vec![Resources::new(0.05, 0.05)];
        let utility = vec![1.0];
        let inputs = CbsInputs {
            catalog: &catalog,
            container_sizes: &sizes,
            utility_per_hour: &utility,
            demand: &[],
            initial_active: &[0.0; 4],
            price: &EnergyPrice::default(),
            now: SimTime::ZERO,
        };
        assert!(matches!(
            solve_cbs_relax(&inputs, &config()),
            Err(HarmonyError::InvalidConfig { .. })
        ));
        let bad_initial = CbsInputs {
            demand: &[vec![1.0]],
            initial_active: &[0.0; 2],
            ..inputs
        };
        assert!(solve_cbs_relax(&bad_initial, &config()).is_err());
    }
}

//! The M/G/N mean scheduling-delay approximation of Eq. (1).

use serde::{Deserialize, Serialize};

use crate::{erlang_c, QueueingError};

/// An M/G/N queue describing one task class served by `N` containers.
///
/// `λ` is the class arrival rate, `μ` the per-container service rate
/// (reciprocal mean task duration), and `CV²` the squared coefficient of
/// variation of the service time. Eq. (1) approximates the mean wait:
///
/// ```text
/// d ≈ π_N / (1 - ρ) · (1 + CV²) / 2 · 1 / (N·μ)
/// ```
///
/// which is exact for M/M/N (`CV² = 1`) and is the standard
/// Allen–Cunneen-style correction for general service times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MgnQueue {
    lambda: f64,
    mu: f64,
    cv2: f64,
}

impl MgnQueue {
    /// Creates a queue model from arrival rate `lambda` (tasks/s),
    /// service rate `mu` (tasks/s per container), and squared coefficient
    /// of variation `cv2` of service time.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::InvalidParameter`] when `lambda < 0`,
    /// `mu <= 0`, `cv2 < 0`, or any parameter is non-finite.
    pub fn new(lambda: f64, mu: f64, cv2: f64) -> Result<Self, QueueingError> {
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(QueueingError::InvalidParameter { name: "lambda", value: lambda });
        }
        if !mu.is_finite() || mu <= 0.0 {
            return Err(QueueingError::InvalidParameter { name: "mu", value: mu });
        }
        if !cv2.is_finite() || cv2 < 0.0 {
            return Err(QueueingError::InvalidParameter { name: "cv2", value: cv2 });
        }
        Ok(MgnQueue { lambda, mu, cv2 })
    }

    /// Arrival rate λ in tasks per second.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Per-container service rate μ in tasks per second.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Squared coefficient of variation of service time.
    pub fn cv2(&self) -> f64 {
        self.cv2
    }

    /// Offered load `a = λ/μ` in Erlangs — the minimum fractional number
    /// of containers for stability.
    pub fn offered_load(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Traffic intensity `ρ = λ/(Nμ)` with `n` containers.
    pub fn rho(&self, n: usize) -> f64 {
        self.offered_load() / n as f64
    }

    /// Mean scheduling delay (seconds) with `n` containers, per Eq. (1).
    ///
    /// # Errors
    ///
    /// * [`QueueingError::InvalidParameter`] when `n == 0`.
    /// * [`QueueingError::Unstable`] when `ρ >= 1`.
    pub fn mean_wait(&self, n: usize) -> Result<f64, QueueingError> {
        if n == 0 {
            return Err(QueueingError::InvalidParameter { name: "servers", value: 0.0 });
        }
        let rho = self.rho(n);
        if rho >= 1.0 {
            return Err(QueueingError::Unstable { rho });
        }
        let pi_n = erlang_c(n, self.offered_load())?;
        Ok(pi_n / (1.0 - rho) * (1.0 + self.cv2) / 2.0 / (n as f64 * self.mu))
    }

    /// The number of containers `c_i` the container manager provisions:
    /// the smallest `N` with `ρ < 1` and mean wait `≤ target` seconds
    /// (Section VI: "it is easy to estimate c_i to ensure d_i ≤ d̄_i and
    /// ρ_i < 1").
    ///
    /// Uses exponential probing followed by binary search, so it stays
    /// cheap even when tens of thousands of containers are required.
    ///
    /// # Errors
    ///
    /// * [`QueueingError::InvalidParameter`] when `target` is negative or
    ///   non-finite.
    /// * [`QueueingError::TargetUnreachable`] if the internal cap
    ///   (16,777,216 containers) cannot achieve the target.
    pub fn min_servers(&self, target: f64) -> Result<usize, QueueingError> {
        const CAP: usize = 1 << 24;
        if !target.is_finite() || target < 0.0 {
            return Err(QueueingError::InvalidParameter { name: "target", value: target });
        }
        if self.lambda == 0.0 {
            return Ok(0);
        }
        // Stability floor: smallest n with rho < 1.
        let floor = (self.offered_load().floor() as usize) + 1;
        let ok = |n: usize| matches!(self.mean_wait(n), Ok(d) if d <= target);
        // Exponential probe for an upper bound.
        let mut hi = floor;
        while !ok(hi) {
            if hi >= CAP {
                return Err(QueueingError::TargetUnreachable { target, cap: CAP });
            }
            hi = (hi * 2).min(CAP);
        }
        // Binary search in (floor-1, hi]: mean_wait is decreasing in n.
        let mut lo = floor.saturating_sub(1); // invariant: lo fails or is floor-1
        while hi - lo > 1 {
            let mid = lo + (hi - lo) / 2;
            if mid >= floor && ok(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_closed_form() {
        // M/M/1 mean wait: Wq = rho / (mu - lambda).
        let q = MgnQueue::new(0.5, 1.0, 1.0).unwrap();
        let expected = 0.5 / (1.0 - 0.5);
        assert!((q.mean_wait(1).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn mmn_closed_form() {
        // M/M/N mean wait: Wq = C(N, a) / (N*mu - lambda).
        let q = MgnQueue::new(3.0, 1.0, 1.0).unwrap();
        for n in [4usize, 6, 10] {
            let c = erlang_c(n, 3.0).unwrap();
            let expected = c / (n as f64 - 3.0);
            assert!((q.mean_wait(n).unwrap() - expected).abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn deterministic_service_halves_the_wait() {
        let exp = MgnQueue::new(5.0, 1.0, 1.0).unwrap();
        let det = MgnQueue::new(5.0, 1.0, 0.0).unwrap();
        let w_exp = exp.mean_wait(7).unwrap();
        let w_det = det.mean_wait(7).unwrap();
        assert!((w_det - w_exp / 2.0).abs() < 1e-12);
    }

    #[test]
    fn wait_decreases_with_servers() {
        let q = MgnQueue::new(20.0, 0.5, 1.5).unwrap();
        let mut prev = f64::INFINITY;
        for n in 41..80 {
            let w = q.mean_wait(n).unwrap();
            assert!(w <= prev, "wait must fall as servers grow");
            prev = w;
        }
    }

    #[test]
    fn min_servers_is_tight() {
        let q = MgnQueue::new(50.0, 0.5, 1.0).unwrap();
        let n = q.min_servers(0.1).unwrap();
        assert!(q.mean_wait(n).unwrap() <= 0.1);
        // One fewer server either violates the target or is unstable.
        match q.mean_wait(n - 1) {
            Ok(w) => assert!(w > 0.1, "n is not minimal: wait({}) = {w}", n - 1),
            Err(QueueingError::Unstable { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn min_servers_zero_arrivals() {
        let q = MgnQueue::new(0.0, 1.0, 1.0).unwrap();
        assert_eq!(q.min_servers(0.5).unwrap(), 0);
    }

    #[test]
    fn min_servers_zero_target_needs_many() {
        // Target 0 is unattainable exactly, but with enough servers the
        // wait underflows toward 0; allow either result shape: Ok with a
        // huge n or TargetUnreachable.
        let q = MgnQueue::new(10.0, 1.0, 1.0).unwrap();
        match q.min_servers(1e-300) {
            Ok(n) => assert!(n > 10),
            Err(QueueingError::TargetUnreachable { .. }) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn min_servers_loose_target_hits_stability_floor() {
        let q = MgnQueue::new(10.0, 1.0, 1.0).unwrap();
        // With a huge target the binding constraint is rho < 1 → n = 11.
        assert_eq!(q.min_servers(1e9).unwrap(), 11);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(MgnQueue::new(-1.0, 1.0, 1.0).is_err());
        assert!(MgnQueue::new(1.0, 0.0, 1.0).is_err());
        assert!(MgnQueue::new(1.0, 1.0, -0.5).is_err());
        assert!(MgnQueue::new(f64::NAN, 1.0, 1.0).is_err());
        let q = MgnQueue::new(1.0, 1.0, 1.0).unwrap();
        assert!(matches!(q.mean_wait(0), Err(QueueingError::InvalidParameter { .. })));
        assert!(matches!(q.mean_wait(1), Err(QueueingError::Unstable { .. })));
        assert!(matches!(q.min_servers(f64::NAN), Err(QueueingError::InvalidParameter { .. })));
    }

    #[test]
    fn accessors() {
        let q = MgnQueue::new(4.0, 2.0, 1.5).unwrap();
        assert_eq!(q.lambda(), 4.0);
        assert_eq!(q.mu(), 2.0);
        assert_eq!(q.cv2(), 1.5);
        assert_eq!(q.offered_load(), 2.0);
        assert_eq!(q.rho(4), 0.5);
    }
}

//! Gaussian statistical-multiplexing container sizing (Section VII-A).
//!
//! K-means models each task class as a Gaussian, so the aggregate demand
//! of `G` co-located tasks of a class is normal with mean `Σμ` and
//! variance `Σσ²`. Section VII-A picks the per-task container reservation
//! `c_r = μ_r + Z_r·σ_r`, where `Z_r` is the `(1-ε_r)`-quantile of the
//! unit normal, which guarantees (Eq. 3) that whenever the *reservations*
//! fit in a machine, the *actual* usage overflows with probability at
//! most ε.

use harmony_model::{ClassStats, Resources, NUM_RESOURCES};
use serde::{Deserialize, Serialize};

use crate::QueueingError;

/// Standard normal cumulative distribution function Φ(x).
///
/// Implemented via the Abramowitz–Stegun 7.1.26 rational approximation of
/// `erf`, accurate to about `1.5e-7` — far below the ε values container
/// sizing works with.
///
/// # Examples
///
/// ```
/// use harmony_queueing::normal_cdf;
///
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
/// assert!((normal_cdf(1.96) - 0.975).abs() < 1e-4);
/// ```
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    // Abramowitz & Stegun 7.1.26.
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592 + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal quantile function Φ⁻¹(p) (the `Z_r` of Eq. 3).
///
/// Implemented with Acklam's rational approximation (relative error
/// below `1.15e-9` over the open unit interval).
///
/// # Panics
///
/// Panics if `p` is outside the open interval `(0, 1)`.
///
/// # Examples
///
/// ```
/// use harmony_queueing::normal_quantile;
///
/// assert!((normal_quantile(0.5)).abs() < 1e-9);
/// assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
/// ```
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0, 1), got {p}");
    // Coefficients for Acklam's inverse normal CDF approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Computes container reservations `c_n = μ_n + Z·σ_n` for task classes,
/// given a machine-level capacity-violation budget ε (Section VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContainerSizer {
    epsilon: f64,
    z: f64,
}

impl ContainerSizer {
    /// Creates a sizer for a machine-capacity violation budget `epsilon`.
    ///
    /// The joint bound over the `|R|` resource dimensions is split evenly:
    /// `ε_r = 1 - (1-ε)^(1/|R|)`, so that violating *any* dimension stays
    /// below ε under independence.
    ///
    /// # Errors
    ///
    /// Returns [`QueueingError::InvalidParameter`] unless
    /// `0 < epsilon < 1`.
    pub fn new(epsilon: f64) -> Result<Self, QueueingError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(QueueingError::InvalidParameter { name: "epsilon", value: epsilon });
        }
        let per_resource = 1.0 - (1.0 - epsilon).powf(1.0 / NUM_RESOURCES as f64);
        let z = normal_quantile(1.0 - per_resource);
        Ok(ContainerSizer { epsilon, z })
    }

    /// The machine-level violation budget ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The normal quantile `Z_r` applied to every resource dimension.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// The container reservation for a task class: `μ + Z·σ` per
    /// dimension, clamped to the normalized machine size.
    pub fn container_size(&self, stats: &ClassStats) -> Resources {
        stats.container_size(self.z)
    }

    /// Upper bound on the probability that the *actual* usage of `counts`
    /// tasks per class exceeds `capacity` in some dimension, assuming
    /// independent Gaussian demands (union bound over dimensions).
    ///
    /// This is the quantity Eq. (3) drives below ε whenever the
    /// reservations fit.
    pub fn violation_probability(
        &self,
        classes: &[(&ClassStats, usize)],
        capacity: Resources,
    ) -> f64 {
        let mut p_any = 0.0;
        for r in 0..NUM_RESOURCES {
            let mut mean = 0.0;
            let mut var = 0.0;
            for (stats, count) in classes {
                let k = *count as f64;
                mean += k * stats.mean_demand[r];
                var += k * stats.std_demand[r] * stats.std_demand[r];
            }
            let p_r = if var > 0.0 {
                1.0 - normal_cdf((capacity[r] - mean) / var.sqrt())
            } else if mean > capacity[r] {
                1.0
            } else {
                0.0
            };
            p_any += p_r;
        }
        p_any.min(1.0)
    }

    /// Checks Eq. (3) directly: given per-class task counts, returns
    /// `true` if `(C_r - Σμ_r) / sqrt(Σσ_r²) ≥ Z_r` holds for every
    /// resource dimension.
    pub fn satisfies_eq3(&self, classes: &[(&ClassStats, usize)], capacity: Resources) -> bool {
        for r in 0..NUM_RESOURCES {
            let mut mean = 0.0;
            let mut var = 0.0;
            for (stats, count) in classes {
                let k = *count as f64;
                mean += k * stats.mean_demand[r];
                var += k * stats.std_demand[r] * stats.std_demand[r];
            }
            if var > 0.0 {
                if (capacity[r] - mean) / var.sqrt() < self.z {
                    return false;
                }
            } else if mean > capacity[r] {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harmony_model::{PriorityGroup, SimDuration, TaskClassId};

    fn stats(mean: (f64, f64), std: (f64, f64)) -> ClassStats {
        ClassStats {
            id: TaskClassId(0),
            group: PriorityGroup::Other,
            mean_demand: Resources::new(mean.0, mean.1),
            std_demand: Resources::new(std.0, std.1),
            mean_duration: SimDuration::from_secs(100.0),
            cv2_duration: 1.0,
            count: 100,
        }
    }

    #[test]
    fn cdf_reference_values() {
        let cases = [
            (0.0, 0.5),
            (1.0, 0.8413447),
            (-1.0, 0.1586553),
            (2.0, 0.9772499),
            (3.0, 0.9986501),
        ];
        for (x, phi) in cases {
            assert!((normal_cdf(x) - phi).abs() < 2e-6, "Phi({x})");
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let x = normal_quantile(p);
            assert!((normal_cdf(x) - p).abs() < 1e-5, "p = {p}, x = {x}");
        }
    }

    #[test]
    fn quantile_reference_values() {
        assert!((normal_quantile(0.975) - 1.95996).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.57583).abs() < 1e-4);
        assert!((normal_quantile(0.05) + 1.64485).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "(0, 1)")]
    fn quantile_domain_panics() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    fn sizer_rejects_bad_epsilon() {
        assert!(ContainerSizer::new(0.0).is_err());
        assert!(ContainerSizer::new(1.0).is_err());
        assert!(ContainerSizer::new(-0.1).is_err());
        assert!(ContainerSizer::new(0.05).is_ok());
    }

    #[test]
    fn smaller_epsilon_means_bigger_containers() {
        let s = stats((0.1, 0.1), (0.02, 0.02));
        let loose = ContainerSizer::new(0.2).unwrap().container_size(&s);
        let tight = ContainerSizer::new(0.001).unwrap().container_size(&s);
        assert!(tight.cpu > loose.cpu);
        assert!(tight.mem > loose.mem);
        assert!(loose.cpu > s.mean_demand.cpu, "reservation exceeds the mean");
    }

    #[test]
    fn eq3_guarantee_holds_when_reservations_fit() {
        // If k containers of size mu + Z*sigma fit in C, the violation
        // probability of actual usage must be <= epsilon.
        let eps = 0.05;
        let sizer = ContainerSizer::new(eps).unwrap();
        let s = stats((0.05, 0.04), (0.01, 0.008));
        let c = sizer.container_size(&s);
        let capacity = Resources::new(1.0, 1.0);
        // Max k with k*c <= capacity:
        let k = (1.0 / c.cpu).floor().min((1.0 / c.mem).floor()) as usize;
        assert!(k >= 2, "test needs multiplexing, k = {k}");
        let p = sizer.violation_probability(&[(&s, k)], capacity);
        assert!(p <= eps + 1e-9, "violation probability {p} exceeds epsilon {eps}");
    }

    #[test]
    fn eq3_check_matches_probability_bound() {
        let sizer = ContainerSizer::new(0.05).unwrap();
        let s = stats((0.05, 0.05), (0.01, 0.01));
        let cap = Resources::new(1.0, 1.0);
        // Find the largest k satisfying Eq. 3, verify probability there,
        // and verify k+lots violates.
        let mut k = 1;
        while sizer.satisfies_eq3(&[(&s, k + 1)], cap) {
            k += 1;
        }
        assert!(sizer.violation_probability(&[(&s, k)], cap) <= 0.05 + 1e-9);
        assert!(!sizer.satisfies_eq3(&[(&s, k + 5)], cap));
    }

    #[test]
    fn violation_probability_is_monotone_in_load() {
        let sizer = ContainerSizer::new(0.05).unwrap();
        let s = stats((0.05, 0.05), (0.02, 0.02));
        let cap = Resources::ONE;
        let mut prev = 0.0;
        for k in [1usize, 5, 10, 15, 20, 30] {
            let p = sizer.violation_probability(&[(&s, k)], cap);
            assert!(p >= prev - 1e-12, "monotone in k");
            prev = p;
        }
        assert!(prev > 0.5, "overload should almost surely violate, p = {prev}");
    }

    #[test]
    fn zero_variance_class_is_deterministic() {
        let sizer = ContainerSizer::new(0.05).unwrap();
        let s = stats((0.1, 0.1), (0.0, 0.0));
        let cap = Resources::ONE;
        assert_eq!(sizer.violation_probability(&[(&s, 10)], cap), 0.0);
        assert_eq!(sizer.violation_probability(&[(&s, 11)], cap), 1.0);
        assert!(sizer.satisfies_eq3(&[(&s, 10)], cap));
        assert!(!sizer.satisfies_eq3(&[(&s, 11)], cap));
    }

    #[test]
    fn monte_carlo_validates_gaussian_bound() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Draw task demands from the class Gaussian and measure the
        // empirical violation rate of packing k reservations per machine.
        let eps = 0.1;
        let sizer = ContainerSizer::new(eps).unwrap();
        let s = stats((0.05, 0.05), (0.012, 0.012));
        let c = sizer.container_size(&s);
        let cap = Resources::ONE;
        let k = (1.0 / c.cpu).floor() as usize;
        let mut rng = StdRng::seed_from_u64(42);
        let mut violations = 0;
        let trials = 4000;
        for _ in 0..trials {
            let mut used = Resources::ZERO;
            for _ in 0..k {
                // Box-Muller.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen();
                let z1 = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let z2 = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).sin();
                used += Resources::new(
                    (s.mean_demand.cpu + s.std_demand.cpu * z1).max(0.0),
                    (s.mean_demand.mem + s.std_demand.mem * z2).max(0.0),
                );
            }
            if !used.fits_within(cap) {
                violations += 1;
            }
        }
        let rate = violations as f64 / trials as f64;
        assert!(rate <= eps * 1.5, "empirical violation rate {rate} should be near/below {eps}");
    }
}

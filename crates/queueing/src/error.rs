//! Error type for queueing computations.

use std::error::Error;
use std::fmt;

/// Errors returned by queueing-model computations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueueingError {
    /// A rate or coefficient was non-finite or out of its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The requested configuration is unstable (`ρ >= 1`): the queue grows
    /// without bound.
    Unstable {
        /// Traffic intensity `ρ = λ/(Nμ)`.
        rho: f64,
    },
    /// No server count up to the given cap satisfies the delay target.
    TargetUnreachable {
        /// The delay target in seconds.
        target: f64,
        /// The server cap that was searched.
        cap: usize,
    },
}

impl fmt::Display for QueueingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueingError::InvalidParameter { name, value } => {
                write!(f, "parameter {name} has invalid value {value}")
            }
            QueueingError::Unstable { rho } => {
                write!(f, "queue is unstable: traffic intensity rho = {rho} >= 1")
            }
            QueueingError::TargetUnreachable { target, cap } => {
                write!(f, "no server count up to {cap} achieves mean delay {target}")
            }
        }
    }
}

impl Error for QueueingError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(QueueingError::Unstable { rho: 1.2 }.to_string().contains("1.2"));
        assert!(QueueingError::InvalidParameter { name: "lambda", value: -1.0 }
            .to_string()
            .contains("lambda"));
        assert!(QueueingError::TargetUnreachable { target: 0.1, cap: 10 }
            .to_string()
            .contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<QueueingError>();
    }
}

//! Erlang blocking and waiting probabilities.
//!
//! Eq. (2) of the paper is the classic Erlang-C expression for the
//! probability `π_N` that an arriving task finds all `N` containers busy.
//! Evaluating it literally overflows for the container counts HARMONY
//! works with (thousands), so we compute it through the Erlang-B
//! recursion, which is numerically stable for arbitrary `N`:
//!
//! ```text
//! B(0, a) = 1
//! B(k, a) = a·B(k-1, a) / (k + a·B(k-1, a))
//! C(N, a) = N·B(N, a) / (N - a·(1 - B(N, a)))
//! ```
//!
//! where `a = λ/μ` is the offered load and `C` equals Eq. (2).

use crate::QueueingError;

/// Erlang-B blocking probability `B(n, a)` for `n` servers at offered
/// load `a = λ/μ` Erlangs.
///
/// # Errors
///
/// Returns [`QueueingError::InvalidParameter`] when `a` is negative or
/// non-finite.
///
/// # Examples
///
/// ```
/// use harmony_queueing::erlang_b;
///
/// // Classic tabulated value: B(10, 5) ≈ 0.018.
/// let b = erlang_b(10, 5.0)?;
/// assert!((b - 0.018).abs() < 1e-3);
/// # Ok::<(), harmony_queueing::QueueingError>(())
/// ```
pub fn erlang_b(n: usize, a: f64) -> Result<f64, QueueingError> {
    if !a.is_finite() || a < 0.0 {
        return Err(QueueingError::InvalidParameter { name: "offered_load", value: a });
    }
    let mut b = 1.0_f64;
    for k in 1..=n {
        b = a * b / (k as f64 + a * b);
    }
    Ok(b)
}

/// Erlang-C waiting probability `π_N` (Eq. 2): the probability that an
/// arriving task must queue because all `N` containers are busy.
///
/// # Errors
///
/// * [`QueueingError::InvalidParameter`] when `a` is negative/non-finite
///   or `n == 0`.
/// * [`QueueingError::Unstable`] when `a >= n` (traffic intensity ≥ 1).
///
/// # Examples
///
/// ```
/// use harmony_queueing::erlang_c;
///
/// // M/M/1: pi_1 = rho.
/// let c = erlang_c(1, 0.3)?;
/// assert!((c - 0.3).abs() < 1e-12);
/// # Ok::<(), harmony_queueing::QueueingError>(())
/// ```
pub fn erlang_c(n: usize, a: f64) -> Result<f64, QueueingError> {
    if n == 0 {
        return Err(QueueingError::InvalidParameter { name: "servers", value: 0.0 });
    }
    if !a.is_finite() || a < 0.0 {
        return Err(QueueingError::InvalidParameter { name: "offered_load", value: a });
    }
    let nf = n as f64;
    if a >= nf {
        return Err(QueueingError::Unstable { rho: a / nf });
    }
    let b = erlang_b(n, a)?;
    Ok(nf * b / (nf - a * (1.0 - b)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct evaluation of Eq. (2) for small N, as written in the paper.
    fn erlang_c_literal(n: usize, a: f64) -> f64 {
        let rho = a / n as f64;
        let fact = |k: usize| (1..=k).map(|i| i as f64).product::<f64>();
        let top = a.powi(n as i32) / (fact(n) * (1.0 - rho));
        let mut sum = 0.0;
        for k in 0..n {
            sum += a.powi(k as i32) / fact(k);
        }
        top / (sum + top)
    }

    #[test]
    fn matches_literal_formula_for_small_n() {
        for &(n, a) in &[(1usize, 0.5f64), (2, 1.2), (5, 3.0), (10, 7.5), (20, 15.0)] {
            let stable = erlang_c(n, a).unwrap();
            let literal = erlang_c_literal(n, a);
            assert!(
                (stable - literal).abs() < 1e-10,
                "n={n} a={a}: {stable} vs {literal}"
            );
        }
    }

    #[test]
    fn survives_huge_server_counts() {
        // Literal Eq. (2) overflows factorials beyond n ~ 170.
        let c = erlang_c(5000, 4900.0).unwrap();
        assert!((0.0..=1.0).contains(&c), "c = {c}");
        assert!(c > 0.0);
    }

    #[test]
    fn erlang_b_decreases_with_servers() {
        let a = 8.0;
        let mut prev = 1.0;
        for n in 1..=32 {
            let b = erlang_b(n, a).unwrap();
            assert!(b <= prev + 1e-15, "B should be non-increasing in n");
            prev = b;
        }
    }

    #[test]
    fn erlang_c_increases_with_load() {
        let mut prev = 0.0;
        for i in 1..10 {
            let a = i as f64;
            let c = erlang_c(10, a).unwrap();
            assert!(c >= prev, "C should be non-decreasing in load");
            prev = c;
        }
    }

    #[test]
    fn zero_load_never_waits() {
        assert_eq!(erlang_c(4, 0.0).unwrap(), 0.0);
        assert_eq!(erlang_b(4, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn rejects_invalid_input() {
        assert!(matches!(erlang_c(0, 1.0), Err(QueueingError::InvalidParameter { .. })));
        assert!(matches!(erlang_c(2, -1.0), Err(QueueingError::InvalidParameter { .. })));
        assert!(matches!(erlang_c(2, f64::NAN), Err(QueueingError::InvalidParameter { .. })));
        assert!(matches!(erlang_c(2, 2.0), Err(QueueingError::Unstable { .. })));
        assert!(matches!(erlang_c(2, 3.0), Err(QueueingError::Unstable { .. })));
        assert!(matches!(erlang_b(2, f64::INFINITY), Err(QueueingError::InvalidParameter { .. })));
    }

    #[test]
    fn mm1_special_case() {
        // For M/M/1, waiting probability equals utilization.
        for rho in [0.1, 0.5, 0.9, 0.99] {
            let c = erlang_c(1, rho).unwrap();
            assert!((c - rho).abs() < 1e-12);
        }
    }
}

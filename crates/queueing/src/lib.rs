//! Queueing models used by the HARMONY container manager.
//!
//! Section VI of the paper models the task queue of class `i` with `N`
//! containers as an M/G/N queue and sizes the container pool so the mean
//! scheduling delay meets the class SLO:
//!
//! * [`erlang_c`] — the wait probability `π_N` of Eq. (2), computed via
//!   the numerically-stable Erlang-B recursion.
//! * [`MgnQueue`] — the mean-wait approximation of Eq. (1),
//!   `d ≈ π_N/(1-ρ) · (1+CV²)/2 · 1/(Nμ)`, plus the inverse problem
//!   ([`MgnQueue::min_servers`]) the container manager solves.
//! * [`sizing`] — the Gaussian statistical-multiplexing container sizing
//!   of Section VII-A (Eq. 3), including a from-scratch normal
//!   quantile/CDF pair.
//!
//! # Examples
//!
//! ```
//! use harmony_queueing::MgnQueue;
//!
//! // 50 tasks/s arriving, service rate 0.5/s per container
//! // (mean duration 2 s), exponential variability (CV^2 = 1),
//! // target mean scheduling delay 0.1 s.
//! let queue = MgnQueue::new(50.0, 0.5, 1.0)?;
//! let n = queue.min_servers(0.1)?;
//! assert!(n >= 101, "need at least ceil(rho)+1 servers, got {n}");
//! assert!(queue.mean_wait(n)? <= 0.1);
//! # Ok::<(), harmony_queueing::QueueingError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod erlang;
mod error;
mod mgn;
pub mod sizing;

pub use erlang::{erlang_b, erlang_c};
pub use error::QueueingError;
pub use mgn::MgnQueue;
pub use sizing::{normal_cdf, normal_quantile, ContainerSizer};

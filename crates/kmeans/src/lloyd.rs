//! Lloyd's algorithm with k-means++ seeding.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::distance_sq;
use crate::{Dataset, KMeansError};

/// Configurable K-means clusterer (builder).
///
/// Defaults: k-means++ seeding, 100 Lloyd iterations max, convergence
/// tolerance `1e-8` on total centroid movement, 4 restarts keeping the
/// lowest-inertia run, seed 0.
///
/// # Examples
///
/// ```
/// use harmony_kmeans::{Dataset, KMeans};
///
/// let data = Dataset::from_rows(vec![vec![0.0], vec![0.2], vec![10.0], vec![10.2]])?;
/// let model = KMeans::new(2).seed(1).max_iterations(50).fit(&data)?;
/// let mut centers: Vec<f64> = model.centroids().iter().map(|c| c[0]).collect();
/// centers.sort_by(f64::total_cmp);
/// assert!((centers[0] - 0.1).abs() < 1e-9);
/// assert!((centers[1] - 10.1).abs() < 1e-9);
/// # Ok::<(), harmony_kmeans::KMeansError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iterations: usize,
    tolerance: f64,
    restarts: usize,
    seed: u64,
}

impl KMeans {
    /// Creates a clusterer targeting `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeans { k, max_iterations: 100, tolerance: 1e-8, restarts: 4, seed: 0 }
    }

    /// Sets the RNG seed; fits are fully deterministic for a fixed seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps Lloyd iterations per restart.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the convergence tolerance on the sum of squared centroid
    /// movements.
    pub fn tolerance(mut self, tol: f64) -> Self {
        self.tolerance = tol;
        self
    }

    /// Sets the number of independent restarts; the lowest-inertia run is
    /// kept.
    pub fn restarts(mut self, n: usize) -> Self {
        self.restarts = n.max(1);
        self
    }

    /// Runs the clustering.
    ///
    /// # Errors
    ///
    /// * [`KMeansError::ZeroK`] if `k == 0`.
    /// * [`KMeansError::TooFewPoints`] if the dataset has fewer than `k`
    ///   rows.
    pub fn fit(&self, data: &Dataset) -> Result<KMeansModel, KMeansError> {
        if self.k == 0 {
            return Err(KMeansError::ZeroK);
        }
        if data.len() < self.k {
            return Err(KMeansError::TooFewPoints { k: self.k, points: data.len() });
        }
        let mut best: Option<KMeansModel> = None;
        for r in 0..self.restarts {
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(r as u64));
            let model = self.fit_once(data, &mut rng);
            if best.as_ref().is_none_or(|b| model.inertia() < b.inertia()) {
                best = Some(model);
            }
        }
        // Invariant: `restarts` is clamped to >= 1 by the builder, so
        // the loop above always produced at least one model.
        #[allow(clippy::expect_used)]
        Ok(best.expect("at least one restart ran"))
    }

    fn fit_once(&self, data: &Dataset, rng: &mut StdRng) -> KMeansModel {
        let dim = data.dim();
        let mut centroids = plus_plus_init(data, self.k, rng);
        let mut assignments = vec![0usize; data.len()];
        let mut iterations = 0;
        for iter in 0..self.max_iterations.max(1) {
            iterations = iter + 1;
            // Assignment step.
            for (i, row) in data.iter().enumerate() {
                assignments[i] = nearest_centroid(row, &centroids).0;
            }
            // Update step.
            let mut sums = vec![vec![0.0f64; dim]; self.k];
            let mut counts = vec![0usize; self.k];
            for (i, row) in data.iter().enumerate() {
                let c = assignments[i];
                counts[c] += 1;
                for (s, v) in sums[c].iter_mut().zip(row) {
                    *s += v;
                }
            }
            // Empty-cluster repair: re-seed an empty centroid at the point
            // farthest from its current centroid.
            for c in 0..self.k {
                if counts[c] == 0 {
                    let far = farthest_point(data, &centroids, &assignments);
                    sums[c] = data.row(far).to_vec();
                    counts[c] = 1;
                    assignments[far] = c;
                }
            }
            let mut movement = 0.0;
            for c in 0..self.k {
                let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
                movement += distance_sq(&new, &centroids[c]);
                centroids[c] = new;
            }
            if movement <= self.tolerance {
                break;
            }
        }
        // Final assignment pass so labels match the converged centroids.
        let mut inertia = 0.0;
        for (i, row) in data.iter().enumerate() {
            let (c, d2) = nearest_centroid(row, &centroids);
            assignments[i] = c;
            inertia += d2;
        }
        KMeansModel { centroids, assignments, inertia, iterations }
    }
}

/// k-means++ seeding: the first centroid is uniform, each subsequent
/// centroid is sampled with probability proportional to its squared
/// distance from the nearest centroid chosen so far.
fn plus_plus_init(data: &Dataset, k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = rng.gen_range(0..data.len());
    centroids.push(data.row(first).to_vec());
    let mut dists: Vec<f64> = (0..data.len()).map(|i| data.distance_sq(i, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let idx = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick uniformly.
            rng.gen_range(0..data.len())
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = data.len() - 1;
            for (i, &d) in dists.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        let c = data.row(idx).to_vec();
        for (i, d) in dists.iter_mut().enumerate() {
            *d = d.min(data.distance_sq(i, &c));
        }
        centroids.push(c);
    }
    centroids
}

fn nearest_centroid(row: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (c, centroid) in centroids.iter().enumerate() {
        let d2 = distance_sq(row, centroid);
        if d2 < best.1 {
            best = (c, d2);
        }
    }
    best
}

fn farthest_point(data: &Dataset, centroids: &[Vec<f64>], assignments: &[usize]) -> usize {
    let mut best = (0usize, -1.0f64);
    for (i, row) in data.iter().enumerate() {
        let d2 = distance_sq(row, &centroids[assignments[i]]);
        if d2 > best.1 {
            best = (i, d2);
        }
    }
    best.0
}

/// A fitted K-means model: converged centroids plus training assignments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansModel {
    centroids: Vec<Vec<f64>>,
    assignments: Vec<usize>,
    inertia: f64,
    iterations: usize,
}

impl KMeansModel {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.centroids.first().map_or(0, Vec::len)
    }

    /// Converged centroids, indexed by cluster label.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Training-set labels, parallel to the fitted dataset's rows.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Sum of squared distances from each training point to its centroid
    /// (the K-means objective).
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Lloyd iterations performed by the winning restart.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Labels a new point with the nearest centroid (the paper's run-time
    /// "similarity score ... Euclidean distance between the task and the
    /// centroid").
    ///
    /// # Errors
    ///
    /// Returns [`KMeansError::DimensionMismatch`] if the point's dimension
    /// differs from the model's.
    pub fn predict(&self, point: &[f64]) -> Result<usize, KMeansError> {
        if point.len() != self.dim() {
            return Err(KMeansError::DimensionMismatch { expected: self.dim(), got: point.len() });
        }
        Ok(nearest_centroid(point, &self.centroids).0)
    }

    /// Number of training points per cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Per-cluster, per-feature standard deviation over the training set
    /// (reported alongside centroids in Figs. 13/15/17).
    pub fn cluster_stds(&self, data: &Dataset) -> Vec<Vec<f64>> {
        let sizes = self.cluster_sizes();
        let mut sq = vec![vec![0.0f64; self.dim()]; self.k()];
        for (i, row) in data.iter().enumerate() {
            let c = self.assignments[i];
            for (j, (&v, m)) in row.iter().zip(&self.centroids[c]).enumerate() {
                sq[c][j] += (v - m) * (v - m);
            }
        }
        sq.into_iter()
            .zip(&sizes)
            .map(|(col, &n)| col.into_iter().map(|s| if n > 0 { (s / n as f64).sqrt() } else { 0.0 }).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        let mut rows = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f64 * 0.01;
            rows.push(vec![0.0 + j, 0.0 + j]);
            rows.push(vec![10.0 + j, 10.0 + j]);
            rows.push(vec![0.0 + j, 10.0 + j]);
        }
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn recovers_three_blobs() {
        let data = blobs();
        let model = KMeans::new(3).seed(42).fit(&data).unwrap();
        let sizes = model.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 60);
        assert!(sizes.iter().all(|&s| s == 20), "balanced blobs: {sizes:?}");
        // Inertia is tiny relative to blob separation.
        assert!(model.inertia() < 1.0, "inertia = {}", model.inertia());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = blobs();
        let a = KMeans::new(3).seed(7).fit(&data).unwrap();
        let b = KMeans::new(3).seed(7).fit(&data).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Dataset::from_rows(vec![vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let model = KMeans::new(3).seed(0).fit(&data).unwrap();
        assert!(model.inertia() < 1e-12);
        let mut sizes = model.cluster_sizes();
        sizes.sort();
        assert_eq!(sizes, vec![1, 1, 1]);
    }

    #[test]
    fn duplicate_points_do_not_break_seeding() {
        let data = Dataset::from_rows(vec![vec![5.0]; 10]).unwrap();
        let model = KMeans::new(3).seed(0).fit(&data).unwrap();
        assert_eq!(model.assignments().len(), 10);
        assert!(model.inertia() < 1e-12);
    }

    #[test]
    fn errors_on_bad_k() {
        let data = Dataset::from_rows(vec![vec![1.0], vec![2.0]]).unwrap();
        assert!(matches!(KMeans::new(0).fit(&data), Err(KMeansError::ZeroK)));
        assert!(matches!(
            KMeans::new(3).fit(&data),
            Err(KMeansError::TooFewPoints { k: 3, points: 2 })
        ));
    }

    #[test]
    fn predict_labels_near_centroid() {
        let data = blobs();
        let model = KMeans::new(3).seed(1).fit(&data).unwrap();
        let near_origin = model.predict(&[0.3, -0.1]).unwrap();
        assert_eq!(near_origin, model.assignments()[0]);
        assert!(matches!(
            model.predict(&[1.0]),
            Err(KMeansError::DimensionMismatch { expected: 2, got: 1 })
        ));
    }

    #[test]
    fn cluster_stds_are_small_within_tight_blobs() {
        let data = blobs();
        let model = KMeans::new(3).seed(3).fit(&data).unwrap();
        for stds in model.cluster_stds(&data) {
            for s in stds {
                assert!(s < 0.05, "std too large: {s}");
            }
        }
    }

    #[test]
    fn more_clusters_never_increase_inertia() {
        let data = blobs();
        let mut prev = f64::INFINITY;
        for k in 1..=6 {
            let m = KMeans::new(k).seed(11).restarts(6).fit(&data).unwrap();
            assert!(
                m.inertia() <= prev + 1e-9,
                "k={k}: inertia {} > previous {prev}",
                m.inertia()
            );
            prev = m.inertia();
        }
    }
}

//! Dense row-major feature matrices.

use serde::{Deserialize, Serialize};

use crate::KMeansError;

/// A dense row-major matrix of `f64` features: one row per observation,
/// one column per feature.
///
/// # Examples
///
/// ```
/// use harmony_kmeans::Dataset;
///
/// let data = Dataset::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.dim(), 2);
/// assert_eq!(data.row(1), &[3.0, 4.0]);
/// # Ok::<(), harmony_kmeans::KMeansError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    values: Vec<f64>,
    dim: usize,
}

impl Dataset {
    /// Builds a dataset from observation rows.
    ///
    /// # Errors
    ///
    /// * [`KMeansError::EmptyDataset`] if `rows` is empty or the rows have
    ///   zero columns.
    /// * [`KMeansError::RaggedRows`] if the rows disagree on length.
    /// * [`KMeansError::NonFiniteValue`] if any value is NaN or infinite.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, KMeansError> {
        let dim = rows.first().map(Vec::len).unwrap_or(0);
        if rows.is_empty() || dim == 0 {
            return Err(KMeansError::EmptyDataset);
        }
        let mut values = Vec::with_capacity(rows.len() * dim);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != dim {
                return Err(KMeansError::RaggedRows { row: i, expected: dim, got: row.len() });
            }
            for &v in row {
                if !v.is_finite() {
                    return Err(KMeansError::NonFiniteValue { row: i });
                }
            }
            values.extend_from_slice(row);
        }
        Ok(Dataset { values, dim })
    }

    /// Builds a dataset from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Dataset::from_rows`], plus
    /// [`KMeansError::RaggedRows`] when `values.len()` is not a multiple of
    /// `dim`.
    pub fn from_flat(values: Vec<f64>, dim: usize) -> Result<Self, KMeansError> {
        if values.is_empty() || dim == 0 {
            return Err(KMeansError::EmptyDataset);
        }
        if !values.len().is_multiple_of(dim) {
            return Err(KMeansError::RaggedRows {
                row: values.len() / dim,
                expected: dim,
                got: values.len() % dim,
            });
        }
        if let Some(pos) = values.iter().position(|v| !v.is_finite()) {
            return Err(KMeansError::NonFiniteValue { row: pos / dim });
        }
        Ok(Dataset { values, dim })
    }

    /// Number of observations (rows).
    pub fn len(&self) -> usize {
        self.values.len() / self.dim
    }

    /// `true` if there are no observations (unreachable for constructed
    /// datasets; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of features (columns).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The `i`-th observation.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.values[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterator over observation rows.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.values.chunks_exact(self.dim)
    }

    /// Column `j` gathered into a vector.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.dim()`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.dim, "column {j} out of range for dim {}", self.dim);
        self.iter().map(|r| r[j]).collect()
    }

    /// A new dataset containing only the rows at `indices` (in order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut values = Vec::with_capacity(indices.len() * self.dim);
        for &i in indices {
            values.extend_from_slice(self.row(i));
        }
        Dataset { values, dim: self.dim }
    }

    /// Squared Euclidean distance between row `i` and an external point.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != self.dim()`.
    pub fn distance_sq(&self, i: usize, point: &[f64]) -> f64 {
        distance_sq(self.row(i), point)
    }
}

/// Squared Euclidean distance between two points of equal dimension.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub(crate) fn distance_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch: {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let d = Dataset::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.row(2), &[5.0, 6.0]);
        assert_eq!(d.column(1), vec![2.0, 4.0, 6.0]);
        assert_eq!(d.iter().count(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn from_flat_matches_from_rows() {
        let a = Dataset::from_flat(vec![1.0, 2.0, 3.0, 4.0], 2).unwrap();
        let b = Dataset::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(Dataset::from_rows(vec![]), Err(KMeansError::EmptyDataset)));
        assert!(matches!(Dataset::from_rows(vec![vec![]]), Err(KMeansError::EmptyDataset)));
        assert!(matches!(
            Dataset::from_rows(vec![vec![1.0], vec![1.0, 2.0]]),
            Err(KMeansError::RaggedRows { row: 1, .. })
        ));
        assert!(matches!(
            Dataset::from_rows(vec![vec![f64::NAN]]),
            Err(KMeansError::NonFiniteValue { row: 0 })
        ));
        assert!(matches!(
            Dataset::from_flat(vec![1.0, 2.0, 3.0], 2),
            Err(KMeansError::RaggedRows { .. })
        ));
        assert!(matches!(
            Dataset::from_flat(vec![1.0, f64::INFINITY], 2),
            Err(KMeansError::NonFiniteValue { row: 0 })
        ));
    }

    #[test]
    fn select_gathers_rows() {
        let d = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let s = d.select(&[3, 1]);
        assert_eq!(s.row(0), &[3.0]);
        assert_eq!(s.row(1), &[1.0]);
    }

    #[test]
    fn distances() {
        let d = Dataset::from_rows(vec![vec![0.0, 0.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(d.distance_sq(1, &[0.0, 0.0]), 25.0);
        assert_eq!(distance_sq(&[1.0, 1.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn distance_dimension_mismatch_panics() {
        let _ = distance_sq(&[1.0], &[1.0, 2.0]);
    }
}

//! Clustering-quality metrics and the elbow rule for selecting `k`.

use serde::{Deserialize, Serialize};

use crate::dataset::distance_sq;
use crate::{Dataset, KMeans, KMeansError, KMeansModel};

/// Mean silhouette coefficient of a fitted model over its training data.
///
/// For each point, `a` is the mean distance to points sharing its cluster
/// and `b` the smallest mean distance to any other cluster; the silhouette
/// is `(b - a) / max(a, b)`. Values near 1 indicate tight, well-separated
/// clusters. Singleton clusters contribute 0, matching the usual
/// convention.
///
/// # Errors
///
/// Returns [`KMeansError::DimensionMismatch`] if `data` does not match the
/// model's dimension, or [`KMeansError::TooFewPoints`] when there are
/// fewer than 2 points or the model has a single cluster (silhouette is
/// undefined).
///
/// # Examples
///
/// ```
/// use harmony_kmeans::{silhouette_score, Dataset, KMeans};
///
/// let data = Dataset::from_rows(vec![
///     vec![0.0], vec![0.1], vec![10.0], vec![10.1],
/// ])?;
/// let model = KMeans::new(2).seed(0).fit(&data)?;
/// let s = silhouette_score(&data, &model)?;
/// assert!(s > 0.9, "well-separated blobs should be near 1, got {s}");
/// # Ok::<(), harmony_kmeans::KMeansError>(())
/// ```
pub fn silhouette_score(data: &Dataset, model: &KMeansModel) -> Result<f64, KMeansError> {
    if data.dim() != model.dim() {
        return Err(KMeansError::DimensionMismatch { expected: model.dim(), got: data.dim() });
    }
    if data.len() < 2 || model.k() < 2 {
        return Err(KMeansError::TooFewPoints { k: model.k(), points: data.len() });
    }
    let labels = model.assignments();
    let k = model.k();
    let sizes = model.cluster_sizes();
    let mut total = 0.0;
    for i in 0..data.len() {
        // Mean distance from point i to every cluster.
        let mut sums = vec![0.0f64; k];
        for j in 0..data.len() {
            if i == j {
                continue;
            }
            sums[labels[j]] += distance_sq(data.row(i), data.row(j)).sqrt();
        }
        let own = labels[i];
        if sizes[own] <= 1 {
            continue; // singleton contributes 0
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != own && sizes[c] > 0)
            .map(|c| sums[c] / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
    }
    Ok(total / data.len() as f64)
}

/// Davies–Bouldin index of a fitted model over its training data: the
/// mean, over clusters, of the worst-case ratio
/// `(S_i + S_j) / M_ij`, where `S` is the mean member-to-centroid
/// distance and `M` the centroid separation. **Lower is better**; unlike
/// the silhouette it costs `O(n·k)` rather than `O(n²)`, so it scales to
/// the full trace.
///
/// # Errors
///
/// Returns [`KMeansError::DimensionMismatch`] on a dataset/model
/// mismatch and [`KMeansError::TooFewPoints`] for single-cluster models.
///
/// # Examples
///
/// ```
/// use harmony_kmeans::{quality::davies_bouldin, Dataset, KMeans};
///
/// let data = Dataset::from_rows(vec![
///     vec![0.0], vec![0.1], vec![10.0], vec![10.1],
/// ])?;
/// let model = KMeans::new(2).seed(0).fit(&data)?;
/// let db = davies_bouldin(&data, &model)?;
/// assert!(db < 0.1, "tight separated blobs score near 0, got {db}");
/// # Ok::<(), harmony_kmeans::KMeansError>(())
/// ```
pub fn davies_bouldin(data: &Dataset, model: &KMeansModel) -> Result<f64, KMeansError> {
    if data.dim() != model.dim() {
        return Err(KMeansError::DimensionMismatch { expected: model.dim(), got: data.dim() });
    }
    let k = model.k();
    if k < 2 {
        return Err(KMeansError::TooFewPoints { k, points: data.len() });
    }
    let labels = model.assignments();
    let sizes = model.cluster_sizes();
    // Mean member→centroid distance per cluster.
    let mut scatter = vec![0.0f64; k];
    for (i, row) in data.iter().enumerate() {
        let c = labels[i];
        scatter[c] += distance_sq(row, &model.centroids()[c]).sqrt();
    }
    for (s, &n) in scatter.iter_mut().zip(&sizes) {
        if n > 0 {
            *s /= n as f64;
        }
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..k {
        if sizes[i] == 0 {
            continue;
        }
        let mut worst = 0.0f64;
        for j in 0..k {
            if i == j || sizes[j] == 0 {
                continue;
            }
            let m = distance_sq(&model.centroids()[i], &model.centroids()[j]).sqrt();
            if m > 0.0 {
                worst = worst.max((scatter[i] + scatter[j]) / m);
            }
        }
        total += worst;
        counted += 1;
    }
    Ok(total / counted.max(1) as f64)
}

/// Result of an elbow sweep over candidate `k` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElbowReport {
    /// Candidate cluster counts, ascending.
    pub ks: Vec<usize>,
    /// Inertia of the best restart at each candidate `k`.
    pub inertias: Vec<f64>,
    /// The selected `k`.
    pub chosen_k: usize,
}

impl ElbowReport {
    /// Inertia improvement from each `k` to the next, normalized by the
    /// inertia at the smallest `k`: `(I_k - I_{k+1}) / I_{k_min}`. The
    /// fixed denominator keeps the rule stable once inertia approaches
    /// zero.
    pub fn relative_gains(&self) -> Vec<f64> {
        let base = self.inertias.first().copied().unwrap_or(0.0);
        self.inertias
            .windows(2)
            .map(|w| if base > 0.0 { (w[0] - w[1]) / base } else { 0.0 })
            .collect()
    }
}

/// Sweeps `k` over `k_min..=k_max` and picks the smallest `k` after which
/// increasing `k` no longer yields a relative inertia improvement of at
/// least `min_gain` (the paper's rule: "no significant benefit can be
/// achieved by increasing the value of k").
///
/// # Errors
///
/// Propagates clustering errors; additionally returns
/// [`KMeansError::ZeroK`] if `k_min == 0` or `k_min > k_max`, and
/// [`KMeansError::TooFewPoints`] if the dataset has fewer than `k_min`
/// rows (no candidate `k` is feasible).
///
/// # Examples
///
/// ```
/// use harmony_kmeans::{elbow_k, Dataset, KMeans};
///
/// let mut rows = Vec::new();
/// for c in [0.0_f64, 10.0, 20.0] {
///     for i in 0..10 {
///         rows.push(vec![c + (i as f64) * 0.01]);
///     }
/// }
/// let data = Dataset::from_rows(rows)?;
/// let report = elbow_k(&data, 1, 6, 0.2, 0)?;
/// assert_eq!(report.chosen_k, 3);
/// # Ok::<(), harmony_kmeans::KMeansError>(())
/// ```
pub fn elbow_k(
    data: &Dataset,
    k_min: usize,
    k_max: usize,
    min_gain: f64,
    seed: u64,
) -> Result<ElbowReport, KMeansError> {
    if k_min == 0 || k_min > k_max {
        return Err(KMeansError::ZeroK);
    }
    let k_max = k_max.min(data.len());
    if k_min > k_max {
        // Fewer points than k_min: no candidate k is feasible. Without
        // this guard the candidate loop below runs zero times and the
        // chosen_k lookup panics on an empty list.
        return Err(KMeansError::TooFewPoints { k: k_min, points: data.len() });
    }
    let mut ks = Vec::new();
    let mut inertias = Vec::new();
    for k in k_min..=k_max {
        let model = KMeans::new(k).seed(seed).fit(data)?;
        ks.push(k);
        inertias.push(model.inertia());
    }
    // Choose the first k whose improvement over the *next* k is below the
    // threshold; default to k_max when every step is still a significant
    // gain.
    // `ks` holds k_min..=k_max (non-empty after the guard above), so
    // k_max is its last element.
    let mut report = ElbowReport { ks, inertias, chosen_k: k_max };
    for (i, gain) in report.relative_gains().into_iter().enumerate() {
        if gain < min_gain {
            report.chosen_k = report.ks[i];
            break;
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Dataset {
        let mut rows = Vec::new();
        for c in [0.0_f64, 10.0, 20.0] {
            for i in 0..12 {
                rows.push(vec![c + (i as f64) * 0.02, c - (i as f64) * 0.01]);
            }
        }
        Dataset::from_rows(rows).unwrap()
    }

    #[test]
    fn silhouette_high_for_true_k() {
        let data = three_blobs();
        let good = KMeans::new(3).seed(0).fit(&data).unwrap();
        let s3 = silhouette_score(&data, &good).unwrap();
        assert!(s3 > 0.9, "s3 = {s3}");
        let bad = KMeans::new(2).seed(0).fit(&data).unwrap();
        let s2 = silhouette_score(&data, &bad).unwrap();
        assert!(s3 > s2, "s3 {s3} should beat s2 {s2}");
    }

    #[test]
    fn silhouette_requires_two_clusters() {
        let data = three_blobs();
        let m = KMeans::new(1).seed(0).fit(&data).unwrap();
        assert!(matches!(silhouette_score(&data, &m), Err(KMeansError::TooFewPoints { .. })));
    }

    #[test]
    fn silhouette_dimension_check() {
        let data = three_blobs();
        let m = KMeans::new(2).seed(0).fit(&data).unwrap();
        let other = Dataset::from_rows(vec![vec![1.0], vec![2.0]]).unwrap();
        assert!(matches!(
            silhouette_score(&other, &m),
            Err(KMeansError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn davies_bouldin_prefers_true_k() {
        let data = three_blobs();
        let good = KMeans::new(3).seed(0).fit(&data).unwrap();
        let bad = KMeans::new(2).seed(0).fit(&data).unwrap();
        let db3 = davies_bouldin(&data, &good).unwrap();
        let db2 = davies_bouldin(&data, &bad).unwrap();
        assert!(db3 < db2, "db3 {db3} should beat db2 {db2}");
        assert!(db3 < 0.2, "tight blobs score near zero: {db3}");
    }

    #[test]
    fn davies_bouldin_requires_two_clusters() {
        let data = three_blobs();
        let m = KMeans::new(1).seed(0).fit(&data).unwrap();
        assert!(matches!(davies_bouldin(&data, &m), Err(KMeansError::TooFewPoints { .. })));
        let other = Dataset::from_rows(vec![vec![1.0], vec![2.0]]).unwrap();
        let m2 = KMeans::new(2).seed(0).fit(&data).unwrap();
        assert!(matches!(
            davies_bouldin(&other, &m2),
            Err(KMeansError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn elbow_finds_three_blobs() {
        let data = three_blobs();
        let report = elbow_k(&data, 1, 8, 0.2, 42).unwrap();
        assert_eq!(report.chosen_k, 3, "inertias: {:?}", report.inertias);
        assert_eq!(report.ks.len(), report.inertias.len());
        assert_eq!(report.relative_gains().len(), report.ks.len() - 1);
    }

    #[test]
    fn elbow_threshold_extremes() {
        let rows: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64]).collect();
        let data = Dataset::from_rows(rows).unwrap();
        // min_gain below every possible gain → never trips → k_max.
        let report = elbow_k(&data, 1, 4, -1.0, 0).unwrap();
        assert_eq!(report.chosen_k, 4);
        // min_gain above every possible gain → trips immediately → k_min.
        let report2 = elbow_k(&data, 1, 4, 2.0, 0).unwrap();
        assert_eq!(report2.chosen_k, 1);
    }

    #[test]
    fn elbow_rejects_bad_range() {
        let data = three_blobs();
        assert!(matches!(elbow_k(&data, 0, 4, 0.1, 0), Err(KMeansError::ZeroK)));
        assert!(matches!(elbow_k(&data, 5, 4, 0.1, 0), Err(KMeansError::ZeroK)));
    }

    #[test]
    fn elbow_caps_k_at_dataset_size() {
        let data = Dataset::from_rows(vec![vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let report = elbow_k(&data, 1, 10, 2.0, 0).unwrap();
        assert_eq!(*report.ks.last().unwrap(), 3);
    }

    #[test]
    fn elbow_errors_when_dataset_smaller_than_k_min() {
        // Used to panic: capping k_max at the dataset size left an empty
        // candidate range, and choosing k from it unwrapped a None.
        let data = Dataset::from_rows(vec![vec![0.0], vec![1.0]]).unwrap();
        assert!(matches!(
            elbow_k(&data, 3, 10, 0.1, 0),
            Err(KMeansError::TooFewPoints { k: 3, points: 2 })
        ));
    }
}
